"""Benchmark: Fig. 11 — average path stretch (registry wrapper).

The paper bounds the stretch around 1.1x; generous bounds here guard
against pathological configurations while tolerating solver variance.
"""

from conftest import run_registry_benchmark


def test_fig11_average_stretch(benchmark, experiment_config):
    table = run_registry_benchmark(benchmark, "fig11", experiment_config)
    for _network, obl, pk in table.rows:
        assert 0.8 <= obl <= 1.8
        assert 0.8 <= pk <= 1.8
    print()
    print(table)
