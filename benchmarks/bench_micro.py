"""Micro-benchmarks for the substrate layers (real repeated timing).

Unlike the experiment benches these run many rounds: they time the
building blocks whose speed bounds how far the paper-scale grids can go
— the min-congestion LP, the slave-LP sweep, the OSPF convergence, and
flow propagation.
"""

from repro.core.dag_builder import reverse_capacity_dags
from repro.demands.gravity import gravity_matrix
from repro.demands.uncertainty import margin_box
from repro.ecmp.routing import ecmp_routing
from repro.ecmp.weights import unit_weights
from repro.lp.mcf import min_congestion
from repro.lp.worst_case import WorstCaseOracle
from repro.ospf.domain import OspfDomain
from repro.topologies.zoo import load_topology


def test_min_congestion_lp(benchmark):
    network = load_topology("geant")
    demand = gravity_matrix(network)
    result = benchmark(min_congestion, network, demand)
    assert result.alpha > 0


def test_slave_lp_sweep(benchmark):
    network = load_topology("abilene")
    base = gravity_matrix(network)
    dags, weights = reverse_capacity_dags(network)
    ecmp = ecmp_routing(network, weights)
    oracle = WorstCaseOracle(network, margin_box(base, 2.0), dags=dags)
    result = benchmark(oracle.evaluate, ecmp)
    assert result.ratio >= 1.0


def test_ospf_convergence(benchmark):
    network = load_topology("geant")
    weights = unit_weights(network)

    def converge():
        domain = OspfDomain(network, weights)
        domain.advertise_loopbacks()
        domain.flood()
        return domain.extract_routing()

    routing = benchmark(converge)
    assert len(routing.dags) == network.num_nodes


def test_flow_propagation(benchmark):
    network = load_topology("geant")
    weights = unit_weights(network)
    routing = ecmp_routing(network, weights)
    demand = gravity_matrix(network)
    loads = benchmark(routing.link_loads, demand)
    assert loads
