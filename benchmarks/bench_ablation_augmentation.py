"""Ablation: does Step II (DAG augmentation) earn its keep?

DESIGN.md calls out augmentation as the mechanism that enlarges the
search space beyond ECMP.  This ablation optimizes COYOTE's splitting
within the plain shortest-path DAGs and within the augmented DAGs on the
same instance and compares worst-case ratios — both normalized by the
*same* (augmented-DAG) optimum so the numbers are comparable.
"""

from conftest import run_once

from repro.config import ExperimentConfig
from repro.core.dag_builder import build_dags
from repro.core.evaluate import project_ecmp_into_dags
from repro.core.robust import optimize_robust_splitting
from repro.demands.gravity import gravity_matrix
from repro.demands.uncertainty import margin_box
from repro.ecmp.routing import ecmp_routing
from repro.ecmp.weights import inverse_capacity_weights
from repro.lp.worst_case import WorstCaseOracle
from repro.topologies.zoo import load_topology
from repro.utils.tables import Table


def augmentation_ablation(config: ExperimentConfig, topology: str = "abilene") -> Table:
    network = load_topology(topology)
    base = gravity_matrix(network)
    uncertainty = margin_box(base, 2.0)
    weights = inverse_capacity_weights(network)
    ecmp = ecmp_routing(network, weights)
    table = Table(
        f"Ablation — DAG augmentation ({topology}, margin 2)",
        ["dags", "splittable nodes", "COYOTE ratio"],
    )
    augmented = build_dags(network, weights, augment=True)
    oracle = WorstCaseOracle(network, uncertainty, dags=augmented, config=config.solver)
    for label, dags in (("shortest-path", build_dags(network, weights, augment=False)),
                        ("augmented", augmented)):
        projection = project_ecmp_into_dags(ecmp, dags)
        result = optimize_robust_splitting(
            network,
            dags,
            uncertainty,
            config=config.solver,
            initial_matrices=[base],
            extra_starts=[projection.ratios],
            fallbacks=[projection],
        )
        ratio = oracle.evaluate(result.routing).ratio
        splittable = sum(len(d.splittable_nodes()) for d in dags.values())
        table.add_row(label, splittable, ratio)
    return table


def test_augmentation_helps(benchmark, experiment_config):
    table = run_once(benchmark, augmentation_ablation, experiment_config)
    plain, augmented = table.rows
    assert augmented[1] > plain[1]  # more freedom
    assert augmented[2] <= plain[2] + 1e-6  # never worse
    print()
    print(table)
