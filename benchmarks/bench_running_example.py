"""Benchmark: the running example (Fig. 1 / Appendix B, registry wrapper).

The driver-table benchmark regenerates the three headline numbers —
ECMP 3/2, Fig-1c 4/3, optimal sqrt(5)-1 — and asserts them, so the
benchmark doubles as an end-to-end correctness gate on the optimization
stack.
"""

import math

from conftest import run_registry_benchmark


def test_running_example(benchmark, experiment_config):
    table = run_registry_benchmark(benchmark, "running-example", experiment_config)
    measured = dict(zip(table.columns, table.rows[0]))
    assert abs(measured["ECMP (Fig. 1b)"] - 1.5) < 1e-6
    assert abs(measured["COYOTE (Fig. 1c)"] - 4.0 / 3.0) < 1e-6
    assert abs(measured["COYOTE (optimized)"] - (math.sqrt(5) - 1)) < 0.01
    print()
    print(table)
