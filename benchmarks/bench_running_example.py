"""Benchmark: the running example (Fig. 1 / Appendix B).

Regenerates the three headline numbers — ECMP 3/2, Fig-1c 4/3, optimal
sqrt(5)-1 — and asserts them, so the benchmark doubles as an end-to-end
correctness gate on the optimization stack.
"""

import math

from conftest import run_once

from repro.experiments.running_example import running_example_table


def test_running_example(benchmark, experiment_config):
    table = run_once(benchmark, running_example_table, experiment_config)
    measured = dict(zip(table.column("scheme"), table.column("measured")))
    assert abs(measured["ECMP (Fig. 1b)"] - 1.5) < 1e-6
    assert abs(measured["COYOTE (Fig. 1c)"] - 4.0 / 3.0) < 1e-6
    assert abs(measured["COYOTE (optimized)"] - (math.sqrt(5) - 1)) < 0.01
    print()
    print(table)
