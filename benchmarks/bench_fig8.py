"""Benchmark: Fig. 8 — AS1755, bimodal model, margin sweep (registry wrapper)."""

from conftest import run_registry_benchmark


def test_fig8_as1755_bimodal(benchmark, experiment_config):
    table = run_registry_benchmark(benchmark, "fig8", experiment_config)
    for margin, ecmp, base, obl, pk in table.rows:
        assert pk <= ecmp + 1e-6, f"COYOTE-pk lost to ECMP at margin {margin}"
    print()
    print(table)
