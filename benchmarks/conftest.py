"""Shared benchmark configuration.

Every ``bench_fig*`` / ``bench_table1`` / ``bench_running_example``
script is a thin wrapper over the bench registry
(:mod:`repro.bench.registry`): the pytest test keeps the paper's shape
assertions, while execution and timing flow through the same
:func:`repro.bench.harness.run_benchmark` code path as ``repro bench``
and CI's regression gate.  The heavy workloads run with ``pedantic``
settings (one round, one iteration): the quantity of interest is the
experiment's output and the harness's own phase timings, and a
robust-optimization sweep is far too expensive to repeat.

``REPRO_FULL=1`` switches the grids to paper scale.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_benchmark
from repro.config import ExperimentConfig


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    """The grid benchmarks run with (reduced unless REPRO_FULL=1)."""
    return ExperimentConfig.from_environment()


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark a heavy callable with a single measured round."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def run_registry_benchmark(benchmark, name, config):
    """Run one declared benchmark through the bench harness; return its table.

    The measured callable is :func:`repro.bench.harness.run_benchmark`
    itself, so pytest-benchmark's number and the harness's per-phase
    timings describe the same run.
    """
    result = run_once(benchmark, run_benchmark, name, config)
    print()
    print(result.summary())
    return result.table()
