"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures through the
experiment registry.  The heavy drivers run with ``pedantic`` settings
(one round, one iteration): the quantity of interest is the experiment's
output, not micro-timing stability, and a robust-optimization sweep is
far too expensive to repeat.

``REPRO_FULL=1`` switches the drivers to paper-scale grids.
"""

from __future__ import annotations

import pytest

from repro.config import ExperimentConfig


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    """The grid benchmarks run with (reduced unless REPRO_FULL=1)."""
    return ExperimentConfig.from_environment()


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark a heavy experiment with a single measured round."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
