"""Benchmark: Fig. 12 — prototype packet-drop emulation (registry wrapper).

Asserts the paper's outcome: every shared-DAG ECMP scheme loses 25-50%
of packets in some phase; COYOTE's per-prefix lies drop (almost)
nothing.  The registry entry selects each scheme's worst-phase drop
rate.
"""

from conftest import run_registry_benchmark


def test_fig12_prototype(benchmark, experiment_config):
    table = run_registry_benchmark(benchmark, "fig12", experiment_config)
    worst = dict(zip(table.columns, table.rows[0]))
    assert worst["TE1"] > 0.25
    assert worst["TE2"] > 0.20
    assert worst["COYOTE"] < 0.02
    print()
    print(table)
