"""Benchmark: Fig. 12 — prototype packet-drop emulation.

Asserts the paper's outcome: every shared-DAG ECMP scheme loses 25-50%
of packets in some phase; COYOTE's per-prefix lies drop (almost)
nothing.
"""

from conftest import run_once

from repro.experiments.fig12_prototype import fig12


def test_fig12_prototype(benchmark, experiment_config):
    table = run_once(benchmark, fig12, experiment_config)
    worst = dict(zip(table.column("scheme"), table.column("worst")))
    assert worst["TE1"] > 0.25
    assert worst["TE2"] > 0.20
    assert worst["COYOTE"] < 0.02
    print()
    print(table)
