"""Ablation: the price of destination-based forwarding (Theorem 4).

Compares unconstrained (Applegate-Cohen, source+destination) oblivious
routing against the destination-based lower bound on the Theorem 4 path
instance: destination-based routing is pinned at ratio n, while
unconstrained routing spreads each spike over the whole path.
"""

from conftest import run_once

from repro.demands.uncertainty import oblivious_pairs
from repro.experiments.hardness import direct_link_routing
from repro.lp.oblivious_lp import exact_unconstrained_oblivious
from repro.lp.worst_case import WorstCaseOracle
from repro.topologies.generators import path_sink_network
from repro.utils.tables import Table


def oblivious_gap(length: int = 5) -> Table:
    network = path_sink_network(length)
    pairs = [(f"x{i}", "t") for i in range(1, length + 1)]
    uncertainty = oblivious_pairs(pairs)
    destination_based = WorstCaseOracle(network, uncertainty, dags=None).evaluate(
        direct_link_routing(length)
    )
    unconstrained = exact_unconstrained_oblivious(network, pairs)
    table = Table(
        f"Ablation — destination-based vs unconstrained oblivious (n={length})",
        ["routing class", "oblivious ratio"],
    )
    table.add_row("destination-based (Theorem 4 bound)", destination_based.ratio)
    table.add_row("unconstrained (Applegate-Cohen)", unconstrained.ratio)
    return table


def test_oblivious_gap(benchmark, experiment_config):
    table = run_once(benchmark, oblivious_gap)
    dest, unconstrained = (row[1] for row in table.rows)
    assert dest > unconstrained + 0.5  # the separation is real
    print()
    print(table)
