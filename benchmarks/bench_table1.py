"""Benchmark: Table I — the full margin sweep (registry wrapper).

Set ``REPRO_FULL=1`` for the paper-scale 14-topology, 9-margin table
(hours of runtime, as the paper's own 'few minutes to few days' warns).
"""

from conftest import run_registry_benchmark


def test_table1(benchmark, experiment_config):
    table = run_registry_benchmark(benchmark, "table1", experiment_config)
    assert len(table) >= 6  # topologies x margins
    for _network, margin, ecmp, base, obl, pk in table.rows:
        assert pk <= ecmp + 1e-6, f"COYOTE-pk lost to ECMP at margin {margin}"
        if abs(margin - 1.0) < 1e-9:
            assert abs(base - 1.0) < 1e-6  # Base optimal with no uncertainty
    print()
    print(table)
