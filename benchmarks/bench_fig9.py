"""Benchmark: Fig. 9 — local-search heuristic on Abilene (registry wrapper).

The paper's claim: ECMP is on average substantially further from the
demands-aware optimum than COYOTE when both use the local-search DAGs.
"""

from conftest import run_registry_benchmark


def test_fig9_local_search(benchmark, experiment_config):
    table = run_registry_benchmark(benchmark, "fig9", experiment_config)
    gaps = table.column("ECMP/COYOTE")
    assert all(g >= 1.0 - 1e-6 for g in gaps)  # COYOTE never loses
    assert max(gaps) > 1.0  # and strictly wins somewhere
    print()
    print(table)
