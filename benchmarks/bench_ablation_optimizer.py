"""Ablation: GP condensation vs smoothed-minimax inner solvers.

DESIGN.md implements the in-DAG splitting optimization twice — the
paper-faithful iterative GP and the scalable smoothed-minimax solver.
This ablation runs both on the running example and on NSF's finite
adversarial batch and compares objective quality and work performed.
"""

import math

from conftest import run_once

from repro.core.gp import optimize_splitting_gp
from repro.core.softmax_opt import optimize_splitting_softmax
from repro.demands.matrix import DemandMatrix
from repro.experiments.running_example import example_dag
from repro.lp.worst_case import normalize_to_unit_optimum
from repro.topologies.generators import running_example_network
from repro.utils.tables import Table

GOLDEN = math.sqrt(5.0) - 1.0


def optimizer_ablation(config) -> Table:
    network = running_example_network()
    dags = {"t": example_dag(network)}
    matrices = [
        normalize_to_unit_optimum(network, DemandMatrix({("s1", "t"): 2.0}), dags=dags),
        normalize_to_unit_optimum(network, DemandMatrix({("s2", "t"): 2.0}), dags=dags),
    ]
    table = Table(
        "Ablation — inner splitting optimizers (running example)",
        ["optimizer", "objective", "gap to golden", "evaluations"],
    )
    gp = optimize_splitting_gp(network, dags, matrices, config.solver)
    softmax = optimize_splitting_softmax(network, dags, matrices, config.solver)
    for name, solution in (("gp", gp), ("softmax", softmax)):
        table.add_row(
            name, solution.objective, solution.objective - GOLDEN, solution.evaluations
        )
    return table


def test_optimizer_ablation(benchmark, experiment_config):
    table = run_once(benchmark, optimizer_ablation, experiment_config)
    for _name, objective, gap, _evals in table.rows:
        assert gap < 0.02  # both optimizers reach the golden optimum
    print()
    print(table)
