"""Benchmark: Fig. 6 — Geant, gravity model, margin sweep.

Thin wrapper over the ``fig6`` bench-registry entry; shape assertions
follow the paper: COYOTE-pk never loses to ECMP, and at margin 1 both
Base and COYOTE-pk sit at the within-DAG optimum.
"""

from conftest import run_registry_benchmark


def test_fig6_geant_gravity(benchmark, experiment_config):
    table = run_registry_benchmark(benchmark, "fig6", experiment_config)
    for margin, ecmp, base, obl, pk in table.rows:
        assert pk <= ecmp + 1e-6, f"COYOTE-pk lost to ECMP at margin {margin}"
        assert obl >= 1.0 - 1e-6  # ratios are normalized by the optimum
    first = table.rows[0]
    assert abs(first[2] - 1.0) < 1e-6  # Base optimal with no uncertainty
    assert first[4] < 1.1  # COYOTE-pk near-optimal with no uncertainty
    print()
    print(table)
