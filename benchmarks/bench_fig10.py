"""Benchmark: Fig. 10 — ideal splits with k virtual NHs (registry wrapper).

Shape assertions: the rounded configurations interpolate between ECMP
and the ideal ratios, and more virtual links never hurt (up to solver
noise).
"""

from conftest import run_registry_benchmark


def test_fig10_virtual_next_hops(benchmark, experiment_config):
    table = run_registry_benchmark(benchmark, "fig10", experiment_config)
    for margin, ecmp, ideal, nh3, nh5, nh10 in table.rows:
        assert ideal <= min(nh3, nh5, nh10) + 0.05
        assert nh10 <= nh3 + 0.15  # bigger budget tracks the ideal closer
        assert nh10 <= ecmp + 0.10  # 10 NHs is at least ECMP-grade
    print()
    print(table)
