"""Benchmark: Fig. 7 — Digex, gravity model, margin sweep (registry wrapper)."""

from conftest import run_registry_benchmark


def test_fig7_digex_gravity(benchmark, experiment_config):
    table = run_registry_benchmark(benchmark, "fig7", experiment_config)
    for margin, ecmp, base, obl, pk in table.rows:
        assert pk <= ecmp + 1e-6, f"COYOTE-pk lost to ECMP at margin {margin}"
    # Base degrades under uncertainty: strictly worse at the widest
    # margin than with none (the paper's central observation).
    assert table.rows[-1][2] > table.rows[0][2]
    print()
    print(table)
