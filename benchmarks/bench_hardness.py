"""Benchmark: the negative results (Theorem 1 gadget, Theorem 4 instance)."""

from conftest import run_once

from repro.experiments.hardness import theorem1_table, theorem4_table


def test_theorem1_gadget(benchmark, experiment_config):
    table = run_once(benchmark, theorem1_table, experiment_config)
    ratios = table.column("ratio")
    assert abs(ratios[0] - 4.0 / 3.0) < 1e-6  # balanced partition
    assert ratios[1] > 4.0 / 3.0  # unbalanced partition
    print()
    print(table)


def test_theorem4_separation(benchmark, experiment_config):
    table = run_once(benchmark, theorem4_table, experiment_config)
    for n, optimum, ratio, _bound in table.rows:
        assert abs(optimum - 1.0) < 1e-6
        assert abs(ratio - n) < 1e-6 * n
    print()
    print(table)
