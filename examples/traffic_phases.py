#!/usr/bin/env python3
"""Traffic phases: the prototype experiment (Fig. 12) as a script.

Emulates three 15-second UDP phases over the 1 Mbps triangle and prints
per-second drop rates for the two ECMP-compatible shared-DAG schemes and
for COYOTE's per-prefix lies (whose forwarding state is extracted from a
converged OSPF domain with the fake LSAs installed).

Usage:
    python examples/traffic_phases.py
"""

from repro.experiments.fig12_prototype import (
    PHASES,
    PHASE_SECONDS,
    _phase_flows,
    coyote_forwarding,
    te1_forwarding,
    te2_forwarding,
)
from repro.flowsim.packet import PacketSimulator
from repro.topologies.generators import prototype_network


def per_second_drop_rates(scheme) -> list[float]:
    network = prototype_network()
    simulator = PacketSimulator(network, scheme.tables)
    stats = simulator.run(_phase_flows(), PHASE_SECONDS * len(PHASES))
    seconds = int(PHASE_SECONDS * len(PHASES))
    rates = []
    for second in range(seconds):
        sent = sum(s.sent_per_window.get(second, 0) for s in stats.values())
        dropped = sum(s.dropped_per_window.get(second, 0) for s in stats.values())
        rates.append(dropped / sent if sent else 0.0)
    return rates


def sparkline(rates: list[float]) -> str:
    blocks = " .:-=+*#%@"
    return "".join(blocks[min(int(r * 2 * (len(blocks) - 1)), len(blocks) - 1)] for r in rates)


def main() -> None:
    print("phases: (s1->t1, s2->t2) Mbps =", ", ".join(map(str, PHASES)))
    print(f"each phase {PHASE_SECONDS:.0f}s, links 1 Mbps\n")
    print("per-second drop rate (one character per second; ' '=0%, '@'=50%+):\n")
    for scheme in (te1_forwarding(), te2_forwarding(), coyote_forwarding()):
        rates = per_second_drop_rates(scheme)
        overall = sum(rates) / len(rates)
        print(f"  {scheme.name:>7} |{sparkline(rates)}|  mean {overall:5.1%}")
    print("\nCOYOTE splits per IP prefix (a lie at s1 for t1, at s2 for t2),")
    print("which no single shared DAG can express — hence the empty row.")


if __name__ == "__main__":
    main()
