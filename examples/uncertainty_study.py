#!/usr/bin/env python3
"""Uncertainty study: how the four TE schemes degrade as demands drift.

A compact version of the paper's Figs. 6-8 on the NSF backbone: sweeps
the uncertainty margin and prints the worst-case performance ratio of
ECMP, the Base routing (optimal for the expected demands, then exposed
to uncertainty), and both COYOTE variants.

The paper's punchline shows up clearly: the demands-aware Base routing
is unbeatable when the forecast is exact (margin 1) and falls apart
fastest as the margin grows, while COYOTE degrades gracefully.

Usage:
    python examples/uncertainty_study.py [topology] [demand_model]
    python examples/uncertainty_study.py nsf gravity
    python examples/uncertainty_study.py abilene bimodal
"""

import sys

from repro.config import ExperimentConfig
from repro.experiments.margin_sweep import margin_sweep_experiment
from repro.utils.tables import format_markdown


def main() -> None:
    topology = sys.argv[1] if len(sys.argv) > 1 else "nsf"
    model = sys.argv[2] if len(sys.argv) > 2 else "gravity"
    config = ExperimentConfig.reduced()
    table = margin_sweep_experiment(topology, model, config)
    print(format_markdown(table))

    margins = table.column("margin")
    base = table.column("Base")
    ecmp = table.column("ECMP")
    crossover = next(
        (m for m, b, e in zip(margins, base, ecmp) if b > e), None
    )
    if crossover is not None:
        print(f"Base (demands-aware, no robustness) falls behind even plain "
              f"ECMP at margin {crossover:g} — the paper's core motivation.")
    else:
        print("Base stayed ahead of ECMP on this grid; widen the margins "
              "(REPRO_FULL=1) to see the crossover.")


if __name__ == "__main__":
    main()
