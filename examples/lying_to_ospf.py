#!/usr/bin/env python3
"""Lying to OSPF: realize an unequal split on unmodified routers.

Reproduces the Fig. 1d idea end to end on the triangle topology:

1. declare a target routing where s1 sends 2/3 of its t-bound traffic
   via s2 and 1/3 directly;
2. compile it into fake-node LSAs (one extra virtual next hop);
3. flood the lies into a simulated OSPF domain;
4. read back every router's FIB and verify the realized splits.

No router in the OSPF simulator knows anything about COYOTE — the
unequal split emerges purely from SPF over the falsified database.

Usage:
    python examples/lying_to_ospf.py
"""

from repro.ecmp.weights import unit_weights
from repro.fibbing.controller import FibbingController
from repro.graph.dag import Dag
from repro.routing.splitting import Routing
from repro.topologies.generators import prototype_network


def main() -> None:
    network = prototype_network()
    weights = unit_weights(network)

    dag = Dag("t", [("s1", "t"), ("s1", "s2"), ("s2", "t")], network)
    target = Routing(
        {"t": dag},
        {"t": {("s1", "s2"): 2 / 3, ("s1", "t"): 1 / 3, ("s2", "t"): 1.0}},
        name="fig1d",
    )
    print("target splits at s1 toward t: 2/3 via s2, 1/3 direct")

    controller = FibbingController(network, weights)
    report = controller.install(target, budget=3)

    print(f"\nfake LSAs injected: {report.lies_injected}")
    print(f"FIB next-hop sets match the target DAG: {not report.dag_mismatches}")
    print(f"worst split error vs intended multiplicities: "
          f"{report.max_ratio_error:.2e}")
    print(f"worst split error vs the continuous target: "
          f"{report.target_ratio_error:.4f}")

    realized = report.realized.ratios["t"]
    print("\nrealized FIB splits:")
    for edge, fraction in sorted(realized.items()):
        print(f"  {edge[0]} -> {edge[1]}: {fraction:.4f}")

    assert report.faithful, "OSPF did not realize the intended configuration"
    print("\nOSPF realized the lie faithfully — Fig. 1d reproduced.")


if __name__ == "__main__":
    main()
