#!/usr/bin/env python3
"""Quickstart: optimize robust routing for Abilene and inspect the result.

Runs the full COYOTE pipeline (Fig. 5) on the Abilene backbone with a
gravity base matrix and a 2x uncertainty margin, then compares the
optimized configuration against plain ECMP on (a) the certified
worst-case metric and (b) a few concrete demand matrices.

Usage:
    python examples/quickstart.py
"""

from repro import Coyote, gravity_matrix, load_topology, margin_box
from repro.config import DEFAULT_CONFIG
from repro.lp.worst_case import WorstCaseOracle


def main() -> None:
    network = load_topology("abilene")
    print(f"topology: {network.name} ({network.num_nodes} nodes, "
          f"{network.num_edges // 2} links)")

    base = gravity_matrix(network)
    uncertainty = margin_box(base, margin=2.0)
    print(f"uncertainty: every demand may vary in [d/2, 2d] "
          f"({len(uncertainty.pairs)} pairs)")

    pipeline = Coyote(network, uncertainty, config=DEFAULT_CONFIG.scaled_down())
    result = pipeline.run()

    oracle = WorstCaseOracle(network, uncertainty, dags=result.dags)
    ecmp_ratio = oracle.evaluate(result.ecmp).ratio
    print()
    print(f"worst-case performance ratio (lower is better):")
    print(f"  ECMP   : {ecmp_ratio:.3f}")
    print(f"  COYOTE : {result.oracle.ratio:.3f}")
    print(f"  (ratio of worst-case link utilization to the demands-aware "
          f"optimum within the same DAGs)")

    print()
    print("concrete demand checks (max link utilization):")
    for label, dm in (("base matrix", base),
                      ("base doubled", base.scaled(2.0))):
        mlu_ecmp = result.ecmp.max_link_utilization(dm, network)
        mlu_coyote = result.routing.max_link_utilization(dm, network)
        print(f"  {label:>13}: ECMP {mlu_ecmp:.3f}  COYOTE {mlu_coyote:.3f}")

    hot = result.oracle.edge
    print()
    print(f"COYOTE's certified worst link: {hot}")
    splits = {
        edge: round(value, 3)
        for edge, value in sorted(result.routing.ratios[hot[1]].items())
        if value > 0.01 and edge[0] == hot[0]
    } if hot else {}
    print(f"its splits toward {hot[1]}: {splits}")


if __name__ == "__main__":
    main()
