"""Shared scaffolding for the Section VI experiments.

The evaluation compares four destination-based schemes, every one
normalized by the demands-aware optimum within the same augmented DAGs:

* **ECMP** — traditional TE: equal splits over shortest paths;
* **Base** — the optimal within-DAG routing for the *base* demand
  matrix, then exposed to the whole uncertainty set;
* **COYOTE-oblivious** — splitting optimized with no demand knowledge;
* **COYOTE-partial** — splitting optimized against the margin cone.

:class:`ExperimentSetup` computes everything margin-independent once
(DAGs, ECMP, Base, the oblivious routing); per-margin evaluation then
compiles one oracle and scores all schemes against it.

This module also registers the ``"margin"`` cell kind — the
(topology, demand model, margin) unit behind Figs. 6-8 and Table I —
and exposes :func:`shared_setup`, the per-process LRU-memoized setup
that all setup-sharing kinds (margin, Fig. 10's approximation, Fig.
11's stretch) build their cells on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.config import SolverConfig
from repro.core.dag_builder import build_dags
from repro.core.evaluate import project_ecmp_into_dags
from repro.core.robust import optimize_robust_splitting
from repro.demands.gravity import gravity_matrix
from repro.demands.bimodal import bimodal_matrix
from repro.demands.matrix import DemandMatrix
from repro.demands.uncertainty import margin_box, oblivious_set
from repro.ecmp.routing import ecmp_routing
from repro.ecmp.weights import inverse_capacity_weights
from repro.exceptions import ExperimentError
from repro.graph.dag import Dag
from repro.graph.network import Edge, Network, Node
from repro.lp.dag_flow import optimal_dag_routing
from repro.lp.worst_case import WorstCaseOracle
from repro.routing.splitting import Routing
from repro.runner.memo import LruMemo
from repro.runner.spec import CellKind, SweepCell, register_cell_kind
from repro.runner.timing import phase
from repro.topologies.zoo import load_topology

SCHEME_COLUMNS = ("ECMP", "Base", "COYOTE-obl", "COYOTE-pk")

#: Per-process cap on memoized setups; grids iterate margins within one
#: topology, so a handful of live setups covers realistic schedules.
SETUP_MEMO_LIMIT = 4

_SETUP_MEMO = LruMemo(limit=SETUP_MEMO_LIMIT)


def base_matrix_for(network: Network, demand_model: str, seed: int) -> DemandMatrix:
    """The base demand matrix for a model name ("gravity" or "bimodal")."""
    if demand_model == "gravity":
        return gravity_matrix(network)
    if demand_model == "bimodal":
        return bimodal_matrix(network, seed)
    raise ExperimentError(f"unknown demand model {demand_model!r}")


@dataclass
class ExperimentSetup:
    """Margin-independent artifacts for one (topology, base-matrix) pair."""

    network: Network
    base: DemandMatrix
    weights: dict[Edge, float]
    dags: dict[Node, Dag]
    ecmp: Routing
    ecmp_projection: Routing
    base_routing: Routing
    coyote_oblivious: Routing
    config: SolverConfig
    optimizer: str


def prepare_setup(
    network: Network,
    base: DemandMatrix,
    config: SolverConfig,
    weights: Mapping[Edge, float] | None = None,
    optimizer: str = "softmax",
) -> ExperimentSetup:
    """Build DAGs and the margin-independent schemes.

    Args:
        network: the topology under evaluation.
        base: the base demand matrix (gravity or bimodal).
        config: solver knobs (iteration caps drive runtime).
        weights: link weights; default is the reverse-capacity heuristic.
            The local-search experiments pass Algorithm 1's weights here.
        optimizer: inner splitting optimizer ("softmax" or "gp").
    """
    weight_map = dict(weights) if weights is not None else inverse_capacity_weights(network)
    dags = build_dags(network, weight_map, augment=True)
    ecmp = ecmp_routing(network, weight_map)
    projection = project_ecmp_into_dags(ecmp, dags)
    base_routing = optimal_dag_routing(network, dags, base, name="Base")

    # Seeding the oblivious optimization with the base matrix gives the
    # cutting-plane loop realistic all-pairs pressure from round one; the
    # resulting routing is still oblivious (the seed only enlarges T).
    oblivious = optimize_robust_splitting(
        network,
        dags,
        oblivious_set(network.nodes()),
        config=config,
        optimizer=optimizer,
        initial_matrices=[base],
        extra_starts=[projection.ratios, base_routing.ratios],
        fallbacks=[projection],
        name="COYOTE-obl",
    ).routing

    return ExperimentSetup(
        network=network,
        base=base,
        weights=weight_map,
        dags=dags,
        ecmp=ecmp,
        ecmp_projection=projection,
        base_routing=base_routing,
        coyote_oblivious=oblivious,
        config=config,
        optimizer=optimizer,
    )


def coyote_partial_for_margin(setup: ExperimentSetup, margin: float) -> Routing:
    """COYOTE optimized against the margin cone around the base matrix.

    Recorded as the "solve" phase when a benchmark is timing the cell:
    this robust optimization is the margin-dependent hot path every
    setup-sharing kind pays per cell.
    """
    uncertainty = margin_box(setup.base, margin)
    with phase("solve"):
        return optimize_robust_splitting(
            setup.network,
            setup.dags,
            uncertainty,
            config=setup.config,
            optimizer=setup.optimizer,
            initial_matrices=[setup.base],
            extra_starts=[setup.ecmp_projection.ratios, setup.base_routing.ratios],
            fallbacks=[setup.ecmp_projection],
            name="COYOTE-pk",
        ).routing


def evaluate_margin(setup: ExperimentSetup, margin: float) -> dict[str, float]:
    """All four schemes' worst-case ratios for one uncertainty margin.

    The oracle evaluations below run on the vectorized kernel when
    enabled (batched coefficient assembly in the slave LP; see
    :mod:`repro.kernel`); semantics changes on that path require a
    ``CACHE_VERSION`` bump in :mod:`repro.runner.spec`.
    """
    uncertainty = margin_box(setup.base, margin, label=f"margin={margin:g}")
    oracle = WorstCaseOracle(
        setup.network, uncertainty, dags=setup.dags, config=setup.config
    )
    partial = coyote_partial_for_margin(setup, margin)
    with phase("evaluate"):
        return {
            "ECMP": oracle.evaluate(setup.ecmp).ratio,
            "Base": oracle.evaluate(setup.base_routing).ratio,
            "COYOTE-obl": oracle.evaluate(setup.coyote_oblivious).ratio,
            "COYOTE-pk": oracle.evaluate(partial).ratio,
        }


def shared_setup(cell: SweepCell) -> ExperimentSetup:
    """The margin-independent setup for a cell, LRU-memoized per process.

    Keyed by :meth:`~repro.runner.spec.SweepCell.setup_key`, so cells of
    *different* kinds over the same (topology, demand model, seed,
    solver, optimizer) — e.g. a Table I margin cell and a Fig. 11
    stretch cell — share one :class:`ExperimentSetup`.
    """

    def build() -> ExperimentSetup:
        # Timed as "setup" only when actually built: a memo hit is free,
        # and the benchmark timings should say so.
        with phase("setup"):
            network = load_topology(cell.topology)
            base = base_matrix_for(network, cell.demand_model, cell.seed)
            return prepare_setup(network, base, cell.solver, optimizer=cell.optimizer)

    return _SETUP_MEMO.get_or_create(cell.setup_key(), build)


def solve_margin_cell(cell: SweepCell) -> dict[str, float]:
    """Solve one margin-grid cell: all four schemes at the cell's margin."""
    return evaluate_margin(shared_setup(cell), cell.margin)


MARGIN_KIND = register_cell_kind(
    # One margin cell = one full robust optimization (cutting-plane loop
    # over LP oracles); full-config solves run minutes, never hours.
    CellKind(name="margin", solve=solve_margin_cell, columns=SCHEME_COLUMNS, timeout=3600.0)
)
