"""Kernel micro-benchmarks: SPF and propagation, kernel vs reference.

The ``"kernel-micro"`` cell kind times the two building blocks the
vectorized kernel re-implements — batched all-destination shortest paths
with DAG extraction, and per-destination flow propagation — against their
pure-Python reference implementations on one topology.  Each cell reports
per-call milliseconds for both paths plus the speedup, so ``repro bench
kernel-spf kernel-propagate`` records how much of the routing inner loop
the kernel actually buys on this machine (macro effects show up in the
fig9/fig11 benchmarks' phase timings).

The kernel side times the *array* computation the hot paths consume
(:func:`~repro.kernel.spf.compute_spf_state`, the vectorized
:func:`~repro.kernel.coefficients.link_loads`); the reference side times
what the same callers executed before the kernel existed (per-destination
heapq Dijkstra + DAG extraction, dict-recursion propagation).  Timings are
measured fresh every call — the SPF memo is deliberately bypassed.

Like every timing-valued payload, results are machine-dependent; cells of
this kind are meaningful uncached (the bench CLI's default).
"""

from __future__ import annotations

import time

from repro.demands.gravity import gravity_matrix
from repro.ecmp.routing import ecmp_routing
from repro.ecmp.weights import inverse_capacity_weights
from repro.exceptions import ExperimentError
from repro.graph.paths import dijkstra_to_target, shortest_path_dag
from repro.kernel.coefficients import link_loads as kernel_link_loads
from repro.kernel.spf import compute_spf_state
from repro.runner.spec import CellKind, SweepCell, SweepSpec, freeze_params, register_cell_kind
from repro.runner.timing import phase
from repro.topologies.zoo import load_topology

MICRO_COLUMNS = ("kernel_ms", "reference_ms", "speedup")

#: Default timing iterations per cell (enough to quench timer noise on
#: the reduced topologies without stretching the bench run).
DEFAULT_REPEATS = 25


def _per_call_ms(fn, repeats: int) -> float:
    started = time.perf_counter()
    for _ in range(repeats):
        fn()
    return 1000.0 * (time.perf_counter() - started) / repeats


def solve_kernel_micro_cell(cell: SweepCell) -> dict[str, float]:
    """Time one kernel building block against its reference on one topology."""
    params = cell.params_dict()
    op = params["op"]
    repeats = int(params.get("repeats", DEFAULT_REPEATS))
    with phase("setup"):
        network = load_topology(cell.topology)
        weights = inverse_capacity_weights(network)
        targets = network.nodes()
    if op == "spf":
        def kernel_once():
            compute_spf_state(network, weights)

        def reference_once():
            for t in targets:
                distances = dijkstra_to_target(network, weights, t)
                shortest_path_dag(network, weights, t, distances)

    elif op == "propagate":
        with phase("setup"):
            demand = gravity_matrix(network)
            routing = ecmp_routing(network, weights)

        def kernel_once():
            kernel_link_loads(network, routing.dags, routing.ratios, demand)

        def reference_once():
            routing.link_loads_reference(demand)

    else:
        raise ExperimentError(f"unknown kernel micro op {op!r} (use 'spf' or 'propagate')")

    with phase("solve"):
        kernel_ms = _per_call_ms(kernel_once, repeats)
    with phase("evaluate"):
        reference_ms = _per_call_ms(reference_once, repeats)
    return {
        "kernel_ms": kernel_ms,
        "reference_ms": reference_ms,
        "speedup": reference_ms / kernel_ms if kernel_ms > 0 else float("inf"),
    }


KERNEL_MICRO_KIND = register_cell_kind(
    CellKind(
        name="kernel-micro", solve=solve_kernel_micro_cell, columns=MICRO_COLUMNS, timeout=900.0
    )
)


def kernel_micro_spec(op: str, config=None, topologies: tuple[str, ...] = ("abilene", "geant")) -> SweepSpec:
    """Declare one kernel micro-benchmark grid (one cell per topology)."""
    from repro.config import ExperimentConfig

    config = config or ExperimentConfig.from_environment()
    cells = tuple(
        SweepCell(
            experiment=f"kernel-{op}",
            topology=topology,
            demand_model=config.demand_model,
            margin=config.margins[0],
            seed=config.seed,
            solver=config.solver,
            kind=KERNEL_MICRO_KIND.name,
            params=freeze_params({"op": op, "repeats": DEFAULT_REPEATS}),
        )
        for topology in topologies
    )
    return SweepSpec(
        experiment=f"kernel-{op}",
        title=f"Kernel micro-benchmark: {op} (kernel vs pure-Python reference)",
        cells=cells,
        row_columns=("network",),
        notes=(
            "per-call milliseconds; reference = pure-Python implementation "
            "the kernel replaced",
        ),
    )
