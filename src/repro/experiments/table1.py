"""Table I: the full margin sweep across the evaluation topologies.

The paper's Table I covers 14 topologies (all but the two near-trees)
with margins 1.0..5.0 in 0.5 steps, gravity base demands.  The reduced
default (used by the benchmark suite) runs a three-topology subset over
margins {1, 2, 3}; pass ``--full`` (or set ``REPRO_FULL=1``) for the
paper grid.

The driver declares the (topology x margin) grid as a
:class:`~repro.runner.SweepSpec`; the sweep runner executes it serially
or across a process pool and reassembles the table in the declared
topology-major order.
"""

from __future__ import annotations

from typing import Sequence

from repro.config import ExperimentConfig
from repro.runner.executor import run_sweep
from repro.runner.spec import SweepSpec, grid_cells
from repro.topologies.zoo import TABLE1_TOPOLOGIES
from repro.utils.tables import Table

#: Subset used when the full grid was not requested (small and fast,
#: one hand-coded US backbone, one hand-coded research net, one synthetic).
REDUCED_TOPOLOGIES: tuple[str, ...] = ("abilene", "nsf", "germany")


def table1_spec(
    config: ExperimentConfig | None = None,
    topologies: Sequence[str] | None = None,
) -> SweepSpec:
    """Declare the Table I grid (gravity base model).

    Args:
        config: margins + solver knobs; ``config.full`` selects the
            paper-scale topology set.
        topologies: topology names; defaults to the full Table I set when
            ``config.full``, else :data:`REDUCED_TOPOLOGIES`.
    """
    config = config or ExperimentConfig.from_environment()
    if topologies is None:
        topologies = TABLE1_TOPOLOGIES if config.full else REDUCED_TOPOLOGIES
    cells = grid_cells(
        "table1",
        list(topologies),
        config.demand_model,
        config.margins,
        config.solver,
        config.seed,
    )
    notes = [f"topologies={list(topologies)}, margins={config.margins}"]
    if not config.full:
        notes.append("reduced grid; set REPRO_FULL=1 for the paper-scale table")
    return SweepSpec(
        experiment="table1",
        title="Table I — COYOTE vs ECMP and Base (gravity)",
        cells=cells,
        row_columns=("network", "margin"),
        notes=tuple(notes),
    )


def table1_experiment(
    config: ExperimentConfig | None = None,
    topologies: Sequence[str] | None = None,
) -> Table:
    """Regenerate Table I (gravity base model), serially."""
    return run_sweep(table1_spec(config, topologies)).table()
