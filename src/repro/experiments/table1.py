"""Table I: the full margin sweep across the evaluation topologies.

The paper's Table I covers 14 topologies (all but the two near-trees)
with margins 1.0..5.0 in 0.5 steps, gravity base demands.  The reduced
default (used by the benchmark suite) runs a three-topology subset over
margins {1, 2, 3}; set ``REPRO_FULL=1`` for the paper grid.
"""

from __future__ import annotations

from typing import Sequence

from repro.config import ExperimentConfig, full_scale
from repro.experiments.common import (
    SCHEME_COLUMNS,
    base_matrix_for,
    evaluate_margin,
    prepare_setup,
)
from repro.topologies.zoo import TABLE1_TOPOLOGIES, load_topology, topology_info
from repro.utils.tables import Table

#: Subset used when the full grid was not requested (small and fast,
#: one hand-coded US backbone, one hand-coded research net, one synthetic).
REDUCED_TOPOLOGIES: tuple[str, ...] = ("abilene", "nsf", "germany")


def table1_experiment(
    config: ExperimentConfig | None = None,
    topologies: Sequence[str] | None = None,
) -> Table:
    """Regenerate Table I (gravity base model).

    Args:
        topologies: topology names; defaults to the full Table I set when
            ``REPRO_FULL=1``, else :data:`REDUCED_TOPOLOGIES`.
        config: margins + solver knobs.
    """
    config = config or ExperimentConfig.from_environment()
    if topologies is None:
        topologies = TABLE1_TOPOLOGIES if full_scale() else REDUCED_TOPOLOGIES
    table = Table(
        "Table I — COYOTE vs ECMP and Base (gravity)",
        ["network", "margin", *SCHEME_COLUMNS],
    )
    for name in topologies:
        spec = topology_info(name)
        network = load_topology(name)
        base = base_matrix_for(network, config.demand_model, config.seed)
        setup = prepare_setup(network, base, config.solver)
        for margin in config.margins:
            ratios = evaluate_margin(setup, margin)
            table.add_row(
                spec.paper_label, margin, *(ratios[s] for s in SCHEME_COLUMNS)
            )
    table.add_note(f"topologies={list(topologies)}, margins={config.margins}")
    if not full_scale():
        table.add_note("reduced grid; set REPRO_FULL=1 for the paper-scale table")
    return table
