"""The running example (Fig. 1, Section II, Appendix B).

Three routings on the 4-node unit-capacity network, evaluated obliviously
over the two users' demands:

* the ECMP configuration of Fig. 1b — oblivious performance ratio 3/2;
* the hand-tuned configuration of Fig. 1c — ratio 4/3;
* COYOTE's optimized splitting — ratio ``sqrt(5) - 1 ~= 1.236`` (the
  inverse golden ratio appears as the optimal split, Appendix B).

The driver recomputes each number with the slave-LP oracle and solves
the splitting optimization with both the GP and the smoothed-minimax
optimizers, so this one experiment exercises most of the stack.
"""

from __future__ import annotations

import math

from repro.config import ExperimentConfig
from repro.core.gp import optimize_splitting_gp
from repro.core.softmax_opt import optimize_splitting_softmax
from repro.demands.matrix import DemandMatrix
from repro.demands.uncertainty import oblivious_pairs
from repro.graph.dag import Dag
from repro.lp.worst_case import WorstCaseOracle, normalize_to_unit_optimum
from repro.routing.splitting import Routing
from repro.topologies.generators import running_example_network
from repro.utils.tables import Table

GOLDEN_RATIO_UTILIZATION = math.sqrt(5.0) - 1.0  # ~1.2360679...


def example_dag(network) -> Dag:
    """The forwarding DAG of Fig. 1b-1d: s1 -> {s2, v}, s2 -> {t, v}, v -> t."""
    return Dag(
        "t",
        [("s1", "s2"), ("s1", "v"), ("s2", "t"), ("s2", "v"), ("v", "t")],
        network,
    )


def fig1b_routing(network) -> Routing:
    """Traditional ECMP (Fig. 1b): equal splits at s1 and s2."""
    dag = example_dag(network)
    ratios = {
        ("s1", "s2"): 0.5,
        ("s1", "v"): 0.5,
        ("s2", "t"): 0.5,
        ("s2", "v"): 0.5,
        ("v", "t"): 1.0,
    }
    return Routing({"t": dag}, {"t": ratios}, name="ECMP (Fig. 1b)")


def fig1c_routing(network) -> Routing:
    """The improved static configuration of Fig. 1c (2/3 - 1/3 at s2)."""
    dag = example_dag(network)
    ratios = {
        ("s1", "s2"): 0.5,
        ("s1", "v"): 0.5,
        ("s2", "t"): 2.0 / 3.0,
        ("s2", "v"): 1.0 / 3.0,
        ("v", "t"): 1.0,
    }
    return Routing({"t": dag}, {"t": ratios}, name="COYOTE (Fig. 1c)")


def running_example_table(config: ExperimentConfig | None = None) -> Table:
    """Oblivious ratios for Fig. 1's configurations plus the optimum."""
    config = config or ExperimentConfig.from_environment()
    network = running_example_network()
    dag = example_dag(network)
    dags = {"t": dag}
    users = [("s1", "t"), ("s2", "t")]
    uncertainty = oblivious_pairs(users, label="two-user oblivious")
    oracle = WorstCaseOracle(network, uncertainty, dags=dags, config=config.solver)

    # The extreme demands (Appendix B): all capacity to one user.
    d1 = normalize_to_unit_optimum(network, DemandMatrix({("s1", "t"): 2.0}), dags=dags)
    d2 = normalize_to_unit_optimum(network, DemandMatrix({("s2", "t"): 2.0}), dags=dags)

    gp = optimize_splitting_gp(network, dags, [d1, d2], config.solver)
    softmax = optimize_splitting_softmax(network, dags, [d1, d2], config.solver)
    best = gp if gp.objective <= softmax.objective else softmax
    optimal = best.routing
    optimal.name = "COYOTE (optimized)"

    table = Table(
        "Fig. 1 / Appendix B — running example oblivious ratios",
        ["scheme", "measured", "paper"],
    )
    table.add_row("ECMP (Fig. 1b)", oracle.evaluate(fig1b_routing(network)).ratio, 1.5)
    table.add_row("COYOTE (Fig. 1c)", oracle.evaluate(fig1c_routing(network)).ratio, 4.0 / 3.0)
    table.add_row(
        "COYOTE (optimized)",
        oracle.evaluate(optimal).ratio,
        GOLDEN_RATIO_UTILIZATION,
    )
    phi12 = optimal.ratios["t"].get(("s1", "s2"), 0.0)
    phi2t = optimal.ratios["t"].get(("s2", "t"), 0.0)
    table.add_note(
        f"optimized splits phi(s1,s2)={phi12:.4f}, phi(s2,t)={phi2t:.4f}; "
        f"Appendix B's closed form is (sqrt(5)-1)/2 ~= 0.6180"
    )
    table.add_note(
        f"GP objective {gp.objective:.6f} vs smoothed-minimax {softmax.objective:.6f} "
        f"(both should approach sqrt(5)-1 = {GOLDEN_RATIO_UTILIZATION:.6f})"
    )
    return table
