"""Fig. 12: the prototype experiment (mininet stand-in).

Topology 12a: sources s1, s2 and a target t advertising two prefixes
(t1, t2), every link 1 Mbps.  Three 15-second UDP phases:
``(s1->t1, s2->t2) = (0, 2), (1, 1), (2, 0)`` Mbps.

Schemes:

* **TE1** — both sources use only their direct link (one shared DAG);
* **TE2** — s1 splits between t and s2, s2 goes direct (the other
  legal shared DAG; TE3 is its mirror image and omitted as in the
  paper);
* **COYOTE** — *per-prefix* DAGs realized through actual OSPF lies:
  traffic to t1 is split at s1, traffic to t2 is split at s2.  The
  forwarding state is extracted from a converged
  :class:`repro.ospf.OspfDomain` with the fake LSAs installed, so this
  experiment exercises the whole pipeline down to the FIBs.

The emulator reports per-phase drop rates; the paper's reading is that
every ECMP-compatible single-DAG scheme drops 25-50% of packets in some
phase while COYOTE's per-prefix lies eliminate the loss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ExperimentConfig
from repro.ecmp.weights import unit_weights
from repro.exceptions import ExperimentError
from repro.fibbing.lies import lies_for_destination
from repro.flowsim.packet import (
    CbrFlow,
    PacketSimulator,
    PrefixForwarding,
    forwarding_from_ospf,
)
from repro.ospf.domain import OspfDomain
from repro.topologies.generators import prototype_network
from repro.utils.tables import Table

#: (s1 -> t1, s2 -> t2) offered load per phase, in Mbps.
PHASES: tuple[tuple[float, float], ...] = ((0.0, 2.0), (1.0, 1.0), (2.0, 0.0))
PHASE_SECONDS = 15.0
PPS_PER_MBPS = 100.0  # 1250-byte packets


@dataclass
class SchemeForwarding:
    """Named per-prefix forwarding state for one TE scheme."""

    name: str
    tables: dict[str, PrefixForwarding]


def te1_forwarding() -> SchemeForwarding:
    """Both sources direct (same DAG for both prefixes)."""
    tables = {}
    for prefix in ("t1", "t2"):
        tables[prefix] = PrefixForwarding(
            prefix, "t", {"s1": {"t": 1.0}, "s2": {"t": 1.0}}
        )
    return SchemeForwarding("TE1", tables)


def te2_forwarding() -> SchemeForwarding:
    """s1 splits toward t and s2; s2 direct (same DAG for both prefixes)."""
    tables = {}
    for prefix in ("t1", "t2"):
        tables[prefix] = PrefixForwarding(
            prefix, "t", {"s1": {"t": 0.5, "s2": 0.5}, "s2": {"t": 1.0}}
        )
    return SchemeForwarding("TE2", tables)


def coyote_forwarding() -> SchemeForwarding:
    """Per-prefix DAGs realized through OSPF lies (the full pipeline).

    A lie at s1 splits t1-traffic between its direct link and s2; a lie
    at s2 mirrors this for t2.  The forwarding tables are extracted from
    the converged OSPF domain, not hand-built.
    """
    network = prototype_network()
    weights = unit_weights(network)
    domain = OspfDomain(network, weights)
    domain.advertise_prefix("t", "t1")
    domain.advertise_prefix("t", "t2")
    domain.flood()
    lies = lies_for_destination(
        network, weights, "t1", "t", {"s1": {"t": 1, "s2": 1}, "s2": {"t": 1}}
    )
    lies += lies_for_destination(
        network, weights, "t2", "t", {"s2": {"t": 1, "s1": 1}, "s1": {"t": 1}}
    )
    domain.inject_lies(lies)
    domain.flood()
    tables = {
        "t1": forwarding_from_ospf(domain, "t1"),
        "t2": forwarding_from_ospf(domain, "t2"),
    }
    return SchemeForwarding("COYOTE", tables)


def _phase_flows() -> list[CbrFlow]:
    flows: list[CbrFlow] = []
    for index, (rate1, rate2) in enumerate(PHASES):
        start = index * PHASE_SECONDS
        end = start + PHASE_SECONDS
        if rate1 > 0:
            flows.append(CbrFlow("s1", "t1", rate1 * PPS_PER_MBPS, start, end))
        if rate2 > 0:
            flows.append(CbrFlow("s2", "t2", rate2 * PPS_PER_MBPS, start, end))
    return flows


def run_scheme(scheme: SchemeForwarding) -> list[float]:
    """Per-phase drop rates (fractions) for one scheme."""
    network = prototype_network()
    simulator = PacketSimulator(network, scheme.tables, pps_per_capacity_unit=PPS_PER_MBPS)
    stats = simulator.run(_phase_flows(), PHASE_SECONDS * len(PHASES))
    rates: list[float] = []
    for index in range(len(PHASES)):
        start = int(index * PHASE_SECONDS)
        end = int((index + 1) * PHASE_SECONDS)
        sent = dropped = 0
        for flow_stats in stats.values():
            for second in range(start, end):
                sent += flow_stats.sent_per_window.get(second, 0)
                dropped += flow_stats.dropped_per_window.get(second, 0)
        if sent == 0:
            raise ExperimentError(f"phase {index} generated no traffic")
        rates.append(dropped / sent)
    return rates


def fig12(config: ExperimentConfig | None = None) -> Table:
    """Regenerate Fig. 12b (per-phase packet drop rates)."""
    del config  # the prototype experiment has no tunable grid
    table = Table(
        "Fig. 12 — prototype packet drop rates (drop fraction per phase)",
        ["scheme", "phase1 (0,2)", "phase2 (1,1)", "phase3 (2,0)", "worst"],
    )
    for scheme in (te1_forwarding(), te2_forwarding(), coyote_forwarding()):
        rates = run_scheme(scheme)
        table.add_row(scheme.name, *rates, max(rates))
    table.add_note(
        "phases are 15 s of UDP CBR at (s1->t1, s2->t2) Mbps over 1 Mbps links; "
        "paper: every shared-DAG scheme drops 25-50% in some phase, COYOTE ~0%"
    )
    return table
