"""Experiment drivers: one per table/figure of the paper's evaluation.

Every driver returns a :class:`repro.utils.tables.Table` whose rows are
the series the paper plots.  The registry maps experiment ids
("fig6", "table1", ...) to drivers; the CLI and the benchmark harness
both go through it.
"""

from repro.experiments.registry import EXPERIMENTS, run_experiment, experiment_ids

__all__ = ["EXPERIMENTS", "run_experiment", "experiment_ids"]
