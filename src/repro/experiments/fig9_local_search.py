"""Fig. 9: the local-search DAG heuristic on Abilene (bimodal demands).

For each uncertainty margin the driver runs Algorithm 1 to find link
weights whose ECMP is robust to the margin's worst-case demands, then
compares plain ECMP on those weights against COYOTE's optimized
splitting within the same augmented DAGs.  The paper's headline: ECMP is
on average almost 80% further from the demands-aware optimum than
COYOTE.

Every margin's search + comparison is fully independent of the others,
so the experiment decomposes into one sweep cell per margin (the
``"fig9-local-search"`` kind) and rides the parallel runner; the
mean-gap summary is reassembled from the completed report by the spec's
footer, excluding margins whose gap is undefined (COYOTE ratio 0).
"""

from __future__ import annotations

import math

from repro.config import ExperimentConfig
from repro.core.dag_builder import build_dags
from repro.core.evaluate import project_ecmp_into_dags
from repro.core.local_search import local_search_weights
from repro.core.robust import optimize_robust_splitting
from repro.demands.uncertainty import margin_box
from repro.ecmp.routing import ecmp_routing
from repro.experiments.common import base_matrix_for
from repro.lp.worst_case import WorstCaseOracle
from repro.runner.executor import run_sweep
from repro.runner.spec import CellKind, SweepCell, SweepSpec, grid_cells, register_cell_kind
from repro.runner.timing import phase
from repro.topologies.zoo import load_topology
from repro.utils.tables import Table

FIG9_COLUMNS = ("ECMP", "COYOTE", "ECMP/COYOTE")


def solve_fig9_cell(cell: SweepCell) -> dict[str, float]:
    """One margin's local search + ECMP-vs-COYOTE comparison.

    Algorithm 1 runs on a scaled-down config (coarse search); the final
    oracle evaluation and COYOTE optimization use the cell's full solver
    config, mirroring the historical serial driver exactly.
    """
    with phase("setup"):
        network = load_topology(cell.topology)
        base = base_matrix_for(network, cell.demand_model, cell.seed)
        uncertainty = margin_box(base, cell.margin)
    with phase("solve"):
        search = local_search_weights(network, uncertainty, config=cell.solver.scaled_down())
        weights = {e: float(w) for e, w in search.weights.items()}
        dags = build_dags(network, weights, augment=True)
        ecmp = ecmp_routing(network, weights)
        projection = project_ecmp_into_dags(ecmp, dags)
        oracle = WorstCaseOracle(network, uncertainty, dags=dags, config=cell.solver)
        coyote = optimize_robust_splitting(
            network,
            dags,
            uncertainty,
            config=cell.solver,
            initial_matrices=[base, *search.matrices],
            extra_starts=[projection.ratios],
            fallbacks=[projection],
            name="COYOTE",
        ).routing
    with phase("evaluate"):
        ecmp_ratio = oracle.evaluate(ecmp).ratio
        coyote_ratio = oracle.evaluate(coyote).ratio
    gap = ecmp_ratio / coyote_ratio if coyote_ratio > 0 else float("nan")
    return {"ECMP": ecmp_ratio, "COYOTE": coyote_ratio, "ECMP/COYOTE": gap}


FIG9_KIND = register_cell_kind(
    CellKind(
        name="fig9-local-search", solve=solve_fig9_cell, columns=FIG9_COLUMNS, timeout=3600.0
    )
)


def _mean_gap_footer(report) -> tuple[str, ...]:
    """Summarize the mean ECMP/COYOTE gap, excluding undefined entries.

    A margin whose COYOTE ratio is 0 yields a NaN gap; including it
    would poison the mean into "nan% further from the optimum", so such
    margins are dropped and counted instead.
    """
    gaps = [result.ratios.get("ECMP/COYOTE", float("nan")) for result in report.results]
    finite = [gap for gap in gaps if math.isfinite(gap)]
    if not finite:
        if not gaps:
            return ()
        return (f"all {len(gaps)} ECMP/COYOTE gaps were undefined (COYOTE ratio 0)",)
    mean_excess = 100.0 * (sum(finite) / len(finite) - 1.0)
    note = (
        f"ECMP is on average {mean_excess:.0f}% further from the optimum than "
        f"COYOTE (paper reports ~80% on the full grid)"
    )
    skipped = len(gaps) - len(finite)
    if skipped:
        note += f"; {skipped} margin(s) with an undefined gap excluded from the mean"
    return (note,)


def fig9_spec(
    config: ExperimentConfig | None = None,
    topology: str = "abilene",
    demand_model: str = "bimodal",
) -> SweepSpec:
    """Declare the Fig. 9 grid: one local-search cell per margin."""
    config = config or ExperimentConfig.from_environment()
    cells = grid_cells(
        "fig9",
        [topology],
        demand_model,
        config.margins,
        config.solver,
        config.seed,
        kind=FIG9_KIND.name,
    )
    return SweepSpec(
        experiment="fig9",
        title=f"Fig. 9 — {topology}, local-search heuristic, {demand_model}",
        cells=cells,
        footer=_mean_gap_footer,
    )


def fig9(
    config: ExperimentConfig | None = None,
    topology: str = "abilene",
    demand_model: str = "bimodal",
) -> Table:
    """Regenerate Fig. 9 (local-search heuristic, ECMP vs COYOTE)."""
    return run_sweep(fig9_spec(config, topology, demand_model)).table()
