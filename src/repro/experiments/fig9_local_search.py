"""Fig. 9: the local-search DAG heuristic on Abilene (bimodal demands).

For each uncertainty margin the driver runs Algorithm 1 to find link
weights whose ECMP is robust to the margin's worst-case demands, then
compares plain ECMP on those weights against COYOTE's optimized
splitting within the same augmented DAGs.  The paper's headline: ECMP is
on average almost 80% further from the demands-aware optimum than
COYOTE.
"""

from __future__ import annotations

from repro.config import ExperimentConfig
from repro.core.dag_builder import build_dags
from repro.core.evaluate import project_ecmp_into_dags
from repro.core.local_search import local_search_weights
from repro.core.robust import optimize_robust_splitting
from repro.demands.uncertainty import margin_box
from repro.ecmp.routing import ecmp_routing
from repro.experiments.common import base_matrix_for
from repro.lp.worst_case import WorstCaseOracle
from repro.topologies.zoo import load_topology
from repro.utils.tables import Table


def fig9(
    config: ExperimentConfig | None = None,
    topology: str = "abilene",
    demand_model: str = "bimodal",
) -> Table:
    """Regenerate Fig. 9 (local-search heuristic, ECMP vs COYOTE)."""
    config = config or ExperimentConfig.from_environment()
    network = load_topology(topology)
    base = base_matrix_for(network, demand_model, config.seed)
    table = Table(
        f"Fig. 9 — {topology}, local-search heuristic, {demand_model}",
        ["margin", "ECMP", "COYOTE", "ECMP/COYOTE"],
    )
    gaps = []
    for margin in config.margins:
        uncertainty = margin_box(base, margin)
        search = local_search_weights(
            network, uncertainty, config=config.solver.scaled_down()
        )
        weights = {e: float(w) for e, w in search.weights.items()}
        dags = build_dags(network, weights, augment=True)
        ecmp = ecmp_routing(network, weights)
        projection = project_ecmp_into_dags(ecmp, dags)
        oracle = WorstCaseOracle(network, uncertainty, dags=dags, config=config.solver)
        coyote = optimize_robust_splitting(
            network,
            dags,
            uncertainty,
            config=config.solver,
            initial_matrices=[base, *search.matrices],
            extra_starts=[projection.ratios],
            fallbacks=[projection],
            name="COYOTE",
        ).routing
        ecmp_ratio = oracle.evaluate(ecmp).ratio
        coyote_ratio = oracle.evaluate(coyote).ratio
        gap = ecmp_ratio / coyote_ratio if coyote_ratio > 0 else float("nan")
        gaps.append(gap)
        table.add_row(margin, ecmp_ratio, coyote_ratio, gap)
    if gaps:
        mean_excess = 100.0 * (sum(gaps) / len(gaps) - 1.0)
        table.add_note(
            f"ECMP is on average {mean_excess:.0f}% further from the optimum than "
            f"COYOTE (paper reports ~80% on the full grid)"
        )
    return table
