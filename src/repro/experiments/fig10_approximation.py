"""Fig. 10: approximating ideal splitting with few virtual next hops.

COYOTE's ideal splitting ratios assume arbitrarily fine traffic
division; real ECMP realizes only ``m / total`` fractions, where
multiplicities come from injected virtual links.  The paper's findings
on AS1755 (all other topologies behave alike): 3 virtual links per
interface already beat ECMP by ~50%, and 10 links approximate the ideal
configuration closely.
"""

from __future__ import annotations

from typing import Sequence

from repro.config import ExperimentConfig
from repro.demands.uncertainty import margin_box
from repro.experiments.common import (
    base_matrix_for,
    coyote_partial_for_margin,
    prepare_setup,
)
from repro.fibbing.apportionment import approximate_routing
from repro.lp.worst_case import WorstCaseOracle
from repro.topologies.zoo import load_topology
from repro.utils.tables import Table

BUDGETS: tuple[int, ...] = (3, 5, 10)


def fig10(
    config: ExperimentConfig | None = None,
    topology: str = "as1755",
    budgets: Sequence[int] = BUDGETS,
) -> Table:
    """Regenerate Fig. 10 (splitting-approximation quality vs lie budget)."""
    config = config or ExperimentConfig.from_environment()
    network = load_topology(topology)
    base = base_matrix_for(network, "gravity", config.seed)
    setup = prepare_setup(network, base, config.solver)
    columns = ["margin", "ECMP", "ideal"] + [f"{b} NHs" for b in budgets]
    table = Table(f"Fig. 10 — {topology}, splitting approximation", columns)
    for margin in config.margins:
        uncertainty = margin_box(base, margin)
        oracle = WorstCaseOracle(network, uncertainty, dags=setup.dags, config=config.solver)
        ideal = coyote_partial_for_margin(setup, margin)
        row = [margin, oracle.evaluate(setup.ecmp).ratio, oracle.evaluate(ideal).ratio]
        for budget in budgets:
            approx, _stats = approximate_routing(ideal, budget)
            row.append(oracle.evaluate(approx).ratio)
        table.add_row(*row)
    table.add_note(
        "each 'k NHs' column evaluates the ideal COYOTE ratios rounded to at "
        "most k virtual next hops per interface (largest-remainder apportionment)"
    )
    return table
