"""Fig. 10: approximating ideal splitting with few virtual next hops.

COYOTE's ideal splitting ratios assume arbitrarily fine traffic
division; real ECMP realizes only ``m / total`` fractions, where
multiplicities come from injected virtual links.  The paper's findings
on AS1755 (all other topologies behave alike): 3 virtual links per
interface already beat ECMP by ~50%, and 10 links approximate the ideal
configuration closely.

The experiment decomposes into (margin x budget) sweep cells of the
``"fig10-nh-approx"`` kind.  A cell with ``budget=None`` produces the
margin's "ECMP" and "ideal" columns; a cell with ``budget=k`` produces
its "k NHs" column.  All cells of one topology share the
margin-independent :func:`~repro.experiments.common.shared_setup`, and
cells of one margin additionally share the memoized worst-case oracle
and ideal (COYOTE-pk) routing, so a chunked worker pays the expensive
robust optimization once per margin.  The runner merges the cells of
each margin into a single table row.
"""

from __future__ import annotations

from typing import Sequence

from repro.config import ExperimentConfig
from repro.demands.uncertainty import margin_box
from repro.experiments.common import coyote_partial_for_margin, shared_setup
from repro.fibbing.apportionment import approximate_routing
from repro.lp.worst_case import WorstCaseOracle
from repro.runner.executor import run_sweep
from repro.runner.memo import LruMemo
from repro.runner.spec import (
    CellKind,
    SweepCell,
    SweepSpec,
    freeze_params,
    register_cell_kind,
)
from repro.runner.timing import phase
from repro.utils.tables import Table

BUDGETS: tuple[int, ...] = (3, 5, 10)

#: Margin-level shared state: (oracle, ideal routing) per (setup, margin).
_MARGIN_MEMO = LruMemo(limit=4)


def _fig10_columns(params: dict) -> tuple[str, ...]:
    budget = params.get("budget")
    if budget is None:
        return ("ECMP", "ideal")
    return (f"{budget} NHs",)


def _oracle_and_ideal(cell: SweepCell):
    """The margin's worst-case oracle and ideal COYOTE-pk routing, memoized."""

    def build():
        setup = shared_setup(cell)
        uncertainty = margin_box(setup.base, cell.margin)
        oracle = WorstCaseOracle(
            setup.network, uncertainty, dags=setup.dags, config=cell.solver
        )
        ideal = coyote_partial_for_margin(setup, cell.margin)
        return oracle, ideal

    return _MARGIN_MEMO.get_or_create((cell.setup_key(), cell.margin), build)


def solve_fig10_cell(cell: SweepCell) -> dict[str, float]:
    """Solve one approximation cell (base columns or one budget column).

    The "setup" and "solve" phases are recorded inside
    :func:`~repro.experiments.common.shared_setup` and
    :func:`~repro.experiments.common.coyote_partial_for_margin` (both
    memoized, so only the first cell of a margin pays them); the oracle
    evaluations here are the per-cell "evaluate" phase.
    """
    oracle, ideal = _oracle_and_ideal(cell)
    budget = cell.params_dict().get("budget")
    if budget is None:
        setup = shared_setup(cell)
        with phase("evaluate"):
            return {
                "ECMP": oracle.evaluate(setup.ecmp).ratio,
                "ideal": oracle.evaluate(ideal).ratio,
            }
    approx, _stats = approximate_routing(ideal, budget)
    with phase("evaluate"):
        return {f"{budget} NHs": oracle.evaluate(approx).ratio}


FIG10_KIND = register_cell_kind(
    CellKind(
        name="fig10-nh-approx", solve=solve_fig10_cell, columns=_fig10_columns, timeout=3600.0
    )
)


def fig10_spec(
    config: ExperimentConfig | None = None,
    topology: str = "as1755",
    budgets: Sequence[int] = BUDGETS,
) -> SweepSpec:
    """Declare the Fig. 10 grid: per margin, one base cell + one per budget."""
    config = config or ExperimentConfig.from_environment()
    budgets = tuple(budgets)
    cells = tuple(
        SweepCell(
            experiment="fig10",
            topology=topology,
            demand_model="gravity",
            margin=margin,
            seed=config.seed,
            solver=config.solver,
            kind=FIG10_KIND.name,
            params=freeze_params({"budget": budget}),
        )
        for margin in config.margins
        for budget in (None, *budgets)
    )
    return SweepSpec(
        experiment="fig10",
        title=f"Fig. 10 — {topology}, splitting approximation",
        cells=cells,
        notes=(
            "each 'k NHs' column evaluates the ideal COYOTE ratios rounded to at "
            "most k virtual next hops per interface (largest-remainder apportionment)",
        ),
    )


def fig10(
    config: ExperimentConfig | None = None,
    topology: str = "as1755",
    budgets: Sequence[int] = BUDGETS,
) -> Table:
    """Regenerate Fig. 10 (splitting-approximation quality vs lie budget)."""
    return run_sweep(fig10_spec(config, topology, budgets)).table()
