"""Fig. 11: average path stretch of COYOTE relative to ECMP.

COYOTE's augmented DAGs add non-shortest-path links, so traffic can
travel longer routes; the paper shows the expected path length grows by
at most ~10% (average over all pairs, margin 2.5).  Stretch below 1 is
possible (BBNPlanet) because DAGs follow weighted shortest paths while
stretch counts hops.
"""

from __future__ import annotations

from typing import Sequence

from repro.config import ExperimentConfig
from repro.experiments.common import (
    base_matrix_for,
    coyote_partial_for_margin,
    prepare_setup,
)
from repro.topologies.zoo import STRETCH_TOPOLOGIES, load_topology, topology_info
from repro.utils.tables import Table

#: Reduced subset mirrors the figure's mix: hand-coded + synthetic + near-tree.
REDUCED_TOPOLOGIES: tuple[str, ...] = ("abilene", "nsf", "germany", "grnet", "bbnplanet")


def fig11(
    config: ExperimentConfig | None = None,
    topologies: Sequence[str] | None = None,
    margin: float = 2.5,
) -> Table:
    """Regenerate Fig. 11 (average stretch at margin 2.5)."""
    config = config or ExperimentConfig.from_environment()
    if topologies is None:
        topologies = STRETCH_TOPOLOGIES if config.full else REDUCED_TOPOLOGIES
    table = Table(
        f"Fig. 11 — average path stretch vs ECMP (margin {margin:g})",
        ["network", "COYOTE-obl", "COYOTE-pk"],
    )
    for name in topologies:
        spec = topology_info(name)
        network = load_topology(name)
        base = base_matrix_for(network, "gravity", config.seed)
        setup = prepare_setup(network, base, config.solver)
        partial = coyote_partial_for_margin(setup, margin)
        stretch_obl = setup.coyote_oblivious.average_stretch_against(setup.ecmp)
        stretch_pk = partial.average_stretch_against(setup.ecmp)
        table.add_row(spec.paper_label, stretch_obl, stretch_pk)
    table.add_note(
        "stretch = expected hop count under COYOTE divided by ECMP's, averaged "
        "over all source-destination pairs; the paper's values stay within ~1.1"
    )
    return table
