"""Fig. 11: average path stretch of COYOTE relative to ECMP.

COYOTE's augmented DAGs add non-shortest-path links, so traffic can
travel longer routes; the paper shows the expected path length grows by
at most ~10% (average over all pairs, margin 2.5).  Stretch below 1 is
possible (BBNPlanet) because DAGs follow weighted shortest paths while
stretch counts hops.

Each topology's stretch evaluation is independent of every other's, so
the experiment decomposes into one sweep cell per topology (the
``"fig11-stretch"`` kind) — the biggest wall-clock win of the parallel
runner on ``--full``, where 15 topologies' robust optimizations fan out
across workers.  Within one sweep the cells share setups with the
margin-grid kinds through the per-process memo (equal setup keys build
identical :class:`~repro.experiments.common.ExperimentSetup`\\ s).
"""

from __future__ import annotations

from typing import Sequence

from repro.config import ExperimentConfig
from repro.experiments.common import coyote_partial_for_margin, shared_setup
from repro.runner.executor import run_sweep
from repro.runner.spec import CellKind, SweepCell, SweepSpec, register_cell_kind
from repro.runner.timing import phase
from repro.topologies.zoo import STRETCH_TOPOLOGIES
from repro.utils.tables import Table

#: Reduced subset mirrors the figure's mix: hand-coded + synthetic + near-tree.
REDUCED_TOPOLOGIES: tuple[str, ...] = ("abilene", "nsf", "germany", "grnet", "bbnplanet")

FIG11_COLUMNS = ("COYOTE-obl", "COYOTE-pk")


def solve_fig11_cell(cell: SweepCell) -> dict[str, float]:
    """One topology's average stretch for both COYOTE variants."""
    setup = shared_setup(cell)
    partial = coyote_partial_for_margin(setup, cell.margin)
    with phase("evaluate"):
        return {
            "COYOTE-obl": setup.coyote_oblivious.average_stretch_against(setup.ecmp),
            "COYOTE-pk": partial.average_stretch_against(setup.ecmp),
        }


FIG11_KIND = register_cell_kind(
    # The stretch cells run the softmax L-BFGS inner optimizer, the
    # slowest solve in the tree (see ROADMAP); give them extra headroom.
    CellKind(
        name="fig11-stretch", solve=solve_fig11_cell, columns=FIG11_COLUMNS, timeout=7200.0
    )
)


def fig11_spec(
    config: ExperimentConfig | None = None,
    topologies: Sequence[str] | None = None,
    margin: float = 2.5,
) -> SweepSpec:
    """Declare the Fig. 11 grid: one stretch cell per topology."""
    config = config or ExperimentConfig.from_environment()
    if topologies is None:
        topologies = STRETCH_TOPOLOGIES if config.full else REDUCED_TOPOLOGIES
    cells = tuple(
        SweepCell(
            experiment="fig11",
            topology=name,
            demand_model="gravity",
            margin=margin,
            seed=config.seed,
            solver=config.solver,
            kind=FIG11_KIND.name,
        )
        for name in topologies
    )
    return SweepSpec(
        experiment="fig11",
        title=f"Fig. 11 — average path stretch vs ECMP (margin {margin:g})",
        cells=cells,
        row_columns=("network",),
        notes=(
            "stretch = expected hop count under COYOTE divided by ECMP's, averaged "
            "over all source-destination pairs; the paper's values stay within ~1.1",
        ),
    )


def fig11(
    config: ExperimentConfig | None = None,
    topologies: Sequence[str] | None = None,
    margin: float = 2.5,
) -> Table:
    """Regenerate Fig. 11 (average stretch at margin 2.5)."""
    return run_sweep(fig11_spec(config, topologies, margin)).table()
