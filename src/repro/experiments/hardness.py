"""The negative results: Theorem 1 (Figs. 2-3) and Theorem 4 (Fig. 4).

Theorem 1 reduces BIPARTITION to OBLIVIOUS IP ROUTING: a positive
instance admits a routing with oblivious ratio exactly 4/3 (Lemma 2),
a negative one does not (Lemma 3).  The driver constructs the reduction
network, builds Lemma 2's explicit routing for a given partition, and
oracle-verifies its ratio; a deliberately unbalanced partition shows the
degradation.

Theorem 4 exhibits an instance where *any* oblivious per-destination
routing is Omega(|V|) from the demands-aware optimum: an n-path with
unit links to a sink.  The driver verifies both sides: the demands-aware
optimum routes each spike at congestion 1, while the oblivious oracle
pins every candidate routing at ratio >= n (some node must send all its
traffic on its direct link, or a forwarding loop would exist).
"""

from __future__ import annotations

from typing import Sequence

from repro.config import ExperimentConfig
from repro.demands.matrix import DemandMatrix
from repro.demands.uncertainty import oblivious_pairs
from repro.exceptions import ExperimentError
from repro.graph.dag import Dag
from repro.lp.mcf import min_congestion
from repro.lp.worst_case import WorstCaseOracle
from repro.routing.splitting import Routing
from repro.topologies.generators import integer_gadget_network, path_sink_network
from repro.utils.tables import Table


def lemma2_routing(weights: Sequence[int], partition: set[int]) -> Routing:
    """The explicit oblivious routing of Lemma 2 for a given partition.

    Args:
        weights: the BIPARTITION instance (w_i > 0).
        partition: indices assigned to P1 (the rest form P2).

    The construction (quoting the proof): at s1, the split toward gadget
    ``i`` is ``4 w_i / 3 SUM`` if ``i in P1`` else ``2 w_i / 3 SUM``; at
    ``x1_i`` the split toward ``x2_i`` is ``1/2`` if ``i in P1`` else 0
    (mirrored for s2 / P2); all remaining flow goes through ``m_i``.
    """
    network = integer_gadget_network(weights)
    total = float(sum(weights))
    edges: list[tuple] = []
    ratios: dict[tuple, float] = {}
    for i, w in enumerate(weights):
        x1, x2, mid = f"x1_{i}", f"x2_{i}", f"m_{i}"
        in_p1 = i in partition
        edges.extend([("s1", x1), ("s2", x2), (mid, "t"), (x1, mid), (x2, mid)])
        ratios[("s1", x1)] = (4.0 if in_p1 else 2.0) * w / (3.0 * total)
        ratios[("s2", x2)] = (2.0 if in_p1 else 4.0) * w / (3.0 * total)
        ratios[(mid, "t")] = 1.0
        if in_p1:
            edges.append((x1, x2))
            ratios[(x1, x2)] = 0.5
            ratios[(x1, mid)] = 0.5
            ratios[(x2, mid)] = 1.0
        else:
            edges.append((x2, x1))
            ratios[(x2, x1)] = 0.5
            ratios[(x2, mid)] = 0.5
            ratios[(x1, mid)] = 1.0
    # Lemma 2's source splits sum to exactly 1 only for balanced
    # partitions; renormalize so unbalanced demos stay valid routings
    # (relative proportions, which drive the bound, are unchanged).
    for source in ("s1", "s2"):
        row = [e for e in ratios if e[0] == source]
        row_sum = sum(ratios[e] for e in row)
        for e in row:
            ratios[e] /= row_sum
    dag = Dag("t", edges, network)
    return Routing({"t": dag}, {"t": ratios}, name=f"Lemma2(P1={sorted(partition)})")


def theorem1_table(
    config: ExperimentConfig | None = None,
    weights: Sequence[int] = (3, 1, 2),
) -> Table:
    """Verify Lemma 2/3 numerically on a BIPARTITION instance.

    The default instance (3, 1, 2) is positive: P1={0} vs P2={1, 2} both
    sum to 3, so the balanced routing achieves ratio 4/3 while a fully
    unbalanced partition does not.
    """
    config = config or ExperimentConfig.from_environment()
    total = sum(weights)
    if total % 2 != 0:
        raise ExperimentError(
            f"weights {weights} have odd sum {total}: not a positive instance"
        )
    network = integer_gadget_network(weights)
    uncertainty = oblivious_pairs([("s1", "t"), ("s2", "t")])
    oracle = WorstCaseOracle(network, uncertainty, dags=None, config=config.solver)

    half = total // 2
    balanced: set[int] | None = None
    for mask in range(1 << len(weights)):
        chosen = {i for i in range(len(weights)) if mask & (1 << i)}
        if sum(weights[i] for i in chosen) == half:
            balanced = chosen
            break
    if balanced is None:
        raise ExperimentError(f"no balanced bipartition exists for {weights}")
    unbalanced: set[int] = set(range(len(weights)))  # everything in P1

    table = Table(
        "Theorem 1 — BIPARTITION gadget oblivious ratios",
        ["partition", "ratio", "paper bound"],
    )
    for label, part in (("balanced", balanced), ("unbalanced", unbalanced)):
        routing = lemma2_routing(weights, part)
        ratio = oracle.evaluate(routing).ratio
        bound = 4.0 / 3.0 if label == "balanced" else float("nan")
        table.add_row(f"{label} P1={sorted(part)}", ratio, bound)
    table.add_note(f"instance weights={list(weights)}, SUM={total}")
    table.add_note(
        "Lemma 2: a balanced partition yields oblivious ratio exactly 4/3; "
        "Lemma 3: without one, no routing achieves it."
    )
    return table


def direct_link_routing(length: int) -> Routing:
    """The canonical oblivious routing on Theorem 4's instance.

    Every path node forwards straight to the sink.  Any per-destination
    DAG must contain at least one node doing this (acyclicity), which is
    the crux of the lower bound; the all-direct configuration makes the
    Omega(n) blow-up visible on every node simultaneously.
    """
    network = path_sink_network(length)
    edges = [(f"x{i}", "t") for i in range(1, length + 1)]
    dag = Dag("t", edges, network)
    ratios = {edge: 1.0 for edge in edges}
    return Routing({"t": dag}, {"t": ratios}, name="direct-links")


def theorem4_table(
    config: ExperimentConfig | None = None,
    lengths: Sequence[int] = (4, 6, 8),
) -> Table:
    """The Omega(|V|) separation of Theorem 4, per instance size.

    For each length ``n``: the spike demand ``x_i -> t`` of volume ``n``
    has demands-aware optimum 1 (spread over the path), yet the
    oblivious routing's ratio is ``n``.
    """
    config = config or ExperimentConfig.from_environment()
    table = Table(
        "Theorem 4 — oblivious vs demands-aware separation",
        ["n", "OPT(spike)", "oblivious ratio", "paper bound"],
    )
    for n in lengths:
        network = path_sink_network(n)
        routing = direct_link_routing(n)
        spike = DemandMatrix({("x1", "t"): float(n)})
        optimum = min_congestion(network, spike).alpha
        pairs = [(f"x{i}", "t") for i in range(1, n + 1)]
        oracle = WorstCaseOracle(
            network, oblivious_pairs(pairs), dags=None, config=config.solver
        )
        ratio = oracle.evaluate(routing).ratio
        table.add_row(n, optimum, ratio, float(n))
    table.add_note(
        "OPT(spike) is the demands-aware optimum of routing n units from x1; "
        "the oblivious ratio of any PD routing is at least n (Theorem 4)."
    )
    return table
