"""Margin-sweep experiments: Figs. 6, 7, 8 and the Table I blocks.

Each figure plots, for one topology and base-demand model, the
worst-case performance ratio of the four schemes as the uncertainty
margin grows.  The paper's reading (Section VI-B): both COYOTE variants
beat ECMP throughout, and the Base routing — optimal with *no*
uncertainty — degrades quickly as the margin widens, often falling
behind even ECMP.
"""

from __future__ import annotations

from repro.config import ExperimentConfig
from repro.experiments.common import (
    SCHEME_COLUMNS,
    base_matrix_for,
    evaluate_margin,
    prepare_setup,
)
from repro.topologies.zoo import load_topology
from repro.utils.tables import Table


def margin_sweep_experiment(
    topology: str,
    demand_model: str,
    config: ExperimentConfig | None = None,
    title: str | None = None,
) -> Table:
    """Worst-case ratio of every scheme across the margin grid.

    Args:
        topology: a registered topology name (e.g. "geant").
        demand_model: "gravity" or "bimodal".
        config: margins + solver knobs; defaults to the environment
            config (reduced unless ``REPRO_FULL=1``).
        title: table title override.
    """
    config = config or ExperimentConfig.from_environment()
    network = load_topology(topology)
    base = base_matrix_for(network, demand_model, config.seed)
    setup = prepare_setup(network, base, config.solver)
    table = Table(
        title or f"{topology} / {demand_model} margin sweep",
        ["margin", *SCHEME_COLUMNS],
    )
    for margin in config.margins:
        ratios = evaluate_margin(setup, margin)
        table.add_row(margin, *(ratios[s] for s in SCHEME_COLUMNS))
    table.add_note(
        f"topology={topology} ({network.num_nodes} nodes / {network.num_edges} "
        f"directed edges), demand model={demand_model}, margins={config.margins}"
    )
    table.add_note(
        "ratios are worst-case link utilization normalized by the demands-aware "
        "optimum within the same augmented DAGs (Section VI)"
    )
    return table


def fig6(config: ExperimentConfig | None = None) -> Table:
    """Fig. 6: Geant, gravity model."""
    return margin_sweep_experiment("geant", "gravity", config, "Fig. 6 — Geant, gravity")


def fig7(config: ExperimentConfig | None = None) -> Table:
    """Fig. 7: Digex, gravity model."""
    return margin_sweep_experiment("digex", "gravity", config, "Fig. 7 — Digex, gravity")


def fig8(config: ExperimentConfig | None = None) -> Table:
    """Fig. 8: AS 1755, bimodal model."""
    return margin_sweep_experiment("as1755", "bimodal", config, "Fig. 8 — AS1755, bimodal")
