"""Margin-sweep experiments: Figs. 6, 7, 8 and the Table I blocks.

Each figure plots, for one topology and base-demand model, the
worst-case performance ratio of the four schemes as the uncertainty
margin grows.  The paper's reading (Section VI-B): both COYOTE variants
beat ECMP throughout, and the Base routing — optimal with *no*
uncertainty — degrades quickly as the margin widens, often falling
behind even ECMP.

The drivers declare their grid as a :class:`~repro.runner.SweepSpec`
(one cell per margin) and hand execution to the sweep runner, which can
fan cells out over a process pool and serve repeats from the result
cache.
"""

from __future__ import annotations

from repro.config import ExperimentConfig
from repro.runner.executor import run_sweep
from repro.runner.spec import SweepSpec, grid_cells
from repro.topologies.zoo import topology_info
from repro.utils.tables import Table


def margin_sweep_spec(
    topology: str,
    demand_model: str,
    config: ExperimentConfig | None = None,
    title: str | None = None,
    experiment: str | None = None,
) -> SweepSpec:
    """Declare the margin-sweep grid for one (topology, demand model) pair.

    Args:
        topology: a registered topology name (e.g. "geant").
        demand_model: "gravity" or "bimodal".
        config: margins + solver knobs; defaults to the environment
            config (reduced unless ``REPRO_FULL=1``).
        title: table title override.
        experiment: registry id used to name artifacts (defaults to a
            "<topology>-<demand_model>" tag for ad-hoc sweeps).
    """
    config = config or ExperimentConfig.from_environment()
    # Registry metadata, not load_topology(): building the network here
    # would make even a fully-cached sweep pay topology construction.
    info = topology_info(topology)
    cells = grid_cells(
        experiment or f"{topology}-{demand_model}",
        [topology],
        demand_model,
        config.margins,
        config.solver,
        config.seed,
    )
    notes = (
        f"topology={topology} ({info.nodes} nodes / {2 * info.links} "
        f"directed edges), demand model={demand_model}, margins={config.margins}",
        "ratios are worst-case link utilization normalized by the demands-aware "
        "optimum within the same augmented DAGs (Section VI)",
    )
    return SweepSpec(
        experiment=cells[0].experiment,
        title=title or f"{topology} / {demand_model} margin sweep",
        cells=cells,
        notes=notes,
    )


def margin_sweep_experiment(
    topology: str,
    demand_model: str,
    config: ExperimentConfig | None = None,
    title: str | None = None,
) -> Table:
    """Worst-case ratio of every scheme across the margin grid (serial)."""
    return run_sweep(margin_sweep_spec(topology, demand_model, config, title)).table()


def fig6_spec(config: ExperimentConfig | None = None) -> SweepSpec:
    return margin_sweep_spec(
        "geant", "gravity", config, "Fig. 6 — Geant, gravity", experiment="fig6"
    )


def fig7_spec(config: ExperimentConfig | None = None) -> SweepSpec:
    return margin_sweep_spec(
        "digex", "gravity", config, "Fig. 7 — Digex, gravity", experiment="fig7"
    )


def fig8_spec(config: ExperimentConfig | None = None) -> SweepSpec:
    return margin_sweep_spec(
        "as1755", "bimodal", config, "Fig. 8 — AS1755, bimodal", experiment="fig8"
    )


def fig6(config: ExperimentConfig | None = None) -> Table:
    """Fig. 6: Geant, gravity model."""
    return run_sweep(fig6_spec(config)).table()


def fig7(config: ExperimentConfig | None = None) -> Table:
    """Fig. 7: Digex, gravity model."""
    return run_sweep(fig7_spec(config)).table()


def fig8(config: ExperimentConfig | None = None) -> Table:
    """Fig. 8: AS 1755, bimodal model."""
    return run_sweep(fig8_spec(config)).table()
