"""LP micro-benchmarks: assembly and oracle-sweep cost per backend path.

The ``"lp-micro"`` cell kind times the two LP-layer costs PR 6's backend
work targets on one topology:

* ``assemble`` — building and compiling the worst-case oracle's slave
  LP (the sparse CSR constraint assembly in :mod:`repro.lp.model`);
* ``oracle-sweep`` — one full per-edge adversarial sweep of a fixed
  routing, comparing the persistent backend instance (the default
  reusable path) against fresh one-shot cold solves per edge (what the
  layer did before backend instances existed).

Each cell reports per-call milliseconds for the fast path and the
one-shot reference plus the speedup, so ``repro bench lp-assemble
lp-oracle-sweep`` records what the backend layer buys on this machine;
macro effects show up in the fig9/fig11 benchmarks' phase timings.

Like every timing-valued payload, results are machine-dependent; cells
of this kind are meaningful uncached (the bench CLI's default).
"""

from __future__ import annotations

import time

from repro.demands.gravity import gravity_matrix
from repro.demands.uncertainty import margin_box
from repro.ecmp.routing import ecmp_routing
from repro.ecmp.weights import inverse_capacity_weights
from repro.exceptions import ExperimentError
from repro.lp.worst_case import WorstCaseOracle
from repro.runner.spec import CellKind, SweepCell, SweepSpec, freeze_params, register_cell_kind
from repro.runner.timing import phase
from repro.topologies.zoo import load_topology

MICRO_COLUMNS = ("fast_ms", "reference_ms", "speedup")

#: Default timing iterations per cell; the oracle sweep solves one LP
#: per edge per call, so a handful of repeats is already stable.
DEFAULT_REPEATS = 5


def _per_call_ms(fn, repeats: int) -> float:
    started = time.perf_counter()
    for _ in range(repeats):
        fn()
    return 1000.0 * (time.perf_counter() - started) / repeats


def solve_lp_micro_cell(cell: SweepCell) -> dict[str, float]:
    """Time one LP-layer operation against its one-shot reference."""
    params = cell.params_dict()
    op = params["op"]
    repeats = int(params.get("repeats", DEFAULT_REPEATS))
    with phase("setup"):
        network = load_topology(cell.topology)
        demand = gravity_matrix(network)
        uncertainty = margin_box(demand, cell.margin)
        weights = inverse_capacity_weights(network)
        routing = ecmp_routing(network, weights)

    if op == "assemble":
        def fast_once():
            WorstCaseOracle(network, uncertainty, dags=None, config=cell.solver)

        # Assembly has no slower twin to race: the reference is the same
        # build, so the column pair reads as build-vs-build (speedup ~1)
        # and the absolute fast_ms is the tracked quantity.
        reference_once = fast_once

    elif op == "oracle-sweep":
        with phase("setup"):
            from repro.lp.backend.scipy_backend import ScipyBackend
            from repro.lp.model import ReusableLP

            oracle = WorstCaseOracle(network, uncertainty, dags=None, config=cell.solver)
            coefficients = routing.load_coefficients(oracle.demand_pairs)
            loaded = [
                (edge, coefficients[edge])
                for edge in network.finite_capacity_edges()
                if coefficients.get(edge)
            ]
            # The pre-backend-layer path: one scipy linprog call per edge
            # (the _OneShotInstance fallback re-enters linprog each solve).
            scipy_reference = ReusableLP(
                oracle._compiled,
                ScipyBackend().instance(oracle._compiled.program),
            )

        def fast_once():
            # The oracle's own persistent instance (the production path).
            for edge, coeffs in loaded:
                oracle.worst_utilization_for_edge(edge, coeffs)

        def reference_once():
            for edge, coeffs in loaded:
                oracle.worst_utilization_for_edge(
                    edge, coeffs, reusable=scipy_reference
                )

    else:
        raise ExperimentError(
            f"unknown lp micro op {op!r} (use 'assemble' or 'oracle-sweep')"
        )

    with phase("solve"):
        fast_ms = _per_call_ms(fast_once, repeats)
    with phase("evaluate"):
        reference_ms = _per_call_ms(reference_once, repeats)
    return {
        "fast_ms": fast_ms,
        "reference_ms": reference_ms,
        "speedup": reference_ms / fast_ms if fast_ms > 0 else float("inf"),
    }


LP_MICRO_KIND = register_cell_kind(
    CellKind(
        name="lp-micro", solve=solve_lp_micro_cell, columns=MICRO_COLUMNS, timeout=900.0
    )
)


def lp_micro_spec(op: str, config=None, topologies: tuple[str, ...] = ("abilene", "geant")) -> SweepSpec:
    """Declare one LP micro-benchmark grid (one cell per topology)."""
    from repro.config import ExperimentConfig

    config = config or ExperimentConfig.from_environment()
    cells = tuple(
        SweepCell(
            experiment=f"lp-{op}",
            topology=topology,
            demand_model=config.demand_model,
            margin=config.margins[0],
            seed=config.seed,
            solver=config.solver,
            kind=LP_MICRO_KIND.name,
            params=freeze_params({"op": op, "repeats": DEFAULT_REPEATS}),
        )
        for topology in topologies
    )
    return SweepSpec(
        experiment=f"lp-{op}",
        title=f"LP micro-benchmark: {op} (persistent backend instance vs one-shot)",
        cells=cells,
        row_columns=("network",),
        notes=(
            "per-call milliseconds; reference = one-shot cold solves "
            "(the pre-backend-layer path)",
        ),
    )
