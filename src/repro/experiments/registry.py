"""The experiment registry: one entry per paper table/figure."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.config import ExperimentConfig
from repro.exceptions import ExperimentError
from repro.experiments.fig9_local_search import fig9
from repro.experiments.fig10_approximation import fig10
from repro.experiments.fig11_stretch import fig11
from repro.experiments.fig12_prototype import fig12
from repro.experiments.hardness import theorem1_table, theorem4_table
from repro.experiments.margin_sweep import fig6, fig7, fig8
from repro.experiments.running_example import running_example_table
from repro.experiments.table1 import table1_experiment
from repro.utils.tables import Table

Driver = Callable[[ExperimentConfig | None], Table]


@dataclass(frozen=True)
class Experiment:
    """A registered experiment: id, description, driver."""

    id: str
    description: str
    driver: Driver


EXPERIMENTS: dict[str, Experiment] = {
    exp.id: exp
    for exp in [
        Experiment(
            "running-example",
            "Fig. 1 / Appendix B: ECMP 3/2, Fig-1c 4/3, optimal sqrt(5)-1",
            running_example_table,
        ),
        Experiment(
            "thm1",
            "Theorem 1 (Figs. 2-3): BIPARTITION gadget, balanced ratio 4/3",
            theorem1_table,
        ),
        Experiment(
            "thm4",
            "Theorem 4 (Fig. 4): Omega(|V|) oblivious separation",
            theorem4_table,
        ),
        Experiment("fig6", "Fig. 6: Geant, gravity margin sweep", fig6),
        Experiment("fig7", "Fig. 7: Digex, gravity margin sweep", fig7),
        Experiment("fig8", "Fig. 8: AS1755, bimodal margin sweep", fig8),
        Experiment("fig9", "Fig. 9: Abilene, local-search heuristic", fig9),
        Experiment("fig10", "Fig. 10: virtual next-hop approximation", fig10),
        Experiment("fig11", "Fig. 11: average path stretch", fig11),
        Experiment("fig12", "Fig. 12: prototype packet-drop emulation", fig12),
        Experiment("table1", "Table I: full margin sweep across topologies", table1_experiment),
    ]
}


def experiment_ids() -> list[str]:
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str, config: ExperimentConfig | None = None) -> Table:
    """Run one experiment by id (raises ExperimentError for unknown ids)."""
    experiment = EXPERIMENTS.get(experiment_id)
    if experiment is None:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: {', '.join(EXPERIMENTS)}"
        )
    return experiment.driver(config)
