"""The experiment registry: one entry per paper table/figure."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.config import ExperimentConfig
from repro.exceptions import ExperimentError
from repro.experiments.fig9_local_search import fig9, fig9_spec
from repro.experiments.fig10_approximation import fig10, fig10_spec
from repro.experiments.fig11_stretch import fig11, fig11_spec
from repro.experiments.fig12_prototype import fig12
from repro.experiments.hardness import theorem1_table, theorem4_table
from repro.experiments.margin_sweep import fig6, fig6_spec, fig7, fig7_spec, fig8, fig8_spec
from repro.experiments.running_example import running_example_table
from repro.experiments.table1 import table1_experiment, table1_spec
from repro.runner.spec import SweepSpec
from repro.utils.tables import Table

Driver = Callable[[ExperimentConfig | None], Table]
GridBuilder = Callable[[ExperimentConfig | None], SweepSpec]


@dataclass(frozen=True)
class Experiment:
    """A registered experiment: id, description, driver, optional grid.

    Experiments whose evaluation decomposes into independent sweep cells
    (a registered :class:`~repro.runner.spec.CellKind` — margin-grid
    rows, Fig. 9's per-margin searches, Fig. 10's budget cells, Fig.
    11's per-topology stretch) also declare a ``grid`` builder; those
    are the ones ``repro sweep`` (and ``repro run``'s ``--jobs``/cache
    flags) can execute through the parallel runner.
    """

    id: str
    description: str
    driver: Driver
    grid: GridBuilder | None = None


EXPERIMENTS: dict[str, Experiment] = {
    exp.id: exp
    for exp in [
        Experiment(
            "running-example",
            "Fig. 1 / Appendix B: ECMP 3/2, Fig-1c 4/3, optimal sqrt(5)-1",
            running_example_table,
        ),
        Experiment(
            "thm1",
            "Theorem 1 (Figs. 2-3): BIPARTITION gadget, balanced ratio 4/3",
            theorem1_table,
        ),
        Experiment(
            "thm4",
            "Theorem 4 (Fig. 4): Omega(|V|) oblivious separation",
            theorem4_table,
        ),
        Experiment("fig6", "Fig. 6: Geant, gravity margin sweep", fig6, grid=fig6_spec),
        Experiment("fig7", "Fig. 7: Digex, gravity margin sweep", fig7, grid=fig7_spec),
        Experiment("fig8", "Fig. 8: AS1755, bimodal margin sweep", fig8, grid=fig8_spec),
        Experiment(
            "fig9", "Fig. 9: Abilene, local-search heuristic", fig9, grid=fig9_spec
        ),
        Experiment(
            "fig10", "Fig. 10: virtual next-hop approximation", fig10, grid=fig10_spec
        ),
        Experiment(
            "fig11", "Fig. 11: average path stretch", fig11, grid=fig11_spec
        ),
        Experiment("fig12", "Fig. 12: prototype packet-drop emulation", fig12),
        Experiment(
            "table1",
            "Table I: full margin sweep across topologies",
            table1_experiment,
            grid=table1_spec,
        ),
    ]
}


def experiment_ids() -> list[str]:
    return list(EXPERIMENTS)


def sweepable_experiment_ids() -> list[str]:
    """Ids of experiments that declare a cell grid (``repro sweep`` targets)."""
    return [exp.id for exp in EXPERIMENTS.values() if exp.grid is not None]


def experiment_spec(experiment_id: str, config: ExperimentConfig | None = None) -> SweepSpec:
    """The declared sweep grid for one experiment (raises for non-grid ids)."""
    experiment = _get_experiment(experiment_id)
    if experiment.grid is None:
        raise ExperimentError(
            f"experiment {experiment_id!r} does not decompose into sweep cells; "
            f"sweepable: {', '.join(sweepable_experiment_ids())}"
        )
    return experiment.grid(config)


def _get_experiment(experiment_id: str) -> Experiment:
    experiment = EXPERIMENTS.get(experiment_id)
    if experiment is None:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: {', '.join(EXPERIMENTS)}"
        )
    return experiment


def run_experiment(experiment_id: str, config: ExperimentConfig | None = None) -> Table:
    """Run one experiment by id (raises ExperimentError for unknown ids)."""
    return _get_experiment(experiment_id).driver(config)
