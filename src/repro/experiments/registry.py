"""The experiment registry: one entry per paper table/figure.

Besides the per-experiment entries this module registers the generic
``"driver-table"`` cell kind, which wraps any registered experiment's
driver as a single sweep cell: the cell's params name the experiment and
the (key, value) table columns to extract, and the cell's result is the
selected rows' values.  Single-unit experiments (the running example,
Fig. 12's prototype, the hardness theorems) thereby ride the same
executor, result cache, and timing hooks as the grid experiments — the
benchmark harness builds on exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.config import ExperimentConfig
from repro.exceptions import ExperimentError
from repro.experiments.fig9_local_search import fig9, fig9_spec
from repro.experiments.fig10_approximation import fig10, fig10_spec
from repro.experiments.fig11_stretch import fig11, fig11_spec
from repro.experiments.fig12_prototype import fig12
from repro.experiments.hardness import theorem1_table, theorem4_table
from repro.experiments.kernel_micro import kernel_micro_spec  # noqa: F401  (registers kind)
from repro.experiments.lp_micro import lp_micro_spec  # noqa: F401  (registers kind)
from repro.experiments.margin_sweep import fig6, fig6_spec, fig7, fig7_spec, fig8, fig8_spec
from repro.experiments.running_example import running_example_table
from repro.experiments.table1 import table1_experiment, table1_spec
from repro.runner.spec import (
    CellKind,
    SweepCell,
    SweepSpec,
    freeze_params,
    register_cell_kind,
)
from repro.runner.timing import phase
from repro.utils.tables import Table

Driver = Callable[[ExperimentConfig | None], Table]
GridBuilder = Callable[[ExperimentConfig | None], SweepSpec]


@dataclass(frozen=True)
class Experiment:
    """A registered experiment: id, description, driver, optional grid.

    Experiments whose evaluation decomposes into independent sweep cells
    (a registered :class:`~repro.runner.spec.CellKind` — margin-grid
    rows, Fig. 9's per-margin searches, Fig. 10's budget cells, Fig.
    11's per-topology stretch) also declare a ``grid`` builder; those
    are the ones ``repro sweep`` (and ``repro run``'s ``--jobs``/cache
    flags) can execute through the parallel runner.
    """

    id: str
    description: str
    driver: Driver
    grid: GridBuilder | None = None


EXPERIMENTS: dict[str, Experiment] = {
    exp.id: exp
    for exp in [
        Experiment(
            "running-example",
            "Fig. 1 / Appendix B: ECMP 3/2, Fig-1c 4/3, optimal sqrt(5)-1",
            running_example_table,
        ),
        Experiment(
            "thm1",
            "Theorem 1 (Figs. 2-3): BIPARTITION gadget, balanced ratio 4/3",
            theorem1_table,
        ),
        Experiment(
            "thm4",
            "Theorem 4 (Fig. 4): Omega(|V|) oblivious separation",
            theorem4_table,
        ),
        Experiment("fig6", "Fig. 6: Geant, gravity margin sweep", fig6, grid=fig6_spec),
        Experiment("fig7", "Fig. 7: Digex, gravity margin sweep", fig7, grid=fig7_spec),
        Experiment("fig8", "Fig. 8: AS1755, bimodal margin sweep", fig8, grid=fig8_spec),
        Experiment(
            "fig9", "Fig. 9: Abilene, local-search heuristic", fig9, grid=fig9_spec
        ),
        Experiment(
            "fig10", "Fig. 10: virtual next-hop approximation", fig10, grid=fig10_spec
        ),
        Experiment(
            "fig11", "Fig. 11: average path stretch", fig11, grid=fig11_spec
        ),
        Experiment("fig12", "Fig. 12: prototype packet-drop emulation", fig12),
        Experiment(
            "table1",
            "Table I: full margin sweep across topologies",
            table1_experiment,
            grid=table1_spec,
        ),
    ]
}


def experiment_ids() -> list[str]:
    return list(EXPERIMENTS)


def sweepable_experiment_ids() -> list[str]:
    """Ids of experiments that declare a cell grid (``repro sweep`` targets)."""
    return [exp.id for exp in EXPERIMENTS.values() if exp.grid is not None]


def experiment_spec(experiment_id: str, config: ExperimentConfig | None = None) -> SweepSpec:
    """The declared sweep grid for one experiment (raises for non-grid ids)."""
    experiment = _get_experiment(experiment_id)
    if experiment.grid is None:
        raise ExperimentError(
            f"experiment {experiment_id!r} does not decompose into sweep cells; "
            f"sweepable: {', '.join(sweepable_experiment_ids())}"
        )
    return experiment.grid(config)


def _get_experiment(experiment_id: str) -> Experiment:
    experiment = EXPERIMENTS.get(experiment_id)
    if experiment is None:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: {', '.join(EXPERIMENTS)}"
        )
    return experiment


def run_experiment(experiment_id: str, config: ExperimentConfig | None = None) -> Table:
    """Run one experiment by id (raises ExperimentError for unknown ids)."""
    return _get_experiment(experiment_id).driver(config)


def solve_driver_cell(cell: SweepCell) -> dict[str, float]:
    """Run a whole experiment driver as one sweep cell.

    The cell's params declare which experiment to run and how to project
    its table onto scalar result columns: ``select`` lists values of
    ``key_column`` whose ``value_column`` entries become the cell's
    results.  The driver call is recorded as the "solve" phase (drivers
    don't decompose further, so setup/evaluate stay unattributed).
    """
    params = cell.params_dict()
    config = ExperimentConfig(
        margins=(cell.margin,),
        solver=cell.solver,
        demand_model=cell.demand_model,
        seed=cell.seed,
        full=bool(params.get("full", False)),
    )
    with phase("solve"):
        table = run_experiment(params["driver"], config)
    mapping = dict(zip(table.column(params["key_column"]), table.column(params["value_column"])))
    missing = [key for key in params["select"] if key not in mapping]
    if missing:
        raise ExperimentError(
            f"driver {params['driver']!r} produced no {params['key_column']!r} rows "
            f"{missing!r} (got {sorted(map(str, mapping))!r})"
        )
    return {str(key): float(mapping[key]) for key in params["select"]}


DRIVER_KIND = register_cell_kind(
    CellKind(
        name="driver-table",
        solve=solve_driver_cell,
        columns=lambda params: tuple(params["select"]),
        # A driver cell runs a whole experiment table in one unit.
        timeout=7200.0,
    )
)


def driver_spec(
    experiment_id: str,
    select: Sequence[str],
    *,
    key_column: str = "scheme",
    value_column: str = "measured",
    config: ExperimentConfig | None = None,
    title: str | None = None,
) -> SweepSpec:
    """Declare a single driver-table cell wrapping one experiment.

    The returned spec has one row, identified by the ``driver`` param,
    whose value columns are the selected table entries.  Everything that
    determines the driver's output and participates in fingerprints —
    solver config, demand model, seed — is carried on the cell; the
    margin is pinned to the config's first margin (single-unit drivers
    either ignore it or use exactly one).
    """
    experiment = _get_experiment(experiment_id)
    config = config or ExperimentConfig.from_environment()
    cell = SweepCell(
        experiment=experiment.id,
        topology="driver",
        demand_model=config.demand_model,
        margin=config.margins[0],
        seed=config.seed,
        solver=config.solver,
        kind=DRIVER_KIND.name,
        params=freeze_params(
            {
                "driver": experiment.id,
                "select": tuple(select),
                "key_column": key_column,
                "value_column": value_column,
                # Full-scale selection participates in the fingerprint:
                # a reduced-grid result must never be served (or gated)
                # as a paper-scale one.
                "full": config.full,
            }
        ),
    )
    return SweepSpec(
        experiment=experiment.id,
        title=title or experiment.description,
        cells=(cell,),
        row_columns=("driver",),
    )
