"""COYOTE: readily deployable robust traffic engineering via OSPF "lies".

A from-scratch reproduction of *Lying Your Way to Better Traffic
Engineering* (Chiesa, Rétvári, Schapira — CoNEXT 2016): destination-based
demands-oblivious routing compiled down to unmodified OSPF/ECMP through
Fibbing-style fake LSAs.

Public API highlights:

* :class:`repro.Network`, :class:`repro.Dag` — the network model;
* :func:`repro.load_topology` — the 16 evaluation backbones;
* :func:`repro.gravity_matrix` / :func:`repro.bimodal_matrix` /
  :func:`repro.margin_box` — demand models and uncertainty sets;
* :class:`repro.Coyote` — the end-to-end pipeline (DAGs + robust
  splitting);
* :func:`repro.ecmp_routing` — the traditional TE baseline;
* :mod:`repro.fibbing` — translation to OSPF fake-LSA configuration;
* :mod:`repro.experiments` — drivers regenerating every paper table and
  figure.
"""

from repro.config import DEFAULT_CONFIG, ExperimentConfig, SolverConfig
from repro.core.coyote import Coyote, CoyoteResult
from repro.demands.bimodal import bimodal_matrix
from repro.demands.gravity import gravity_matrix
from repro.demands.matrix import DemandMatrix
from repro.demands.uncertainty import margin_box, oblivious_set
from repro.ecmp.routing import ecmp_routing
from repro.graph.dag import Dag
from repro.graph.network import Network
from repro.routing.splitting import Routing
from repro.topologies.zoo import available_topologies, load_topology

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DEFAULT_CONFIG",
    "ExperimentConfig",
    "SolverConfig",
    "Coyote",
    "CoyoteResult",
    "DemandMatrix",
    "gravity_matrix",
    "bimodal_matrix",
    "margin_box",
    "oblivious_set",
    "ecmp_routing",
    "Dag",
    "Network",
    "Routing",
    "available_topologies",
    "load_topology",
]
