"""Discrete-time packet-level emulator (the mininet + iperf3 stand-in).

Model, chosen to mirror the prototype experiment of Section VII:

* links carry ``rate`` packets per second and hold a FIFO queue of
  ``buffer`` packets; the per-tick service budget accumulates
  fractionally so any rate/tick combination is exact in the long run;
* constant-bit-rate UDP flows emit packets toward a destination prefix
  over [start, end) — iperf3's UDP mode;
* each router forwards per-packet over its prefix's next-hop set using
  smooth weighted round-robin (deterministic, so experiments reproduce
  bit-for-bit; real ECMP hashes five-tuples, whose long-run split over
  many flows is the same weighted fraction);
* packets dropped on queue overflow are counted per flow and per
  one-second window — the quantity Fig. 12b plots.

Forwarding state is a :class:`PrefixForwarding` per destination prefix
— either hand-built (the TE1/TE2 baselines) or extracted from a
converged :class:`repro.ospf.OspfDomain` (the COYOTE configuration with
its lies installed), which is exactly how the paper's prototype drives
real routers.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

from repro.exceptions import RoutingError
from repro.graph.network import Edge, Network, Node


@dataclass(frozen=True)
class CbrFlow:
    """A constant-bit-rate UDP flow.

    Attributes:
        source: originating router.
        prefix: destination prefix name.
        rate_pps: packets per second.
        start / end: active interval in seconds.
    """

    source: Node
    prefix: str
    rate_pps: float
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.rate_pps < 0:
            raise RoutingError(f"flow rate must be >= 0, got {self.rate_pps}")
        if self.end < self.start:
            raise RoutingError("flow end precedes start")


class PrefixForwarding:
    """Per-prefix forwarding: node -> weighted next hops."""

    def __init__(self, prefix: str, owner: Node, hops: Mapping[Node, Mapping[Node, float]]):
        self.prefix = prefix
        self.owner = owner
        self.hops: dict[Node, list[tuple[Node, float]]] = {}
        for node, table in hops.items():
            entries = [(head, weight) for head, weight in table.items() if weight > 0]
            if not entries and node != owner:
                raise RoutingError(
                    f"node {node!r} has no next hop for prefix {prefix!r}"
                )
            self.hops[node] = entries

    def next_hop_weights(self, node: Node) -> list[tuple[Node, float]]:
        return self.hops.get(node, [])


class _SmoothWrr:
    """Smooth weighted round-robin over (choice, weight) pairs."""

    def __init__(self, entries: list[tuple[Node, float]]):
        self._entries = entries
        self._current = [0.0] * len(entries)
        self._total = sum(weight for _c, weight in entries)

    def pick(self) -> Node:
        best_index = 0
        for i, (_choice, weight) in enumerate(self._entries):
            self._current[i] += weight
            if self._current[i] > self._current[best_index]:
                best_index = i
        self._current[best_index] -= self._total
        return self._entries[best_index][0]


@dataclass
class _LinkState:
    rate_pps: float
    buffer: int
    queue: deque = field(default_factory=deque)
    service_credit: float = 0.0
    delivered: int = 0
    dropped: int = 0


@dataclass
class FlowStats:
    """Per-flow counters, also bucketed per one-second window."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    sent_per_window: dict[int, int] = field(default_factory=dict)
    delivered_per_window: dict[int, int] = field(default_factory=dict)
    dropped_per_window: dict[int, int] = field(default_factory=dict)

    def drop_rate(self) -> float:
        return self.dropped / self.sent if self.sent else 0.0


class PacketSimulator:
    """Slot-based simulator over a capacitated network.

    Args:
        network: topology; link capacities are interpreted via
            ``pps_per_capacity_unit`` (e.g. capacity 1.0 = 1 Mbps = 100
            packets/s with the default 1250-byte packets).
        forwardings: one :class:`PrefixForwarding` per destination prefix.
        tick: slot length in seconds.
        buffer_packets: FIFO queue depth per link.
        pps_per_capacity_unit: packets/s carried per unit of capacity.
    """

    def __init__(
        self,
        network: Network,
        forwardings: Mapping[str, PrefixForwarding],
        tick: float = 0.001,
        buffer_packets: int = 20,
        pps_per_capacity_unit: float = 100.0,
    ):
        if tick <= 0:
            raise RoutingError(f"tick must be > 0, got {tick}")
        self.network = network
        self.forwardings = dict(forwardings)
        self.tick = tick
        self.links: dict[Edge, _LinkState] = {}
        for edge in network.edges():
            capacity = network.capacity(*edge)
            rate = capacity * pps_per_capacity_unit if math.isfinite(capacity) else 1e12
            self.links[edge] = _LinkState(rate_pps=rate, buffer=buffer_packets)
        self._wrr: dict[tuple[str, Node], _SmoothWrr] = {}

    def _pick_next_hop(self, prefix: str, node: Node) -> Node | None:
        forwarding = self.forwardings.get(prefix)
        if forwarding is None:
            raise RoutingError(f"no forwarding state for prefix {prefix!r}")
        if node == forwarding.owner:
            return None
        key = (prefix, node)
        if key not in self._wrr:
            entries = forwarding.next_hop_weights(node)
            if not entries:
                raise RoutingError(f"{node!r} cannot forward prefix {prefix!r}")
            self._wrr[key] = _SmoothWrr(entries)
        return self._wrr[key].pick()

    def run(self, flows: list[CbrFlow], duration: float) -> dict[CbrFlow, FlowStats]:
        """Simulate ``duration`` seconds; returns per-flow statistics."""
        stats = {flow: FlowStats() for flow in flows}
        emit_credit = {flow: 0.0 for flow in flows}
        ticks = int(round(duration / self.tick))
        for step in range(ticks):
            now = step * self.tick
            window = int(now)
            # 1. Sources emit packets (fractional token accumulation).
            for flow in flows:
                if flow.start <= now < flow.end and flow.rate_pps > 0:
                    emit_credit[flow] += flow.rate_pps * self.tick
                    while emit_credit[flow] >= 1.0:
                        emit_credit[flow] -= 1.0
                        self._enqueue(flow, flow.source, stats[flow], window, is_new=True)
            # 2. Links serve their queues; served packets hop onward.
            for edge, link in self.links.items():
                link.service_credit += link.rate_pps * self.tick
                while link.service_credit >= 1.0 and link.queue:
                    link.service_credit -= 1.0
                    flow = link.queue.popleft()
                    link.delivered += 1
                    self._enqueue(flow, edge[1], stats[flow], window, is_new=False)
                if not link.queue:
                    # Idle links don't bank unbounded credit.
                    link.service_credit = min(link.service_credit, 1.0)
        return stats

    def _enqueue(
        self, flow: CbrFlow, node: Node, stat: FlowStats, window: int, is_new: bool
    ) -> None:
        if is_new:
            stat.sent += 1
            stat.sent_per_window[window] = stat.sent_per_window.get(window, 0) + 1
        next_hop = self._pick_next_hop(flow.prefix, node)
        if next_hop is None:
            stat.delivered += 1
            stat.delivered_per_window[window] = (
                stat.delivered_per_window.get(window, 0) + 1
            )
            return
        link = self.links[(node, next_hop)]
        if len(link.queue) >= link.buffer:
            link.dropped += 1
            stat.dropped += 1
            stat.dropped_per_window[window] = stat.dropped_per_window.get(window, 0) + 1
            return
        link.queue.append(flow)


def forwarding_from_ospf(domain, prefix: str) -> PrefixForwarding:
    """Extract a :class:`PrefixForwarding` from a converged OSPF domain."""
    domain.converge()
    owner_id = domain.prefix_owner(prefix)
    hops: dict[Node, dict[Node, float]] = {}
    for rid, router in domain.routers.items():
        if rid == owner_id:
            continue
        fractions = router.splitting_fractions(prefix)
        if fractions:
            hops[domain.node_of(rid)] = {
                domain.node_of(n): f for n, f in fractions.items()
            }
    return PrefixForwarding(prefix, domain.node_of(owner_id), hops)
