"""Steady-state fluid traffic model.

Two views of a routing under a concrete demand matrix:

* :func:`fluid_report` — offered link loads, utilizations, and the
  congestion hot spot (no losses: the TE metric of Sections III/VI);
* :func:`delivery_fractions` — a first-order loss model: each link
  passes at most its capacity, dropping the excess proportionally, and a
  pair's delivery fraction aggregates path survival probabilities.  The
  packet simulator (:mod:`repro.flowsim.packet`) refines this with
  queues; the fluid version is its deterministic sanity check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.demands.matrix import DemandMatrix
from repro.graph.network import Edge, Network, Node
from repro.routing.splitting import Routing


@dataclass
class FluidReport:
    """Offered loads and utilizations for one (routing, demand) pair."""

    loads: dict[Edge, float]
    utilization: dict[Edge, float]
    max_utilization: float
    hottest_edge: Edge | None

    def over_subscribed(self) -> list[Edge]:
        """Links offered more traffic than they can carry."""
        return [e for e, u in self.utilization.items() if u > 1.0 + 1e-12]


def fluid_report(network: Network, routing: Routing, demand: DemandMatrix) -> FluidReport:
    """Compute the loads a routing places on every link for a demand."""
    loads = routing.link_loads(demand)
    utilization: dict[Edge, float] = {}
    hottest: Edge | None = None
    worst = 0.0
    for edge, flow in loads.items():
        capacity = network.capacity(*edge)
        if not math.isfinite(capacity):
            continue
        u = flow / capacity
        utilization[edge] = u
        if u > worst:
            worst, hottest = u, edge
    return FluidReport(loads, utilization, worst, hottest)


def delivery_fractions(
    network: Network, routing: Routing, demand: DemandMatrix
) -> dict[tuple[Node, Node], float]:
    """Per-pair fraction of traffic delivered under proportional loss.

    Every link forwards ``min(1, capacity / offered)`` of its traffic;
    a pair's delivered fraction follows the DAG recursion
    ``deliver(u) = sum_v phi(u, v) * survive(u, v) * deliver(v)`` with
    ``deliver(root) = 1``.
    """
    report = fluid_report(network, routing, demand)
    survive: dict[Edge, float] = {}
    for edge, u in report.utilization.items():
        survive[edge] = 1.0 if u <= 1.0 else 1.0 / u
    fractions: dict[tuple[Node, Node], float] = {}
    for (s, t), volume in demand.items():
        if volume <= 0:
            continue
        dag = routing.dags[t]
        ratios = routing.ratios.get(t, {})
        deliver: dict[Node, float] = {t: 1.0}
        for node in reversed(dag.topological_order()):
            if node == t:
                continue
            total = 0.0
            for head in dag.out_neighbors(node):
                fraction = ratios.get((node, head), 0.0)
                if fraction == 0.0:
                    continue
                total += fraction * survive.get((node, head), 1.0) * deliver[head]
            deliver[node] = total
        fractions[(s, t)] = deliver.get(s, 0.0)
    return fractions
