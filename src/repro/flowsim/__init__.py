"""Traffic simulators: steady-state fluid loads and packet-level emulation."""

from repro.flowsim.fluid import FluidReport, fluid_report, delivery_fractions
from repro.flowsim.packet import CbrFlow, PacketSimulator, PrefixForwarding

__all__ = [
    "FluidReport",
    "fluid_report",
    "delivery_fractions",
    "CbrFlow",
    "PacketSimulator",
    "PrefixForwarding",
]
