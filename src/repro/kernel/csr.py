"""Indexed CSR view of a :class:`Network`: the kernel's array vocabulary.

Everything downstream of this module speaks integer indices: node ``i`` is
``index.nodes[i]``, edge ``e`` is ``(index.tail[e], index.head[e])`` with
capacity ``index.capacity[e]``, both in the network's deterministic insertion
order (the same order :meth:`Network.edges` iterates, so kernel-built DAGs
list their edges exactly like the pure-Python extraction does).

The index is structural — it depends only on the network, not on weights —
and is cached per network instance in a :class:`weakref.WeakKeyDictionary`,
so repeated kernel calls against one topology (every move the local search
tries, every oracle evaluation in a sweep) pay the translation cost once.
Weight-dependent artifacts (the reversed-adjacency CSR matrix ``dijkstra``
consumes, the all-destination distance matrix) are memoized per weight
vector on top via a small LRU keyed by the vector's bytes.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np
from scipy import sparse

from repro.exceptions import GraphError
from repro.graph.network import Edge, Network, Node
from repro.runner.memo import LruMemo

#: Weight-keyed artifacts kept alive per network (distance matrices are
#: O(N^2) floats; a handful covers the local search's committed states).
_WEIGHT_MEMO_LIMIT = 8


@dataclass(frozen=True, eq=False)  # identity eq/hash: arrays don't compare
class CsrIndex:
    """Immutable array view of one network's structure.

    Attributes:
        network_ref: weak reference to the source network.  Weak on
            purpose: the index cache is keyed by the network in a
            :class:`weakref.WeakKeyDictionary`, and a strong back-reference
            from the value would pin every indexed network (and its
            memoized SPF states) for the life of the process.
        nodes: node labels, insertion order (index -> label).
        node_id: label -> index.
        edges: directed edges, insertion order (index -> (tail, head)).
        edge_id: (tail, head) -> edge index.
        tail / head: per-edge endpoint indices, ``int64`` arrays.
        capacity: per-edge capacities (``inf`` for the paper's
            "arbitrarily high" links).
        finite: boolean mask of finite-capacity edges — the only ones
            whose utilization is ever reported.
    """

    network_ref: "weakref.ref[Network]"
    nodes: tuple[Node, ...]
    node_id: dict[Node, int]
    edges: tuple[Edge, ...]
    edge_id: dict[Edge, int]
    tail: np.ndarray
    head: np.ndarray
    capacity: np.ndarray
    finite: np.ndarray
    _weight_memo: LruMemo = field(default_factory=lambda: LruMemo(limit=_WEIGHT_MEMO_LIMIT))

    @property
    def network(self) -> Network:
        """The indexed network (alive as long as anyone can reach the index)."""
        network = self.network_ref()
        if network is None:
            raise GraphError("the network behind this CsrIndex was garbage-collected")
        return network

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def reversed_csr(self, weights: np.ndarray) -> sparse.csr_matrix:
        """The reversed-adjacency CSR matrix for distance-*to*-target SPF.

        Entry ``[v, u] = w(u, v)``: running ``csgraph.dijkstra`` from a
        target over this matrix yields, for every node, the weighted
        distance of its shortest path *toward* the target — exactly what
        :func:`repro.graph.paths.dijkstra_to_target` computes.

        The sparsity structure depends only on the network, so it is
        precomputed once (:attr:`_csr_template`) and each weight vector
        just permutes its data into place — no COO round-trip per call.
        This is the hot constructor of the delta evaluator's candidate
        scoring; it is deliberately not memoized (candidate vectors are
        throwaway).
        """
        indptr, indices, order = self._csr_template()
        return sparse.csr_matrix(
            (weights[order], indices, indptr),
            shape=(self.num_nodes, self.num_nodes),
            copy=False,
        )

    def _csr_template(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(indptr, indices, edge order) of the reversed adjacency matrix."""

        def build() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            order = np.lexsort((self.tail, self.head))
            counts = np.bincount(self.head, minlength=self.num_nodes)
            indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int32)
            indices = self.tail[order].astype(np.int32)
            return indptr, indices, order

        return self._weight_memo.get_or_create(("csr-template",), build)

    def csr_data_position(self) -> np.ndarray:
        """Edge index -> position of its weight in the CSR data array.

        Lets the delta evaluator score a candidate by poking one slot of
        a persistent matrix's ``.data`` instead of rebuilding the matrix.
        """
        _indptr, _indices, order = self._csr_template()
        position = np.empty_like(order)
        position[order] = np.arange(order.size)
        return position

    def memo(self, key: tuple, build):
        """Memoize a weight-dependent artifact on this index's LRU."""
        return self._weight_memo.get_or_create(key, build)


_INDEX_CACHE: "weakref.WeakKeyDictionary[Network, CsrIndex]" = weakref.WeakKeyDictionary()


def csr_index(network: Network) -> CsrIndex:
    """The (cached) array view of ``network``.

    Networks are treated as immutable once algorithms run (see
    :class:`Network`); mutating a network after its index was built would
    desynchronize the two, like every other cached artifact in the stack.
    """
    index = _INDEX_CACHE.get(network)
    if index is None:
        nodes = tuple(network.nodes())
        node_id = {node: i for i, node in enumerate(nodes)}
        edges = tuple(network.edges())
        tail = np.fromiter((node_id[u] for u, _v in edges), dtype=np.int64, count=len(edges))
        head = np.fromiter((node_id[v] for _u, v in edges), dtype=np.int64, count=len(edges))
        capacity = np.fromiter(
            (network.capacity(u, v) for u, v in edges), dtype=np.float64, count=len(edges)
        )
        index = CsrIndex(
            network_ref=weakref.ref(network),
            nodes=nodes,
            node_id=node_id,
            edges=edges,
            edge_id={edge: i for i, edge in enumerate(edges)},
            tail=tail,
            head=head,
            capacity=capacity,
            finite=np.isfinite(capacity),
        )
        _INDEX_CACHE[network] = index
    return index


def weight_vector(index: CsrIndex, weights: Mapping[Edge, float]) -> np.ndarray:
    """Edge weights as a float array, validated like the reference Dijkstra.

    Raises:
        GraphError: if any network edge is missing from ``weights`` or has
            a non-positive weight (mirrors
            :func:`repro.graph.paths.dijkstra_to_target`).
    """
    vector = np.empty(index.num_edges, dtype=np.float64)
    for i, edge in enumerate(index.edges):
        weight = weights.get(edge)
        if weight is None:
            raise GraphError(f"missing weight for edge {edge!r}")
        if not (weight > 0):
            raise GraphError(f"weight of {edge!r} must be > 0, got {weight}")
        vector[i] = weight
    return vector
