"""Vectorized load coefficients and link loads for arbitrary routings.

The worst-case oracle's objective assembly needs, for every demand pair
``(s, t)``, the fraction of the pair's traffic each edge carries:
``f_st(u) * phi_t(u, v)``.  The reference computes this one source at a
time (one dict-based propagation per pair); here *all* destinations and
all of their sources propagate together through one
:func:`~repro.kernel.propagate.grouped_sweep` — destinations are disjoint
state rows, sources are batch columns — so the per-destination and
per-source Python overhead collapses into a handful of array ops.

These helpers accept plain :class:`~repro.graph.dag.Dag` objects and ratio
dicts (the shapes :class:`~repro.routing.splitting.Routing` stores), so they
serve shortest-path *and* augmented DAGs alike.  The level key for a DAG
edge is its tail's position in the DAG's (already computed) topological
order — valid for any DAG, no extra Kahn pass.  Per-DAG index arrays are
cached weakly per Dag instance.
"""

from __future__ import annotations

import weakref
from typing import Mapping, Sequence

import numpy as np

from repro.demands.matrix import DemandMatrix
from repro.exceptions import RoutingError
from repro.graph.dag import Dag
from repro.graph.network import Edge, Network, Node
from repro.kernel.csr import CsrIndex, csr_index
from repro.kernel.propagate import grouped_sweep

#: Per-Dag array artifacts, keyed weakly so discarded DAGs (each
#: local-search round builds a fresh set) free theirs.
_DAG_ARRAYS: "weakref.WeakKeyDictionary[Dag, tuple]" = weakref.WeakKeyDictionary()


def _dag_arrays(index: CsrIndex, dag: Dag) -> tuple[np.ndarray, np.ndarray]:
    """(edge indices, per-edge level keys) for one DAG, cached.

    The level key is the tail's topological position: every DAG edge goes
    from an earlier to a strictly later position, so grouping instances
    by ascending key is a valid propagation schedule.
    """
    cached = _DAG_ARRAYS.get(dag)
    if cached is None or cached[0] is not index:
        position = {node: i for i, node in enumerate(dag.topological_order())}
        count = dag.num_edges
        edge_ids = np.fromiter(
            (index.edge_id[edge] for edge in dag.edges()), dtype=np.int64, count=count
        )
        levels = np.fromiter(
            (position[tail] for tail, _head in dag.edges()), dtype=np.int64, count=count
        )
        cached = (index, edge_ids, levels)
        _DAG_ARRAYS[dag] = cached
    return cached[1], cached[2]


def _phi_values(
    index: CsrIndex, edge_ids: np.ndarray, ratios: Mapping[Edge, float]
) -> np.ndarray:
    edges = index.edges
    return np.fromiter(
        (ratios.get(edges[e], 0.0) for e in edge_ids.tolist()),
        dtype=np.float64,
        count=edge_ids.size,
    )


def _combined_instances(
    index: CsrIndex,
    targets: Sequence[Node],
    dags: Mapping[Node, Dag],
    ratios_by_destination: Mapping[Node, Mapping[Edge, float]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stack every target DAG's (row, edge, level, phi) instance arrays."""
    rows_parts, edge_parts, level_parts, phi_parts = [], [], [], []
    for row, t in enumerate(targets):
        edge_ids, levels = _dag_arrays(index, dags[t])
        rows_parts.append(np.full(edge_ids.size, row, dtype=np.int64))
        edge_parts.append(edge_ids)
        level_parts.append(levels)
        phi_parts.append(_phi_values(index, edge_ids, ratios_by_destination.get(t, {})))
    if not rows_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty, np.empty(0, dtype=np.float64)
    return (
        np.concatenate(rows_parts),
        np.concatenate(edge_parts),
        np.concatenate(level_parts),
        np.concatenate(phi_parts),
    )


def link_loads(
    network: Network,
    dags: Mapping[Node, Dag],
    ratios_by_destination: Mapping[Node, Mapping[Edge, float]],
    demand: DemandMatrix,
) -> dict[Edge, float]:
    """Total flow per edge for one demand matrix (one combined sweep).

    Vectorized equivalent of summing
    :func:`repro.routing.propagation.propagate_to_destination` edge flows
    over every destination; only edges with nonzero flow appear, keyed in
    network edge order.
    """
    index = csr_index(network)
    targets = sorted(demand.targets(), key=str)
    target_row = {t: row for row, t in enumerate(targets)}
    demands = np.zeros((len(targets), 1, index.num_nodes))
    for (s, t), volume in demand.items():
        dag = dags.get(t)
        if dag is None:
            raise RoutingError(f"no DAG for destination {t!r}")
        if volume > 0 and not dag.has_node(s):
            raise RoutingError(
                f"demand source {s!r} is not part of the DAG rooted at {dag.root!r}"
            )
        demands[target_row[t], 0, index.node_id[s]] += volume
    rows, edges, levels, phi = _combined_instances(
        index, targets, dags, ratios_by_destination
    )
    _arrivals, flows = grouped_sweep(index, rows, edges, levels, phi, demands)
    totals = flows[:, 0, :].sum(axis=0)
    return {index.edges[int(e)]: float(totals[e]) for e in np.flatnonzero(totals != 0.0)}


def load_coefficients(
    dags: Mapping[Node, Dag],
    ratios_by_destination: Mapping[Node, Mapping[Edge, float]],
    pairs: Sequence[tuple[Node, Node]],
) -> dict[Edge, dict[tuple[Node, Node], float]]:
    """Per-edge linear load coefficients over demand pairs, batched.

    Same contract as the reference
    :func:`repro.routing.propagation.load_coefficients` — one entry per
    (edge, pair) with a nonzero fraction-times-ratio product — but every
    destination's sources propagate in one combined sweep (sources are
    batch columns, padded to the widest destination).
    """
    by_destination: dict[Node, list[Node]] = {}
    for s, t in pairs:
        by_destination.setdefault(t, []).append(s)
    targets = [t for t in by_destination if dags.get(t) is not None]
    missing = [t for t in by_destination if dags.get(t) is None]
    if missing:
        raise RoutingError(f"no DAG for destination {missing[0]!r}")
    sources_of = {
        t: [s for s in by_destination[t] if dags[t].has_node(s)] for t in targets
    }
    targets = [t for t in targets if sources_of[t]]
    if not targets:
        return {}
    network = _network_of(dags[targets[0]])
    index = csr_index(network)
    width = max(len(sources_of[t]) for t in targets)
    unit = np.zeros((len(targets), width, index.num_nodes))
    for row, t in enumerate(targets):
        for col, s in enumerate(sources_of[t]):
            unit[row, col, index.node_id[s]] = 1.0
    rows, edges, levels, phi = _combined_instances(
        index, targets, dags, ratios_by_destination
    )
    arrivals, _flows = grouped_sweep(index, rows, edges, levels, phi, unit)

    coefficients: dict[Edge, dict[tuple[Node, Node], float]] = {}
    live = phi != 0.0
    live_rows, live_edges = rows[live], edges[live]
    live_phi = phi[live]
    # coefficient[(row, col), e] = f_st(tail[e]) * phi_t(e); keep the
    # reference's sparsity (fraction != 0 and ratio != 0).
    fractions = arrivals[live_rows, :, index.tail[live_edges]]  # (K, width)
    values = fractions * live_phi[:, np.newaxis]
    instance_idx, source_col = np.nonzero(fractions)
    edge_labels = index.edges
    for k, col in zip(instance_idx.tolist(), source_col.tolist()):
        row = int(live_rows[k])
        t = targets[row]
        if col >= len(sources_of[t]):
            continue  # padding column of a narrower destination
        edge = edge_labels[int(live_edges[k])]
        coefficients.setdefault(edge, {})[(sources_of[t][col], t)] = float(values[k, col])
    return coefficients


def _network_of(dag: Dag) -> Network:
    """The network a DAG was validated against.

    DAG construction always passes the network in this codebase; the
    kernel dispatch points fall back to the reference path for DAGs
    built without one.
    """
    network = dag.network
    if network is None:
        raise RoutingError(
            f"DAG rooted at {dag.root!r} carries no network reference; "
            "kernel coefficients need Dag(..., network=...)"
        )
    return network
