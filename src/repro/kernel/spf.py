"""Batched shortest paths and vectorized ECMP DAG extraction.

One ``scipy.sparse.csgraph.dijkstra`` call over the reversed-adjacency CSR
matrix yields the full distance matrix ``dist[t, u]`` (distance from ``u``
*to* ``t``) for every destination at once; the ECMP DAG then falls out of
the relaxation condition as a pure array expression: edge ``(u, v)`` is on a
shortest path to ``t`` exactly when ``dist[t, u] ~= w(u, v) + dist[t, v]``,
compared with the same relative tolerance the reference extraction uses
(:data:`repro.graph.paths._TIE_RTOL` via :func:`math.isclose`).

Distances are bit-identical to the heapq reference: both computations take
the minimum, over the same finite set of paths, of the same left-to-right
float accumulation of edge weights, so the tie masks — and therefore the
DAG edge sets — agree exactly, not just within tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np
from scipy.sparse import csgraph

from repro.graph.dag import Dag
from repro.graph.network import Edge, Network, Node
from repro.graph.paths import _TIE_RTOL
from repro.kernel.csr import CsrIndex, csr_index, weight_vector


def tie_close(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized ``math.isclose(a, b, rel_tol=_TIE_RTOL, abs_tol=0.0)``.

    The single source of ECMP tie semantics on the kernel side: the DAG
    extraction below and the delta evaluator's affected-destination
    screen must agree bit-for-bit, or the screen's "provably unchanged"
    argument breaks.
    """
    with np.errstate(invalid="ignore"):  # inf - inf from unreachable pairs
        return np.abs(a - b) <= _TIE_RTOL * np.maximum(np.abs(a), np.abs(b))


def tight_edge_mask(index: CsrIndex, weights: np.ndarray, dist: np.ndarray) -> np.ndarray:
    """Boolean ``(targets, edges)`` mask of shortest-path ("tight") edges.

    ``mask[t, e]`` is True iff edge ``e`` lies on some shortest path toward
    the ``t``-th target row of ``dist``.  Replicates
    ``math.isclose(du, w + dv, rel_tol=_TIE_RTOL, abs_tol=0.0)`` plus the
    reference extraction's guards: both endpoint distances finite, and the
    tail is never the target itself.
    """
    du = dist[:, index.tail]  # (T, E)
    dv = dist[:, index.head]
    with np.errstate(invalid="ignore"):
        through = weights[np.newaxis, :] + dv
        tight = tie_close(du, through)
    tight &= np.isfinite(du) & np.isfinite(through)
    return tight


@dataclass(frozen=True, eq=False)
class SpfState:
    """All-destination SPF under one weight vector.

    Attributes:
        index: the network's array view.
        weights: per-edge weights, aligned with ``index.edges``.
        dist: ``(N, N)`` matrix, ``dist[t, u]`` = distance from node ``u``
            to node ``t`` (rows are destinations, in node-index order).
        tight: ``(N, E)`` shortest-path edge mask per destination.
    """

    index: CsrIndex
    weights: np.ndarray
    dist: np.ndarray
    tight: np.ndarray

    def dag_edge_ids(self, target_id: int) -> np.ndarray:
        """Edge indices of the ECMP DAG rooted at ``target_id``, edge order."""
        return np.flatnonzero(self.tight[target_id])

    def dag(self, target: Node) -> Dag:
        """The ECMP DAG rooted at ``target`` as a reference :class:`Dag`.

        Edges appear in network insertion order, exactly like
        :func:`repro.graph.paths.shortest_path_dag` emits them.
        """
        index = self.index
        ids = self.dag_edge_ids(index.node_id[target])
        return Dag(target, [index.edges[e] for e in ids], index.network)

    def distances(self, target: Node) -> dict[Node, float]:
        """Distance dict for one destination (reference-shaped output)."""
        row = self.dist[self.index.node_id[target]]
        return {node: float(row[i]) for i, node in enumerate(self.index.nodes)}

    def uniform_ratios(self) -> np.ndarray:
        """ECMP splitting ratios per destination as a ``(N, E)`` array.

        ``ratios[t, e] = 1 / outdeg_t(tail[e])`` for tight edges, 0
        elsewhere — the equal-split rule over each node's DAG out-edges.
        """
        return uniform_ratio_rows(self.index, self.tight)


def uniform_ratio_rows(index: CsrIndex, tight: np.ndarray) -> np.ndarray:
    """Equal-split ratio rows (one per destination) from a tight mask."""
    outdeg = np.zeros((tight.shape[0], index.num_nodes), dtype=np.float64)
    rows, edges = np.nonzero(tight)
    np.add.at(outdeg, (rows, index.tail[edges]), 1.0)
    ratios = np.zeros(tight.shape, dtype=np.float64)
    ratios[rows, edges] = 1.0 / outdeg[rows, index.tail[edges]]
    return ratios


def compute_spf_state(network: Network, weights: Mapping[Edge, float] | np.ndarray) -> SpfState:
    """Batched SPF toward every node, computed unconditionally (no memo).

    Row ``i`` of the result corresponds to destination ``index.nodes[i]``.
    The micro-benchmarks call this directly so repeated timing iterations
    measure the computation, not a cache hit.
    """
    index = csr_index(network)
    vector = weights if isinstance(weights, np.ndarray) else weight_vector(index, weights)
    matrix = index.reversed_csr(vector)
    dist = csgraph.dijkstra(matrix, directed=True, indices=None)
    tight = tight_edge_mask(index, vector, dist)
    # Defensive: the root never forwards (du = 0 can't be tight, but
    # keep the reference extraction's explicit guard anyway).
    tight &= index.tail[np.newaxis, :] != np.arange(index.num_nodes)[:, np.newaxis]
    return SpfState(index=index, weights=vector, dist=dist, tight=tight)


def all_targets_spf(
    network: Network,
    weights: Mapping[Edge, float] | np.ndarray,
) -> SpfState:
    """Memoized :func:`compute_spf_state` per (network, weight vector).

    ``ecmp_dags`` followed by a kernel propagation over the same weights
    computes distances once.
    """
    index = csr_index(network)
    vector = weights if isinstance(weights, np.ndarray) else weight_vector(index, weights)
    return index.memo(
        ("spf", vector.tobytes()), lambda: compute_spf_state(network, vector)
    )


def shortest_path_dags(
    network: Network,
    weights: Mapping[Edge, float],
    destinations: Sequence[Node] | None = None,
) -> dict[Node, Dag]:
    """ECMP shortest-path DAGs for many destinations in one batched SPF.

    Drop-in vectorized equivalent of calling
    :func:`repro.graph.paths.shortest_path_dag` per destination.
    """
    targets = list(destinations) if destinations is not None else network.nodes()
    state = all_targets_spf(network, weights)
    return {t: state.dag(t) for t in targets}
