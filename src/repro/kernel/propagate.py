"""Vectorized flow propagation: topological level sweeps on edge arrays.

The reference recursions (:mod:`repro.routing.propagation`) walk one DAG
node at a time with dict lookups.  Here a DAG is a set of edge indices plus
a *level schedule*: nodes grouped by longest-path depth from the DAG's
sources, so every edge goes from a lower level to a strictly higher one.
Propagation then processes one level of edges at a time with array ops —
``flow = arrivals[tails] * phi`` and a scattered add into the heads — and
vectorizes over any number of demand vectors (matrices, or one unit vector
per source for the oracle's fraction coefficients) simultaneously.

Levels are computed by a vectorized Kahn peel, which works for *any* DAG —
shortest-path or augmented — and detects cycles exactly like
:class:`repro.graph.dag.Dag` does (a malformed mask raises instead of
silently dropping flow).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import RoutingError
from repro.kernel.csr import CsrIndex


def edge_level_schedule(index: CsrIndex, edge_ids: np.ndarray) -> list[np.ndarray]:
    """Group DAG edges into topological levels (by tail node depth).

    Returns a list of edge-index arrays; processing them in order
    guarantees every node's arrivals are complete before any of its
    out-edges fire (a node's level is one past its deepest predecessor).

    Raises:
        RoutingError: when the edge set contains a directed cycle.
    """
    tails = index.tail[edge_ids]
    heads = index.head[edge_ids]
    indegree = np.zeros(index.num_nodes, dtype=np.int64)
    np.add.at(indegree, heads, 1)
    in_dag = np.zeros(index.num_nodes, dtype=bool)
    in_dag[tails] = True
    in_dag[heads] = True

    level = np.zeros(index.num_nodes, dtype=np.int64)
    frontier = np.flatnonzero(in_dag & (indegree == 0))
    current = 0
    settled = 0
    frontier_mask = np.zeros(index.num_nodes, dtype=bool)
    # Peel sources level by level; a node is released the round after its
    # last predecessor settles, so its level is its longest-path depth.
    while frontier.size:
        level[frontier] = current
        settled += frontier.size
        frontier_mask[:] = False
        frontier_mask[frontier] = True
        touched = heads[frontier_mask[tails]]
        np.subtract.at(indegree, touched, 1)
        frontier = np.unique(touched[indegree[touched] == 0])
        current += 1
    if settled != int(in_dag.sum()):
        raise RoutingError("edge set contains a directed cycle; not a DAG")

    edge_levels = level[tails]
    order = np.argsort(edge_levels, kind="stable")
    ordered = edge_ids[order]
    ordered_levels = edge_levels[order]
    boundaries = np.flatnonzero(np.diff(ordered_levels)) + 1
    return [chunk for chunk in np.split(ordered, boundaries) if chunk.size]


def spf_edge_schedule(
    index: CsrIndex, dist_row: np.ndarray, edge_ids: np.ndarray
) -> list[np.ndarray]:
    """Level schedule for a *shortest-path* DAG, derived from distances.

    Every tight edge strictly decreases the distance to the destination
    (weights are positive), so grouping edges by ``dist[tail]`` in
    descending order is a valid schedule: an edge's tail only receives
    flow from strictly farther tails, i.e. from earlier groups.  This is
    a handful of array ops versus the general Kahn peel — the difference
    matters because the delta evaluator builds a schedule per affected
    destination per candidate move.

    Falls back to :func:`edge_level_schedule` in the degenerate case
    where float rounding collapsed an edge's endpoint distances
    (``w + dv == dv`` for a tiny weight), where dist ordering is no
    longer a topological witness.
    """
    if edge_ids.size == 0:
        return []
    tail_dist = dist_row[index.tail[edge_ids]]
    if not (tail_dist > dist_row[index.head[edge_ids]]).all():
        return edge_level_schedule(index, edge_ids)
    order = np.argsort(-tail_dist, kind="stable")
    ordered = edge_ids[order]
    ordered_dist = tail_dist[order]
    boundaries = np.flatnonzero(np.diff(ordered_dist)) + 1
    return np.split(ordered, boundaries)


def sweep_flows(
    index: CsrIndex,
    schedule: list[np.ndarray],
    ratios: np.ndarray,
    demands: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Propagate demand vectors through one DAG's level schedule.

    Args:
        index: the network's array view.
        schedule: edge levels from :func:`edge_level_schedule`.
        ratios: per-edge splitting fractions ``phi_t``, shape ``(E,)``.
        demands: originated volume per node, shape ``(M, N)`` — one row
            per demand vector (a matrix's column toward the destination,
            or a unit row per source for fraction coefficients).

    Returns:
        ``(arrivals, flows)`` with shapes ``(M, N)`` and ``(M, E)``:
        aggregate node arrivals and per-edge flows for every demand row.
    """
    arrivals = np.array(demands, dtype=np.float64, copy=True)
    flows = np.zeros((demands.shape[0], index.num_edges), dtype=np.float64)
    for edges in schedule:
        block = arrivals[:, index.tail[edges]] * ratios[np.newaxis, edges]
        flows[:, edges] = block
        np.add.at(arrivals, (slice(None), index.head[edges]), block)
    return arrivals, flows


def grouped_sweep(
    index: CsrIndex,
    rows: np.ndarray,
    edges: np.ndarray,
    level_keys: np.ndarray,
    phi: np.ndarray,
    demands: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """One combined level sweep over many destinations' edge instances.

    Args:
        rows / edges: per-instance destination row and edge index — one
            instance per (destination, DAG edge) pair.
        level_keys: per-instance sort key; processing instances grouped
            by ascending key must respect every destination's own
            topological order (per-DAG Kahn levels, or ``-dist[tail]``
            for shortest-path DAGs).  Keys are never compared *across*
            destinations' correctness — state rows are disjoint — so any
            globally sortable key that is monotone per destination works.
        phi: per-instance splitting fraction.
        demands: originated volumes, shape ``(R, M, N)``.

    Returns:
        ``(arrivals, flows)`` of shapes ``(R, M, N)`` and ``(R, M, E)``.
    """
    num_rows, num_matrices, _num_nodes = demands.shape
    arrivals = demands.astype(np.float64, copy=True)
    flows = np.zeros((num_rows, num_matrices, index.num_edges))
    if rows.size == 0:
        return arrivals, flows
    order = np.argsort(level_keys, kind="stable")
    rows, edges = rows[order], edges[order]
    phi = phi[order]
    tails, heads = index.tail[edges], index.head[edges]
    keys = level_keys[order]
    boundaries = np.flatnonzero(np.diff(keys)) + 1
    m_cols = np.arange(num_matrices)[np.newaxis, :]
    blocks = []
    start = 0
    for stop in [*boundaries.tolist(), rows.size]:
        r = rows[start:stop, np.newaxis]
        block = arrivals[r, m_cols, tails[start:stop, np.newaxis]] * phi[start:stop, np.newaxis]
        blocks.append(block)
        np.add.at(arrivals, (r, m_cols, heads[start:stop, np.newaxis]), block)
        start = stop
    # One deferred scatter: each (row, edge) instance is written exactly
    # once, so assignment order across levels is irrelevant.
    flows[rows[:, np.newaxis], m_cols, edges[:, np.newaxis]] = np.concatenate(blocks)
    return arrivals, flows


def multi_spf_sweep(
    index: CsrIndex,
    dist_rows: np.ndarray,
    tight_rows: np.ndarray,
    ratio_rows: np.ndarray,
    demands: np.ndarray,
) -> np.ndarray:
    """Propagate many destinations' demand blocks in one combined sweep.

    Args:
        dist_rows / tight_rows / ratio_rows: per-destination SPF state,
            one row per destination, shapes ``(A, N)`` / ``(A, E)`` /
            ``(A, E)``.
        demands: originated volumes, shape ``(A, M, N)`` — matrix ``m``'s
            demand toward destination row ``a``.

    Returns:
        Edge flows, shape ``(A, M, E)``.

    The destinations' DAGs are disjoint rows of the state tensors, so
    sorting every (destination, edge) instance by descending
    ``dist[tail]`` *globally* respects each destination's own schedule
    (see :func:`spf_edge_schedule`) while collapsing A separate level
    loops into one.  Falls back to per-destination Kahn sweeps if any
    tight edge fails the strict distance decrease (degenerate float
    weights).
    """
    flows = np.zeros((demands.shape[0], demands.shape[1], index.num_edges))
    rows, edges = np.nonzero(tight_rows)
    if rows.size == 0:
        return flows
    tails = index.tail[edges]
    tail_dist = dist_rows[rows, tails]
    if not (tail_dist > dist_rows[rows, index.head[edges]]).all():
        for a in range(demands.shape[0]):
            edge_ids = np.flatnonzero(tight_rows[a])
            schedule = edge_level_schedule(index, edge_ids)
            _arrivals, flows[a] = sweep_flows(index, schedule, ratio_rows[a], demands[a])
        return flows
    _arrivals, flows = grouped_sweep(
        index, rows, edges, -tail_dist, ratio_rows[rows, edges], demands
    )
    return flows


def max_utilization(index: CsrIndex, loads: np.ndarray) -> float:
    """Worst finite-capacity utilization over ``(M, E)`` (or ``(E,)``) loads."""
    if not index.finite.any():
        return 0.0
    finite_loads = loads[..., index.finite] / index.capacity[index.finite]
    if finite_loads.size == 0:
        return 0.0
    return float(finite_loads.max())
