"""Array-based routing kernel: CSR graph view, batched SPF, vectorized flows.

Every experiment in the paper reduces to the same inner loop — per-destination
shortest-path DAGs, splitting ratios, and flow propagation to link
utilizations — and the pure-Python implementations (:mod:`repro.graph.paths`,
:mod:`repro.routing.propagation`) pay dict-and-heapq prices for every
candidate the local search or the oracle evaluates.  This package is the
vectorized re-implementation of exactly that kernel:

* :mod:`repro.kernel.csr` — an indexed CSR view of a :class:`Network`
  (node/edge index maps, weight/capacity vectors), cached per network;
* :mod:`repro.kernel.spf` — batched all-destination shortest paths via
  ``scipy.sparse.csgraph.dijkstra`` plus vectorized ECMP DAG extraction from
  the relaxation condition ``dist[u] ~= w(u,v) + dist[v]`` on edge arrays;
* :mod:`repro.kernel.propagate` — topological-level sparse sweeps producing
  node arrivals, edge loads, and max-utilization for demand matrices;
* :mod:`repro.kernel.coefficients` — vectorized assembly of the worst-case
  oracle's per-edge objective coefficients (``f_st(u) * phi_t(e)``);
* :mod:`repro.kernel.delta` — delta re-evaluation for the local search's
  weight step: a single-link weight change recomputes only the destinations
  whose shortest-path DAG actually changed.

The pure-Python implementations remain in place as the reference oracle: the
swap-in points dispatch through :func:`kernel_enabled`, and the differential
test suite (``tests/test_kernel_differential.py``) pins kernel-vs-reference
equivalence (identical DAG edge sets, ratios and loads within 1e-9).  Set
``REPRO_KERNEL=0`` to force every caller onto the reference path.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

_FALSY = ("0", "false", "False", "no", "off")

#: Tri-state override installed by :func:`set_kernel_enabled` / tests;
#: ``None`` defers to the ``REPRO_KERNEL`` environment variable.
_OVERRIDE: bool | None = None


def kernel_enabled() -> bool:
    """Whether swap-in points should use the vectorized kernel.

    Defaults to on; ``REPRO_KERNEL=0`` (or a :func:`set_kernel_enabled`
    override, which wins) selects the pure-Python reference path instead.
    """
    if _OVERRIDE is not None:
        return _OVERRIDE
    return os.environ.get("REPRO_KERNEL", "1") not in _FALSY


def set_kernel_enabled(enabled: bool | None) -> None:
    """Force the kernel on/off (``None`` restores the environment default)."""
    global _OVERRIDE
    _OVERRIDE = enabled


@contextmanager
def kernel_disabled() -> Iterator[None]:
    """Run a block on the pure-Python reference path (used by tests)."""
    previous = _OVERRIDE
    set_kernel_enabled(False)
    try:
        yield
    finally:
        set_kernel_enabled(previous)


from repro.kernel.csr import CsrIndex, csr_index, weight_vector  # noqa: E402
from repro.kernel.spf import SpfState, all_targets_spf, shortest_path_dags  # noqa: E402
from repro.kernel.delta import EcmpDeltaEvaluator  # noqa: E402

__all__ = [
    "CsrIndex",
    "EcmpDeltaEvaluator",
    "SpfState",
    "all_targets_spf",
    "csr_index",
    "kernel_disabled",
    "kernel_enabled",
    "set_kernel_enabled",
    "shortest_path_dags",
    "weight_vector",
]
