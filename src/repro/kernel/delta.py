"""Delta re-evaluation of ECMP utilization under single-weight moves.

The Fortz–Thorup-style weight step tries dozens of single-link weight
changes per move and scores each candidate by the worst ECMP utilization
across the critical demand matrices.  Re-deriving every destination's DAG
from scratch per candidate is almost entirely wasted work: changing one
link's weight leaves most destinations' shortest paths untouched.

:class:`EcmpDeltaEvaluator` keeps, for the *committed* weight vector, the
all-destination distance matrix, tight-edge masks, equal-split ratio rows,
and the per-(destination, matrix) edge flows.  A candidate move is scored
by a vectorized screen over destinations:

* raising ``w(u, v)`` can only affect destinations whose DAG currently
  *contains* the edge (``dist[t, u] ~= w_old + dist[t, v]``);
* lowering it can additionally affect destinations where the cheaper edge
  now ties or beats the incumbent (``w_new + dist[t, v] <~ dist[t, u]``);

and only the flagged destinations get a fresh (batched) Dijkstra, mask,
ratio row, and propagation — everything else reuses committed state, with
total loads updated by subtracting the stale rows and adding the fresh
ones.  ``commit`` installs a scored candidate as the new baseline.

Reachability cannot change under positive finite weight moves, so the
reference's "demand source outside the DAG" error is checked once at
construction and never again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np
from scipy.sparse import csgraph

from repro.demands.matrix import DemandMatrix
from repro.exceptions import RoutingError
from repro.graph.network import Edge, Network
from repro.kernel.csr import CsrIndex, csr_index, weight_vector
from repro.kernel.propagate import max_utilization, multi_spf_sweep
from repro.kernel.spf import tie_close, tight_edge_mask, uniform_ratio_rows


@dataclass
class _Candidate:
    """A scored (edge, weight) move, ready to commit."""

    edge_id: int
    new_weight: float
    affected: np.ndarray  # destination ids whose state was recomputed
    dist_rows: np.ndarray  # (A, N) fresh distance rows
    tight_rows: np.ndarray  # (A, E) fresh masks
    ratio_rows: np.ndarray  # (A, E) fresh equal-split rows
    flow_rows: np.ndarray  # (A, M, E) fresh per-matrix flows
    loads: np.ndarray  # (M, E) candidate total loads
    utilization: float


class EcmpDeltaEvaluator:
    """Incremental ECMP max-utilization over a fixed set of demand matrices.

    The evaluator's committed state always corresponds to the weight
    vector last installed (constructor or :meth:`commit`); candidate
    moves are always scored *relative to the committed state*, matching
    the weight search's try-one-edge-then-restore loop.
    """

    def __init__(
        self,
        network: Network,
        weights: Mapping[Edge, float],
        matrices: Sequence[DemandMatrix],
    ):
        self.index: CsrIndex = csr_index(network)
        self.weights = weight_vector(self.index, weights)
        self.matrices = list(matrices)
        index = self.index

        # Demands as a dense (targets, matrices, nodes) tensor; only
        # destinations with any demand contribute load.
        demand = np.zeros((index.num_nodes, len(self.matrices), index.num_nodes))
        for m, matrix in enumerate(self.matrices):
            for (s, t), volume in matrix.items():
                demand[index.node_id[t], m, index.node_id[s]] += volume
        self._demand = demand
        self._demanded = np.flatnonzero(demand.any(axis=(1, 2)))

        #: Persistent reversed-adjacency matrix for candidate scoring;
        #: ``evaluate_move`` pokes one slot of its data in place instead
        #: of rebuilding the matrix, and ``commit`` refreshes it.
        self._csr = self.index.reversed_csr(self.weights.copy())
        self._csr_position = self.index.csr_data_position()

        self._install(self._full_state(self.weights))
        self._check_reachability()

    # -- committed-state bookkeeping ------------------------------------

    def _full_state(self, weights: np.ndarray):
        """Distances, masks, ratios, and flows for every destination."""
        matrix = self.index.reversed_csr(weights)
        dist = csgraph.dijkstra(matrix, directed=True)
        tight = self._masked_tight(weights, dist, np.arange(self.index.num_nodes))
        ratios = uniform_ratio_rows(self.index, tight)
        flows = self._flows_for(dist, tight, ratios, np.arange(self.index.num_nodes))
        return dist, tight, ratios, flows

    def _masked_tight(
        self, weights: np.ndarray, dist_rows: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Tight mask rows with the per-row "root never forwards" guard."""
        tight = tight_edge_mask(self.index, weights, dist_rows)
        tight &= self.index.tail[np.newaxis, :] != targets[:, np.newaxis]
        return tight

    def _flows_for(
        self,
        dist_rows: np.ndarray,
        tight_rows: np.ndarray,
        ratio_rows: np.ndarray,
        targets: np.ndarray,
    ) -> np.ndarray:
        """Per-matrix edge flows, shape ``(len(targets), M, E)``.

        Destinations without demand keep zero flows — their DAG never
        carries traffic, so their masks are dropped from the combined
        sweep entirely.
        """
        flows = np.zeros((len(targets), len(self.matrices), self.index.num_edges))
        demanded = np.flatnonzero(self._demand[targets].any(axis=(1, 2)))
        if demanded.size == 0:
            return flows
        rows = targets[demanded]
        flows[demanded] = multi_spf_sweep(
            self.index,
            dist_rows[demanded],
            tight_rows[demanded],
            ratio_rows[demanded],
            self._demand[rows],
        )
        return flows

    def _install(self, state) -> None:
        self.dist, self.tight, self.ratios, self._flows = state
        self._loads = self._flows.sum(axis=0)  # (M, E)

    def _check_reachability(self) -> None:
        """Mirror the reference error for demand sources outside a DAG."""
        for t in self._demanded:
            sources = np.flatnonzero(self._demand[t].any(axis=0))
            unreachable = sources[~np.isfinite(self.dist[t, sources])]
            if unreachable.size:
                source = self.index.nodes[int(unreachable[0])]
                root = self.index.nodes[int(t)]
                raise RoutingError(
                    f"demand source {source!r} is not part of the DAG rooted at {root!r}"
                )

    # -- queries ---------------------------------------------------------

    def utilization(self) -> float:
        """Worst utilization across all matrices under committed weights."""
        if not self.matrices:
            return 0.0
        return max_utilization(self.index, self._loads)

    def per_edge_utilization(self) -> dict[Edge, float]:
        """Max-over-matrices utilization per loaded finite edge (committed).

        Matches what the reference focus-edge selection derives from
        per-matrix ``link_loads``: only edges carrying positive flow under
        some matrix appear.
        """
        result: dict[Edge, float] = {}
        if not self.matrices:
            return result
        # load / inf capacity is 0.0, exactly like the reference's
        # ``flow / capacity`` on the paper's "arbitrarily high" links.
        utilization = (self._loads / self.index.capacity[np.newaxis, :]).max(axis=0)
        for e in np.flatnonzero(self._loads.max(axis=0) > 0.0):
            result[self.index.edges[int(e)]] = float(utilization[e])
        return result

    def weight_mapping(self) -> dict[Edge, float]:
        """The committed weights as an edge-keyed dict."""
        return {edge: float(self.weights[i]) for i, edge in enumerate(self.index.edges)}

    # -- delta evaluation -------------------------------------------------

    def affected_destinations(self, edge_id: int, new_weight: float) -> np.ndarray:
        """Destinations whose DAG can change when one edge's weight moves.

        The screen is exact on the "unchanged" side: a destination it
        rejects provably keeps its distance vector and tight mask, so
        skipping its recomputation cannot alter the result.
        """
        old_weight = self.weights[edge_id]
        if new_weight == old_weight:
            return np.empty(0, dtype=np.int64)
        in_dag = self.tight[:, edge_id]
        if new_weight > old_weight:
            # Non-tight edges only get less attractive; distances keep.
            return np.flatnonzero(in_dag)
        du = self.dist[:, self.index.tail[edge_id]]
        dv = self.dist[:, self.index.head[edge_id]]
        with np.errstate(invalid="ignore"):
            through = new_weight + dv
            better_or_tie = np.isfinite(through) & (
                (du >= through) | tie_close(du, through)
            )
        return np.flatnonzero(in_dag | better_or_tie)

    def evaluate_move(
        self, edge: Edge | int, new_weight: float, prune_above: float | None = None
    ) -> _Candidate | None:
        """Score one single-edge weight change against the committed state.

        Args:
            prune_above: when given, candidates that provably cannot reach
                a utilization *below* this value return ``None`` without
                re-solving: stripping the affected destinations' flows
                leaves a lower bound on every reachable utilization (new
                flows only add load), so pruning never discards a move
                the full evaluation would have accepted.
        """
        edge_id = edge if isinstance(edge, int) else self.index.edge_id[edge]
        affected = self.affected_destinations(edge_id, float(new_weight))
        if affected.size == 0:
            utilization = self.utilization()
            if prune_above is not None and utilization >= prune_above:
                return None
            return _Candidate(
                edge_id=edge_id,
                new_weight=float(new_weight),
                affected=affected,
                dist_rows=np.empty((0, self.index.num_nodes)),
                tight_rows=np.empty((0, self.index.num_edges), dtype=bool),
                ratio_rows=np.empty((0, self.index.num_edges)),
                flow_rows=np.empty((0, len(self.matrices), self.index.num_edges)),
                loads=self._loads,
                utilization=utilization,
            )
        remainder = self._loads - self._flows[affected].sum(axis=0)
        if prune_above is not None and self.matrices:
            if max_utilization(self.index, remainder) >= prune_above:
                return None
        weights = self.weights.copy()
        weights[edge_id] = new_weight
        position = self._csr_position[edge_id]
        self._csr.data[position] = new_weight
        try:
            dist_rows = csgraph.dijkstra(self._csr, directed=True, indices=affected)
        finally:
            self._csr.data[position] = self.weights[edge_id]
        tight_rows = self._masked_tight(weights, dist_rows, affected)
        ratio_rows = uniform_ratio_rows(self.index, tight_rows)
        flow_rows = self._flows_for(dist_rows, tight_rows, ratio_rows, affected)
        loads = remainder + flow_rows.sum(axis=0)
        utilization = max_utilization(self.index, loads) if self.matrices else 0.0
        return _Candidate(
            edge_id=edge_id,
            new_weight=float(new_weight),
            affected=affected,
            dist_rows=dist_rows,
            tight_rows=tight_rows,
            ratio_rows=ratio_rows,
            flow_rows=flow_rows,
            loads=loads,
            utilization=utilization,
        )

    def commit(self, candidate: _Candidate) -> None:
        """Install a scored move as the new committed baseline."""
        self.weights = self.weights.copy()
        self.weights[candidate.edge_id] = candidate.new_weight
        self._csr.data[self._csr_position[candidate.edge_id]] = candidate.new_weight
        if candidate.affected.size:
            self.dist = self.dist.copy()
            self.tight = self.tight.copy()
            self.ratios = self.ratios.copy()
            self._flows = self._flows.copy()
            self.dist[candidate.affected] = candidate.dist_rows
            self.tight[candidate.affected] = candidate.tight_rows
            self.ratios[candidate.affected] = candidate.ratio_rows
            self._flows[candidate.affected] = candidate.flow_rows
        self._loads = candidate.loads


def ecmp_max_utilization(
    network: Network,
    weights: Mapping[Edge, float],
    matrices: Sequence[DemandMatrix],
) -> float:
    """One-shot kernel equivalent of the reference ``ecmp_utilization``."""
    if not matrices:
        return 0.0
    return EcmpDeltaEvaluator(network, weights, matrices).utilization()
