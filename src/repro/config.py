"""Global configuration knobs for solvers and experiments.

The defaults are chosen so the full test suite and the default benchmark
grids finish on a laptop.  The paper's own prototype took "few minutes to
few days" per network; we expose the same trade-off through
:class:`SolverConfig` (iteration caps, tolerances) and the ``REPRO_FULL``
environment variable, which the experiment drivers consult to decide
between reduced and paper-scale parameter grids.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace


def full_scale() -> bool:
    """Return True when paper-scale experiment grids were requested."""
    return os.environ.get("REPRO_FULL", "") not in ("", "0", "false", "False")


@dataclass(frozen=True)
class SolverConfig:
    """Tolerances and iteration caps shared by the optimization stack.

    Attributes:
        lp_tolerance: feasibility/optimality tolerance forwarded to HiGHS.
        ratio_tolerance: relative gap at which the adversarial outer loop
            declares convergence (oracle ratio within this factor of the
            incumbent objective).
        max_adversarial_rounds: cutting-plane iterations of the robust
            outer loop (each round adds one worst-case demand matrix).
        max_inner_iterations: iteration cap for the finite-set splitting
            optimizers (GP condensation rounds / L-BFGS restarts).
        smoothing_temperatures: annealing schedule for the smoothed-minimax
            optimizer; higher temperature approximates ``max`` more tightly.
        min_ratio: floor applied to splitting ratios to keep logarithms
            finite; ratios below the floor are treated as pruned edges.
        regularization: weight of the mean-utilization tie-breaker added
            to the smoothed-minimax objective.  Worst-case-optimal
            solutions are massively degenerate (many routings share the
            same max); the tie-breaker steers toward solutions that are
            also good on average, matching the balanced configurations
            the paper's GP solver produces.
        seed: default RNG seed so experiments are reproducible.
    """

    lp_tolerance: float = 1e-9
    ratio_tolerance: float = 1e-3
    max_adversarial_rounds: int = 12
    max_inner_iterations: int = 60
    smoothing_temperatures: tuple[float, ...] = (8.0, 32.0, 128.0)
    min_ratio: float = 1e-7
    regularization: float = 5e-3
    seed: int = 20161101  # arXiv v2 date of the paper

    def scaled_down(self) -> "SolverConfig":
        """A cheaper configuration for coarse searches and fast benchmarks.

        Inner (L-BFGS) iterations are kept high — they are cheap relative
        to the oracle's per-edge LP sweeps — while the expensive outer
        adversarial rounds are halved.
        """
        return replace(
            self,
            max_adversarial_rounds=max(2, self.max_adversarial_rounds // 2),
            max_inner_iterations=max(10, (2 * self.max_inner_iterations) // 3),
            smoothing_temperatures=self.smoothing_temperatures[:2],
        )


DEFAULT_CONFIG = SolverConfig()


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters shared by the experiment drivers (margins, models, sizes).

    ``full`` is the single source of truth for paper-scale vs reduced
    grids: drivers that pick topology subsets consult it instead of
    re-reading the ``REPRO_FULL`` environment variable, so a config built
    from ``--full`` behaves identically to one built from the environment.
    """

    margins: tuple[float, ...] = (1.0, 1.5, 2.0, 2.5, 3.0)
    solver: SolverConfig = field(default_factory=SolverConfig)
    demand_model: str = "gravity"
    seed: int = DEFAULT_CONFIG.seed
    full: bool = False

    @classmethod
    def reduced(cls) -> "ExperimentConfig":
        """Grid used by default in benchmarks (fast, laptop-friendly)."""
        return cls(margins=(1.0, 2.0, 3.0), solver=DEFAULT_CONFIG.scaled_down())

    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """Full grid from Table I (margins 1..5 in 0.5 increments)."""
        margins = tuple(1.0 + 0.5 * i for i in range(9))
        return cls(margins=margins, full=True)

    @classmethod
    def from_environment(cls) -> "ExperimentConfig":
        """Pick :meth:`paper` when ``REPRO_FULL`` is set, else :meth:`reduced`."""
        return cls.paper() if full_scale() else cls.reduced()
