"""Network model substrate: capacitated digraphs, per-destination DAGs, paths."""

from repro.graph.network import Network
from repro.graph.dag import Dag
from repro.graph.paths import (
    dijkstra_to_target,
    shortest_path_dag,
    hop_distances_to_target,
    reachable_to,
)

__all__ = [
    "Network",
    "Dag",
    "dijkstra_to_target",
    "shortest_path_dag",
    "hop_distances_to_target",
    "reachable_to",
]
