"""Shortest paths toward a destination, ECMP DAG extraction, reachability.

OSPF computes, at every router, the shortest paths *to* each destination;
accordingly every routine here works on distances to a target (Dijkstra
over reversed edges).  Ties are what make ECMP interesting: an edge
``(u, v)`` is on a shortest path to ``t`` exactly when
``dist(u) == w(u, v) + dist(v)``, and the set of such edges forms the
shortest-path DAG rooted at ``t``.
"""

from __future__ import annotations

import heapq
import math
from typing import Mapping

from repro.exceptions import GraphError
from repro.graph.dag import Dag
from repro.graph.network import Edge, Network, Node

#: Relative tolerance when comparing path costs for ECMP tie detection.
#: Integer OSPF costs compare exactly; float weights need a little slack.
_TIE_RTOL = 1e-12


def dijkstra_to_target(
    network: Network,
    weights: Mapping[Edge, float],
    target: Node,
) -> dict[Node, float]:
    """Distance from every node to ``target`` under the given edge weights.

    Nodes that cannot reach the target get distance ``math.inf``.

    Raises:
        GraphError: if any network edge is missing from ``weights`` or has
            a non-positive weight (OSPF costs are >= 1; zero or negative
            weights would break shortest-path DAG acyclicity).
    """
    if not network.has_node(target):
        raise GraphError(f"unknown target {target!r}")
    for edge in network.edges():
        weight = weights.get(edge)
        if weight is None:
            raise GraphError(f"missing weight for edge {edge!r}")
        if not (weight > 0):
            raise GraphError(f"weight of {edge!r} must be > 0, got {weight}")
    dist = {node: math.inf for node in network.nodes()}
    dist[target] = 0.0
    heap: list[tuple[float, int, Node]] = [(0.0, 0, target)]
    counter = 1
    done: set[Node] = set()
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        # Relax *incoming* edges: we search backwards from the target.
        for pred in network.predecessors(node):
            candidate = d + weights[(pred, node)]
            if candidate < dist[pred]:
                dist[pred] = candidate
                heapq.heappush(heap, (candidate, counter, pred))
                counter += 1
    return dist


def shortest_path_dag(
    network: Network,
    weights: Mapping[Edge, float],
    target: Node,
    distances: Mapping[Node, float] | None = None,
) -> Dag:
    """The ECMP shortest-path DAG rooted at ``target``.

    Contains edge ``(u, v)`` iff it lies on some shortest path from ``u``
    to ``target``.  Only nodes that can reach the target appear.

    Args:
        distances: precomputed node-to-target distances under the same
            ``weights`` (callers that already ran Dijkstra — DAG
            augmentation, the kernel — thread them through instead of
            paying a second search).
    """
    dist = distances if distances is not None else dijkstra_to_target(network, weights, target)
    edges: list[Edge] = []
    for u, v in network.edges():
        if u == target:
            continue
        du, dv = dist[u], dist[v]
        if math.isinf(du) or math.isinf(dv):
            continue
        through = weights[(u, v)] + dv
        if math.isclose(du, through, rel_tol=_TIE_RTOL, abs_tol=0.0):
            edges.append((u, v))
    return Dag(target, edges, network)


def hop_distances_to_target(network: Network, target: Node) -> dict[Node, float]:
    """Hop-count distance (BFS) from every node to ``target``.

    Used by DAG augmentation's "closer to the destination" rule and by
    the path-stretch metric of Fig. 11 (stretch is measured in hops).
    """
    unit = {edge: 1.0 for edge in network.edges()}
    return dijkstra_to_target(network, unit, target)


def reachable_to(network: Network, target: Node) -> set[Node]:
    """Nodes with at least one directed path to ``target``."""
    dist = hop_distances_to_target(network, target)
    return {node for node, d in dist.items() if math.isfinite(d)}


def expected_path_lengths(dag: Dag, ratios: Mapping[Edge, float]) -> dict[Node, float]:
    """Expected hop count from each DAG node to the root under the ratios.

    With splitting ratios ``phi`` the expected path length satisfies
    ``H(u) = sum_v phi(u, v) * (1 + H(v))`` and ``H(root) = 0``.  This is
    the quantity averaged in Fig. 11 (average stretch).
    """
    lengths: dict[Node, float] = {dag.root: 0.0}
    for node in reversed(dag.topological_order()):
        if node == dag.root:
            continue
        total = 0.0
        for head in dag.out_neighbors(node):
            total += ratios.get((node, head), 0.0) * (1.0 + lengths[head])
        lengths[node] = total
    return lengths
