"""Directed capacitated network model (Section III of the paper).

The network is a directed graph ``G = (V, E)`` where ``c_e`` is the
capacity of edge ``e``.  Topologies from the Internet Topology Zoo are
undirected; :meth:`Network.from_undirected` expands each undirected link
into two directed edges of equal capacity, which matches how the paper's
formulation (and OSPF itself) treats full-duplex links.

Nodes are arbitrary hashable labels (strings throughout the library).
Edge iteration order is deterministic: insertion order, which makes LP
column indices and experiment output stable across runs.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Iterator, Mapping

from repro.exceptions import GraphError

Node = Hashable
Edge = tuple[Node, Node]

#: Capacity value used for the paper's "infinite (arbitrarily high)" links.
INFINITE_CAPACITY = math.inf


class Network:
    """A directed graph with strictly positive edge capacities.

    The class is intentionally small: the TE algorithms need adjacency,
    capacities, and a stable edge ordering, nothing else.  Mutation is
    only allowed through :meth:`add_node` / :meth:`add_edge`; algorithms
    treat instances as immutable once built.
    """

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._succ: dict[Node, dict[Node, float]] = {}
        self._pred: dict[Node, dict[Node, float]] = {}
        self._edge_order: list[Edge] = []

    # -- construction ---------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Add an isolated node (idempotent)."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}

    def add_edge(self, tail: Node, head: Node, capacity: float) -> None:
        """Add the directed edge ``tail -> head`` with the given capacity.

        Raises:
            GraphError: on self-loops, duplicate edges, or non-positive
                capacity (``math.inf`` is allowed and models the paper's
                "arbitrarily high" capacities).
        """
        if tail == head:
            raise GraphError(f"self-loop on {tail!r} is not allowed")
        if not (capacity > 0):
            raise GraphError(f"capacity of ({tail!r}, {head!r}) must be > 0, got {capacity}")
        self.add_node(tail)
        self.add_node(head)
        if head in self._succ[tail]:
            raise GraphError(f"duplicate edge ({tail!r}, {head!r})")
        self._succ[tail][head] = float(capacity)
        self._pred[head][tail] = float(capacity)
        self._edge_order.append((tail, head))

    @classmethod
    def from_undirected(
        cls,
        links: Iterable[tuple[Node, Node, float]],
        name: str = "network",
    ) -> "Network":
        """Build a network from undirected links (one directed edge each way)."""
        net = cls(name)
        for u, v, capacity in links:
            net.add_edge(u, v, capacity)
            net.add_edge(v, u, capacity)
        return net

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[Node, Node, float]],
        name: str = "network",
    ) -> "Network":
        """Build a network from directed (tail, head, capacity) triples."""
        net = cls(name)
        for u, v, capacity in edges:
            net.add_edge(u, v, capacity)
        return net

    def copy(self, name: str | None = None) -> "Network":
        """A structural copy (capacities included)."""
        clone = Network(name or self.name)
        for node in self._succ:
            clone.add_node(node)
        for u, v in self._edge_order:
            clone.add_edge(u, v, self._succ[u][v])
        return clone

    # -- queries ----------------------------------------------------------

    def nodes(self) -> list[Node]:
        """All nodes, in insertion order."""
        return list(self._succ)

    def edges(self) -> list[Edge]:
        """All directed edges, in insertion order."""
        return list(self._edge_order)

    def has_node(self, node: Node) -> bool:
        return node in self._succ

    def has_edge(self, tail: Node, head: Node) -> bool:
        return tail in self._succ and head in self._succ[tail]

    def capacity(self, tail: Node, head: Node) -> float:
        try:
            return self._succ[tail][head]
        except KeyError:
            raise GraphError(f"no edge ({tail!r}, {head!r}) in {self.name!r}") from None

    def successors(self, node: Node) -> list[Node]:
        self._require_node(node)
        return list(self._succ[node])

    def predecessors(self, node: Node) -> list[Node]:
        self._require_node(node)
        return list(self._pred[node])

    def out_edges(self, node: Node) -> list[Edge]:
        self._require_node(node)
        return [(node, head) for head in self._succ[node]]

    def in_edges(self, node: Node) -> list[Edge]:
        self._require_node(node)
        return [(tail, node) for tail in self._pred[node]]

    def out_degree(self, node: Node) -> int:
        self._require_node(node)
        return len(self._succ[node])

    def in_degree(self, node: Node) -> int:
        self._require_node(node)
        return len(self._pred[node])

    def capacities(self) -> Mapping[Edge, float]:
        """Edge -> capacity for every directed edge."""
        return {(u, v): self._succ[u][v] for (u, v) in self._edge_order}

    @property
    def num_nodes(self) -> int:
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        return len(self._edge_order)

    def edge_index(self) -> dict[Edge, int]:
        """Stable edge -> column-index map used by the LP builders."""
        return {edge: i for i, edge in enumerate(self._edge_order)}

    def total_capacity_out(self, node: Node) -> float:
        """Sum of outgoing capacities (used by the gravity demand model)."""
        self._require_node(node)
        return sum(self._succ[node].values())

    def finite_capacity_edges(self) -> list[Edge]:
        """Edges with finite capacity — the only ones that can be congested."""
        return [e for e in self._edge_order if math.isfinite(self._succ[e[0]][e[1]])]

    # -- validation -------------------------------------------------------

    def is_strongly_connected(self) -> bool:
        """True when every node can reach every other node.

        TE over all-pairs demands requires strong connectivity; topology
        loaders validate this before an experiment starts.
        """
        nodes = self.nodes()
        if len(nodes) <= 1:
            return True
        return (
            len(self._search(nodes[0], self._succ)) == len(nodes)
            and len(self._search(nodes[0], self._pred)) == len(nodes)
        )

    def _search(self, start: Node, adjacency: Mapping[Node, Mapping[Node, float]]) -> set[Node]:
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbor in adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return seen

    def _require_node(self, node: Node) -> None:
        if node not in self._succ:
            raise GraphError(f"unknown node {node!r} in {self.name!r}")

    # -- dunder -----------------------------------------------------------

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    def __repr__(self) -> str:
        return f"Network({self.name!r}, nodes={self.num_nodes}, edges={self.num_edges})"
