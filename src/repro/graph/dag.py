"""Per-destination forwarding DAGs (Section III).

Destination-based routing requires that, for each destination ``t``, the
edges carrying traffic toward ``t`` form a directed acyclic graph rooted
at ``t``.  :class:`Dag` stores such a structure, validates its
invariants, and provides the topological orderings the propagation and
optimization code relies on:

* acyclicity (the defining property of a PD routing configuration);
* every node in the DAG (other than the root) has at least one out-edge,
  so flow entering the node can always make progress;
* every node can reach the root within DAG edges.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.exceptions import DagError
from repro.graph.network import Edge, Network, Node


class Dag:
    """A destination-rooted acyclic set of directed edges.

    Attributes:
        root: the destination node ``t`` the DAG routes toward.
    """

    def __init__(self, root: Node, edges: Iterable[Edge], network: Network | None = None):
        self.root = root
        #: The network the DAG was validated against (``None`` when built
        #: standalone).  The vectorized kernel uses it to resolve edge
        #: indices; kernel dispatch falls back to the pure-Python path for
        #: network-less DAGs.
        self.network = network
        self._succ: dict[Node, list[Node]] = {}
        self._pred: dict[Node, list[Node]] = {}
        self._edges: list[Edge] = []
        seen: set[Edge] = set()
        for tail, head in edges:
            if (tail, head) in seen:
                raise DagError(f"duplicate DAG edge ({tail!r}, {head!r})")
            if tail == self.root:
                raise DagError(f"root {self.root!r} must not have out-edges, got ({tail!r}, {head!r})")
            if network is not None and not network.has_edge(tail, head):
                raise DagError(f"DAG edge ({tail!r}, {head!r}) is not a network edge")
            seen.add((tail, head))
            self._edges.append((tail, head))
            self._succ.setdefault(tail, []).append(head)
            self._succ.setdefault(head, [])
            self._pred.setdefault(head, []).append(tail)
            self._pred.setdefault(tail, [])
        self._succ.setdefault(self.root, [])
        self._pred.setdefault(self.root, [])
        self._order = self._toposort()
        self._check_reaches_root()

    # -- invariants -------------------------------------------------------

    def _toposort(self) -> list[Node]:
        """Topological order (sources first, root last); raises on cycles."""
        indegree = {node: len(preds) for node, preds in self._pred.items()}
        frontier = [node for node, deg in indegree.items() if deg == 0]
        order: list[Node] = []
        while frontier:
            node = frontier.pop()
            order.append(node)
            for head in self._succ[node]:
                indegree[head] -= 1
                if indegree[head] == 0:
                    frontier.append(head)
        if len(order) != len(self._succ):
            cyclic = sorted((str(n) for n, d in indegree.items() if d > 0))
            raise DagError(f"DAG rooted at {self.root!r} contains a cycle through {cyclic}")
        return order

    def _check_reaches_root(self) -> None:
        """Every DAG node must have a directed path to the root."""
        reaches = {self.root}
        # Walk nodes in reverse topological order: all successors are decided
        # before the node itself, so one pass suffices.
        for node in reversed(self._order):
            if node in reaches:
                continue
            if any(head in reaches for head in self._succ[node]):
                reaches.add(node)
        dead = [node for node in self._succ if node not in reaches]
        if dead:
            raise DagError(
                f"DAG rooted at {self.root!r}: nodes {sorted(map(str, dead))} cannot reach the root"
            )

    # -- queries ----------------------------------------------------------

    def nodes(self) -> list[Node]:
        """All nodes appearing in the DAG (including the root)."""
        return list(self._succ)

    def edges(self) -> list[Edge]:
        return list(self._edges)

    def out_neighbors(self, node: Node) -> list[Node]:
        return list(self._succ.get(node, ()))

    def in_neighbors(self, node: Node) -> list[Node]:
        return list(self._pred.get(node, ()))

    def out_degree(self, node: Node) -> int:
        return len(self._succ.get(node, ()))

    def has_edge(self, tail: Node, head: Node) -> bool:
        return head in self._succ.get(tail, ())

    def has_node(self, node: Node) -> bool:
        return node in self._succ

    def topological_order(self) -> list[Node]:
        """Nodes ordered so every edge goes from earlier to later (root last)."""
        return list(self._order)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def splittable_nodes(self) -> list[Node]:
        """Nodes with out-degree >= 2 — the only ones with free ratios."""
        return [node for node in self._succ if len(self._succ[node]) >= 2]

    def contains_dag(self, other: "Dag") -> bool:
        """True when every edge of ``other`` is also an edge of this DAG.

        Used to verify the augmentation invariant: the augmented DAG must
        contain the shortest-path DAG so that ECMP remains a feasible
        point of COYOTE's optimization (Section V-B).
        """
        return other.root == self.root and all(self.has_edge(u, v) for u, v in other.edges())

    def __iter__(self) -> Iterator[Edge]:
        return iter(self._edges)

    def __repr__(self) -> str:
        return f"Dag(root={self.root!r}, edges={self.num_edges})"
