"""Sweep decomposition: cells, specs, and stable cache keys.

The evaluation grids (Figs. 6-8, Table I) are embarrassingly parallel:
every (topology, demand model, margin) triple is an independent robust
optimization whose result is one table row.  :class:`SweepCell` captures
exactly the inputs that determine that row, :class:`SweepSpec` is a
driver-declared list of cells plus presentation metadata, and
:func:`cell_key` derives the content-addressed cache key a cell's result
is stored under.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Iterable, Sequence

from repro.config import SolverConfig
from repro.experiments.common import SCHEME_COLUMNS

#: Version tag folded into every cache key.  Bump whenever solver or
#: evaluation semantics change in a way that invalidates stored results.
CACHE_VERSION = "runner-v1"


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work: a single table row.

    Attributes:
        experiment: registry id of the owning experiment (for artifacts).
        topology: registered topology name (e.g. "geant").
        demand_model: "gravity" or "bimodal".
        margin: uncertainty margin for the worst-case oracle.
        seed: RNG seed forwarded to the demand sampler.
        solver: solver knobs; every field participates in the cache key.
        optimizer: inner splitting optimizer ("softmax" or "gp").
    """

    experiment: str
    topology: str
    demand_model: str
    margin: float
    seed: int
    solver: SolverConfig
    optimizer: str = "softmax"

    def fingerprint(self) -> dict[str, Any]:
        """A JSON-serializable dict of everything that determines the result.

        The experiment id is deliberately excluded: fig6 and a table1 block
        over the same (topology, model, margin, solver) solve the same cell
        and share one cache entry.
        """
        return {
            "version": CACHE_VERSION,
            "schemes": list(SCHEME_COLUMNS),
            "topology": self.topology,
            "demand_model": self.demand_model,
            "margin": self.margin,
            "seed": self.seed,
            "optimizer": self.optimizer,
            "solver": {
                "lp_tolerance": self.solver.lp_tolerance,
                "ratio_tolerance": self.solver.ratio_tolerance,
                "max_adversarial_rounds": self.solver.max_adversarial_rounds,
                "max_inner_iterations": self.solver.max_inner_iterations,
                "smoothing_temperatures": list(self.solver.smoothing_temperatures),
                "min_ratio": self.solver.min_ratio,
                "regularization": self.solver.regularization,
                "seed": self.solver.seed,
            },
        }

    def setup_key(self) -> tuple:
        """Hashable key of the margin-independent preparation work.

        Cells that share a setup key reuse one :class:`ExperimentSetup`
        (DAGs, ECMP, Base, the oblivious routing) within a worker process.
        """
        return (self.topology, self.demand_model, self.seed, self.solver, self.optimizer)


def cell_key(cell: SweepCell) -> str:
    """Stable content hash of a cell (hex sha256 prefix).

    Keys are process- and platform-independent: they hash the canonical
    JSON encoding of :meth:`SweepCell.fingerprint`, so any change to the
    topology name, demand model, margin, seed, optimizer, any
    :class:`SolverConfig` field, the scheme column set, or
    :data:`CACHE_VERSION` produces a new key and therefore a cache miss.
    """
    payload = json.dumps(cell.fingerprint(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


@dataclass(frozen=True)
class SweepSpec:
    """A declared sweep: the cell grid plus table presentation metadata.

    Attributes:
        experiment: registry id (names the artifact files).
        title: table title.
        cells: the grid, in the deterministic order rows are emitted.
        with_topology_column: prefix each row with the topology's paper
            label (Table I style) instead of a margin-only row (Fig. 6-8).
        notes: free-form table annotations, appended after the rows.
    """

    experiment: str
    title: str
    cells: tuple[SweepCell, ...]
    with_topology_column: bool = False
    notes: tuple[str, ...] = ()

    def columns(self) -> tuple[str, ...]:
        prefix = ("network",) if self.with_topology_column else ()
        return (*prefix, "margin", *SCHEME_COLUMNS)

    def with_solver(self, solver: SolverConfig) -> "SweepSpec":
        """A copy of the spec with every cell's solver config replaced."""
        cells = tuple(replace(cell, solver=solver) for cell in self.cells)
        return replace(self, cells=cells)


def grid_cells(
    experiment: str,
    topologies: Sequence[str],
    demand_model: str,
    margins: Iterable[float],
    solver: SolverConfig,
    seed: int,
    optimizer: str = "softmax",
) -> tuple[SweepCell, ...]:
    """Enumerate a (topology x margin) grid in deterministic row order.

    Topology-major ordering matches how the serial drivers looped, so the
    reassembled tables are row-for-row identical to the historical output.
    """
    margins = tuple(margins)
    return tuple(
        SweepCell(
            experiment=experiment,
            topology=topology,
            demand_model=demand_model,
            margin=margin,
            seed=seed,
            solver=solver,
            optimizer=optimizer,
        )
        for topology in topologies
        for margin in margins
    )
