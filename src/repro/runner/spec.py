"""Sweep decomposition: cell kinds, cells, specs, and stable cache keys.

Any experiment whose work decomposes into independent units can ride the
sweep runner.  A :class:`CellKind` names one family of units — the
margin-grid row of Figs. 6-8/Table I, Fig. 9's per-margin local search,
Fig. 10's next-hop-budget evaluations, Fig. 11's per-topology stretch —
and declares the result columns a cell of that kind produces plus the
function that solves it.  :class:`SweepCell` captures exactly the inputs
that determine one unit's result (including the kind and its
kind-specific ``params``), :class:`SweepSpec` is a driver-declared list
of cells plus presentation metadata, and :func:`cell_key` derives the
content-addressed cache key a cell's result is stored under.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.config import SolverConfig
from repro.exceptions import ExperimentError

#: Version tag folded into every cache key.  Bump whenever solver or
#: evaluation semantics change in a way that invalidates stored results.
#: ``runner-v2`` introduced cell kinds (fingerprints gained ``kind`` /
#: ``params`` / per-kind ``columns``), orphaning every ``runner-v1`` entry.
#: ``runner-v3`` swapped the routing hot path onto the vectorized kernel
#: (:mod:`repro.kernel`): SPF/DAG extraction, flow propagation, oracle
#: coefficient assembly, and the local search's delta-evaluated weight
#: step are re-implementations of solver semantics, so every
#: ``runner-v2`` result is treated as stale.  The kernel swap-in points
#: (``ecmp/routing.py``, ``core/dag_builder.py``, ``core/local_search.py``,
#: ``routing/propagation.py``, ``routing/splitting.py``) carry matching
#: reminders.
#: ``runner-v4`` introduced the pluggable LP backend layer
#: (:mod:`repro.lp.backend`): constraint assembly, the reusable-model
#: paths, and the direct-HiGHS engine replace the per-call ``linprog``
#: wrapper.  The default backend is pinned bit-identical to the old
#: ``linprog`` path on every family tested (same engine, same effective
#: options), fingerprints gained ``lp_backend`` / ``lp_warm`` fields,
#: and every ``runner-v3`` key is stale by construction.
CACHE_VERSION = "runner-v4"


@dataclass(frozen=True)
class CellKind:
    """One family of sweep cells: its result columns and its solver.

    Attributes:
        name: registry identifier, folded into every cell fingerprint.
        solve: maps a cell of this kind to its column -> value dict.
        columns: the result columns one cell produces — a static tuple,
            or a callable of the cell's ``params`` dict for kinds whose
            column set depends on a parameter (e.g. Fig. 10's budgets).
        timeout: default per-cell wall-clock budget in seconds, enforced
            by the parallel executor's watchdog (a stuck solve is killed,
            retried, and eventually quarantined — see
            :mod:`repro.runner.faults`); ``None`` disables the watchdog
            for this kind.  Overridable per run via ``--cell-timeout``.
            Deliberately *not* part of the fingerprint: a budget bounds
            when a solve is abandoned, never what it computes, so cached
            results stay valid across timeout changes.
    """

    name: str
    solve: Callable[["SweepCell"], dict[str, float]]
    columns: tuple[str, ...] | Callable[[dict[str, Any]], Sequence[str]]
    timeout: float | None = None

    def cell_columns(self, params: Mapping[str, Any]) -> tuple[str, ...]:
        """The result columns for one cell with the given params."""
        if callable(self.columns):
            return tuple(self.columns(dict(params)))
        return tuple(self.columns)


_CELL_KINDS: dict[str, CellKind] = {}


def register_cell_kind(kind: CellKind) -> CellKind:
    """Register ``kind`` under its name (later registrations win).

    Registration happens at import of the module defining the kind's
    solve function; re-importing (or re-registering in tests) simply
    replaces the entry.
    """
    _CELL_KINDS[kind.name] = kind
    return kind


def cell_kind(name: str) -> CellKind:
    """Look up a registered kind, lazily importing the experiment drivers.

    Worker processes unpickle cells before any experiment module has
    run; importing the registry module pulls in every driver and
    therefore every kind registration.
    """
    kind = _CELL_KINDS.get(name)
    if kind is None:
        import repro.experiments.registry  # noqa: F401  (registers kinds)

        kind = _CELL_KINDS.get(name)
    if kind is None:
        raise ExperimentError(
            f"unknown cell kind {name!r}; registered: {', '.join(sorted(_CELL_KINDS))}"
        )
    return kind


def freeze_params(params: Mapping[str, Any] | None) -> tuple[tuple[str, Any], ...]:
    """Normalize a params mapping into the hashable form cells store.

    Items are sorted by name and list values converted to tuples, so two
    cells built from equal mappings compare (and hash) equal.
    """
    if not params:
        return ()

    def _freeze(value: Any) -> Any:
        if isinstance(value, (list, tuple)):
            return tuple(_freeze(item) for item in value)
        return value

    return tuple((name, _freeze(params[name])) for name in sorted(params))


def _jsonable(value: Any) -> Any:
    """Convert frozen param values into their canonical JSON shape."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return value


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work.

    Attributes:
        experiment: registry id of the owning experiment (for artifacts).
        topology: registered topology name (e.g. "geant").
        demand_model: "gravity" or "bimodal".
        margin: uncertainty margin for the worst-case oracle.
        seed: RNG seed forwarded to the demand sampler.
        solver: solver knobs; every field participates in the cache key.
        optimizer: inner splitting optimizer ("softmax" or "gp").
        kind: registered :class:`CellKind` name that solves this cell.
        params: kind-specific parameters as sorted (name, value) pairs
            (build with :func:`freeze_params`); every entry participates
            in the cache key.
    """

    experiment: str
    topology: str
    demand_model: str
    margin: float
    seed: int
    solver: SolverConfig
    optimizer: str = "softmax"
    kind: str = "margin"
    params: tuple[tuple[str, Any], ...] = ()

    def params_dict(self) -> dict[str, Any]:
        """The kind-specific parameters as a plain dict."""
        return dict(self.params)

    def cell_columns(self) -> tuple[str, ...]:
        """The result columns this cell's kind produces for its params."""
        return cell_kind(self.kind).cell_columns(self.params_dict())

    def fingerprint(self) -> dict[str, Any]:
        """A JSON-serializable dict of everything that determines the result.

        The experiment id is deliberately excluded: fig6 and a table1 block
        over the same (topology, model, margin, solver) solve the same cell
        and share one cache entry.  The kind name, its params, and its
        resolved column set all participate, so cells of different kinds
        (or a kind whose columns changed) never share an entry.
        """
        from repro.kernel import kernel_enabled
        from repro.lp import backend as lp_backend

        return {
            "version": CACHE_VERSION,
            # The vectorized kernel and the pure-Python reference are
            # pinned equivalent by the differential suite, but cached
            # results must still never cross the mode boundary: any
            # divergence (a bug, a future tolerance change) would
            # otherwise serve one mode's rows as the other's.
            "kernel": kernel_enabled(),
            # Same reasoning for the LP layer: different engines (and
            # warm-basis chaining) can return different optimal vertices
            # for degenerate LPs, which steers cutting-plane trajectories.
            # REPRO_LP_JOBS is deliberately absent — isolated solves make
            # results independent of sweep partitioning.
            "lp_backend": lp_backend.active_backend_name(),
            "lp_warm": lp_backend.warm_starts_enabled(),
            "kind": self.kind,
            "params": {name: _jsonable(value) for name, value in self.params},
            "columns": list(self.cell_columns()),
            "topology": self.topology,
            "demand_model": self.demand_model,
            "margin": self.margin,
            "seed": self.seed,
            "optimizer": self.optimizer,
            "solver": {
                "lp_tolerance": self.solver.lp_tolerance,
                "ratio_tolerance": self.solver.ratio_tolerance,
                "max_adversarial_rounds": self.solver.max_adversarial_rounds,
                "max_inner_iterations": self.solver.max_inner_iterations,
                "smoothing_temperatures": list(self.solver.smoothing_temperatures),
                "min_ratio": self.solver.min_ratio,
                "regularization": self.solver.regularization,
                "seed": self.solver.seed,
            },
        }

    def setup_key(self) -> tuple:
        """Hashable key of the margin-independent preparation work.

        Cells that share a setup key reuse one
        :class:`~repro.experiments.common.ExperimentSetup` (DAGs, ECMP,
        Base, the oblivious routing) within a worker process.  The kind
        and params are deliberately excluded: a Fig. 11 stretch cell and
        a Table I margin cell over the same (topology, model, seed,
        solver) build — and therefore share — the identical setup.
        """
        return (self.topology, self.demand_model, self.seed, self.solver, self.optimizer)


def fingerprint_key(fingerprint: Mapping[str, Any]) -> str:
    """The content key a fingerprint dict hashes to (hex sha256 prefix).

    This is the sole key-derivation primitive: an entry on disk stores
    its fingerprint, so store verification can re-derive the key from
    the stored fingerprint and compare it to the filename — a mismatch
    means the entry was corrupted or renamed.
    """
    payload = json.dumps(dict(fingerprint), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


def cell_key(cell: SweepCell) -> str:
    """Stable content hash of a cell (hex sha256 prefix).

    Keys are process- and platform-independent: they hash the canonical
    JSON encoding of :meth:`SweepCell.fingerprint`, so any change to the
    kind, its params or declared columns, the topology name, demand
    model, margin, seed, optimizer, any :class:`SolverConfig` field, or
    :data:`CACHE_VERSION` produces a new key and therefore a cache miss.
    """
    return fingerprint_key(cell.fingerprint())


@dataclass(frozen=True)
class SweepSpec:
    """A declared sweep: the cell grid plus table presentation metadata.

    Attributes:
        experiment: registry id (names the artifact files).
        title: table title.
        cells: the grid, in the deterministic order rows are emitted.
            Consecutive cells that resolve to the same row identity (see
            ``row_columns``) merge their results into one row, which is
            how Fig. 10's per-budget cells assemble margin rows.
        row_columns: identity columns prefixed to every row.  "network"
            resolves to the topology's paper label, "margin" to the
            cell's margin; any other name is looked up in the cell's
            params.
        value_columns: result columns, in display order; ``None`` derives
            them from the cells' kinds (first-seen order).
        notes: free-form table annotations, appended after the rows.
        footer: optional hook deriving extra notes from the completed
            :class:`~repro.runner.executor.SweepReport` (e.g. Fig. 9's
            mean-gap summary); not part of any cache key.
    """

    experiment: str
    title: str
    cells: tuple[SweepCell, ...]
    row_columns: tuple[str, ...] = ("margin",)
    value_columns: tuple[str, ...] | None = None
    notes: tuple[str, ...] = ()
    footer: Callable[..., Sequence[str]] | None = None

    @property
    def with_topology_column(self) -> bool:
        """Whether rows are prefixed with the topology's paper label."""
        return "network" in self.row_columns

    def resolved_value_columns(self) -> tuple[str, ...]:
        """The result columns, derived from the cells when not declared."""
        if self.value_columns is not None:
            return self.value_columns
        seen: dict[str, None] = {}
        for cell in self.cells:
            for column in cell.cell_columns():
                seen.setdefault(column, None)
        return tuple(seen)

    def columns(self) -> tuple[str, ...]:
        return (*self.row_columns, *self.resolved_value_columns())

    def with_solver(self, solver: SolverConfig) -> "SweepSpec":
        """A copy of the spec with every cell's solver config replaced."""
        cells = tuple(replace(cell, solver=solver) for cell in self.cells)
        return replace(self, cells=cells)


def spec_fingerprint(spec: SweepSpec) -> str:
    """Stable hash of the exact workload a spec describes.

    Built from the per-cell content keys (which already fold in the
    solver config, kind params, columns, and :data:`CACHE_VERSION`) plus
    the experiment id and declared columns — two runs (benchmark
    comparisons, campaign manifests) are over the same workload iff
    their fingerprints match.
    """
    payload = json.dumps(
        [spec.experiment, list(spec.columns()), [cell_key(cell) for cell in spec.cells]],
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


def grid_cells(
    experiment: str,
    topologies: Sequence[str],
    demand_model: str,
    margins: Iterable[float],
    solver: SolverConfig,
    seed: int,
    optimizer: str = "softmax",
    kind: str = "margin",
    params: Mapping[str, Any] | None = None,
) -> tuple[SweepCell, ...]:
    """Enumerate a (topology x margin) grid in deterministic row order.

    Topology-major ordering matches how the serial drivers looped, so the
    reassembled tables are row-for-row identical to the historical output.
    ``kind`` and ``params`` apply uniformly to every cell; grids whose
    params vary per cell (Fig. 10's budgets) construct cells directly.
    """
    margins = tuple(margins)
    frozen = freeze_params(params)
    return tuple(
        SweepCell(
            experiment=experiment,
            topology=topology,
            demand_model=demand_model,
            margin=margin,
            seed=seed,
            solver=solver,
            optimizer=optimizer,
            kind=kind,
            params=frozen,
        )
        for topology in topologies
        for margin in margins
    )
