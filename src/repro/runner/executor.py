"""Pull-based sweep execution: a store-aware frontier, reassembled in order.

The executor no longer chunks the whole grid upfront and fires it at a
pool; it maintains a *frontier* of unresolved cells and pulls work from
it as capacity frees up:

1. **Probe** — every cell is checked against the store first; hits are
   recorded as ``cache-hit`` lifecycle events and never scheduled.
2. **Partition** — under ``--shard i/N`` the remaining cells split into
   ours and foreign (deterministic hash of the cell key, see
   :mod:`repro.runner.campaign`); foreign cells are skipped, or queued
   *after* our own when work stealing is on.
3. **Pull** — chunks of same-setup cells are dispatched one at a time as
   workers become idle.  Immediately before dispatch each chunk is
   *re*-probed against the store (another host may have stored the cell
   since step 1) and, when a claim policy is active, claimed: a live
   foreign claim defers the cell to its owner, an expired one is stolen.
4. **Record** — results are stored and their claims released as they
   arrive (not at sweep end), so a killed run preserves every solved
   cell and a resumed run re-solves none of them.

``jobs == 1`` runs the same frontier in-process (sharing one
:class:`~repro.experiments.common.ExperimentSetup` per topology exactly
like the historical serial drivers); ``jobs > 1`` fans chunks over a
:class:`concurrent.futures.ProcessPoolExecutor`.  Cells that share a
setup key are chunked onto one worker so the expensive
margin-independent setup (DAG construction, ECMP projection, the
oblivious optimization) is built once per chunk; a per-process LRU memo
(see :mod:`repro.runner.memo`) additionally shares setups between
chunks that land on the same long-lived worker.

Cells are solved by their registered :class:`~repro.runner.spec.CellKind`
— :func:`solve_cell` just dispatches — so any experiment that
decomposes into independent units rides the same executor.

Results are reassembled strictly in ``spec.cells`` order regardless of
completion order, so a parallel sweep emits a table row-for-row
identical to the serial one.  Sharded runs resolve only part of the
grid: unresolved cells are reported as *skipped* (with a reason), the
report's ``complete`` flag turns false, and table assembly refuses to
emit a partial table — merge the shard stores (``repro cache merge``)
and re-run against the merged store to assemble the full table from
hits alone.
"""

from __future__ import annotations

import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import ExperimentError
from repro.runner.campaign import (
    ClaimPolicy,
    Shard,
    cell_shard,
    release_claim,
    try_claim,
)
from repro.runner.memo import clear_all_memos
from repro.runner.spec import SweepCell, SweepSpec, cell_key, cell_kind
from repro.runner.store import CellStore
from repro.runner.timing import CellEvent, EventLog, timed_solve
from repro.topologies.zoo import topology_info
from repro.utils.tables import Table


def solve_cell(cell: SweepCell) -> dict[str, float]:
    """Solve one cell by dispatching through its registered kind."""
    return cell_kind(cell.kind).solve(cell)


def _solve_chunk(
    solve: Callable[[SweepCell], dict[str, float]],
    cells: list[SweepCell],
    kernel_mode: bool | None = None,
) -> list[tuple[str, object, str | None, dict[str, float]]]:
    """Solve same-setup cells serially in one worker, stopping at a failure.

    Returns per-cell ("ok", ratios, None, timings) / ("error", exception,
    detail, {}) outcomes so the parent still records and caches every
    cell solved before a failure.  ``detail`` carries the failing cell's
    identity and the worker-side traceback, which pickling the exception
    alone would lose; ``timings`` carries the per-phase durations the
    worker recorded (see :mod:`repro.runner.timing`).

    ``kernel_mode`` is the coordinator's resolved
    :func:`repro.kernel.kernel_enabled` value: cache keys were computed
    under it, so the worker must solve under it too — a spawn-start
    worker would otherwise re-derive the mode from its own (fresh)
    process state and could cache one mode's rows under the other's keys.
    """
    if kernel_mode is not None:
        from repro.kernel import set_kernel_enabled

        set_kernel_enabled(kernel_mode)
    outcomes: list[tuple[str, object, str | None, dict[str, float]]] = []
    for cell in cells:
        try:
            ratios, timings = timed_solve(solve, cell)
            outcomes.append(("ok", ratios, None, timings))
        except Exception as error:
            detail = (
                f"cell {cell.topology}/{cell.demand_model} margin={cell.margin:g} "
                f"kind={cell.kind} failed in worker:\n{traceback.format_exc()}"
            )
            outcomes.append(("error", error, detail, {}))
            break
    return outcomes


def _split_chunk(
    chunk: list[tuple[int, SweepCell]],
) -> list[list[tuple[int, SweepCell]]]:
    """Split one chunk in two, preferring a margin boundary near the middle.

    Cells of one margin can share per-margin state beyond the setup
    (fig10's worst-case oracle and ideal routing), so a mid-margin split
    would rebuild that state in both workers; the boundary nearest the
    midpoint keeps each margin's cells together at no cost to balance.
    """
    half = len(chunk) // 2
    boundaries = [
        i for i in range(1, len(chunk)) if chunk[i - 1][1].margin != chunk[i][1].margin
    ]
    split = min(boundaries, key=lambda i: abs(i - half)) if boundaries else half
    return [chunk[:split], chunk[split:]]


def _chunk_pending(
    pending: list[tuple[int, SweepCell]], workers: int
) -> list[list[tuple[int, SweepCell]]]:
    """Group unsolved cells by setup key, splitting groups to fill workers.

    One chunk = one pullable unit of work: its cells share a setup, so
    the expensive margin-independent preparation runs once per chunk.
    Groups are split in two (largest first, at margin boundaries where
    possible) only while workers would otherwise be idle.
    """
    groups: dict[tuple, list[tuple[int, SweepCell]]] = {}
    for index, cell in pending:
        groups.setdefault(cell.setup_key(), []).append((index, cell))
    chunks = list(groups.values())
    while len(chunks) < workers and any(len(chunk) > 1 for chunk in chunks):
        chunks.sort(key=len)
        largest = chunks.pop()
        chunks += _split_chunk(largest)
    return chunks


def _row_value(cell: SweepCell, column: str, *, display: bool):
    """Resolve one row-identity column for a cell.

    ``display=False`` yields the raw merge key (topology name);
    ``display=True`` yields what the table prints (paper label).
    """
    if column == "network":
        return topology_info(cell.topology).paper_label if display else cell.topology
    if column == "margin":
        return cell.margin
    params = cell.params_dict()
    if column in params:
        return params[column]
    raise ExperimentError(
        f"cell kind {cell.kind!r} cannot resolve row column {column!r} "
        f"(known: network, margin, or a param name)"
    )


@dataclass(frozen=True)
class CellResult:
    """One solved (or store-served) cell.

    ``timings`` maps phase names ("setup"/"solve"/"evaluate" plus
    "total") to seconds for freshly solved cells; store-served cells
    carry an empty dict — no work was timed.  ``stolen`` marks results
    this run produced by taking over an abandoned claim or a foreign
    shard's cell under work stealing.
    """

    cell: SweepCell
    key: str
    ratios: dict[str, float]
    cached: bool
    timings: dict[str, float] = field(default_factory=dict)
    stolen: bool = False

    @property
    def status(self) -> str:
        """``"cache-hit"``, ``"stolen"``, or ``"solved"``."""
        if self.cached:
            return "cache-hit"
        return "stolen" if self.stolen else "solved"


@dataclass(frozen=True)
class SkippedCell:
    """One cell this run deliberately did not resolve, and why.

    ``reason`` is ``"foreign-shard"`` (belongs to another shard, work
    stealing off) or ``"claimed-elsewhere"`` (another owner holds a live
    claim; resume picks the result up from the store once they finish).
    """

    cell: SweepCell
    key: str
    reason: str


@dataclass
class SweepReport:
    """A completed sweep: per-cell results in spec order, plus counters."""

    spec: SweepSpec
    results: list[CellResult]
    elapsed: float = 0.0
    jobs: int = 1
    skipped: list[SkippedCell] = field(default_factory=list)
    events: list[CellEvent] = field(default_factory=list)
    shard: Shard | None = None

    @property
    def solved(self) -> int:
        return sum(1 for result in self.results if not result.cached)

    @property
    def cached(self) -> int:
        return sum(1 for result in self.results if result.cached)

    @property
    def stolen(self) -> int:
        return sum(1 for result in self.results if result.stolen)

    @property
    def complete(self) -> bool:
        """Whether every cell of the spec was resolved by this run."""
        return not self.skipped

    def lifecycle_counts(self) -> dict[str, int]:
        """Event-name -> occurrence totals for this run's lifecycle log."""
        totals: dict[str, int] = {}
        for event in self.events:
            totals[event.event] = totals.get(event.event, 0) + 1
        return totals

    def phase_totals(self) -> dict[str, float]:
        """Per-phase seconds summed over every freshly solved cell.

        Cached cells contribute nothing (their timings are empty), so
        the totals measure work actually performed by this sweep.
        """
        totals: dict[str, float] = {}
        for result in self.results:
            for name, seconds in result.timings.items():
                totals[name] = totals.get(name, 0.0) + seconds
        return totals

    def table(self) -> Table:
        """Reassemble the table in declared cell order.

        Consecutive cells that share a row identity (all ``row_columns``
        values equal) merge their result dicts into one row; the row's
        values are then picked in the spec's declared column order.

        A partial (sharded / claim-deferred) report cannot assemble a
        faithful table and refuses to: merge the shard stores and re-run
        against the merged store to serve every cell from hits.
        """
        if self.skipped:
            reasons = sorted({skip.reason for skip in self.skipped})
            raise ExperimentError(
                f"sweep {self.spec.experiment!r} is partial: {len(self.skipped)} of "
                f"{len(self.spec.cells)} cells unresolved ({', '.join(reasons)}); "
                f"merge the campaign stores (repro cache merge) and re-run against "
                f"the merged store to assemble the full table"
            )
        spec = self.spec
        value_columns = spec.resolved_value_columns()
        table = Table(spec.title, list(spec.columns()))
        groups: list[tuple[tuple, SweepCell, dict[str, float]]] = []
        for result in self.results:
            identity = tuple(
                _row_value(result.cell, column, display=False) for column in spec.row_columns
            )
            if groups and groups[-1][0] == identity:
                merged = groups[-1][2]
                clashing = sorted(set(merged) & set(result.ratios))
                if clashing:
                    # Complementary cells (fig10's base + budget cells) have
                    # disjoint columns; an overlap means the row identity is
                    # under-declared and merging would silently drop data.
                    raise ExperimentError(
                        f"sweep {spec.experiment!r}: consecutive cells share row "
                        f"identity {identity!r} but both produce {clashing!r}; "
                        f"declare a distinguishing row column (row_columns="
                        f"{spec.row_columns!r})"
                    )
                merged.update(result.ratios)
            else:
                groups.append((identity, result.cell, dict(result.ratios)))
        for _identity, cell, merged in groups:
            prefix = tuple(_row_value(cell, column, display=True) for column in spec.row_columns)
            missing = [column for column in value_columns if column not in merged]
            if missing:
                raise ExperimentError(
                    f"sweep {spec.experiment!r}: row {prefix!r} is missing result "
                    f"columns {missing!r} (cells produced {sorted(merged)!r})"
                )
            table.add_row(*prefix, *(merged[column] for column in value_columns))
        for note in spec.notes:
            table.add_note(note)
        if spec.footer is not None:
            for note in spec.footer(self):
                table.add_note(note)
        return table

    def summary(self) -> str:
        base = (
            f"{len(self.results)} cells: {self.solved} solved, "
            f"{self.cached} from cache (jobs={self.jobs}, {self.elapsed:.1f}s)"
        )
        if self.stolen:
            base += f" [{self.stolen} stolen]"
        if self.skipped:
            reasons: dict[str, int] = {}
            for skip in self.skipped:
                reasons[skip.reason] = reasons.get(skip.reason, 0) + 1
            detail = ", ".join(f"{count} {reason}" for reason, count in sorted(reasons.items()))
            base += f"; {len(self.skipped)} skipped ({detail})"
        if self.shard is not None:
            base = f"shard {self.shard}: {base}"
        return base


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    cache: CellStore | None = None,
    solve: Callable[[SweepCell], dict[str, float]] = solve_cell,
    shard: Shard | None = None,
    claims: ClaimPolicy | None = None,
    steal: bool = False,
) -> SweepReport:
    """Execute a sweep spec through the pull-based frontier.

    Args:
        spec: the declared grid.
        jobs: worker processes; 1 solves in-process, serially.
        cache: result store consulted before solving and updated after;
            ``None`` disables caching entirely.
        solve: cell solver (injectable for tests).
        shard: restrict solving to one deterministic slice of the grid;
            cells outside it are skipped (``"foreign-shard"``) unless
            ``steal`` is set.  Requires ``cache``: a sharded run only
            makes sense against a store that outlives it.
        claims: participate in claim-file coordination rooted at the
            policy's store directory — live foreign claims defer cells,
            expired ones are stolen.
        steal: after this shard's own cells, also pull unstored foreign
            cells (claim-guarded).  Requires ``claims`` so two stealing
            hosts don't duplicate whole shards.

    Returns:
        A :class:`SweepReport` whose ``results`` hold every resolved
        cell in ``spec.cells`` order; unresolved cells (sharded or
        deferred) appear in ``skipped`` and flip ``complete`` to False.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if steal and claims is None:
        raise ValueError("work stealing requires a claim policy (claims=...)")
    if (shard is not None or claims is not None) and cache is None:
        raise ValueError("sharded or claim-coordinated sweeps need a result store (cache=...)")
    # Each sweep starts from cold per-process memos so its cost never
    # depends on what an earlier in-process sweep happened to solve
    # (forked workers would otherwise inherit a warm parent memo too).
    clear_all_memos()
    started = time.time()
    events = EventLog()
    keys = [cell_key(cell) for cell in spec.cells]
    resolved: dict[int, CellResult] = {}
    stolen_indexes: set[int] = set()
    claimed_indexes: set[int] = set()
    deferred: list[tuple[int, SweepCell]] = []

    def probe(index: int, cell: SweepCell) -> bool:
        """Serve the cell from the store if present; record the hit."""
        hit = cache.get(cell) if cache is not None else None
        if hit is None:
            return False
        events.emit(keys[index], "cache-hit")
        resolved[index] = CellResult(cell=cell, key=keys[index], ratios=hit, cached=True)
        return True

    pending = [
        (index, cell) for index, cell in enumerate(spec.cells) if not probe(index, cell)
    ]

    mine, foreign = pending, []
    if shard is not None:
        mine, foreign = [], []
        for index, cell in pending:
            slot = cell_shard(keys[index], shard.count)
            (mine if slot == shard.index else foreign).append((index, cell))
    foreign_indexes = {index for index, _ in foreign}

    skipped: list[SkippedCell] = []
    if shard is not None and not steal:
        for index, cell in foreign:
            events.emit(
                keys[index], "foreign",
                detail=f"shard {cell_shard(keys[index], shard.count)}/{shard.count}",
            )
            skipped.append(SkippedCell(cell=cell, key=keys[index], reason="foreign-shard"))
    # Own cells first; foreign cells join the tail of the frontier only
    # under work stealing, so stealing never delays our own shard.
    worklist = mine + (foreign if steal else [])

    def release(index: int) -> None:
        if claims is not None and index in claimed_indexes:
            release_claim(claims, keys[index])
            claimed_indexes.discard(index)

    def prepare(batch: list[tuple[int, SweepCell]]) -> list[tuple[int, SweepCell]]:
        """Frontier gate: re-probe the store, then claim, just before dispatch."""
        runnable: list[tuple[int, SweepCell]] = []
        for index, cell in batch:
            if index in resolved:
                continue
            if probe(index, cell):
                continue  # another host stored it since the first probe
            if claims is not None:
                outcome = try_claim(claims, keys[index])
                if outcome == "held":
                    events.emit(keys[index], "deferred", detail="live claim by another owner")
                    deferred.append((index, cell))
                    continue
                claimed_indexes.add(index)
                # Probe-then-claim is not atomic: another owner can store
                # the result and release its claim between our miss above
                # and this acquisition.  An owner always stores before
                # releasing, so one more probe now that we hold the claim
                # closes that duplicate-solve window (only claim-*expiry*
                # races can still duplicate work, which is the documented
                # cost).
                if probe(index, cell):
                    release(index)
                    continue
                if outcome == "stolen" or index in foreign_indexes:
                    stolen_indexes.add(index)
                detail = "expired claim taken over" if outcome == "stolen" else ""
                if index in foreign_indexes:
                    detail = (detail + "; " if detail else "") + "foreign-shard steal"
                events.emit(keys[index], "stolen" if index in stolen_indexes else "claimed",
                            detail=detail)
            runnable.append((index, cell))
        return runnable

    # Results are stored as they arrive, not after the sweep completes, so
    # an interrupted or partially failed run preserves every solved cell.
    def record(
        index: int, cell: SweepCell, ratios: dict[str, float], timings: dict[str, float]
    ) -> None:
        resolved[index] = CellResult(
            cell=cell,
            key=keys[index],
            ratios=ratios,
            cached=False,
            timings=timings,
            stolen=index in stolen_indexes,
        )
        if cache is not None:
            cache.put(cell, ratios)
        events.emit(keys[index], "solved")
        release(index)

    first_error: Exception | None = None
    if worklist and jobs > 1:
        from repro.kernel import kernel_enabled

        kernel_mode = kernel_enabled()
        queue = deque(_chunk_pending(worklist, jobs))
        workers = min(jobs, max(1, len(queue)))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            in_flight: dict[Future, list[tuple[int, SweepCell]]] = {}

            def pull() -> None:
                """Dispatch frontier chunks while workers are idle."""
                while queue and len(in_flight) < workers and first_error is None:
                    runnable = prepare(queue.popleft())
                    if not runnable:
                        continue
                    future = pool.submit(
                        _solve_chunk, solve, [cell for _, cell in runnable], kernel_mode
                    )
                    in_flight[future] = runnable

            pull()
            while in_flight:
                done, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
                for future in done:
                    chunk = in_flight.pop(future)
                    try:
                        outcomes = future.result()
                    except Exception as error:
                        for index, _ in chunk:
                            events.emit(keys[index], "failed", detail="worker died")
                            release(index)
                        if first_error is None:
                            first_error = error
                        continue
                    for (index, cell), (status, value, detail, timings) in zip(chunk, outcomes):
                        if status == "ok":
                            record(index, cell, value, timings)
                        else:
                            events.emit(keys[index], "failed")
                            release(index)
                            # Re-attach the worker-side context lost to pickling:
                            # `raise first_error` then chains the original
                            # traceback and failing-cell identity as its cause.
                            value.__cause__ = RuntimeError(detail)
                            if first_error is None:
                                first_error = value
                    # A failed chunk stops mid-way; free the claims of its
                    # unreached cells so another owner can pick them up now
                    # instead of waiting out the TTL.
                    for index, _ in chunk[len(outcomes):]:
                        release(index)
                # Keep pulling: chunks already in flight when an error hits
                # still complete and cache their results; we just stop
                # feeding the frontier.
                pull()
        if first_error is not None:
            raise first_error
    elif worklist:
        for index, cell in worklist:
            if not prepare([(index, cell)]):
                continue
            try:
                ratios, timings = timed_solve(solve, cell)
            except Exception:
                events.emit(keys[index], "failed")
                release(index)
                raise
            record(index, cell, ratios, timings)

    # Cells deferred to a live claim may have been stored by their owner
    # while we worked; pick those up as hits, report the rest as skipped.
    for index, cell in deferred:
        if index in resolved or probe(index, cell):
            continue
        skipped.append(SkippedCell(cell=cell, key=keys[index], reason="claimed-elsewhere"))

    results = [resolved[index] for index in sorted(resolved)]
    skipped.sort(key=lambda skip: keys.index(skip.key))
    return SweepReport(
        spec=spec,
        results=results,
        elapsed=time.time() - started,
        jobs=jobs,
        skipped=skipped,
        events=events.events,
        shard=shard,
    )
