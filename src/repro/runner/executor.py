"""Parallel sweep execution: fan cells out, reassemble tables in order.

``jobs == 1`` runs cells in-process (and therefore shares one
:class:`~repro.experiments.common.ExperimentSetup` per topology exactly
like the historical serial drivers); ``jobs > 1`` fans the unsolved
cells over a :class:`concurrent.futures.ProcessPoolExecutor`.  Cells
that share a setup key (same topology, demand model, seed, solver) are
chunked onto one worker so the expensive margin-independent setup (DAG
construction, ECMP projection, the oblivious optimization) is built
once per chunk; chunks are split only when workers would otherwise sit
idle, bounding setup duplication to the worker count.  A per-process
LRU memo (see :mod:`repro.runner.memo`) additionally shares setups
between chunks that land on the same long-lived worker.

Cells are solved by their registered :class:`~repro.runner.spec.CellKind`
— :func:`solve_cell` just dispatches — so any experiment that
decomposes into independent units (the margin grids, Fig. 9's
per-margin local search, Fig. 10's budget cells, Fig. 11's per-topology
stretch) rides the same executor.

Results are reassembled strictly in ``spec.cells`` order regardless of
completion order, so a parallel sweep emits a table row-for-row
identical to the serial one.  Consecutive cells with the same row
identity merge into a single row (Fig. 10's base + budget cells), and
columns come from the spec's declaration, not any global scheme list.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import CancelledError, ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import ExperimentError
from repro.runner.cache import ResultCache
from repro.runner.memo import clear_all_memos
from repro.runner.spec import SweepCell, SweepSpec, cell_key, cell_kind
from repro.runner.timing import timed_solve
from repro.topologies.zoo import topology_info
from repro.utils.tables import Table


def solve_cell(cell: SweepCell) -> dict[str, float]:
    """Solve one cell by dispatching through its registered kind."""
    return cell_kind(cell.kind).solve(cell)


def _solve_chunk(
    solve: Callable[[SweepCell], dict[str, float]],
    cells: list[SweepCell],
    kernel_mode: bool | None = None,
) -> list[tuple[str, object, str | None, dict[str, float]]]:
    """Solve same-setup cells serially in one worker, stopping at a failure.

    Returns per-cell ("ok", ratios, None, timings) / ("error", exception,
    detail, {}) outcomes so the parent still records and caches every
    cell solved before a failure.  ``detail`` carries the failing cell's
    identity and the worker-side traceback, which pickling the exception
    alone would lose; ``timings`` carries the per-phase durations the
    worker recorded (see :mod:`repro.runner.timing`).

    ``kernel_mode`` is the coordinator's resolved
    :func:`repro.kernel.kernel_enabled` value: cache keys were computed
    under it, so the worker must solve under it too — a spawn-start
    worker would otherwise re-derive the mode from its own (fresh)
    process state and could cache one mode's rows under the other's keys.
    """
    if kernel_mode is not None:
        from repro.kernel import set_kernel_enabled

        set_kernel_enabled(kernel_mode)
    outcomes: list[tuple[str, object, str | None, dict[str, float]]] = []
    for cell in cells:
        try:
            ratios, timings = timed_solve(solve, cell)
            outcomes.append(("ok", ratios, None, timings))
        except Exception as error:
            detail = (
                f"cell {cell.topology}/{cell.demand_model} margin={cell.margin:g} "
                f"kind={cell.kind} failed in worker:\n{traceback.format_exc()}"
            )
            outcomes.append(("error", error, detail, {}))
            break
    return outcomes


def _split_chunk(
    chunk: list[tuple[int, SweepCell]],
) -> list[list[tuple[int, SweepCell]]]:
    """Split one chunk in two, preferring a margin boundary near the middle.

    Cells of one margin can share per-margin state beyond the setup
    (fig10's worst-case oracle and ideal routing), so a mid-margin split
    would rebuild that state in both workers; the boundary nearest the
    midpoint keeps each margin's cells together at no cost to balance.
    """
    half = len(chunk) // 2
    boundaries = [
        i for i in range(1, len(chunk)) if chunk[i - 1][1].margin != chunk[i][1].margin
    ]
    split = min(boundaries, key=lambda i: abs(i - half)) if boundaries else half
    return [chunk[:split], chunk[split:]]


def _chunk_pending(
    pending: list[tuple[int, SweepCell]], workers: int
) -> list[list[tuple[int, SweepCell]]]:
    """Group unsolved cells by setup key, splitting groups to fill workers.

    One chunk = one worker task: its cells share a setup, so the expensive
    margin-independent preparation runs once per chunk.  Groups are split
    in two (largest first, at margin boundaries where possible) only while
    workers would otherwise be idle.
    """
    groups: dict[tuple, list[tuple[int, SweepCell]]] = {}
    for index, cell in pending:
        groups.setdefault(cell.setup_key(), []).append((index, cell))
    chunks = list(groups.values())
    while len(chunks) < workers and any(len(chunk) > 1 for chunk in chunks):
        chunks.sort(key=len)
        largest = chunks.pop()
        chunks += _split_chunk(largest)
    return chunks


def _row_value(cell: SweepCell, column: str, *, display: bool):
    """Resolve one row-identity column for a cell.

    ``display=False`` yields the raw merge key (topology name);
    ``display=True`` yields what the table prints (paper label).
    """
    if column == "network":
        return topology_info(cell.topology).paper_label if display else cell.topology
    if column == "margin":
        return cell.margin
    params = cell.params_dict()
    if column in params:
        return params[column]
    raise ExperimentError(
        f"cell kind {cell.kind!r} cannot resolve row column {column!r} "
        f"(known: network, margin, or a param name)"
    )


@dataclass(frozen=True)
class CellResult:
    """One solved (or cache-served) cell.

    ``timings`` maps phase names ("setup"/"solve"/"evaluate" plus
    "total") to seconds for freshly solved cells; cache-served cells
    carry an empty dict — no work was timed.
    """

    cell: SweepCell
    key: str
    ratios: dict[str, float]
    cached: bool
    timings: dict[str, float] = field(default_factory=dict)


@dataclass
class SweepReport:
    """A completed sweep: per-cell results in spec order, plus counters."""

    spec: SweepSpec
    results: list[CellResult]
    elapsed: float = 0.0
    jobs: int = 1

    @property
    def solved(self) -> int:
        return sum(1 for result in self.results if not result.cached)

    @property
    def cached(self) -> int:
        return sum(1 for result in self.results if result.cached)

    def phase_totals(self) -> dict[str, float]:
        """Per-phase seconds summed over every freshly solved cell.

        Cached cells contribute nothing (their timings are empty), so
        the totals measure work actually performed by this sweep.
        """
        totals: dict[str, float] = {}
        for result in self.results:
            for name, seconds in result.timings.items():
                totals[name] = totals.get(name, 0.0) + seconds
        return totals

    def table(self) -> Table:
        """Reassemble the table in declared cell order.

        Consecutive cells that share a row identity (all ``row_columns``
        values equal) merge their result dicts into one row; the row's
        values are then picked in the spec's declared column order.
        """
        spec = self.spec
        value_columns = spec.resolved_value_columns()
        table = Table(spec.title, list(spec.columns()))
        groups: list[tuple[tuple, SweepCell, dict[str, float]]] = []
        for result in self.results:
            identity = tuple(
                _row_value(result.cell, column, display=False) for column in spec.row_columns
            )
            if groups and groups[-1][0] == identity:
                merged = groups[-1][2]
                clashing = sorted(set(merged) & set(result.ratios))
                if clashing:
                    # Complementary cells (fig10's base + budget cells) have
                    # disjoint columns; an overlap means the row identity is
                    # under-declared and merging would silently drop data.
                    raise ExperimentError(
                        f"sweep {spec.experiment!r}: consecutive cells share row "
                        f"identity {identity!r} but both produce {clashing!r}; "
                        f"declare a distinguishing row column (row_columns="
                        f"{spec.row_columns!r})"
                    )
                merged.update(result.ratios)
            else:
                groups.append((identity, result.cell, dict(result.ratios)))
        for _identity, cell, merged in groups:
            prefix = tuple(_row_value(cell, column, display=True) for column in spec.row_columns)
            missing = [column for column in value_columns if column not in merged]
            if missing:
                raise ExperimentError(
                    f"sweep {spec.experiment!r}: row {prefix!r} is missing result "
                    f"columns {missing!r} (cells produced {sorted(merged)!r})"
                )
            table.add_row(*prefix, *(merged[column] for column in value_columns))
        for note in spec.notes:
            table.add_note(note)
        if spec.footer is not None:
            for note in spec.footer(self):
                table.add_note(note)
        return table

    def summary(self) -> str:
        return (
            f"{len(self.results)} cells: {self.solved} solved, "
            f"{self.cached} from cache (jobs={self.jobs}, {self.elapsed:.1f}s)"
        )


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    solve: Callable[[SweepCell], dict[str, float]] = solve_cell,
) -> SweepReport:
    """Execute a sweep spec and reassemble its table deterministically.

    Args:
        spec: the declared grid.
        jobs: worker processes; 1 solves in-process, serially.
        cache: optional result cache consulted before solving and updated
            after; ``None`` disables caching entirely.
        solve: cell solver (injectable for tests).

    Returns:
        A :class:`SweepReport` whose ``results`` align 1:1 with
        ``spec.cells``.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    # Each sweep starts from cold per-process memos so its cost never
    # depends on what an earlier in-process sweep happened to solve
    # (forked workers would otherwise inherit a warm parent memo too).
    clear_all_memos()
    started = time.time()
    ratios_by_index: dict[int, dict[str, float]] = {}
    timings_by_index: dict[int, dict[str, float]] = {}
    cached_indexes: set[int] = set()

    pending: list[tuple[int, SweepCell]] = []
    for index, cell in enumerate(spec.cells):
        hit = cache.get(cell) if cache is not None else None
        if hit is not None:
            ratios_by_index[index] = hit
            cached_indexes.add(index)
        else:
            pending.append((index, cell))

    # Results are cached as they arrive, not after the sweep completes, so
    # an interrupted or partially failed run preserves every solved cell.
    def record(
        index: int, cell: SweepCell, ratios: dict[str, float], timings: dict[str, float]
    ) -> None:
        ratios_by_index[index] = ratios
        timings_by_index[index] = timings
        if cache is not None:
            cache.put(cell, ratios)

    if pending and jobs > 1:
        from repro.kernel import kernel_enabled

        kernel_mode = kernel_enabled()
        chunks = _chunk_pending(pending, jobs)
        workers = min(jobs, len(chunks))
        first_error: Exception | None = None
        with ProcessPoolExecutor(max_workers=workers) as pool:
            future_map = {
                pool.submit(
                    _solve_chunk, solve, [cell for _, cell in chunk], kernel_mode
                ): chunk
                for chunk in chunks
            }

            def fail_fast(error: Exception) -> None:
                nonlocal first_error
                if first_error is None:
                    first_error = error
                    for other in future_map:
                        other.cancel()

            # as_completed (not submission order) so every finished chunk is
            # cached even when another chunk fails while it was in flight.
            for future in as_completed(future_map):
                chunk = future_map[future]
                try:
                    outcomes = future.result()
                except CancelledError:
                    continue
                except Exception as error:
                    fail_fast(error)
                    continue
                for (index, cell), (status, value, detail, timings) in zip(chunk, outcomes):
                    if status == "ok":
                        record(index, cell, value, timings)
                    else:
                        # Re-attach the worker-side context lost to pickling:
                        # `raise first_error` then chains the original
                        # traceback and failing-cell identity as its cause.
                        value.__cause__ = RuntimeError(detail)
                        fail_fast(value)
            if first_error is not None:
                raise first_error
    else:
        for index, cell in pending:
            ratios, timings = timed_solve(solve, cell)
            record(index, cell, ratios, timings)

    results = [
        CellResult(
            cell=cell,
            key=cell_key(cell),
            ratios=ratios_by_index[index],
            cached=index in cached_indexes,
            timings=timings_by_index.get(index, {}),
        )
        for index, cell in enumerate(spec.cells)
    ]
    return SweepReport(spec=spec, results=results, elapsed=time.time() - started, jobs=jobs)
