"""Parallel sweep execution: fan cells out, reassemble tables in order.

``jobs == 1`` runs cells in-process (and therefore shares one
:class:`~repro.experiments.common.ExperimentSetup` per topology exactly
like the historical serial drivers); ``jobs > 1`` fans the unsolved
cells over a :class:`concurrent.futures.ProcessPoolExecutor`.  Cells
that share a setup key (same topology, demand model, seed, solver) are
chunked onto one worker so the expensive margin-independent setup (DAG
construction, ECMP projection, the oblivious optimization) is built
once per chunk; chunks are split only when workers would otherwise sit
idle, bounding setup duplication to the worker count.  A small
per-process memo additionally shares setups between chunks that land on
the same long-lived worker.

Results are reassembled strictly in ``spec.cells`` order regardless of
completion order, so a parallel sweep emits a table row-for-row
identical to the serial one.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import CancelledError, ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable

from repro.experiments.common import (
    SCHEME_COLUMNS,
    base_matrix_for,
    evaluate_margin,
    prepare_setup,
)
from repro.runner.cache import ResultCache
from repro.runner.spec import SweepCell, SweepSpec, cell_key
from repro.topologies.zoo import load_topology, topology_info
from repro.utils.tables import Table

#: Per-process cap on memoized setups; grids iterate margins within one
#: topology, so a handful of live setups covers realistic schedules.
_SETUP_MEMO_LIMIT = 4

_SETUP_MEMO: dict[tuple, object] = {}


def _setup_for(cell: SweepCell):
    """The margin-independent setup for a cell, memoized per process."""
    key = cell.setup_key()
    setup = _SETUP_MEMO.get(key)
    if setup is None:
        network = load_topology(cell.topology)
        base = base_matrix_for(network, cell.demand_model, cell.seed)
        setup = prepare_setup(network, base, cell.solver, optimizer=cell.optimizer)
        while len(_SETUP_MEMO) >= _SETUP_MEMO_LIMIT:
            _SETUP_MEMO.pop(next(iter(_SETUP_MEMO)))
        _SETUP_MEMO[key] = setup
    return setup


def solve_cell(cell: SweepCell) -> dict[str, float]:
    """Solve one cell: all four schemes' worst-case ratios at its margin."""
    return evaluate_margin(_setup_for(cell), cell.margin)


def _solve_chunk(
    solve: Callable[[SweepCell], dict[str, float]], cells: list[SweepCell]
) -> list[tuple[str, object, str | None]]:
    """Solve same-setup cells serially in one worker, stopping at a failure.

    Returns per-cell ("ok", ratios, None) / ("error", exception, detail)
    outcomes so the parent still records and caches every cell solved
    before a failure.  ``detail`` carries the failing cell's identity and
    the worker-side traceback, which pickling the exception alone would
    lose.
    """
    outcomes: list[tuple[str, object, str | None]] = []
    for cell in cells:
        try:
            outcomes.append(("ok", solve(cell), None))
        except Exception as error:
            detail = (
                f"cell {cell.topology}/{cell.demand_model} margin={cell.margin:g} "
                f"failed in worker:\n{traceback.format_exc()}"
            )
            outcomes.append(("error", error, detail))
            break
    return outcomes


def _chunk_pending(
    pending: list[tuple[int, SweepCell]], workers: int
) -> list[list[tuple[int, SweepCell]]]:
    """Group unsolved cells by setup key, splitting groups to fill workers.

    One chunk = one worker task: its cells share a setup, so the expensive
    margin-independent preparation runs once per chunk.  Groups are split
    in half (largest first) only while workers would otherwise be idle.
    """
    groups: dict[tuple, list[tuple[int, SweepCell]]] = {}
    for index, cell in pending:
        groups.setdefault(cell.setup_key(), []).append((index, cell))
    chunks = list(groups.values())
    while len(chunks) < workers and any(len(chunk) > 1 for chunk in chunks):
        chunks.sort(key=len)
        largest = chunks.pop()
        half = len(largest) // 2
        chunks += [largest[:half], largest[half:]]
    return chunks


@dataclass(frozen=True)
class CellResult:
    """One solved (or cache-served) cell."""

    cell: SweepCell
    key: str
    ratios: dict[str, float]
    cached: bool


@dataclass
class SweepReport:
    """A completed sweep: per-cell results in spec order, plus counters."""

    spec: SweepSpec
    results: list[CellResult]
    elapsed: float = 0.0
    jobs: int = 1

    @property
    def solved(self) -> int:
        return sum(1 for result in self.results if not result.cached)

    @property
    def cached(self) -> int:
        return sum(1 for result in self.results if result.cached)

    def table(self) -> Table:
        """Reassemble the table in declared cell order."""
        table = Table(self.spec.title, list(self.spec.columns()))
        for result in self.results:
            cell = result.cell
            prefix: tuple = ()
            if self.spec.with_topology_column:
                prefix = (topology_info(cell.topology).paper_label,)
            table.add_row(
                *prefix,
                cell.margin,
                *(result.ratios[scheme] for scheme in SCHEME_COLUMNS),
            )
        for note in self.spec.notes:
            table.add_note(note)
        return table

    def summary(self) -> str:
        return (
            f"{len(self.results)} cells: {self.solved} solved, "
            f"{self.cached} from cache (jobs={self.jobs}, {self.elapsed:.1f}s)"
        )


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    solve: Callable[[SweepCell], dict[str, float]] = solve_cell,
) -> SweepReport:
    """Execute a sweep spec and reassemble its table deterministically.

    Args:
        spec: the declared grid.
        jobs: worker processes; 1 solves in-process, serially.
        cache: optional result cache consulted before solving and updated
            after; ``None`` disables caching entirely.
        solve: cell solver (injectable for tests).

    Returns:
        A :class:`SweepReport` whose ``results`` align 1:1 with
        ``spec.cells``.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    started = time.time()
    ratios_by_index: dict[int, dict[str, float]] = {}
    cached_indexes: set[int] = set()

    pending: list[tuple[int, SweepCell]] = []
    for index, cell in enumerate(spec.cells):
        hit = cache.get(cell) if cache is not None else None
        if hit is not None:
            ratios_by_index[index] = hit
            cached_indexes.add(index)
        else:
            pending.append((index, cell))

    # Results are cached as they arrive, not after the sweep completes, so
    # an interrupted or partially failed run preserves every solved cell.
    def record(index: int, cell: SweepCell, ratios: dict[str, float]) -> None:
        ratios_by_index[index] = ratios
        if cache is not None:
            cache.put(cell, ratios)

    if pending and jobs > 1:
        chunks = _chunk_pending(pending, jobs)
        workers = min(jobs, len(chunks))
        first_error: Exception | None = None
        with ProcessPoolExecutor(max_workers=workers) as pool:
            future_map = {
                pool.submit(_solve_chunk, solve, [cell for _, cell in chunk]): chunk
                for chunk in chunks
            }

            def fail_fast(error: Exception) -> None:
                nonlocal first_error
                if first_error is None:
                    first_error = error
                    for other in future_map:
                        other.cancel()

            # as_completed (not submission order) so every finished chunk is
            # cached even when another chunk fails while it was in flight.
            for future in as_completed(future_map):
                chunk = future_map[future]
                try:
                    outcomes = future.result()
                except CancelledError:
                    continue
                except Exception as error:
                    fail_fast(error)
                    continue
                for (index, cell), (status, value, detail) in zip(chunk, outcomes):
                    if status == "ok":
                        record(index, cell, value)
                    else:
                        # Re-attach the worker-side context lost to pickling:
                        # `raise first_error` then chains the original
                        # traceback and failing-cell identity as its cause.
                        value.__cause__ = RuntimeError(detail)
                        fail_fast(value)
            if first_error is not None:
                raise first_error
    else:
        for index, cell in pending:
            record(index, cell, solve(cell))

    results = [
        CellResult(
            cell=cell,
            key=cell_key(cell),
            ratios=ratios_by_index[index],
            cached=index in cached_indexes,
        )
        for index, cell in enumerate(spec.cells)
    ]
    return SweepReport(spec=spec, results=results, elapsed=time.time() - started, jobs=jobs)
