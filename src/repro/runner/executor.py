"""Pull-based sweep execution: a store-aware frontier, reassembled in order.

The executor no longer chunks the whole grid upfront and fires it at a
pool; it maintains a *frontier* of unresolved cells and pulls work from
it as capacity frees up:

1. **Probe** — every cell is checked against the store first; hits are
   recorded as ``cache-hit`` lifecycle events and never scheduled.
   Cells with a persisted *failure record* at or past the attempt
   budget are quarantined up front instead of re-attempted (see
   :mod:`repro.runner.faults`).
2. **Partition** — under ``--shard i/N`` the remaining cells split into
   ours and foreign (deterministic hash of the cell key, see
   :mod:`repro.runner.campaign`); foreign cells are skipped, or queued
   *after* our own when work stealing is on.
3. **Pull** — chunks of same-setup cells are dispatched one at a time as
   workers become idle.  Immediately before dispatch each chunk is
   *re*-probed against the store (another host may have stored the cell
   since step 1) and, when a claim policy is active, claimed: a live
   foreign claim defers the cell to its owner, an expired one is stolen.
4. **Record** — results are stored and their claims released as they
   arrive (not at sweep end), so a killed run preserves every solved
   cell and a resumed run re-solves none of them.

**Failure domain.**  A failing cell no longer sinks the sweep outright:

* A solve that raises a *transient* error (OS error, memory pressure,
  unknown exceptions — :func:`~repro.runner.faults.is_transient`) is
  retried with exponential backoff and deterministic jitter, up to the
  policy's ``max_attempts``; *deterministic* errors (``ValueError``
  bugs, LP infeasibility) quarantine immediately.
* A dead worker (``BrokenProcessPool`` — segfault, OOM kill) costs only
  its in-flight chunks, which are **bisected** and re-queued so one
  poison cell is isolated instead of failing its setup-sharing
  siblings; the pool is replaced and the sweep continues.
* A stuck solve is bounded by a per-cell wall-clock budget
  (``--cell-timeout`` or the kind's :attr:`~repro.runner.spec.CellKind.
  timeout`): a **watchdog** deadline on each dispatched chunk kills the
  pool's workers when exceeded, re-queues the innocent chunks, and
  retries (then quarantines) the overdue cell.  Budgets are enforced in
  parallel mode only — a serial sweep has no worker to kill.
* Quarantining a cell persists a failure record in the store, releases
  its claim, and emits a ``quarantined`` event.  By default any
  quarantine aborts the sweep with the original error (historical
  behavior) once in-flight work drains; ``--max-failures N`` /
  ``--keep-going`` instead turn quarantined cells into
  ``SkippedCell(reason="failed")`` rows of a partially-complete report.
  When the sweep does abort, the raised exception carries a
  ``partial_report`` attribute so callers can still flush lifecycle
  events and recovered results.

``jobs == 1`` runs the same frontier in-process (sharing one
:class:`~repro.experiments.common.ExperimentSetup` per topology exactly
like the historical serial drivers); ``jobs > 1`` fans chunks over a
:class:`concurrent.futures.ProcessPoolExecutor`.  Cells that share a
setup key are chunked onto one worker so the expensive
margin-independent setup (DAG construction, ECMP projection, the
oblivious optimization) is built once per chunk; a per-process LRU memo
(see :mod:`repro.runner.memo`) additionally shares setups between
chunks that land on the same long-lived worker.

Cells are solved by their registered :class:`~repro.runner.spec.CellKind`
— :func:`solve_cell` just dispatches — so any experiment that
decomposes into independent units rides the same executor.

Results are reassembled strictly in ``spec.cells`` order regardless of
completion order, so a parallel sweep emits a table row-for-row
identical to the serial one.  Sharded runs resolve only part of the
grid: unresolved cells are reported as *skipped* (with a reason), the
report's ``complete`` flag turns false, and table assembly refuses to
emit a partial table — merge the shard stores (``repro cache merge``)
and re-run against the merged store to assemble the full table from
hits alone.  The one sanctioned exception: a report whose only skips
are quarantined cells still assembles its table, omitting those rows
with a note, so ``--keep-going`` campaigns yield usable output.
"""

from __future__ import annotations

import heapq
import itertools
import os
import signal
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import ExperimentError
from repro.runner import faults
from repro.runner.campaign import (
    ClaimPolicy,
    Shard,
    cell_shard,
    release_claim,
    try_claim,
)
from repro.runner.faults import (
    CellTimeoutError,
    FailurePolicy,
    WorkerCrashError,
    backoff_delay,
    error_class,
    failure_record,
    is_transient,
)
from repro.runner.memo import clear_all_memos
from repro.runner.spec import SweepCell, SweepSpec, cell_key, cell_kind
from repro.runner.store import CellStore
from repro.runner.timing import CellEvent, EventLog, timed_solve
from repro.topologies.zoo import topology_info
from repro.utils.tables import Table


def solve_cell(cell: SweepCell) -> dict[str, float]:
    """Solve one cell by dispatching through its registered kind."""
    return cell_kind(cell.kind).solve(cell)


def _solve_chunk(
    solve: Callable[[SweepCell], dict[str, float]],
    cells: list[tuple[str, SweepCell]],
    kernel_mode: bool | None = None,
) -> list[tuple[str, object, str | None, dict[str, float]]]:
    """Solve same-setup cells serially in one worker, stopping at a failure.

    ``cells`` carries each cell's content key alongside it so the worker
    can fire key-addressed injected faults (:func:`repro.runner.faults.
    trigger`) without re-deriving keys.  Returns per-cell ("ok", ratios,
    None, timings) / ("error", exception, detail, {}) outcomes so the
    parent still records and caches every cell solved before a failure.
    ``detail`` carries the failing cell's identity and the worker-side
    traceback, which pickling the exception alone would lose;
    ``timings`` carries the per-phase durations the worker recorded
    (see :mod:`repro.runner.timing`).

    ``kernel_mode`` is the coordinator's resolved
    :func:`repro.kernel.kernel_enabled` value: cache keys were computed
    under it, so the worker must solve under it too — a spawn-start
    worker would otherwise re-derive the mode from its own (fresh)
    process state and could cache one mode's rows under the other's keys.
    """
    if kernel_mode is not None:
        from repro.kernel import set_kernel_enabled

        set_kernel_enabled(kernel_mode)
    outcomes: list[tuple[str, object, str | None, dict[str, float]]] = []
    for key, cell in cells:
        try:
            faults.trigger("solve", key)
            ratios, timings = timed_solve(solve, cell)
            outcomes.append(("ok", ratios, None, timings))
        except Exception as error:
            detail = (
                f"cell {cell.topology}/{cell.demand_model} margin={cell.margin:g} "
                f"kind={cell.kind} failed in worker:\n{traceback.format_exc()}"
            )
            outcomes.append(("error", error, detail, {}))
            break
    return outcomes


def _split_chunk(
    chunk: list[tuple[int, SweepCell]],
) -> list[list[tuple[int, SweepCell]]]:
    """Split one chunk in two, preferring a margin boundary near the middle.

    Cells of one margin can share per-margin state beyond the setup
    (fig10's worst-case oracle and ideal routing), so a mid-margin split
    would rebuild that state in both workers; the boundary nearest the
    midpoint keeps each margin's cells together at no cost to balance.
    """
    half = len(chunk) // 2
    boundaries = [
        i for i in range(1, len(chunk)) if chunk[i - 1][1].margin != chunk[i][1].margin
    ]
    split = min(boundaries, key=lambda i: abs(i - half)) if boundaries else half
    return [chunk[:split], chunk[split:]]


def _chunk_pending(
    pending: list[tuple[int, SweepCell]], workers: int
) -> list[list[tuple[int, SweepCell]]]:
    """Group unsolved cells by setup key, splitting groups to fill workers.

    One chunk = one pullable unit of work: its cells share a setup, so
    the expensive margin-independent preparation runs once per chunk.
    Groups are split in two (largest first, at margin boundaries where
    possible) only while workers would otherwise be idle.
    """
    groups: dict[tuple, list[tuple[int, SweepCell]]] = {}
    for index, cell in pending:
        groups.setdefault(cell.setup_key(), []).append((index, cell))
    chunks = list(groups.values())
    while len(chunks) < workers and any(len(chunk) > 1 for chunk in chunks):
        chunks.sort(key=len)
        largest = chunks.pop()
        chunks += _split_chunk(largest)
    return chunks


def _row_value(cell: SweepCell, column: str, *, display: bool):
    """Resolve one row-identity column for a cell.

    ``display=False`` yields the raw merge key (topology name);
    ``display=True`` yields what the table prints (paper label).
    """
    if column == "network":
        return topology_info(cell.topology).paper_label if display else cell.topology
    if column == "margin":
        return cell.margin
    params = cell.params_dict()
    if column in params:
        return params[column]
    raise ExperimentError(
        f"cell kind {cell.kind!r} cannot resolve row column {column!r} "
        f"(known: network, margin, or a param name)"
    )


@dataclass(frozen=True)
class CellResult:
    """One solved (or store-served) cell.

    ``timings`` maps phase names ("setup"/"solve"/"evaluate" plus
    "total") to seconds for freshly solved cells; store-served cells
    carry an empty dict — no work was timed.  ``stolen`` marks results
    this run produced by taking over an abandoned claim or a foreign
    shard's cell under work stealing.
    """

    cell: SweepCell
    key: str
    ratios: dict[str, float]
    cached: bool
    timings: dict[str, float] = field(default_factory=dict)
    stolen: bool = False

    @property
    def status(self) -> str:
        """``"cache-hit"``, ``"stolen"``, or ``"solved"``."""
        if self.cached:
            return "cache-hit"
        return "stolen" if self.stolen else "solved"


@dataclass(frozen=True)
class SkippedCell:
    """One cell this run deliberately did not resolve, and why.

    ``reason`` is ``"foreign-shard"`` (belongs to another shard, work
    stealing off), ``"claimed-elsewhere"`` (another owner holds a live
    claim; resume picks the result up from the store once they finish),
    or ``"failed"`` (quarantined after exhausting its attempts — a
    failure record in the store carries the error; triage with
    ``repro cache failures``).  ``detail`` refines the reason (e.g. the
    failure's error class).
    """

    cell: SweepCell
    key: str
    reason: str
    detail: str = ""


@dataclass
class SweepReport:
    """A completed sweep: per-cell results in spec order, plus counters.

    ``elapsed`` is measured on the monotonic clock
    (``time.perf_counter``), so wall-clock adjustments (NTP steps, DST)
    can never corrupt benchmark payloads; lifecycle *events* keep epoch
    timestamps for cross-host merging (see :mod:`repro.runner.timing`).
    ``aborted`` marks the partial report attached to a raised sweep
    error — its results are real, but the run did not finish.
    """

    spec: SweepSpec
    results: list[CellResult]
    elapsed: float = 0.0
    jobs: int = 1
    skipped: list[SkippedCell] = field(default_factory=list)
    events: list[CellEvent] = field(default_factory=list)
    shard: Shard | None = None
    aborted: bool = False

    @property
    def solved(self) -> int:
        return sum(1 for result in self.results if not result.cached)

    @property
    def cached(self) -> int:
        return sum(1 for result in self.results if result.cached)

    @property
    def stolen(self) -> int:
        return sum(1 for result in self.results if result.stolen)

    @property
    def quarantined(self) -> int:
        """Cells skipped as ``"failed"`` (quarantined) by this run."""
        return sum(1 for skip in self.skipped if skip.reason == "failed")

    @property
    def complete(self) -> bool:
        """Whether every cell of the spec was resolved by this run."""
        return not self.skipped and not self.aborted

    @property
    def table_ready(self) -> bool:
        """Whether :meth:`table` can assemble a faithful table.

        True for complete runs, and for runs whose *only* skips are
        quarantined cells — those assemble with the failed rows omitted
        and a note, so ``--keep-going`` campaigns still emit output.
        Sharded/deferred partials (and aborted reports) stay False.
        """
        return not self.aborted and all(skip.reason == "failed" for skip in self.skipped)

    def lifecycle_counts(self) -> dict[str, int]:
        """Event-name -> occurrence totals for this run's lifecycle log."""
        totals: dict[str, int] = {}
        for event in self.events:
            totals[event.event] = totals.get(event.event, 0) + 1
        return totals

    def phase_totals(self) -> dict[str, float]:
        """Per-phase seconds summed over every freshly solved cell.

        Cached cells contribute nothing (their timings are empty), so
        the totals measure work actually performed by this sweep.
        """
        totals: dict[str, float] = {}
        for result in self.results:
            for name, seconds in result.timings.items():
                totals[name] = totals.get(name, 0.0) + seconds
        return totals

    def table(self) -> Table:
        """Reassemble the table in declared cell order.

        Consecutive cells that share a row identity (all ``row_columns``
        values equal) merge their result dicts into one row; the row's
        values are then picked in the spec's declared column order.

        A partial (sharded / claim-deferred) report cannot assemble a
        faithful table and refuses to: merge the shard stores and re-run
        against the merged store to serve every cell from hits.  A
        report whose only skips are *quarantined* cells does assemble —
        rows touching a failed cell are omitted and counted in a note,
        which is the usable-partial-output contract of ``--keep-going``.
        """
        if not self.table_ready:
            reasons = sorted({skip.reason for skip in self.skipped} or {"aborted"})
            raise ExperimentError(
                f"sweep {self.spec.experiment!r} is partial: {len(self.skipped)} of "
                f"{len(self.spec.cells)} cells unresolved ({', '.join(reasons)}); "
                f"merge the campaign stores (repro cache merge) and re-run against "
                f"the merged store to assemble the full table"
            )
        spec = self.spec
        omitted = {
            tuple(_row_value(skip.cell, column, display=False) for column in spec.row_columns)
            for skip in self.skipped
        }
        value_columns = spec.resolved_value_columns()
        table = Table(spec.title, list(spec.columns()))
        groups: list[tuple[tuple, SweepCell, dict[str, float]]] = []
        for result in self.results:
            identity = tuple(
                _row_value(result.cell, column, display=False) for column in spec.row_columns
            )
            if groups and groups[-1][0] == identity:
                merged = groups[-1][2]
                clashing = sorted(set(merged) & set(result.ratios))
                if clashing:
                    # Complementary cells (fig10's base + budget cells) have
                    # disjoint columns; an overlap means the row identity is
                    # under-declared and merging would silently drop data.
                    raise ExperimentError(
                        f"sweep {spec.experiment!r}: consecutive cells share row "
                        f"identity {identity!r} but both produce {clashing!r}; "
                        f"declare a distinguishing row column (row_columns="
                        f"{spec.row_columns!r})"
                    )
                merged.update(result.ratios)
            else:
                groups.append((identity, result.cell, dict(result.ratios)))
        for identity, cell, merged in groups:
            if identity in omitted:
                # A sibling cell of this row was quarantined; a partial
                # row would render as silently-missing columns.
                continue
            prefix = tuple(_row_value(cell, column, display=True) for column in spec.row_columns)
            missing = [column for column in value_columns if column not in merged]
            if missing:
                raise ExperimentError(
                    f"sweep {spec.experiment!r}: row {prefix!r} is missing result "
                    f"columns {missing!r} (cells produced {sorted(merged)!r})"
                )
            table.add_row(*prefix, *(merged[column] for column in value_columns))
        if omitted:
            table.add_note(
                f"{len(omitted)} row(s) omitted: cell(s) quarantined after repeated "
                f"failures (triage: repro cache failures)"
            )
        for note in spec.notes:
            table.add_note(note)
        if spec.footer is not None:
            for note in spec.footer(self):
                table.add_note(note)
        return table

    def summary(self) -> str:
        base = (
            f"{len(self.results)} cells: {self.solved} solved, "
            f"{self.cached} from cache (jobs={self.jobs}, {self.elapsed:.1f}s)"
        )
        if self.stolen:
            base += f" [{self.stolen} stolen]"
        if self.skipped:
            reasons: dict[str, int] = {}
            for skip in self.skipped:
                reasons[skip.reason] = reasons.get(skip.reason, 0) + 1
            detail = ", ".join(f"{count} {reason}" for reason, count in sorted(reasons.items()))
            base += f"; {len(self.skipped)} skipped ({detail})"
        if self.aborted:
            base += " [aborted]"
        if self.shard is not None:
            base = f"shard {self.shard}: {base}"
        return base


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    cache: CellStore | None = None,
    solve: Callable[[SweepCell], dict[str, float]] = solve_cell,
    shard: Shard | None = None,
    claims: ClaimPolicy | None = None,
    steal: bool = False,
    failures: FailurePolicy | None = None,
) -> SweepReport:
    """Execute a sweep spec through the pull-based frontier.

    Args:
        spec: the declared grid.
        jobs: worker processes; 1 solves in-process, serially.
        cache: result store consulted before solving and updated after;
            ``None`` disables caching entirely (including failure
            records — nothing persists, so every run re-attempts).
        solve: cell solver (injectable for tests).
        shard: restrict solving to one deterministic slice of the grid;
            cells outside it are skipped (``"foreign-shard"``) unless
            ``steal`` is set.  Requires ``cache``: a sharded run only
            makes sense against a store that outlives it.
        claims: participate in claim-file coordination rooted at the
            policy's store directory — live foreign claims defer cells,
            expired ones are stolen.  Claims held when the sweep exits
            for *any* reason (abort, ``KeyboardInterrupt``) are released
            on the way out, so sibling owners never wait out the TTL.
        steal: after this shard's own cells, also pull unstored foreign
            cells (claim-guarded).  Requires ``claims`` so two stealing
            hosts don't duplicate whole shards.
        failures: the retry/timeout/quarantine policy (see
            :class:`~repro.runner.faults.FailurePolicy`); defaults to
            3 attempts with backoff, kind-default timeouts, and abort on
            the first quarantined cell.

    Returns:
        A :class:`SweepReport` whose ``results`` hold every resolved
        cell in ``spec.cells`` order; unresolved cells (sharded,
        deferred, or quarantined) appear in ``skipped`` and flip
        ``complete`` to False.

    Raises:
        The first failing cell's error once quarantined cells exceed the
        policy's budget (in-flight work still drains and is cached
        first).  The raised exception carries a ``partial_report``
        attribute — an ``aborted`` :class:`SweepReport` with everything
        resolved so far — so callers can flush artifacts.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if steal and claims is None:
        raise ValueError("work stealing requires a claim policy (claims=...)")
    if (shard is not None or claims is not None) and cache is None:
        raise ValueError("sharded or claim-coordinated sweeps need a result store (cache=...)")
    policy = failures if failures is not None else FailurePolicy()
    # Each sweep starts from cold per-process memos so its cost never
    # depends on what an earlier in-process sweep happened to solve
    # (forked workers would otherwise inherit a warm parent memo too).
    clear_all_memos()
    started = time.perf_counter()
    events = EventLog()
    keys = [cell_key(cell) for cell in spec.cells]
    resolved: dict[int, CellResult] = {}
    stolen_indexes: set[int] = set()
    claimed_indexes: set[int] = set()
    deferred: list[tuple[int, SweepCell]] = []
    attempts: dict[int, int] = {}
    failed: dict[int, SkippedCell] = {}
    first_error: Exception | None = None

    def probe(index: int, cell: SweepCell) -> bool:
        """Serve the cell from the store if present; record the hit."""
        hit = cache.get(cell) if cache is not None else None
        if hit is None:
            return False
        events.emit(keys[index], "cache-hit")
        resolved[index] = CellResult(cell=cell, key=keys[index], ratios=hit, cached=True)
        return True

    def release(index: int) -> None:
        if claims is not None and index in claimed_indexes:
            release_claim(claims, keys[index])
            claimed_indexes.discard(index)

    pending = [
        (index, cell) for index, cell in enumerate(spec.cells) if not probe(index, cell)
    ]

    mine, foreign = pending, []
    if shard is not None:
        mine, foreign = [], []
        for index, cell in pending:
            slot = cell_shard(keys[index], shard.count)
            (mine if slot == shard.index else foreign).append((index, cell))
    foreign_indexes = {index for index, _ in foreign}

    skipped: list[SkippedCell] = []
    if shard is not None and not steal:
        for index, cell in foreign:
            events.emit(
                keys[index], "foreign",
                detail=f"shard {cell_shard(keys[index], shard.count)}/{shard.count}",
            )
            skipped.append(SkippedCell(cell=cell, key=keys[index], reason="foreign-shard"))
    # Own cells first; foreign cells join the tail of the frontier only
    # under work stealing, so stealing never delays our own shard.
    worklist = mine + (foreign if steal else [])

    def over_budget() -> bool:
        return not policy.keep_going and len(failed) > policy.max_failures

    def quarantine(
        index: int,
        cell: SweepCell,
        error: Exception,
        label: str,
        detail: str,
        *,
        persist: bool = True,
    ) -> None:
        """Give up on a cell: persist its failure record, skip its row.

        ``persist=False`` skips (re)writing the record — used when the
        quarantine *came from* a persisted record, which already carries
        the original error and must not be clobbered with a synthetic one.
        """
        nonlocal first_error
        count = attempts.get(index, 0)
        events.emit(
            keys[index], "quarantined", detail=f"{label} after {count} attempt(s)"
        )
        if cache is not None and persist:
            cache.put_failure(
                cell,
                failure_record(
                    cell, keys[index], attempts=count, label=label, error=error,
                    detail=detail,
                ),
            )
        release(index)
        failed[index] = SkippedCell(
            cell=cell, key=keys[index], reason="failed", detail=label
        )
        if over_budget() and first_error is None:
            first_error = error

    def handle_failure(
        index: int,
        cell: SweepCell,
        error: Exception,
        detail: str,
        *,
        label: str | None = None,
    ) -> float | None:
        """Count one failed attempt; a retry backoff delay, or None if quarantined.

        ``label`` overrides classification for synthetic failures the
        classifier never sees (worker death, watchdog timeout) — both
        count as transient, since a retry gets a fresh worker.
        """
        count = attempts.get(index, 0) + 1
        attempts[index] = count
        transient = True if label is not None else is_transient(error)
        label = label if label is not None else error_class(error)
        if transient and count < policy.max_attempts:
            delay = backoff_delay(policy, keys[index], count)
            events.emit(
                keys[index], "retried",
                detail=(
                    f"attempt {count} failed ({label}: {type(error).__name__}); "
                    f"backing off {delay:.2f}s"
                ),
            )
            return delay
        quarantine(index, cell, error, label, detail)
        return None

    # Resume gate: a persisted *deterministic* failure record marks a
    # poison cell — resume quarantines it up front instead of blindly
    # re-attempting it (re-arm with `repro cache failures --clear`).
    # Transient records (worker death, timeout, OS errors) describe the
    # environment, not the cell: those cells are re-attempted, with the
    # recorded attempt count seeding the budget so it stays cumulative
    # across runs; success clears the record.
    if cache is not None and worklist:
        remaining: list[tuple[int, SweepCell]] = []
        for index, cell in worklist:
            record_payload = cache.get_failure(cell)
            if record_payload is None:
                remaining.append((index, cell))
                continue
            prior_raw = record_payload.get("attempts")
            if isinstance(prior_raw, (int, float)) and prior_raw >= 0:
                attempts[index] = int(prior_raw)
            if record_payload.get("error_class") != "deterministic":
                remaining.append((index, cell))
                continue
            error = ExperimentError(
                f"cell {keys[index]} carries a persisted failure record "
                f"({record_payload.get('error_type', '?')}: "
                f"{record_payload.get('message', '?')}); re-arm it with "
                f"`repro cache failures --clear`, or run with --keep-going / "
                f"--max-failures to skip its row"
            )
            quarantine(index, cell, error, "persisted-record", "", persist=False)
        worklist = remaining

    def prepare(batch: list[tuple[int, SweepCell]]) -> list[tuple[int, SweepCell]]:
        """Frontier gate: re-probe the store, then claim, just before dispatch."""
        runnable: list[tuple[int, SweepCell]] = []
        for index, cell in batch:
            if index in resolved or index in failed:
                continue
            if probe(index, cell):
                release(index)  # a retried cell may already hold its claim
                continue  # another host stored it since the first probe
            if claims is not None and index not in claimed_indexes:
                outcome = try_claim(claims, keys[index])
                if outcome == "held":
                    events.emit(keys[index], "deferred", detail="live claim by another owner")
                    deferred.append((index, cell))
                    continue
                claimed_indexes.add(index)
                # Probe-then-claim is not atomic: another owner can store
                # the result and release its claim between our miss above
                # and this acquisition.  An owner always stores before
                # releasing, so one more probe now that we hold the claim
                # closes that duplicate-solve window (only claim-*expiry*
                # races can still duplicate work, which is the documented
                # cost).
                if probe(index, cell):
                    release(index)
                    continue
                if outcome == "stolen" or index in foreign_indexes:
                    stolen_indexes.add(index)
                detail = "expired claim taken over" if outcome == "stolen" else ""
                if index in foreign_indexes:
                    detail = (detail + "; " if detail else "") + "foreign-shard steal"
                events.emit(keys[index], "stolen" if index in stolen_indexes else "claimed",
                            detail=detail)
            runnable.append((index, cell))
        return runnable

    # Results are stored as they arrive, not after the sweep completes, so
    # an interrupted or partially failed run preserves every solved cell.
    def record(
        index: int, cell: SweepCell, ratios: dict[str, float], timings: dict[str, float]
    ) -> None:
        resolved[index] = CellResult(
            cell=cell,
            key=keys[index],
            ratios=ratios,
            cached=False,
            timings=timings,
            stolen=index in stolen_indexes,
        )
        if cache is not None:
            cache.put(cell, ratios)
            if index in attempts:
                # Success after failures: the record is stale — leaving
                # it would quarantine a now-working cell on resume.
                cache.clear_failure(cell)
        events.emit(keys[index], "solved")
        release(index)

    def cell_budget(cell: SweepCell) -> float | None:
        """The effective wall-clock budget for one cell, if any."""
        timeout = policy.cell_timeout
        if timeout is None:
            timeout = cell_kind(cell.kind).timeout
        return timeout if timeout and timeout > 0 else None

    try:
        if worklist and first_error is None and jobs > 1:
            _run_parallel(
                worklist=worklist,
                jobs=jobs,
                solve=solve,
                keys=keys,
                events=events,
                policy=policy,
                resolved=resolved,
                failed=failed,
                prepare=prepare,
                record=record,
                handle_failure=handle_failure,
                cell_budget=cell_budget,
                get_first_error=lambda: first_error,
            )
        elif worklist and first_error is None:
            frontier = deque(worklist)
            while frontier and first_error is None:
                index, cell = frontier.popleft()
                runnable = prepare([(index, cell)])
                if not runnable:
                    continue
                try:
                    faults.trigger("solve", keys[index])
                    ratios, timings = timed_solve(solve, cell)
                except Exception as error:
                    events.emit(keys[index], "failed", detail=type(error).__name__)
                    delay = handle_failure(index, cell, error, traceback.format_exc())
                    if delay is not None:
                        time.sleep(delay)
                        frontier.appendleft((index, cell))
                    continue
                record(index, cell, ratios, timings)
    finally:
        # Claims must never outlive the run that holds them: on abort,
        # KeyboardInterrupt, or SIGTERM-turned-exception, releasing here
        # lets sibling owners reclaim the cells immediately instead of
        # waiting out the TTL.
        for index in list(claimed_indexes):
            release(index)

    # Cells deferred to a live claim may have been stored by their owner
    # while we worked; pick those up as hits, report the rest as skipped.
    for index, cell in deferred:
        if index in resolved:
            continue
        if first_error is None and probe(index, cell):
            continue
        skipped.append(SkippedCell(cell=cell, key=keys[index], reason="claimed-elsewhere"))

    skipped.extend(failed.values())
    results = [resolved[index] for index in sorted(resolved)]
    key_order = {key: index for index, key in enumerate(keys)}
    skipped.sort(key=lambda skip: key_order[skip.key])
    report = SweepReport(
        spec=spec,
        results=results,
        elapsed=time.perf_counter() - started,
        jobs=jobs,
        skipped=skipped,
        events=events.events,
        shard=shard,
        aborted=first_error is not None,
    )
    if first_error is not None:
        # Failing runs still carry everything they resolved: the CLI
        # flushes lifecycle events (and recovered results) from this.
        first_error.partial_report = report
        raise first_error
    return report


def _run_parallel(
    *,
    worklist: list[tuple[int, SweepCell]],
    jobs: int,
    solve: Callable[[SweepCell], dict[str, float]],
    keys: list[str],
    events: EventLog,
    policy: FailurePolicy,
    resolved: dict[int, CellResult],
    failed: dict[int, SkippedCell],
    prepare: Callable[[list[tuple[int, SweepCell]]], list[tuple[int, SweepCell]]],
    record: Callable[[int, SweepCell, dict[str, float], dict[str, float]], None],
    handle_failure: Callable[..., float | None],
    cell_budget: Callable[[SweepCell], float | None],
    get_first_error: Callable[[], Exception | None],
) -> None:
    """The parallel frontier pump: dispatch, watchdog, bisection, retries.

    Owns the pool's whole lifecycle — including *replacing* it after a
    worker death (``BrokenProcessPool`` poisons every in-flight future)
    or a watchdog strike (the stuck worker is SIGKILLed, which breaks
    the pool the same way).  All cell-level failure accounting routes
    through the caller's ``handle_failure``/``record`` closures, so the
    serial and parallel paths share one retry/quarantine policy.
    """
    from repro.kernel import kernel_enabled

    kernel_mode = kernel_enabled()
    queue: deque[list[tuple[int, SweepCell]]] = deque(_chunk_pending(worklist, jobs))
    workers = min(jobs, max(1, len(queue)))
    # Retries wait out their backoff in this heap (ready-time ordered)
    # without blocking dispatch of other work; the tickets break ties.
    retries: list[tuple[float, int, list[tuple[int, SweepCell]]]] = []
    tickets = itertools.count()
    in_flight: dict[Future, tuple[list[tuple[int, SweepCell]], float | None]] = {}
    pool: ProcessPoolExecutor | None = None

    def live_cells(chunk: list[tuple[int, SweepCell]]) -> list[tuple[int, SweepCell]]:
        return [(i, c) for i, c in chunk if i not in resolved and i not in failed]

    def chunk_deadline(chunk: list[tuple[int, SweepCell]]) -> float | None:
        """When the watchdog gives up on a dispatched chunk.

        A chunk solves its cells serially, so its budget is the *sum* of
        per-cell budgets; one unbudgeted cell disables the deadline (the
        watchdog cannot attribute overrun without a full budget).
        """
        total = 0.0
        for _, cell in chunk:
            budget = cell_budget(cell)
            if budget is None:
                return None
            total += budget
        return time.monotonic() + total

    def schedule_retry(singleton: list[tuple[int, SweepCell]], delay: float) -> None:
        heapq.heappush(retries, (time.monotonic() + delay, next(tickets), singleton))

    def retire_pool() -> None:
        nonlocal pool
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
            pool = None

    def kill_pool_workers() -> None:
        """SIGKILL the pool's worker processes (watchdog strike).

        ``_processes`` is private executor state, but there is no public
        kill; the fallback (no attribute) degrades to pool abandonment —
        the stuck worker leaks until the sweep exits, which is still
        bounded.
        """
        processes = getattr(pool, "_processes", None) or {}
        for pid in list(processes):
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:
                pass

    def on_worker_death(chunk: list[tuple[int, SweepCell]], error: Exception) -> None:
        """A chunk lost its worker: bisect multi-cell chunks, count singletons.

        Bisection isolates a crashing cell in O(log n) kills instead of
        discarding (or endlessly re-running) its setup-sharing siblings.
        Only a *singleton* chunk's death counts as an attempt against
        its cell — a multi-cell chunk's death doesn't identify the
        culprit, and charging innocents could quarantine them.
        """
        live = live_cells(chunk)
        if not live:
            return
        if len(live) == 1:
            index, cell = live[0]
            events.emit(keys[index], "failed", detail="worker died")
            crash = WorkerCrashError(
                f"worker died while solving cell {keys[index]} "
                f"({cell.topology}/{cell.demand_model} margin={cell.margin:g} "
                f"kind={cell.kind}); suspect a segfault, OOM kill, or injected fault"
            )
            crash.__cause__ = error
            delay = handle_failure(
                index, cell, crash, f"{type(error).__name__}: {error}",
                label="worker-death",
            )
            if delay is not None:
                schedule_retry(live, delay)
            return
        for index, _ in live:
            events.emit(
                keys[index], "retried",
                detail="worker died; chunk bisected to isolate the poison cell",
            )
        queue.extend(_split_chunk(live))

    def on_timeout(chunk: list[tuple[int, SweepCell]]) -> None:
        """A chunk blew its deadline: split it, or charge the lone cell."""
        live = live_cells(chunk)
        if not live:
            return
        if len(live) == 1:
            index, cell = live[0]
            budget = cell_budget(cell)
            events.emit(
                keys[index], "timed-out",
                detail=f"exceeded its {budget:g}s wall-clock budget; worker killed",
            )
            error = CellTimeoutError(
                f"cell {keys[index]} ({cell.topology}/{cell.demand_model} "
                f"margin={cell.margin:g} kind={cell.kind}) exceeded its "
                f"{budget:g}s wall-clock budget"
            )
            delay = handle_failure(index, cell, error, "", label="timeout")
            if delay is not None:
                schedule_retry(live, delay)
            return
        for index, _ in live:
            events.emit(
                keys[index], "timed-out",
                detail="chunk exceeded its combined budget; split to isolate the slow cell",
            )
        queue.extend(_split_chunk(live))

    def process_outcomes(
        chunk: list[tuple[int, SweepCell]],
        outcomes: list[tuple[str, object, str | None, dict[str, float]]],
    ) -> None:
        for (index, cell), (status, value, detail, timings) in zip(chunk, outcomes):
            if status == "ok":
                record(index, cell, value, timings)
                continue
            events.emit(keys[index], "failed", detail=type(value).__name__)
            # Re-attach the worker-side context lost to pickling: raising
            # the error then chains the original traceback and
            # failing-cell identity as its cause.
            value.__cause__ = RuntimeError(detail)
            delay = handle_failure(index, cell, value, detail or "")
            if delay is not None:
                schedule_retry([(index, cell)], delay)
        # A failed chunk stops mid-way; its unreached cells are innocent
        # — re-queue them as one chunk (we may still hold their claims,
        # which prepare() won't re-take).
        rest = live_cells(chunk[len(outcomes):])
        if rest:
            queue.append(rest)

    def pull() -> None:
        """Dispatch frontier chunks while workers are idle."""
        while (
            queue and pool is not None and len(in_flight) < workers
            and get_first_error() is None
        ):
            runnable = prepare(queue.popleft())
            if not runnable:
                continue
            future = pool.submit(
                _solve_chunk, solve, [(keys[i], c) for i, c in runnable], kernel_mode
            )
            in_flight[future] = (runnable, chunk_deadline(runnable))

    try:
        while True:
            now = time.monotonic()
            while retries and retries[0][0] <= now and get_first_error() is None:
                queue.append(heapq.heappop(retries)[2])
            if get_first_error() is None and (queue or retries) and pool is None:
                pool = ProcessPoolExecutor(max_workers=workers)
            pull()
            if not in_flight:
                if get_first_error() is not None or not (queue or retries):
                    break
                if queue:
                    continue  # prepare() resolved the popped chunks without dispatching
                # Only backoff sleepers remain; wait for the earliest.
                time.sleep(max(0.0, retries[0][0] - time.monotonic()))
                continue
            wake_times = [
                deadline for _, deadline in in_flight.values() if deadline is not None
            ]
            if retries and get_first_error() is None:
                wake_times.append(retries[0][0])
            timeout = (
                max(0.0, min(wake_times) - time.monotonic()) if wake_times else None
            )
            done, _ = wait(list(in_flight), timeout=timeout, return_when=FIRST_COMPLETED)
            pool_broken = False
            death_error: Exception | None = None
            for future in done:
                chunk, _deadline = in_flight.pop(future)
                try:
                    outcomes = future.result()
                except Exception as error:  # BrokenProcessPool: a worker died
                    pool_broken = True
                    death_error = error
                    on_worker_death(chunk, error)
                    continue
                process_outcomes(chunk, outcomes)
            if pool_broken:
                # One dead worker breaks the whole pool: every other
                # in-flight future is poisoned too.  Requeue their live
                # cells through the same bisection path and start fresh.
                for future in list(in_flight):
                    chunk, _deadline = in_flight.pop(future)
                    on_worker_death(chunk, death_error)
                retire_pool()
                continue
            now = time.monotonic()
            overdue = [
                future
                for future, (_, deadline) in in_flight.items()
                if deadline is not None and now >= deadline
            ]
            if overdue:
                # Watchdog strike.  There is no per-task kill in
                # ProcessPoolExecutor, so the whole pool goes: overdue
                # chunks are charged/split, innocent in-flight chunks
                # requeue unchanged, and the next loop iteration builds
                # a replacement pool.
                for future in overdue:
                    chunk, _deadline = in_flight.pop(future)
                    on_timeout(chunk)
                for future in list(in_flight):
                    chunk, _deadline = in_flight.pop(future)
                    live = live_cells(chunk)
                    if live:
                        queue.append(live)
                kill_pool_workers()
                retire_pool()
            # Keep pulling: chunks already in flight when an error hits
            # still complete and cache their results; we just stop
            # feeding the frontier.
    finally:
        retire_pool()
