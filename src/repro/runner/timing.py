"""Per-cell phase timing and lifecycle events for sweep solves.

The benchmark harness wants to know not just how long a cell took but
*where* the time went: building the margin-independent setup, running
the robust optimization, evaluating routings against the worst-case
oracle.  Those phases live deep inside the cell-kind solve functions,
so instrumentation is a thread-local recorder: the executor installs a
sink around each solve (:func:`timed_solve`), and instrumented code
wraps its hot sections in :func:`phase`.  With no sink installed —
every non-benchmark caller — :func:`phase` is a no-op, so drivers and
tests pay nothing.

Campaign runs additionally want to know *what happened* to each cell —
served from the store, claimed, stolen from an abandoned claim, solved,
deferred to another owner.  :class:`EventLog` records those transitions
as structured :class:`CellEvent` records (cell key, event name, epoch
timestamp, optional detail); the executor emits them from the
coordinating process and threads the log into sweep reports, JSON
artifacts, and ``BENCH_*.json`` payloads.

Durations come from :func:`time.perf_counter` (monotonic, not subject
to wall-clock adjustment).  Re-entering a phase accumulates; nesting
*different* phases counts the inner one inside the outer, so the
pipeline phases are kept disjoint (setup / solve / evaluate).  Named
*sub-phases* deliberately use this nesting: ``"weight_step"`` (the local
search's neighborhood step) is recorded inside "solve", so its seconds
are a breakdown of solve time, not additive to it.
The recorder is per-thread and travels with the worker process, so
parallel sweeps time each cell exactly like serial ones.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

T = TypeVar("T")

#: The lifecycle transitions the executor emits, in rough order of
#: occurrence.  "cache-hit": served from the store without solving;
#: "claimed"/"stolen": this run took ownership (fresh claim / expired
#: claim takeover or foreign-shard steal); "solved": result produced and
#: stored; "deferred": live claim held elsewhere, left for its owner;
#: "foreign": belongs to another shard and stealing is off; "failed":
#: one solve attempt raised; "retried": a failed/crashed/timed-out cell
#: was re-queued with backoff; "timed-out": the cell (or its chunk)
#: exceeded its wall-clock budget and the watchdog killed the worker;
#: "quarantined": attempts are exhausted (or the failure is
#: deterministic) — a failure record is persisted and the cell becomes
#: a ``SkippedCell(reason="failed")``.
LIFECYCLE_EVENTS = (
    "cache-hit", "claimed", "stolen", "solved", "deferred", "foreign",
    "failed", "retried", "timed-out", "quarantined",
)


@dataclass(frozen=True)
class CellEvent:
    """One structured lifecycle transition for one cell.

    ``at`` is epoch seconds (``time.time``), not a monotonic clock:
    events from different hosts sharing a store must be mergeable onto
    one timeline, which monotonic clocks (arbitrary per-boot origin)
    cannot provide.  Sub-second ordering across hosts is therefore
    best-effort — fine for diagnostics, and correctness never depends
    on event order.
    """

    key: str
    event: str
    at: float
    detail: str = ""

    def as_payload(self) -> dict:
        record = {"key": self.key, "event": self.event, "at": round(self.at, 3)}
        if self.detail:
            record["detail"] = self.detail
        return record


@dataclass
class EventLog:
    """An append-only list of :class:`CellEvent`s for one sweep run."""

    events: list[CellEvent] = field(default_factory=list)

    def emit(self, key: str, event: str, detail: str = "") -> CellEvent:
        record = CellEvent(key=key, event=event, at=time.time(), detail=detail)
        self.events.append(record)
        return record

    def counts(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for record in self.events:
            totals[record.event] = totals.get(record.event, 0) + 1
        return totals

#: The phase names the experiment kinds record, in pipeline order.
PHASES = ("setup", "solve", "evaluate")

#: Sub-phases nested inside a pipeline phase (name -> owning phase).
#: Their durations break the owner down and must not be summed with it.
SUB_PHASES = {"weight_step": "solve"}

#: Key under which :func:`timed_solve` stores the whole solve's duration.
TOTAL = "total"

_LOCAL = threading.local()


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Accumulate the block's duration under ``name`` in the active sink.

    No-op (zero bookkeeping beyond one attribute lookup) when no sink is
    installed, so instrumented library code is safe to call from
    anywhere.
    """
    sink = getattr(_LOCAL, "sink", None)
    if sink is None:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        sink[name] = sink.get(name, 0.0) + (time.perf_counter() - started)


@contextmanager
def record_phases(sink: dict[str, float]) -> Iterator[dict[str, float]]:
    """Install ``sink`` as this thread's phase collector for the block.

    The previous sink (if any) is restored on exit, so nested recordings
    don't leak into each other.
    """
    previous = getattr(_LOCAL, "sink", None)
    _LOCAL.sink = sink
    try:
        yield sink
    finally:
        _LOCAL.sink = previous


def timed_solve(solve: Callable[..., T], *args, **kwargs) -> tuple[T, dict[str, float]]:
    """Run ``solve`` under a fresh recorder; return (result, timings).

    The timings dict maps each recorded phase to its accumulated seconds
    plus :data:`TOTAL` for the entire call, so unattributed time is
    visible as ``total - sum(phases)``.
    """
    timings: dict[str, float] = {}
    started = time.perf_counter()
    with record_phases(timings):
        result = solve(*args, **kwargs)
    timings[TOTAL] = time.perf_counter() - started
    return result, timings
