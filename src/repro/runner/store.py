"""Pluggable cell stores: the unit of distribution for sweep campaigns.

A :class:`CellStore` is the get/put contract the sweep runner caches
solved cells through.  :class:`DirStore` is the canonical on-disk layout
(one JSON document per cell, content-addressed)::

    <root>/<key[:2]>/<key>.json

where ``key`` is :func:`repro.runner.spec.cell_key` — a hash over the
cell kind and its params, the topology, demand model, margin, seed,
optimizer, every :class:`~repro.config.SolverConfig` field, the active
LP backend, and the runner's :data:`~repro.runner.spec.CACHE_VERSION`
tag.  Any of those changing yields a different key, so stale results are
never returned; they are simply never looked up again.

Each entry stores the full cell fingerprint alongside the result, so a
(vanishingly unlikely) hash collision is detected by comparing
fingerprints rather than silently returning the wrong row.  Entries are
validated against the *cell's own* column set — a margin cell requires
the four scheme ratios, a Fig. 10 budget cell only its "k NHs" column —
so an entry missing any column its kind declares is a miss.  Writes are
atomic (temp file + ``os.replace``) so parallel workers, concurrent
sweeps, and multiple *hosts* can share one store directory.

Because entries are content-addressed and self-describing, stores
compose and merge mechanically:

* :class:`OverlayStore` layers N stores read-through — a local fast
  store in front of a shared authoritative one — filling earlier layers
  on a hit in a later one and writing puts back to every layer.
* :func:`merge_stores` folds shard stores into one directory after a
  distributed campaign (the ``repro cache merge`` CLI), skipping
  identical entries and refusing to overwrite conflicting ones.
* :func:`verify_store` re-hashes every entry's fingerprint and checks it
  against the filename, so shared-store corruption is detectable without
  re-solving anything (``repro cache verify``).

Rejected entries are never served, and — unlike the historical silent
miss — each drop is logged as a structured warning (key + reason) on
the ``repro.runner.store`` logger, so corruption in a shared store is
diagnosable instead of quietly re-solved around.

Alongside results, stores persist **failure records**
(``<root>/<key[:2]>/<key>.failed.json``, schema
:data:`~repro.runner.faults.FAILURE_SCHEMA`): when the executor
quarantines a poison cell it writes the cumulative attempt count, error
class/type, worker traceback, and host, and a *resumed* run consults
the record instead of blindly re-attempting the same cell (see
:mod:`repro.runner.faults`).  A later successful solve clears the
record; ``repro cache failures [--clear]`` lists and re-arms them.
Failure records are never entries — :func:`_is_entry` excludes them by
stem shape — so result iteration, merge, and verify are unaffected.
"""

from __future__ import annotations

import json
import logging
import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from repro.runner import faults
from repro.runner.spec import SweepCell, cell_key, fingerprint_key
from repro.utils.jsonio import write_json_atomic

logger = logging.getLogger(__name__)

#: Environment override for the default store location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Filename suffix of persisted failure records (vs ``.json`` entries).
FAILURE_SUFFIX = ".failed.json"


def default_cache_dir() -> Path:
    """The default store root, in precedence order.

    ``$REPRO_CACHE_DIR`` if set, else ``$XDG_CACHE_HOME/repro`` (the
    XDG base-directory contract), else ``~/.cache/repro``.
    """
    override = os.environ.get(CACHE_DIR_ENV, "")
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME", "")
    if xdg:
        return Path(xdg).expanduser() / "repro"
    return Path("~/.cache/repro").expanduser()


class CellStore(ABC):
    """Get/put solved cell results keyed by content hash.

    Implementations must make ``put`` atomic per entry (readers observe
    either no entry or a complete one, never a torn write) — that
    guarantee is what lets executors on several hosts share one store
    with no coordination beyond the claim files in
    :mod:`repro.runner.campaign`.
    """

    @abstractmethod
    def get(self, cell: SweepCell) -> dict[str, float] | None:
        """The stored column->value dict for ``cell``, or None on a miss."""

    @abstractmethod
    def put(self, cell: SweepCell, result: dict[str, float]) -> Path:
        """Atomically store ``result`` for ``cell``; returns the entry path."""

    @abstractmethod
    def contains(self, cell: SweepCell) -> bool:
        """Whether an entry exists for ``cell`` (no validation performed)."""

    @abstractmethod
    def entry_keys(self) -> Iterator[str]:
        """Every entry key present in the store."""

    @abstractmethod
    def describe(self) -> str:
        """Human-readable identity for logs and CLI output."""

    # Failure records are optional store behavior: the no-op defaults
    # keep third-party CellStore implementations working unchanged (a
    # store that never remembers failures simply re-attempts them).

    def get_failure(self, cell: SweepCell) -> dict | None:
        """The persisted failure record for ``cell``, or None."""
        return None

    def put_failure(self, cell: SweepCell, record: dict) -> None:
        """Persist ``record`` as the failure record for ``cell``."""

    def clear_failure(self, cell: SweepCell) -> None:
        """Drop ``cell``'s failure record, if any (idempotent)."""

    def failure_records(self) -> Iterator[tuple[str, dict]]:
        """Every ``(key, record)`` failure pair present in the store."""
        return iter(())

    def clear_failures(self) -> int:
        """Drop every failure record; returns how many were removed."""
        return 0

    def __len__(self) -> int:
        return sum(1 for _ in self.entry_keys())


def _is_entry(path: Path) -> bool:
    """True iff ``path`` is a ``<xx>/<key>.json`` cell-entry leaf.

    Stores share their directory with non-entry JSON (campaign
    manifests, claim litter, nested artifacts); only leaves whose stem
    is a full-length hex key sharded under its own two-char prefix
    directory count as entries.
    """
    stem = path.stem
    return (
        len(stem) == 32
        and all(ch in "0123456789abcdef" for ch in stem)
        and path.parent.name == stem[:2]
    )


class DirStore(CellStore):
    """The canonical one-directory store (``<root>/<key[:2]>/<key>.json``)."""

    def __init__(self, root: str | Path):
        self.root = Path(root).expanduser()

    def describe(self) -> str:
        return str(self.root)

    def path_for_key(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def path_for(self, cell: SweepCell) -> Path:
        return self.path_for_key(cell_key(cell))

    def _drop(self, key: str, reason: str) -> None:
        """Record a structured warning for an entry that exists but is unusable."""
        logger.warning(
            "store %s: dropping entry %s (%s); treating as a miss",
            self.root,
            key,
            reason,
            extra={"store": str(self.root), "cell_key": key, "reason": reason},
        )

    def get(self, cell: SweepCell) -> dict[str, float] | None:
        """The stored column->value dict for ``cell``, or None on a miss.

        Unreadable or mismatched entries (corrupt JSON, fingerprint
        collision, a result missing any column the cell's kind declares)
        are treated as misses, never as errors — but each drop is logged
        with its key and reason so shared-store corruption is visible.
        """
        key = cell_key(cell)
        faults.trigger("store.get", key)
        path = self.path_for_key(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as error:
            self._drop(key, f"unreadable entry: {error}")
            return None
        if not isinstance(payload, dict):
            self._drop(key, "payload is not a JSON object")
            return None
        if payload.get("fingerprint") != cell.fingerprint():
            self._drop(key, "fingerprint mismatch (hash collision or tampered entry)")
            return None
        result = payload.get("result")
        if not isinstance(result, dict) or not set(result) >= set(cell.cell_columns()):
            self._drop(key, "result is missing columns the cell's kind declares")
            return None
        try:
            # null round-trips a non-finite value (fig9's undefined gap):
            # the writer emits strict JSON, so NaN is stored as null.
            return {
                str(column): float("nan") if value is None else float(value)
                for column, value in result.items()
            }
        except (TypeError, ValueError):
            self._drop(key, "result contains non-numeric values")
            return None

    def put(self, cell: SweepCell, result: dict[str, float]) -> Path:
        key = cell_key(cell)
        faults.trigger("store.put", key)
        payload = {
            "key": key,
            "experiment": cell.experiment,
            "fingerprint": cell.fingerprint(),
            "result": result,
        }
        return write_json_atomic(self.path_for_key(key), payload, sort_keys=True)

    def contains(self, cell: SweepCell) -> bool:
        return self.path_for(cell).is_file()

    def failure_path_for_key(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}{FAILURE_SUFFIX}"

    def get_failure(self, cell: SweepCell) -> dict | None:
        """The failure record for ``cell``, or None.

        An unreadable record is reported (like a dropped entry) and
        treated as absent — the worst case is one extra attempt at a
        cell whose record was torn, which quarantine re-bounds.
        """
        key = cell_key(cell)
        path = self.failure_path_for_key(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as error:
            self._drop(key, f"unreadable failure record: {error}")
            return None
        return payload if isinstance(payload, dict) else None

    def put_failure(self, cell: SweepCell, record: dict) -> None:
        write_json_atomic(self.failure_path_for_key(cell_key(cell)), record, sort_keys=True)

    def clear_failure(self, cell: SweepCell) -> None:
        try:
            self.failure_path_for_key(cell_key(cell)).unlink()
        except OSError:
            pass

    def failure_paths(self) -> Iterator[Path]:
        """Every well-placed ``<xx>/<key>.failed.json`` leaf."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob(f"*/*{FAILURE_SUFFIX}")):
            key = path.name[: -len(FAILURE_SUFFIX)]
            if (
                len(key) == 32
                and all(ch in "0123456789abcdef" for ch in key)
                and path.parent.name == key[:2]
            ):
                yield path

    def failure_records(self) -> Iterator[tuple[str, dict]]:
        for path in self.failure_paths():
            key = path.name[: -len(FAILURE_SUFFIX)]
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as error:
                self._drop(key, f"unreadable failure record: {error}")
                continue
            if isinstance(payload, dict):
                yield key, payload

    def clear_failures(self) -> int:
        cleared = 0
        for path in list(self.failure_paths()):
            try:
                path.unlink()
                cleared += 1
            except OSError:
                pass
        return cleared

    def entry_paths(self) -> Iterator[Path]:
        """Every ``<xx>/<key>.json`` entry leaf (non-entry JSON excluded)."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*.json")):
            if _is_entry(path):
                yield path

    def entry_keys(self) -> Iterator[str]:
        for path in self.entry_paths():
            yield path.stem

    def load_entry(self, key: str) -> dict:
        """The raw JSON payload stored under ``key`` (no validation)."""
        with open(self.path_for_key(key)) as handle:
            return json.load(handle)


class OverlayStore(CellStore):
    """Read-through union of N stores; writes land in every layer.

    Layer order is significance order: ``stores[0]`` is the local fast
    store consulted first, later layers are shared/authoritative.  A hit
    in layer *i* is written back into layers ``0..i-1`` so subsequent
    probes stay local; a put goes to all layers so both the local and
    the shared store end up authoritative ("write-back to both").
    """

    def __init__(self, stores: Sequence[CellStore]):
        if not stores:
            raise ValueError("OverlayStore needs at least one underlying store")
        self.stores = list(stores)

    @property
    def primary(self) -> CellStore:
        """The first (local, fastest) layer."""
        return self.stores[0]

    def describe(self) -> str:
        return " + ".join(store.describe() for store in self.stores)

    def get(self, cell: SweepCell) -> dict[str, float] | None:
        for i, store in enumerate(self.stores):
            hit = store.get(cell)
            if hit is not None:
                for nearer in self.stores[:i]:
                    nearer.put(cell, hit)
                return hit
        return None

    def put(self, cell: SweepCell, result: dict[str, float]) -> Path:
        paths = [store.put(cell, result) for store in self.stores]
        return paths[0]

    def contains(self, cell: SweepCell) -> bool:
        return any(store.contains(cell) for store in self.stores)

    def entry_keys(self) -> Iterator[str]:
        seen: set[str] = set()
        for store in self.stores:
            for key in store.entry_keys():
                if key not in seen:
                    seen.add(key)
                    yield key

    def get_failure(self, cell: SweepCell) -> dict | None:
        for store in self.stores:
            record = store.get_failure(cell)
            if record is not None:
                return record
        return None

    def put_failure(self, cell: SweepCell, record: dict) -> None:
        for store in self.stores:
            store.put_failure(cell, record)

    def clear_failure(self, cell: SweepCell) -> None:
        # Cleared in *every* layer: a record surviving in the shared
        # layer would re-quarantine a cell the local layer knows solved.
        for store in self.stores:
            store.clear_failure(cell)

    def failure_records(self) -> Iterator[tuple[str, dict]]:
        seen: set[str] = set()
        for store in self.stores:
            for key, record in store.failure_records():
                if key not in seen:
                    seen.add(key)
                    yield key, record

    def clear_failures(self) -> int:
        return sum(store.clear_failures() for store in self.stores)


def open_store(roots: Sequence[str | Path]) -> CellStore:
    """A store over ``roots``: one DirStore, or an overlay of several."""
    stores = [DirStore(root) for root in roots]
    if not stores:
        raise ValueError("open_store needs at least one root directory")
    return stores[0] if len(stores) == 1 else OverlayStore(stores)


@dataclass
class MergeStats:
    """Outcome counts of one :func:`merge_stores` run."""

    copied: int = 0
    present: int = 0
    conflicting: int = 0
    invalid: int = 0
    failures_copied: int = 0
    failures_superseded: int = 0

    def summary(self) -> str:
        base = (
            f"{self.copied} copied, {self.present} already present, "
            f"{self.conflicting} conflicting (kept destination), "
            f"{self.invalid} invalid (skipped)"
        )
        if self.failures_copied or self.failures_superseded:
            base += (
                f"; failure records: {self.failures_copied} copied, "
                f"{self.failures_superseded} superseded by results"
            )
        return base


def _entry_problem(key: str, payload: object) -> str | None:
    """Why a raw entry payload is unusable, or None if it checks out.

    The decisive check re-derives the content key from the stored
    fingerprint: an entry whose fingerprint does not hash back to its
    own filename was corrupted or renamed, and serving it would return
    some *other* cell's result.
    """
    if not isinstance(payload, dict):
        return "payload is not a JSON object"
    fingerprint = payload.get("fingerprint")
    if not isinstance(fingerprint, dict):
        return "missing fingerprint"
    result = payload.get("result")
    if not isinstance(result, dict):
        return "missing result"
    try:
        derived = fingerprint_key(fingerprint)
    except (TypeError, ValueError) as error:
        return f"fingerprint is not canonically hashable: {error}"
    if derived != key:
        return f"fingerprint hashes to {derived}, not the entry key"
    columns = fingerprint.get("columns")
    if isinstance(columns, list):
        missing = [column for column in columns if column not in result]
        if missing:
            return f"result is missing declared columns {missing!r}"
    for column, value in result.items():
        if value is not None and not isinstance(value, (int, float)):
            return f"non-numeric value for column {column!r}"
    return None


def merge_stores(sources: Sequence[DirStore], dest: DirStore) -> MergeStats:
    """Fold every valid entry of ``sources`` into ``dest``.

    Entries already present in ``dest`` with identical content count as
    ``present``; a key present with *different* content is a conflict —
    the destination's entry is kept (first write wins, matching the
    shared-directory behavior of concurrent executors) and the conflict
    is logged and counted so the caller can investigate.  Invalid source
    entries (corrupt, mis-keyed) are skipped, not propagated.
    """
    stats = MergeStats()
    for source in sources:
        for key in source.entry_keys():
            try:
                payload = source.load_entry(key)
            except (OSError, json.JSONDecodeError) as error:
                logger.warning(
                    "merge: skipping unreadable entry %s in %s: %s",
                    key, source.root, error,
                )
                stats.invalid += 1
                continue
            problem = _entry_problem(key, payload)
            if problem is not None:
                logger.warning(
                    "merge: skipping invalid entry %s in %s: %s", key, source.root, problem
                )
                stats.invalid += 1
                continue
            dest_path = dest.path_for_key(key)
            if dest_path.is_file():
                try:
                    existing = dest.load_entry(key)
                except (OSError, json.JSONDecodeError):
                    existing = None
                if existing == payload:
                    stats.present += 1
                else:
                    logger.warning(
                        "merge: entry %s conflicts between %s and %s; keeping destination",
                        key, source.root, dest.root,
                    )
                    stats.conflicting += 1
                continue
            write_json_atomic(dest_path, payload, sort_keys=True)
            stats.copied += 1
    # Failure records merge after results on purpose: a result stored by
    # *any* source supersedes another shard's failure record for the
    # same key (e.g. a steal succeeded where the owner's worker died),
    # so quarantine never outlives a successful solve.
    for source in sources:
        for key, record in source.failure_records():
            if dest.path_for_key(key).is_file():
                stats.failures_superseded += 1
                continue
            dest_path = dest.failure_path_for_key(key)
            if dest_path.is_file():
                continue  # first record wins, matching entry semantics
            write_json_atomic(dest_path, record, sort_keys=True)
            stats.failures_copied += 1
    return stats


@dataclass
class VerifyReport:
    """Outcome of one :func:`verify_store` scan."""

    checked: int = 0
    problems: list[tuple[str, str]] = field(default_factory=list)  # (key, reason)

    @property
    def ok(self) -> bool:
        return not self.problems

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.problems)} problem(s)"
        return f"{self.checked} entries checked, {status}"


def verify_store(store: DirStore) -> VerifyReport:
    """Re-validate every entry: parseable, self-consistent, correctly keyed."""
    report = VerifyReport()
    for path in store.entry_paths():
        key = path.stem
        report.checked += 1
        try:
            payload = store.load_entry(key)
        except (OSError, json.JSONDecodeError) as error:
            report.problems.append((key, f"unreadable: {error}"))
            continue
        problem = _entry_problem(key, payload)
        if problem is not None:
            report.problems.append((key, problem))
    return report


def store_stats(store: DirStore) -> dict:
    """Entry counts, byte size, and per-kind/version breakdowns for one store."""
    entries = 0
    total_bytes = 0
    by_kind: dict[str, int] = {}
    by_version: dict[str, int] = {}
    unreadable = 0
    for path in store.entry_paths():
        entries += 1
        try:
            total_bytes += path.stat().st_size
            payload = store.load_entry(path.stem)
            fingerprint = payload.get("fingerprint", {}) if isinstance(payload, dict) else {}
        except (OSError, json.JSONDecodeError):
            unreadable += 1
            continue
        kind = str(fingerprint.get("kind", "?"))
        version = str(fingerprint.get("version", "?"))
        by_kind[kind] = by_kind.get(kind, 0) + 1
        by_version[version] = by_version.get(version, 0) + 1
    return {
        "root": store.describe(),
        "entries": entries,
        "bytes": total_bytes,
        "by_kind": by_kind,
        "by_version": by_version,
        "unreadable": unreadable,
        "failures": sum(1 for _ in store.failure_records()),
    }
