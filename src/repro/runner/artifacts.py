"""JSON artifact output for completed sweeps.

``repro sweep EXP --out DIR`` (and the CI smoke job) persist two files
per experiment:

* ``<experiment>.table.json`` — the assembled table (title, columns,
  rows, notes) plus run counters; enough to re-render or diff a sweep
  without re-solving anything.
* ``<experiment>.cells.json`` — one record per cell with its full cache
  fingerprint, content key, scheme ratios, and whether it was served
  from cache; the raw material for cross-run regression comparisons.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.runner.executor import SweepReport


def write_artifacts(report: SweepReport, out_dir: str | Path) -> list[Path]:
    """Write the table and per-cell JSON artifacts; returns the paths."""
    out = Path(out_dir).expanduser()
    out.mkdir(parents=True, exist_ok=True)
    table = report.table()

    table_path = out / f"{report.spec.experiment}.table.json"
    table_payload = {
        "experiment": report.spec.experiment,
        "title": table.title,
        "columns": list(table.columns),
        "rows": [list(row) for row in table.rows],
        "notes": list(table.notes),
        "solved": report.solved,
        "cached": report.cached,
        "jobs": report.jobs,
        "elapsed_seconds": round(report.elapsed, 3),
    }
    with open(table_path, "w") as handle:
        json.dump(table_payload, handle, indent=2)
        handle.write("\n")

    cells_path = out / f"{report.spec.experiment}.cells.json"
    cells_payload = [
        {
            "key": result.key,
            "fingerprint": result.cell.fingerprint(),
            "result": result.ratios,
            "cached": result.cached,
        }
        for result in report.results
    ]
    with open(cells_path, "w") as handle:
        json.dump(cells_payload, handle, indent=2)
        handle.write("\n")

    return [table_path, cells_path]
