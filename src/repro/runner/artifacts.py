"""JSON artifact output for completed sweeps.

``repro sweep EXP --out DIR`` (and the CI smoke jobs) persist up to
three files per experiment:

* ``<experiment>.table.json`` — the assembled table (title, columns,
  rows, notes) plus run counters; enough to re-render or diff a sweep
  without re-solving anything.  Partial (sharded / claim-deferred /
  aborted) runs cannot assemble a faithful table, so this file is
  skipped for them — merge the campaign stores and re-run to produce
  it.  ``--keep-going`` runs whose only skips are quarantined cells do
  emit the table, with the failed rows omitted under an explicit note.
* ``<experiment>.cells.json`` — one record per resolved cell with its
  full cache fingerprint, content key, result values, and lifecycle
  status (cache-hit / solved / stolen); the raw material for cross-run
  regression comparisons.
* ``<experiment>.events.json`` — the run's structured lifecycle event
  log (see :mod:`repro.runner.timing`) plus the skipped-cell list, so a
  campaign's scheduling behavior (claims, steals, deferrals) is
  reconstructable per run and mergeable across runs via the epoch
  timestamps.

All files are written atomically (temp file + ``os.replace``, the same
pattern as :meth:`~repro.runner.store.DirStore.put`), so a crash
mid-write can never leave a truncated artifact for diff tooling to
choke on.
"""

from __future__ import annotations

from pathlib import Path

from repro.runner.executor import SweepReport
from repro.utils.jsonio import write_json_atomic


def write_artifacts(report: SweepReport, out_dir: str | Path) -> list[Path]:
    """Write the sweep's JSON artifacts; returns the paths written.

    Table-ready runs produce ``[table, cells, events]``; sharded /
    deferred / aborted partials omit the table (a partial table would
    silently diff as "rows vanished").  A ``--keep-going`` run whose
    only skips are quarantined cells is table-ready: its table carries
    an explicit omission note instead of silently-missing rows.
    """
    out = Path(out_dir).expanduser()
    out.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []

    if report.table_ready:
        table = report.table()
        table_payload = {
            "experiment": report.spec.experiment,
            "title": table.title,
            "columns": list(table.columns),
            "rows": [list(row) for row in table.rows],
            "notes": list(table.notes),
            "solved": report.solved,
            "cached": report.cached,
            "stolen": report.stolen,
            "jobs": report.jobs,
            "quarantined": report.quarantined,
            "elapsed_seconds": round(report.elapsed, 3),
        }
        paths.append(
            write_json_atomic(out / f"{report.spec.experiment}.table.json", table_payload)
        )

    cells_payload = [
        {
            "key": result.key,
            "fingerprint": result.cell.fingerprint(),
            "result": result.ratios,
            "cached": result.cached,
            "status": result.status,
            "timings": {name: round(seconds, 6) for name, seconds in result.timings.items()},
        }
        for result in report.results
    ]
    paths.append(
        write_json_atomic(out / f"{report.spec.experiment}.cells.json", cells_payload)
    )

    events_payload = {
        "experiment": report.spec.experiment,
        "shard": str(report.shard) if report.shard is not None else None,
        "complete": report.complete,
        "aborted": report.aborted,
        "lifecycle": report.lifecycle_counts(),
        "skipped": [
            {"key": skip.key, "reason": skip.reason, "detail": skip.detail}
            for skip in report.skipped
        ],
        "events": [event.as_payload() for event in report.events],
    }
    paths.append(
        write_json_atomic(out / f"{report.spec.experiment}.events.json", events_payload)
    )

    return paths
