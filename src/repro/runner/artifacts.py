"""JSON artifact output for completed sweeps.

``repro sweep EXP --out DIR`` (and the CI smoke jobs) persist two files
per experiment:

* ``<experiment>.table.json`` — the assembled table (title, columns,
  rows, notes) plus run counters; enough to re-render or diff a sweep
  without re-solving anything.
* ``<experiment>.cells.json`` — one record per cell with its full cache
  fingerprint, content key, result values, and whether it was served
  from cache; the raw material for cross-run regression comparisons.

Both files are written atomically (temp file + ``os.replace``, the same
pattern as :meth:`~repro.runner.cache.ResultCache.put`), so a crash
mid-write can never leave a truncated artifact for diff tooling to
choke on.
"""

from __future__ import annotations

from pathlib import Path

from repro.runner.executor import SweepReport
from repro.utils.jsonio import write_json_atomic


def write_artifacts(report: SweepReport, out_dir: str | Path) -> list[Path]:
    """Write the table and per-cell JSON artifacts; returns the paths."""
    out = Path(out_dir).expanduser()
    out.mkdir(parents=True, exist_ok=True)
    table = report.table()

    table_payload = {
        "experiment": report.spec.experiment,
        "title": table.title,
        "columns": list(table.columns),
        "rows": [list(row) for row in table.rows],
        "notes": list(table.notes),
        "solved": report.solved,
        "cached": report.cached,
        "jobs": report.jobs,
        "elapsed_seconds": round(report.elapsed, 3),
    }
    table_path = write_json_atomic(
        out / f"{report.spec.experiment}.table.json", table_payload
    )

    cells_payload = [
        {
            "key": result.key,
            "fingerprint": result.cell.fingerprint(),
            "result": result.ratios,
            "cached": result.cached,
            "timings": {name: round(seconds, 6) for name, seconds in result.timings.items()},
        }
        for result in report.results
    ]
    cells_path = write_json_atomic(
        out / f"{report.spec.experiment}.cells.json", cells_payload
    )

    return [table_path, cells_path]
