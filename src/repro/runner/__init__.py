"""Parallel sweep runner: cell decomposition, pull-based execution,
pluggable content-addressed stores, campaign coordination, and JSON
artifacts.

The experiment drivers declare their grids as :class:`SweepSpec`s of
:class:`SweepCell`s, each solved by a registered :class:`CellKind`;
:func:`run_sweep` executes them serially or across a process pool,
pulling work through a store-aware frontier, and reassembles tables in
deterministic cell order.  Results persist through the :class:`CellStore`
layer (:class:`DirStore` single directory, :class:`OverlayStore`
read-through layering); :mod:`repro.runner.campaign` adds the shard
math, claim files, and manifests that turn a shared store into a
distributed, resumable campaign.  See DESIGN notes in the submodules
for the store layout and key derivation.
"""

from repro.runner.artifacts import write_artifacts
from repro.runner.campaign import (
    ClaimPolicy,
    Shard,
    build_manifest,
    cell_shard,
    default_owner,
    load_manifest,
    parse_shard,
    write_manifest,
)
from repro.runner.cache import ResultCache
from repro.runner.executor import (
    CellResult,
    SkippedCell,
    SweepReport,
    run_sweep,
    solve_cell,
)
from repro.runner.memo import LruMemo, clear_all_memos
from repro.runner.store import (
    CellStore,
    DirStore,
    OverlayStore,
    default_cache_dir,
    merge_stores,
    open_store,
    store_stats,
    verify_store,
)
from repro.runner.timing import CellEvent, EventLog, phase, record_phases, timed_solve
from repro.runner.spec import (
    CACHE_VERSION,
    CellKind,
    SweepCell,
    SweepSpec,
    cell_key,
    cell_kind,
    freeze_params,
    grid_cells,
    register_cell_kind,
    spec_fingerprint,
)

__all__ = [
    "CACHE_VERSION",
    "CellEvent",
    "CellKind",
    "CellResult",
    "CellStore",
    "ClaimPolicy",
    "DirStore",
    "EventLog",
    "LruMemo",
    "OverlayStore",
    "ResultCache",
    "Shard",
    "SkippedCell",
    "SweepCell",
    "SweepReport",
    "SweepSpec",
    "build_manifest",
    "cell_key",
    "cell_kind",
    "cell_shard",
    "clear_all_memos",
    "default_cache_dir",
    "default_owner",
    "freeze_params",
    "grid_cells",
    "load_manifest",
    "merge_stores",
    "open_store",
    "parse_shard",
    "phase",
    "record_phases",
    "register_cell_kind",
    "run_sweep",
    "solve_cell",
    "spec_fingerprint",
    "store_stats",
    "timed_solve",
    "verify_store",
    "write_artifacts",
    "write_manifest",
]
