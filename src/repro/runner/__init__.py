"""Parallel sweep runner: cell decomposition, process-pool execution,
content-addressed result caching, and JSON artifacts.

The experiment drivers declare their grids as :class:`SweepSpec`s of
:class:`SweepCell`s, each solved by a registered :class:`CellKind`;
:func:`run_sweep` executes them serially or across a process pool and
reassembles tables in deterministic cell order.  See DESIGN notes in the
submodules for the cache layout and key derivation.
"""

from repro.runner.artifacts import write_artifacts
from repro.runner.cache import ResultCache, default_cache_dir
from repro.runner.executor import CellResult, SweepReport, run_sweep, solve_cell
from repro.runner.memo import LruMemo, clear_all_memos
from repro.runner.timing import phase, record_phases, timed_solve
from repro.runner.spec import (
    CACHE_VERSION,
    CellKind,
    SweepCell,
    SweepSpec,
    cell_key,
    cell_kind,
    freeze_params,
    grid_cells,
    register_cell_kind,
)

__all__ = [
    "CACHE_VERSION",
    "CellKind",
    "CellResult",
    "LruMemo",
    "ResultCache",
    "SweepCell",
    "SweepReport",
    "SweepSpec",
    "cell_key",
    "cell_kind",
    "clear_all_memos",
    "default_cache_dir",
    "freeze_params",
    "grid_cells",
    "phase",
    "record_phases",
    "register_cell_kind",
    "run_sweep",
    "solve_cell",
    "timed_solve",
    "write_artifacts",
]
