"""Parallel sweep runner: cell decomposition, process-pool execution,
content-addressed result caching, and JSON artifacts.

The experiment drivers declare their grids as :class:`SweepSpec`s;
:func:`run_sweep` executes them serially or across a process pool and
reassembles tables in deterministic cell order.  See DESIGN notes in the
submodules for the cache layout and key derivation.
"""

from repro.runner.artifacts import write_artifacts
from repro.runner.cache import ResultCache, default_cache_dir
from repro.runner.executor import CellResult, SweepReport, run_sweep, solve_cell
from repro.runner.spec import CACHE_VERSION, SweepCell, SweepSpec, cell_key, grid_cells

__all__ = [
    "CACHE_VERSION",
    "CellResult",
    "ResultCache",
    "SweepCell",
    "SweepReport",
    "SweepSpec",
    "cell_key",
    "default_cache_dir",
    "grid_cells",
    "run_sweep",
    "solve_cell",
    "write_artifacts",
]
