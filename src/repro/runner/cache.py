"""Content-addressed on-disk cache for solved sweep cells.

Layout (all JSON, human-inspectable)::

    <root>/<key[:2]>/<key>.json

where ``key`` is :func:`repro.runner.spec.cell_key` — a hash over the
cell kind and its params, the topology, demand model, margin, seed,
optimizer, every :class:`~repro.config.SolverConfig` field, the kind's
declared result columns, and the runner's
:data:`~repro.runner.spec.CACHE_VERSION` tag.  Any of those changing
yields a different key, so stale results are never returned; they are
simply never looked up again.

Each entry stores the full cell fingerprint alongside the result, so a
(vanishingly unlikely) hash collision is detected by comparing
fingerprints rather than silently returning the wrong row.  Entries are
validated against the *cell's own* column set — a margin cell requires
the four scheme ratios, a Fig. 10 budget cell only its "k NHs" column —
so an entry missing any column its kind declares is a miss.  Writes are
atomic (temp file + ``os.replace``) so parallel workers and concurrent
sweeps can share one cache directory.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.runner.spec import SweepCell, cell_key
from repro.utils.jsonio import write_json_atomic

#: Environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV, "")
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro").expanduser()


class ResultCache:
    """Get/put solved cell results keyed by content hash."""

    def __init__(self, root: str | Path):
        self.root = Path(root).expanduser()

    def path_for(self, cell: SweepCell) -> Path:
        key = cell_key(cell)
        return self.root / key[:2] / f"{key}.json"

    def get(self, cell: SweepCell) -> dict[str, float] | None:
        """The cached column->value dict for ``cell``, or None on a miss.

        Unreadable or mismatched entries (corrupt JSON, fingerprint
        collision, a result missing any column the cell's kind declares)
        are treated as misses, never as errors.
        """
        path = self.path_for(cell)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("fingerprint") != cell.fingerprint():
            return None
        result = payload.get("result")
        if not isinstance(result, dict) or not set(result) >= set(cell.cell_columns()):
            return None
        try:
            # null round-trips a non-finite value (fig9's undefined gap):
            # the writer emits strict JSON, so NaN is stored as null.
            return {
                str(column): float("nan") if value is None else float(value)
                for column, value in result.items()
            }
        except (TypeError, ValueError):
            return None

    def put(self, cell: SweepCell, result: dict[str, float]) -> Path:
        """Atomically store ``result`` for ``cell``; returns the entry path."""
        payload = {
            "key": cell_key(cell),
            "experiment": cell.experiment,
            "fingerprint": cell.fingerprint(),
            "result": result,
        }
        return write_json_atomic(self.path_for(cell), payload, sort_keys=True)

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
