"""Historical home of the result cache; the implementation now lives in
:mod:`repro.runner.store`.

``ResultCache`` predates the pluggable store layer and remains the name
most call sites (and ``--cache-dir``) were written against; it *is* the
canonical single-directory :class:`~repro.runner.store.DirStore`, so
existing usage keeps working unchanged while campaigns compose stores
through :class:`~repro.runner.store.OverlayStore` and the
``repro cache`` CLI.
"""

from __future__ import annotations

from repro.runner.store import (  # noqa: F401  (re-exported compat surface)
    CACHE_DIR_ENV,
    CellStore,
    DirStore,
    OverlayStore,
    default_cache_dir,
    open_store,
)

#: The content-addressed result cache's historical name (a DirStore).
ResultCache = DirStore
