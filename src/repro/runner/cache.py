"""Content-addressed on-disk cache for solved sweep cells.

Layout (all JSON, human-inspectable)::

    <root>/<key[:2]>/<key>.json

where ``key`` is :func:`repro.runner.spec.cell_key` — a hash over the
topology, demand model, margin, seed, optimizer, every
:class:`~repro.config.SolverConfig` field, and the runner's
:data:`~repro.runner.spec.CACHE_VERSION` tag.  Any of those changing
yields a different key, so stale results are never returned; they are
simply never looked up again.

Each entry stores the full cell fingerprint alongside the result, so a
(vanishingly unlikely) hash collision is detected by comparing
fingerprints rather than silently returning the wrong row.  Writes are
atomic (temp file + ``os.replace``) so parallel workers and concurrent
sweeps can share one cache directory.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.experiments.common import SCHEME_COLUMNS
from repro.runner.spec import SweepCell, cell_key

#: Environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV, "")
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro").expanduser()


class ResultCache:
    """Get/put solved cell results keyed by content hash."""

    def __init__(self, root: str | Path):
        self.root = Path(root).expanduser()

    def path_for(self, cell: SweepCell) -> Path:
        key = cell_key(cell)
        return self.root / key[:2] / f"{key}.json"

    def get(self, cell: SweepCell) -> dict[str, float] | None:
        """The cached scheme->ratio dict for ``cell``, or None on a miss.

        Unreadable or mismatched entries (corrupt JSON, fingerprint
        collision, a result missing scheme columns) are treated as
        misses, never as errors.
        """
        path = self.path_for(cell)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("fingerprint") != cell.fingerprint():
            return None
        result = payload.get("result")
        if not isinstance(result, dict) or not set(result) >= set(SCHEME_COLUMNS):
            return None
        try:
            return {str(scheme): float(ratio) for scheme, ratio in result.items()}
        except (TypeError, ValueError):
            return None

    def put(self, cell: SweepCell, result: dict[str, float]) -> Path:
        """Atomically store ``result`` for ``cell``; returns the entry path."""
        path = self.path_for(cell)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": cell_key(cell),
            "experiment": cell.experiment,
            "fingerprint": cell.fingerprint(),
            "result": result,
        }
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
