"""Bounded per-process LRU memo for expensive worker-side state.

Sweep workers are long-lived processes that solve cells from many
chunks; cells that share a setup key reuse one
:class:`~repro.experiments.common.ExperimentSetup` through an
:class:`LruMemo`.  Eviction is least-recently-*used*, not
least-recently-inserted: a hit refreshes the entry, so two setups that
alternate on one worker (A, B, A, B, ...) both stay resident instead of
thrashing each other out as a FIFO would.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import Callable, Hashable, TypeVar

T = TypeVar("T")

#: Every live memo in this process, so a sweep can reset them all.
#: Weak references: a dynamically created memo (tests, per-call helpers)
#: is collectable as usual instead of being pinned forever.
_ALL_MEMOS: "weakref.WeakSet[LruMemo]" = weakref.WeakSet()


def clear_all_memos() -> None:
    """Reset every :class:`LruMemo` in this process.

    :func:`~repro.runner.executor.run_sweep` calls this at entry so each
    sweep's cost is self-contained: setups memoized by an earlier
    in-process sweep (or driver call) never bleed into the next one,
    keeping benchmark timings order-independent.  Sharing *within* one
    sweep — across cells, and across kinds with equal setup keys — is
    unaffected.
    """
    for memo in _ALL_MEMOS:
        memo.clear()


class LruMemo:
    """A size-bounded memo with true LRU eviction.

    ``get_or_create(key, factory)`` returns the cached value for ``key``
    (marking it most-recently-used) or builds, stores, and returns a new
    one, evicting the least-recently-used entries to stay within
    ``limit``.
    """

    def __init__(self, limit: int):
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.limit = limit
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        _ALL_MEMOS.add(self)

    def get_or_create(self, key: Hashable, factory: Callable[[], T]) -> T:
        if key in self._entries:
            self._entries.move_to_end(key)
            return self._entries[key]  # type: ignore[return-value]
        value = factory()
        while len(self._entries) >= self.limit:
            self._entries.popitem(last=False)
        self._entries[key] = value
        return value

    def clear(self) -> None:
        self._entries.clear()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list[Hashable]:
        """Current keys, least-recently-used first (for tests/diagnostics)."""
        return list(self._entries)
