"""The sweep executor's failure domain: classification, policy, injection.

Paper-scale campaigns sweep hundreds of LP/L-BFGS solves across
Topology-Zoo graphs; one numerically pathological cell must not sink an
hours-long run.  This module collects the three pieces the executor's
fault tolerance is built from:

**Error classification.**  :func:`is_transient` splits solve failures
into *transient* (OS errors, memory pressure, anything unknown — worth
retrying) and *deterministic* (``ValueError``-family bugs and the
repo's own :class:`~repro.exceptions.ReproError` hierarchy, including
LP infeasibility — retrying reproduces the failure, so the cell is
quarantined immediately).

**Failure policy.**  :class:`FailurePolicy` carries the executor's
retry/timeout/budget knobs: attempts per cell, exponential backoff
(:func:`backoff_delay` derives *deterministic* jitter from the cell key
so reruns are reproducible), the per-cell wall-clock budget, and how
many quarantined cells a sweep tolerates before aborting.
:func:`failure_record` builds the ``<key>.failed.json`` payload the
store persists so a *resumed* run consults past failures instead of
blindly re-attempting the same poison cell.

**Deterministic fault injection.**  The test substrate for all of the
above plus the claim/TTL machinery.  ``$REPRO_FAULTS`` (or ``repro …
--inject-fault``) holds ``;``-separated specs of ``,``-separated
``name=value`` fields::

    site=solve,action=raise,exc=ValueError,key=3fa9
    site=solve,action=kill,hash=1/3,times=1,state=.faults-state
    site=store.put,action=hang,seconds=2
    site=claim,action=raise,exc=OSError,times=2

* ``site`` (required): where to fire — ``solve`` (inside the worker,
  before the cell solves), ``store.get`` / ``store.put`` (the
  :class:`~repro.runner.store.DirStore` boundary), ``claim``
  (:func:`~repro.runner.campaign.try_claim`).
* ``action`` (required): ``raise`` an exception (``exc=`` names the
  type), ``hang`` for ``seconds=`` (a stuck solver, for the watchdog),
  or ``kill`` — ``SIGKILL`` the calling process (a segfault/OOM stand-in
  that produces a real ``BrokenProcessPool``).
* selectors: ``key=<hex prefix>`` targets one cell; ``hash=r/m`` targets
  the deterministic slice of cells whose key hashes to ``r`` mod ``m``;
  neither matches every key at the site.
* ``times=N`` fires only the first N matching triggers *per cell* —
  per-cell counting keeps scenarios deterministic under concurrency,
  where a global count would depend on worker scheduling.  Counts live
  in-process by default; ``state=DIR`` moves them to append-only files
  under ``DIR`` so they survive worker kills and are shared across
  processes (required for ``action=kill``, which takes its in-process
  counter down with it).

Everything is keyed by cell-key hash and counted deterministically, so
an injected failure scenario replays identically run after run — which
is what lets CI assert exact recovery behavior.  With ``$REPRO_FAULTS``
unset, :func:`trigger` is one environment lookup: the fault-free fast
path pays nothing.
"""

from __future__ import annotations

import os
import signal
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.exceptions import (
    ExperimentError,
    InfeasibleError,
    ReproError,
    SolverError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.spec import SweepCell

#: Environment variable holding ``;``-separated fault specs.
FAULTS_ENV = "REPRO_FAULTS"

#: Injection points the runner instruments.
FAULT_SITES = ("solve", "store.get", "store.put", "claim")

#: What an injected fault does at its site.
FAULT_ACTIONS = ("raise", "hang", "kill")

#: Failure-record payload format tag; bump when the shape changes.
FAILURE_SCHEMA = "repro-failure-v1"

#: Attempts per cell before quarantine (CLI/policy default).
DEFAULT_MAX_ATTEMPTS = 3


class FaultError(ReproError):
    """A ``$REPRO_FAULTS`` / ``--inject-fault`` spec that cannot be parsed."""


class WorkerCrashError(ReproError):
    """A worker process died (segfault/OOM/kill) while solving a cell.

    Synthesized by the executor from ``BrokenProcessPool`` once chunk
    bisection has isolated the crash to a single cell; classified
    transient (a retry gets a fresh worker).
    """


class CellTimeoutError(ReproError):
    """A cell exceeded its wall-clock budget and its worker was killed.

    Classified transient: a timeout often reflects machine load, and
    the retry/quarantine counters bound how often it is re-attempted.
    """


#: Exception types ``action=raise`` can inject, by spec name.
_INJECTABLE_EXCEPTIONS: dict[str, type[Exception]] = {
    "OSError": OSError,
    "IOError": OSError,
    "TimeoutError": TimeoutError,
    "MemoryError": MemoryError,
    "RuntimeError": RuntimeError,
    "ValueError": ValueError,
    "TypeError": TypeError,
    "ZeroDivisionError": ZeroDivisionError,
    "SolverError": SolverError,
    "InfeasibleError": InfeasibleError,
    "ExperimentError": ExperimentError,
}

#: Retry-worthy failure types, checked before the deterministic set so
#: the runner's own crash/timeout sentinels (ReproError subclasses)
#: stay retryable.
_TRANSIENT_TYPES: tuple[type[BaseException], ...] = (
    WorkerCrashError,
    CellTimeoutError,
    OSError,  # includes TimeoutError, ConnectionError, BrokenPipeError
    EOFError,
    MemoryError,
)

#: Failure types a retry will reproduce bit-for-bit: programming errors
#: and the repo's own exception hierarchy (LP infeasibility, malformed
#: experiment configs, solver contract violations are all functions of
#: the cell's inputs, which do not change between attempts).
_DETERMINISTIC_TYPES: tuple[type[BaseException], ...] = (
    ValueError,  # includes UnicodeError
    TypeError,
    KeyError,
    IndexError,
    AttributeError,
    ArithmeticError,  # includes ZeroDivisionError, OverflowError
    AssertionError,
    NotImplementedError,
    ReproError,
)


def is_transient(error: BaseException) -> bool:
    """Whether retrying ``error`` could plausibly succeed.

    Unknown exception types default to transient: quarantine still
    bounds the damage (``max_attempts`` tries), whereas misclassifying
    a recoverable glitch as deterministic would fail a cell that one
    retry would have saved.
    """
    if isinstance(error, _TRANSIENT_TYPES):
        return True
    if isinstance(error, _DETERMINISTIC_TYPES):
        return False
    return True


def error_class(error: BaseException) -> str:
    """``"transient"`` or ``"deterministic"`` for records and events."""
    return "transient" if is_transient(error) else "deterministic"


@dataclass(frozen=True)
class FailurePolicy:
    """How one sweep run treats failing cells.

    Attributes:
        max_attempts: solve attempts per cell before quarantine; only
            transient failures are retried at all, so deterministic
            errors quarantine on their first attempt regardless.
        backoff_base: first retry delay in seconds; doubles per attempt.
        backoff_cap: upper bound on any single retry delay.
        max_failures: quarantined cells tolerated before the sweep
            aborts with the first failing cell's error (default 0:
            any quarantine aborts, the historical behavior).
        keep_going: never abort on quarantined cells — they become
            ``SkippedCell(reason="failed")`` rows and the sweep
            completes partially (unbounded ``max_failures``).
        cell_timeout: per-cell wall-clock budget in seconds, overriding
            every kind's own default; ``None`` defers to
            :attr:`~repro.runner.spec.CellKind.timeout`, ``0`` disables
            the watchdog entirely.
    """

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    backoff_base: float = 0.05
    backoff_cap: float = 30.0
    max_failures: int = 0
    keep_going: bool = False
    cell_timeout: float | None = None


def backoff_delay(policy: FailurePolicy, key: str, attempt: int) -> float:
    """Exponential backoff with *deterministic* jitter for retry ``attempt``.

    The jitter term derives from the cell key and attempt number, not a
    RNG: concurrent retries still decorrelate (different keys, different
    delays) while any given failure scenario replays with identical
    timing — the property the fault-injection tests assert against.
    """
    base = policy.backoff_base * (2 ** max(0, attempt - 1))
    try:
        salt = int(key[:8], 16)
    except ValueError:
        salt = sum(key.encode())
    jitter = ((salt ^ (attempt * 0x9E3779B9)) % 997) / 997.0
    return min(policy.backoff_cap, base * (1.0 + jitter))


def failure_record(
    cell: "SweepCell",
    key: str,
    *,
    attempts: int,
    label: str,
    error: BaseException,
    detail: str = "",
) -> dict:
    """The ``<key>.failed.json`` payload persisted on quarantine.

    Self-describing like result entries (full fingerprint, so a record
    can be audited without the spec) plus everything triage needs: the
    cumulative attempt count resume arithmetic runs on, the error class
    and type, the worker-side traceback, and the host that gave up.
    """
    return {
        "schema": FAILURE_SCHEMA,
        "key": key,
        "experiment": cell.experiment,
        "fingerprint": cell.fingerprint(),
        "attempts": int(attempts),
        "error_class": label,
        "error_type": type(error).__name__,
        "message": str(error),
        "detail": detail,
        "host": socket.gethostname(),
        "updated_at": time.time(),
    }


@dataclass(frozen=True)
class FaultSpec:
    """One parsed injection directive (see the module docstring)."""

    site: str
    action: str
    exc: str = "OSError"
    seconds: float = 3600.0
    key: str = ""
    slot: tuple[int, int] | None = None  # (remainder, modulus) of hash=r/m
    times: int | None = None
    state: str = ""

    def matches(self, site: str, key: str) -> bool:
        if site != self.site:
            return False
        if self.key and not key.startswith(self.key):
            return False
        if self.slot is not None:
            remainder, modulus = self.slot
            try:
                value = int(key, 16)
            except ValueError:
                value = sum(key.encode())
            if value % modulus != remainder:
                return False
        return True


def parse_fault(text: str) -> FaultSpec:
    """Parse one ``name=value[,name=value...]`` spec; raises :class:`FaultError`."""
    fields: dict[str, str] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, value = part.partition("=")
        if not sep or not name.strip():
            raise FaultError(f"fault field {part!r} is not name=value (in {text!r})")
        fields[name.strip()] = value.strip()
    site = fields.pop("site", "")
    if site not in FAULT_SITES:
        raise FaultError(
            f"fault spec {text!r} needs site= one of {', '.join(FAULT_SITES)}"
        )
    action = fields.pop("action", "")
    if action not in FAULT_ACTIONS:
        raise FaultError(
            f"fault spec {text!r} needs action= one of {', '.join(FAULT_ACTIONS)}"
        )
    exc = fields.pop("exc", "OSError")
    if action == "raise" and exc not in _INJECTABLE_EXCEPTIONS:
        raise FaultError(
            f"fault spec {text!r}: unknown exc={exc!r} "
            f"(known: {', '.join(sorted(_INJECTABLE_EXCEPTIONS))})"
        )
    try:
        seconds = float(fields.pop("seconds", "3600"))
    except ValueError as error:
        raise FaultError(f"fault spec {text!r}: bad seconds= ({error})") from None
    key = fields.pop("key", "").lower()
    if key and not all(ch in "0123456789abcdef" for ch in key):
        raise FaultError(f"fault spec {text!r}: key= must be a hex cell-key prefix")
    slot: tuple[int, int] | None = None
    hash_spec = fields.pop("hash", "")
    if hash_spec:
        remainder, sep, modulus = hash_spec.partition("/")
        if not sep or not remainder.isdigit() or not modulus.isdigit() or int(modulus) < 1:
            raise FaultError(f"fault spec {text!r}: hash= must be r/m (e.g. 1/3)")
        slot = (int(remainder) % int(modulus), int(modulus))
    times: int | None = None
    if "times" in fields:
        times_text = fields.pop("times")
        if not times_text.isdigit() or int(times_text) < 1:
            raise FaultError(f"fault spec {text!r}: times= must be a positive integer")
        times = int(times_text)
    state = fields.pop("state", "")
    if fields:
        raise FaultError(
            f"fault spec {text!r}: unknown field(s) {', '.join(sorted(fields))}"
        )
    return FaultSpec(
        site=site, action=action, exc=exc, seconds=seconds,
        key=key, slot=slot, times=times, state=state,
    )


def parse_faults(text: str) -> tuple[FaultSpec, ...]:
    """Parse a full ``;``-separated ``$REPRO_FAULTS`` value."""
    return tuple(
        parse_fault(part) for part in text.split(";") if part.strip()
    )


# Parsed-plan cache: (env text, parsed specs).  The env var is re-read on
# every trigger so tests can flip it, but parsing only happens when the
# text actually changes.
_plan: tuple[str, tuple[FaultSpec, ...]] = ("", ())

# In-process fallback trigger counters for specs without a state dir.
_local_counts: dict[tuple[int, str, str], int] = {}


def active_faults() -> tuple[FaultSpec, ...]:
    """The parsed specs for the current ``$REPRO_FAULTS`` value."""
    global _plan
    text = os.environ.get(FAULTS_ENV, "")
    if not text:
        return ()
    if text != _plan[0]:
        _plan = (text, parse_faults(text))
    return _plan[1]


def _consume(spec: FaultSpec, index: int, site: str, key: str) -> bool:
    """Count one trigger of ``spec``; True while within its ``times`` budget.

    With a state dir, the count is the size of an append-only file —
    one O_APPEND byte per trigger is atomic on POSIX, so concurrent
    workers share one monotone counter that survives ``action=kill``
    taking its process down.
    """
    assert spec.times is not None
    if spec.state:
        path = Path(spec.state).expanduser() / f"fault-{index}-{site}-{key}"
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "ab") as handle:
            handle.write(b"x")
            handle.flush()
            count = handle.tell()
        return count <= spec.times
    token = (index, site, key)
    _local_counts[token] = _local_counts.get(token, 0) + 1
    return _local_counts[token] <= spec.times


def _fire(spec: FaultSpec, site: str, key: str) -> None:
    if spec.action == "raise":
        raise _INJECTABLE_EXCEPTIONS[spec.exc](
            f"injected {spec.exc} at {site} (cell {key[:12]})"
        )
    if spec.action == "hang":
        time.sleep(spec.seconds)
        return
    os.kill(os.getpid(), signal.SIGKILL)


def trigger(site: str, key: str) -> None:
    """Fire any matching injected fault; a no-op unless ``$REPRO_FAULTS`` is set.

    The instrumented call sites (worker solve loop, store get/put,
    claim acquisition) call this unconditionally — the unset-env early
    return is a single dict lookup, so production sweeps pay nothing.
    """
    if not os.environ.get(FAULTS_ENV):
        return
    for index, spec in enumerate(active_faults()):
        if not spec.matches(site, key):
            continue
        if spec.times is not None and not _consume(spec, index, site, key):
            continue
        _fire(spec, site, key)
