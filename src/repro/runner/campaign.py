"""Campaign coordination: shard math, claim files, and run manifests.

A *campaign* is one sweep spec executed cooperatively — across worker
processes, across invocations (kill + resume), or across hosts that
share (or later merge) a :class:`~repro.runner.store.CellStore`.  The
runner stays coordination-free at the data layer (entries are
content-addressed and atomically written); this module adds the three
small pieces that turn a shared store into a campaign:

**Sharding.**  ``repro sweep EXP --shard i/N`` deterministically
partitions the grid by hashing each cell's content key:
``int(cell_key, 16) % N``.  Every host computes the identical partition
from the spec alone — no broker, no assignment state — and any change
that alters a cell's key (solver config, CACHE_VERSION, …) reshuffles
shards *consistently* on every host because they all hash the same
fingerprints.

**Claims.**  A claim file (``<store>/claims/<key>.claim``) marks a cell
as being solved by some owner.  Creation hard-links a fully written
temp file into place — atomic on POSIX, so exactly one owner wins a
race for an unclaimed cell and no reader ever sees a partial claim.  Claims carry their owner, epoch timestamp, and TTL; a claim
older than its TTL is *abandoned* (the owner died or was killed) and
may be stolen by atomically replacing the file.  Two stealers can race
on an expired claim — both replace, both solve, and the store's
atomic writes make the duplicate harmless (identical content, last
write wins).  That bounded duplication is the documented cost of
brokerless work stealing.

**Manifest.**  Each campaign run writes ``campaign.json`` into its
store root: the spec fingerprint (so merged stores can be checked for
workload identity), the shard map with per-shard completion counts,
and this run's lifecycle counters (cache hits, solves, steals, skips).
A resumed run's manifest showing ``solved == 0`` and
``cache_hits == shard_cells`` is the machine-checkable statement that
resume re-solved nothing.
"""

from __future__ import annotations

import json
import os
import re
import socket
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.exceptions import ReproError
from repro.runner import faults
from repro.runner.spec import CACHE_VERSION, SweepCell, SweepSpec, cell_key, spec_fingerprint
from repro.utils.jsonio import write_json_atomic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (executor imports us)
    from repro.runner.executor import SweepReport
    from repro.runner.store import CellStore

#: Subdirectory of a store root holding claim files.
CLAIMS_DIR = "claims"

#: Manifest filename within a store root.
MANIFEST_NAME = "campaign.json"

#: Manifest payload format tag; bump when the shape changes.
MANIFEST_SCHEMA = "repro-campaign-v1"

#: Default claim time-to-live.  Generous on purpose: a claim must outlive
#: the slowest single chunk a worker can take (full-config robust solves
#: run minutes per cell), and a too-short TTL causes duplicate solves,
#: not corruption.
DEFAULT_CLAIM_TTL = 3600.0


class CampaignError(ReproError):
    """Invalid campaign configuration (bad shard spec, missing store)."""


@dataclass(frozen=True)
class Shard:
    """One slice ``index`` of a campaign split ``count`` ways."""

    index: int
    count: int

    def __post_init__(self):
        if self.count < 1:
            raise CampaignError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise CampaignError(
                f"shard index must be in [0, {self.count}), got {self.index}"
            )

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


def parse_shard(text: str) -> Shard:
    """Parse ``"i/N"`` (0-based index) into a validated :class:`Shard`."""
    match = re.fullmatch(r"(\d+)/(\d+)", text.strip())
    if match is None:
        raise CampaignError(
            f"invalid shard spec {text!r}; expected i/N with 0 <= i < N (e.g. 0/2)"
        )
    return Shard(index=int(match.group(1)), count=int(match.group(2)))


def cell_shard(key: str, count: int) -> int:
    """The shard a cell key lands in: ``int(key, 16) % count``.

    The key is already a uniform content hash, so taking it mod N is an
    even, deterministic, platform-independent partition — every host
    derives the same shard for the same cell with no shared state.
    """
    return int(key, 16) % count


def shard_cells(
    cells: Iterable[SweepCell], shard: Shard
) -> tuple[list[SweepCell], list[SweepCell]]:
    """Split ``cells`` into (ours, foreign) under ``shard``."""
    ours: list[SweepCell] = []
    foreign: list[SweepCell] = []
    for cell in cells:
        (ours if cell_shard(cell_key(cell), shard.count) == shard.index else foreign).append(cell)
    return ours, foreign


def default_owner() -> str:
    """A claim-owner id unique per invocation: host, pid, random suffix.

    The random suffix distinguishes a resumed run from its own dead
    predecessor on the same host (same hostname, possibly recycled
    pid), so resume never mistakes an abandoned claim for its own.
    """
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


@dataclass(frozen=True)
class ClaimPolicy:
    """How one executor participates in claim coordination.

    Attributes:
        root: the store root claims live under (``<root>/claims/``).
        owner: this executor's identity, written into every claim.
        ttl: seconds after which this executor's claims count as
            abandoned and become stealable.
    """

    root: Path
    owner: str
    ttl: float = DEFAULT_CLAIM_TTL


def claim_path(root: str | Path, key: str) -> Path:
    return Path(root).expanduser() / CLAIMS_DIR / f"{key}.claim"


def read_claim(path: Path) -> dict | None:
    """The claim payload at ``path``, or None if absent/unreadable.

    An unreadable (torn, corrupt) claim is reported as None: the caller
    treats it like an abandoned claim and may replace it, which is safe
    because claims only gate *scheduling* — results remain protected by
    the store's own atomic writes.
    """
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def _owner_dead_on_this_host(owner: object) -> bool:
    """True iff ``owner`` names a process of *this* host that no longer runs.

    Owner ids are ``<hostname>-<pid>-<suffix>``; when the hostname is
    ours we can do better than waiting out the TTL — probe the pid
    (``kill -0``).  A dead pid means the claim is abandoned right now,
    so a killed-and-resumed run on the same machine reclaims its own
    cells immediately.  A recycled pid merely falls back to the TTL.
    """
    if not isinstance(owner, str):
        return False
    host, _, rest = owner.rpartition("-")
    host, _, pid_text = host.rpartition("-")
    if host != socket.gethostname() or not pid_text.isdigit() or not rest:
        return False
    try:
        os.kill(int(pid_text), 0)
    except ProcessLookupError:
        return True
    except (OSError, PermissionError):
        return False
    return False


def _claim_expired(claim: dict, *, fallback_ttl: float, now: float) -> bool:
    try:
        claimed_at = float(claim["claimed_at"])
        ttl = float(claim.get("ttl", fallback_ttl))
    except (KeyError, TypeError, ValueError):
        return True
    if _owner_dead_on_this_host(claim.get("owner")):
        return True
    return now - claimed_at > ttl


def try_claim(policy: ClaimPolicy, key: str) -> str:
    """Attempt to claim ``key``; returns ``"claimed"``, ``"stolen"``, or ``"held"``.

    * ``"claimed"`` — we own it now (fresh claim, or our own re-claim on
      resume with the same owner id).
    * ``"stolen"`` — an expired or unreadable claim by another owner was
      atomically replaced with ours.
    * ``"held"`` — another owner holds a live claim; skip the cell and
      let them finish (resume picks it up from the store).
    """
    faults.trigger("claim", key)
    path = claim_path(policy.root, key)
    payload = {
        "key": key,
        "owner": policy.owner,
        "claimed_at": time.time(),
        "ttl": policy.ttl,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    # Create the claim with its content already in place: write a private
    # temp file, then hard-link it to the claim path.  link(2) fails with
    # EEXIST when another owner won, and a racing reader can never observe
    # a half-written claim (an O_EXCL create followed by a write exposes
    # an empty claim that a reader would mistake for torn — and steal).
    tmp = path.with_name(f"{path.name}.{uuid.uuid4().hex}.tmp")
    tmp.write_text(json.dumps(payload))
    try:
        os.link(tmp, path)
        return "claimed"
    except FileExistsError:
        pass
    finally:
        tmp.unlink(missing_ok=True)
    existing = read_claim(path)
    if existing is not None and existing.get("owner") == policy.owner:
        return "claimed"
    now = time.time()
    if existing is None or _claim_expired(existing, fallback_ttl=policy.ttl, now=now):
        write_json_atomic(path, payload)
        return "stolen"
    return "held"


def release_claim(policy: ClaimPolicy, key: str) -> None:
    """Drop our claim on ``key`` (missing files are fine — idempotent)."""
    try:
        os.unlink(claim_path(policy.root, key))
    except OSError:
        pass


def claim_status(root: str | Path, key: str, *, ttl: float = DEFAULT_CLAIM_TTL) -> str:
    """``"unclaimed"``, ``"active"``, or ``"expired"`` for diagnostics."""
    path = claim_path(root, key)
    if not path.exists():
        return "unclaimed"
    claim = read_claim(path)
    if claim is None or _claim_expired(claim, fallback_ttl=ttl, now=time.time()):
        return "expired"
    return "active"


def manifest_path(root: str | Path) -> Path:
    return Path(root).expanduser() / MANIFEST_NAME


def build_manifest(
    spec: SweepSpec,
    report: "SweepReport",
    store: "CellStore",
    *,
    shard: Shard | None = None,
    policy: ClaimPolicy | None = None,
) -> dict:
    """The ``campaign.json`` payload for one completed (or partial) run.

    Completion counts come from probing the store *after* the run, so
    they reflect global campaign progress — including cells other
    shards/hosts stored into a shared directory — not just this run's
    work.  The counters, by contrast, describe this run alone; the
    resume criterion ("re-solves zero already-stored cells") reads
    ``counters.solved == 0`` and ``counters.cache_hits == shard_cells``.
    """
    count = shard.count if shard is not None else 1
    index = shard.index if shard is not None else 0
    per_shard_cells: dict[int, int] = {i: 0 for i in range(count)}
    per_shard_done: dict[int, int] = {i: 0 for i in range(count)}
    for cell in spec.cells:
        slot = cell_shard(cell_key(cell), count)
        per_shard_cells[slot] += 1
        if store.contains(cell):
            per_shard_done[slot] += 1
    skipped_reasons: dict[str, int] = {}
    for skip in report.skipped:
        skipped_reasons[skip.reason] = skipped_reasons.get(skip.reason, 0) + 1
    lifecycle = report.lifecycle_counts()
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "experiment": spec.experiment,
        "spec_fingerprint": spec_fingerprint(spec),
        "cache_version": CACHE_VERSION,
        "store": store.describe(),
        "shard": {"index": index, "count": count},
        "cells_total": len(spec.cells),
        "shard_cells": per_shard_cells[index],
        "shard_map": {
            str(i): {"cells": per_shard_cells[i], "completed": per_shard_done[i]}
            for i in range(count)
        },
        "completed_cells": sum(per_shard_done.values()),
        "counters": {
            "cache_hits": report.cached,
            "solved": report.solved,
            "stolen": report.stolen,
            "skipped": skipped_reasons,
        },
        # Additive failure-domain block (schema unchanged): how this
        # run's cells failed, plus the store-wide failure-record count a
        # resumed run will be gated by (see repro cache failures).
        "failures": {
            "quarantined": skipped_reasons.get("failed", 0),
            "retried": lifecycle.get("retried", 0),
            "timed_out": lifecycle.get("timed-out", 0),
            "records": sum(1 for _ in store.failure_records()),
        },
        "lifecycle": lifecycle,
        "jobs": report.jobs,
        "elapsed_seconds": round(report.elapsed, 3),
        "updated_at": time.time(),
    }
    if policy is not None:
        manifest["owner"] = policy.owner
        manifest["claim_ttl"] = policy.ttl
    return manifest


def write_manifest(manifest: dict, root: str | Path) -> Path:
    """Atomically publish ``manifest`` as ``<root>/campaign.json``."""
    return write_json_atomic(manifest_path(root), manifest)


def load_manifest(root: str | Path) -> dict:
    """Read ``<root>/campaign.json`` (raises CampaignError if unusable)."""
    path = manifest_path(root)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise CampaignError(f"cannot read campaign manifest {path}: {error}") from None
    if not isinstance(payload, dict) or payload.get("schema") != MANIFEST_SCHEMA:
        raise CampaignError(f"{path} is not a {MANIFEST_SCHEMA} manifest")
    return payload
