"""Baseline comparison: the perf regression gate behind ``--baseline``.

A baseline is simply a previously emitted ``BENCH_<name>.json`` (or a
directory of them, as CI stores).  Comparison is deliberately coarse and
robust: per-benchmark *wall-clock* against a percentage threshold.
Per-phase timings are carried in the payloads for humans diagnosing a
regression, but don't gate — phase attribution shifts when code moves
between phases, and gating on it would punish refactors.

Two payloads are comparable only when their config fingerprints match
(same cells, solver config, columns, cache version).  A mismatch is a
*failure*, not a silent skip: a gate that quietly compares different
workloads is worse than no gate, so the fix is to re-record the
baseline alongside the change that altered the grid.  For the same
reason a baseline recorded with cache hits is rejected outright — its
near-zero wall-clock would flag every honest cold run as a regression.
A *current* run with cache hits still gates (CI's warm self-compare
leg relies on it) but its verdict carries a note that cached cells
were not re-timed.

A comparison of a payload against itself reports a 0.0% delta and
passes at any threshold — the CI self-compare smoke relies on this.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import ReproError


class BaselineError(ReproError):
    """The baseline path is missing or not a readable bench payload."""


@dataclass(frozen=True)
class Comparison:
    """One benchmark's verdict against its baseline entry."""

    benchmark: str
    status: str  # "ok" | "regression" | "incomparable" | "missing-baseline"
    message: str

    @property
    def failed(self) -> bool:
        return self.status in ("regression", "incomparable")


def _load_payload(path: Path) -> dict:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise BaselineError(f"cannot read baseline {path}: {error}") from None
    if not isinstance(payload, dict) or "benchmark" not in payload:
        raise BaselineError(f"{path} is not a bench payload (missing 'benchmark')")
    return payload


def load_baselines(path: str | Path) -> dict[str, dict]:
    """Load baseline payloads keyed by benchmark name.

    ``path`` may be one ``BENCH_*.json`` file or a directory containing
    any number of them (the layout ``repro bench --out`` produces).
    """
    path = Path(path).expanduser()
    if path.is_dir():
        files = sorted(path.glob("BENCH_*.json"))
        if not files:
            raise BaselineError(f"no BENCH_*.json files in baseline directory {path}")
    elif path.is_file():
        files = [path]
    else:
        raise BaselineError(f"baseline path {path} does not exist")
    return {payload["benchmark"]: payload for payload in map(_load_payload, files)}


def compare_to_baseline(
    payload: dict, baselines: dict[str, dict], fail_on_regress_pct: float
) -> Comparison:
    """Gate one benchmark's payload against its baseline entry.

    Regression means current wall-clock exceeds the baseline's by more
    than ``fail_on_regress_pct`` percent.  Faster-than-baseline always
    passes; a benchmark absent from the baseline is reported but does
    not fail (record a fresh baseline to start gating it).
    """
    name = payload["benchmark"]
    baseline = baselines.get(name)
    if baseline is None:
        return Comparison(
            name,
            "missing-baseline",
            f"{name}: no baseline entry; record one to gate this benchmark",
        )
    if baseline.get("config_fingerprint") != payload.get("config_fingerprint"):
        return Comparison(
            name,
            "incomparable",
            f"{name}: config fingerprint mismatch "
            f"(current {payload.get('config_fingerprint')}, "
            f"baseline {baseline.get('config_fingerprint')}); the grids differ — "
            f"re-record the baseline",
        )
    baseline_hits = int(baseline.get("cache", {}).get("hits", 0))
    if baseline_hits > 0:
        return Comparison(
            name,
            "incomparable",
            f"{name}: baseline was recorded with {baseline_hits} cache hit(s), so "
            f"its wall-clock does not measure solve cost; re-record it uncached",
        )
    if baseline.get("profiled"):
        return Comparison(
            name,
            "incomparable",
            f"{name}: baseline was recorded under --profile, so its wall-clock "
            f"includes profiler overhead; re-record it unprofiled",
        )
    if payload.get("profiled"):
        return Comparison(
            name,
            "incomparable",
            f"{name}: current run used --profile, so its wall-clock includes "
            f"profiler overhead and cannot gate against an unprofiled "
            f"baseline; re-run without --profile",
        )
    current = float(payload["wall_clock_seconds"])
    reference = float(baseline["wall_clock_seconds"])
    delta_pct = 100.0 * (current - reference) / reference if reference > 0 else 0.0
    detail = (
        f"{name}: wall {current:.2f}s vs baseline {reference:.2f}s "
        f"({delta_pct:+.1f}%, threshold +{fail_on_regress_pct:g}%)"
    )
    current_hits = int(payload.get("cache", {}).get("hits", 0))
    if current_hits > 0:
        detail += f" [note: {current_hits} cell(s) cache-served, not re-timed]"
    if current > reference * (1.0 + fail_on_regress_pct / 100.0):
        return Comparison(name, "regression", f"{detail} REGRESSION")
    return Comparison(name, "ok", f"{detail} ok")
