"""Benchmark execution: time a declared workload, emit ``BENCH_*.json``.

:func:`run_benchmark` executes one registered benchmark's sweep spec
through :func:`~repro.runner.executor.run_sweep` — the same parallel
executor the experiments use — so benchmark timings measure exactly the
production code path.  Each cell's setup/solve/evaluate phases are
recorded by the runner's monotonic-clock hooks
(:mod:`repro.runner.timing`); the resulting :class:`BenchResult`
serializes to a machine-readable payload with per-cell timings,
aggregate wall-clock, cache hit/miss counters, and a config fingerprint
that ties the numbers to the exact grid that produced them.

:func:`write_bench_result` persists the payload as
``BENCH_<name>.json`` (atomic write, like every other artifact), which
is both the CI artifact and the baseline format
:mod:`repro.bench.baseline` compares against.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.bench.registry import Benchmark, get_benchmark
from repro.config import ExperimentConfig
from repro.runner.executor import SweepCell, SweepReport, run_sweep, solve_cell
from repro.runner.faults import FailurePolicy
from repro.runner.spec import CACHE_VERSION, spec_fingerprint  # noqa: F401  (re-export)
from repro.runner.store import CellStore
from repro.utils.jsonio import write_json_atomic

#: Payload format tag; bump when the BENCH_*.json shape changes.
#: (The optional "profile" key added by ``--profile`` and the additive
#: "lifecycle"/"events"/"failures" keys do not constitute a shape change.)
BENCH_SCHEMA = "repro-bench-v1"

#: How many cumulative-time entries ``--profile`` embeds in the payload.
PROFILE_TOP = 30


def _profile_records(profiler: cProfile.Profile, top: int) -> list[dict]:
    """The top-N cumulative functions of a finished profiler, serializable."""
    stats = pstats.Stats(profiler)
    entries = sorted(
        stats.stats.items(), key=lambda item: item[1][3], reverse=True  # ct
    )
    records = []
    for (filename, line, function), (_cc, ncalls, tottime, cumtime, _callers) in entries[:top]:
        records.append(
            {
                "function": function,
                "file": filename,
                "line": line,
                "ncalls": ncalls,
                "tottime_seconds": round(tottime, 6),
                "cumtime_seconds": round(cumtime, 6),
            }
        )
    return records


def _cell_record(result) -> dict:
    cell = result.cell
    return {
        "key": result.key,
        "kind": cell.kind,
        "topology": cell.topology,
        "demand_model": cell.demand_model,
        "margin": cell.margin,
        "params": cell.fingerprint()["params"],
        "cached": result.cached,
        "status": result.status,
        "timings": {name: round(seconds, 6) for name, seconds in result.timings.items()},
    }


@dataclass
class BenchResult:
    """One timed benchmark run, ready to serialize or compare."""

    benchmark: Benchmark
    report: SweepReport
    full: bool
    #: Top cumulative profile entries when the run was profiled, else None.
    profile: list[dict] | None = field(default=None)

    def table(self):
        return self.report.table()

    def payload(self) -> dict:
        """The machine-readable ``BENCH_<name>.json`` document."""
        report = self.report
        table = self.table()
        payload = {
            "schema": BENCH_SCHEMA,
            "benchmark": self.benchmark.name,
            "experiment": self.benchmark.experiment,
            "cache_version": CACHE_VERSION,
            "config_fingerprint": spec_fingerprint(report.spec),
            "full": self.full,
            "jobs": report.jobs,
            "wall_clock_seconds": round(report.elapsed, 6),
            "cache": {"hits": report.cached, "misses": report.solved},
            "failures": {
                "quarantined": report.quarantined,
                "retried": report.lifecycle_counts().get("retried", 0),
                "timed_out": report.lifecycle_counts().get("timed-out", 0),
            },
            "lifecycle": report.lifecycle_counts(),
            "events": [event.as_payload() for event in report.events],
            "phase_totals": {
                name: round(seconds, 6) for name, seconds in report.phase_totals().items()
            },
            "cells": [_cell_record(result) for result in report.results],
            "table": {
                "title": table.title,
                "columns": list(table.columns),
                "rows": [list(row) for row in table.rows],
            },
        }
        if self.profile is not None:
            payload["profiled"] = True
            payload["profile"] = {
                "top_cumulative": self.profile,
                "note": (
                    "cProfile covers the coordinating process only; with "
                    "--jobs > 1, worker-side solves are not attributed. "
                    "Profiler overhead inflates wall_clock_seconds — do not "
                    "use a profiled run as a --baseline reference."
                ),
            }
        return payload

    def summary(self) -> str:
        report = self.report
        phases = report.phase_totals()
        breakdown = ", ".join(
            f"{name} {phases[name]:.1f}s" for name in ("setup", "solve", "evaluate")
            if name in phases
        )
        return (
            f"{self.benchmark.name}: {len(report.results)} cells "
            f"({report.solved} solved, {report.cached} cached) "
            f"wall {report.elapsed:.1f}s"
            + (f" [{breakdown}]" if breakdown else "")
        )


def run_benchmark(
    benchmark: Benchmark | str,
    config: ExperimentConfig | None = None,
    *,
    jobs: int = 1,
    cache: CellStore | None = None,
    solve: Callable[[SweepCell], dict[str, float]] = solve_cell,
    profile: bool = False,
    failures: FailurePolicy | None = None,
) -> BenchResult:
    """Execute one benchmark and return its timed result.

    Args:
        benchmark: a :class:`Benchmark` or its registry name.
        config: grid scale; defaults to the environment config (reduced
            unless ``REPRO_FULL=1``).
        jobs: worker processes for the sweep executor.
        cache: optional result cache — cells served from it report zero
            phase time and count as hits, so benchmarks meant to measure
            solve cost should run uncached (the CLI's default).
        solve: cell solver (injectable for tests).
        profile: run the sweep under cProfile and attach the top
            :data:`PROFILE_TOP` cumulative functions to the payload, so
            the next hot spot is visible without ad-hoc scripts.  With
            ``jobs > 1`` only the coordinating process is profiled.
        failures: the sweep's retry/timeout/quarantine policy
            (:class:`~repro.runner.faults.FailurePolicy`); retries
            inflate the benchmarked wall-clock, so the payload's
            "failures" block records whether any occurred.
    """
    if isinstance(benchmark, str):
        benchmark = get_benchmark(benchmark)
    config = config or ExperimentConfig.from_environment()
    records: list[dict] | None = None
    if profile:
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            report = run_sweep(
                benchmark.spec(config), jobs=jobs, cache=cache, solve=solve,
                failures=failures,
            )
        finally:
            profiler.disable()
        records = _profile_records(profiler, PROFILE_TOP)
    else:
        report = run_sweep(
            benchmark.spec(config), jobs=jobs, cache=cache, solve=solve, failures=failures
        )
    return BenchResult(benchmark=benchmark, report=report, full=config.full, profile=records)


def bench_path(out_dir: str | Path, name: str) -> Path:
    """Where a benchmark's JSON result lives under ``out_dir``."""
    return Path(out_dir).expanduser() / f"BENCH_{name}.json"


def write_bench_result(result: BenchResult, out_dir: str | Path) -> Path:
    """Atomically write ``BENCH_<name>.json``; returns the path."""
    return write_json_atomic(bench_path(out_dir, result.benchmark.name), result.payload())
