"""The benchmark registry: named, declared performance workloads.

A :class:`Benchmark` binds a name to one experiment's sweep spec — the
grid of cells to time — so the harness, the CLI (``repro bench``), and
the pytest wrappers under ``benchmarks/`` all execute the identical
workload through one code path (:func:`repro.bench.harness.run_benchmark`).

Grid experiments reuse their registered spec builders directly; the
single-unit experiments (the running example, Fig. 12's prototype) wrap
their drivers as one ``driver-table`` cell, so every benchmark — grid or
not — rides the sweep executor, its timing hooks, and the result cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.config import ExperimentConfig
from repro.exceptions import ExperimentError
from repro.experiments.kernel_micro import kernel_micro_spec
from repro.experiments.lp_micro import lp_micro_spec
from repro.experiments.registry import driver_spec, experiment_spec
from repro.runner.spec import SweepSpec


@dataclass(frozen=True)
class Benchmark:
    """One declared benchmark: its name, experiment, and cell grid.

    Attributes:
        name: registry identifier (``repro bench <name>``).
        experiment: the experiment registry id the benchmark times.
        description: one-line summary shown by ``repro bench --list``.
        spec: builds the sweep spec (the grid size and schemes come from
            the config: reduced by default, paper-scale with ``--full``).
    """

    name: str
    experiment: str
    description: str
    spec: Callable[[ExperimentConfig], SweepSpec]

    def grid_summary(self, config: ExperimentConfig) -> str:
        """Human-readable grid size + schemes at the given config."""
        spec = self.spec(config)
        columns = ", ".join(spec.resolved_value_columns())
        return f"{len(spec.cells)} cells -> [{columns}]"


def _grid_benchmark(experiment_id: str, description: str) -> Benchmark:
    return Benchmark(
        name=experiment_id,
        experiment=experiment_id,
        description=description,
        spec=lambda config, _id=experiment_id: experiment_spec(_id, config),
    )


BENCHMARKS: dict[str, Benchmark] = {}


def register_benchmark(benchmark: Benchmark) -> Benchmark:
    """Register ``benchmark`` under its name (later registrations win)."""
    BENCHMARKS[benchmark.name] = benchmark
    return benchmark


for _experiment, _description in [
    ("fig6", "Fig. 6 margin sweep (Geant, gravity)"),
    ("fig7", "Fig. 7 margin sweep (Digex, gravity)"),
    ("fig8", "Fig. 8 margin sweep (AS1755, bimodal)"),
    ("fig9", "Fig. 9 local-search heuristic (Abilene, bimodal)"),
    ("fig10", "Fig. 10 virtual next-hop approximation (AS1755)"),
    ("fig11", "Fig. 11 average path stretch (topology-parallel)"),
    ("table1", "Table I margin sweep across topologies"),
]:
    register_benchmark(_grid_benchmark(_experiment, _description))

register_benchmark(
    Benchmark(
        name="running-example",
        experiment="running-example",
        description="Fig. 1 / Appendix B oblivious ratios (end-to-end stack)",
        spec=lambda config: driver_spec(
            "running-example",
            select=("ECMP (Fig. 1b)", "COYOTE (Fig. 1c)", "COYOTE (optimized)"),
            config=config,
        ),
    )
)

register_benchmark(
    Benchmark(
        name="kernel-spf",
        experiment="kernel-spf",
        description="Kernel micro: batched SPF + DAG extraction vs per-dest Dijkstra",
        spec=lambda config: kernel_micro_spec("spf", config),
    )
)

register_benchmark(
    Benchmark(
        name="kernel-propagate",
        experiment="kernel-propagate",
        description="Kernel micro: vectorized flow propagation vs dict recursion",
        spec=lambda config: kernel_micro_spec("propagate", config),
    )
)

register_benchmark(
    Benchmark(
        name="lp-assemble",
        experiment="lp-assemble",
        description="LP micro: sparse CSR assembly + compile of the slave LP",
        spec=lambda config: lp_micro_spec("assemble", config),
    )
)

register_benchmark(
    Benchmark(
        name="lp-oracle-sweep",
        experiment="lp-oracle-sweep",
        description="LP micro: per-edge oracle sweep, persistent instance vs one-shot",
        spec=lambda config: lp_micro_spec("oracle-sweep", config),
    )
)

register_benchmark(
    Benchmark(
        name="fig12",
        experiment="fig12",
        description="Fig. 12 prototype packet-drop emulation (worst phase)",
        spec=lambda config: driver_spec(
            "fig12",
            select=("TE1", "TE2", "COYOTE"),
            value_column="worst",
            config=config,
        ),
    )
)


def benchmark_names() -> list[str]:
    return list(BENCHMARKS)


def get_benchmark(name: str) -> Benchmark:
    benchmark = BENCHMARKS.get(name)
    if benchmark is None:
        raise ExperimentError(
            f"unknown benchmark {name!r}; available: {', '.join(BENCHMARKS)}"
        )
    return benchmark
