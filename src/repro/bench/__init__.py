"""Benchmark harness and perf regression gates riding the sweep runner.

``repro bench <name|all>`` times declared benchmark workloads through
the same :func:`~repro.runner.executor.run_sweep` path the experiments
use, emits machine-readable ``BENCH_<name>.json`` results, and — given a
baseline — fails past a wall-clock regression threshold, giving CI a
real performance gate.
"""

from repro.bench.baseline import (
    BaselineError,
    Comparison,
    compare_to_baseline,
    load_baselines,
)
from repro.bench.harness import (
    BENCH_SCHEMA,
    BenchResult,
    bench_path,
    run_benchmark,
    spec_fingerprint,
    write_bench_result,
)
from repro.bench.registry import (
    BENCHMARKS,
    Benchmark,
    benchmark_names,
    get_benchmark,
    register_benchmark,
)

__all__ = [
    "BENCHMARKS",
    "BENCH_SCHEMA",
    "BaselineError",
    "Benchmark",
    "BenchResult",
    "Comparison",
    "bench_path",
    "benchmark_names",
    "compare_to_baseline",
    "get_benchmark",
    "load_baselines",
    "register_benchmark",
    "run_benchmark",
    "spec_fingerprint",
    "write_bench_result",
]
