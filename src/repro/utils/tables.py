"""Lightweight tabular results container used by the experiment drivers.

The paper reports results as tables (Table I) and line plots (Figs. 6-12).
Without a plotting stack we emit the same data as text tables; each
experiment driver returns a :class:`Table` whose rows are exactly the
series the paper plots, so EXPERIMENTS.md can juxtapose paper-vs-measured
values.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


@dataclass
class Table:
    """An ordered list of homogeneous rows with named columns.

    Attributes:
        title: human-readable experiment name (e.g. "Fig. 6 Geant gravity").
        columns: column names, in display order.
        rows: list of row tuples aligned with ``columns``.
        notes: free-form annotations (parameters, reduced-grid warnings).
    """

    title: str
    columns: Sequence[str]
    rows: list[tuple[Any, ...]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append a row; lengths must match the declared columns."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table {self.title!r} "
                f"declares {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """Return one column as a list (raises ValueError for unknown names)."""
        try:
            index = list(self.columns).index(name)
        except ValueError:
            raise ValueError(f"table {self.title!r} has no column {name!r}") from None
        return [row[index] for row in self.rows]

    def sorted_by(self, name: str) -> "Table":
        """A copy of the table with rows sorted by the given column."""
        index = list(self.columns).index(name)
        clone = Table(self.title, list(self.columns), notes=list(self.notes))
        clone.rows = sorted(self.rows, key=lambda row: row[index])
        return clone

    def __len__(self) -> int:
        return len(self.rows)

    def __str__(self) -> str:
        return format_markdown(self)


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_markdown(table: Table) -> str:
    """Render a :class:`Table` as GitHub-flavoured markdown."""
    out = io.StringIO()
    out.write(f"### {table.title}\n\n")
    header = " | ".join(table.columns)
    out.write(f"| {header} |\n")
    out.write("|" + "|".join(" --- " for _ in table.columns) + "|\n")
    for row in table.rows:
        out.write("| " + " | ".join(_render_cell(v) for v in row) + " |\n")
    for note in table.notes:
        out.write(f"\n> {note}\n")
    return out.getvalue()


def format_csv(table: Table) -> str:
    """Render a :class:`Table` as CSV (no quoting; values are simple)."""
    lines = [",".join(table.columns)]
    for row in table.rows:
        lines.append(",".join(_render_cell(v) for v in row))
    return "\n".join(lines) + "\n"


def merge_tables(title: str, tables: Iterable[Table], key_column: str) -> Table:
    """Concatenate tables that share a schema, tagging rows by source title.

    Used by the Table-I driver to stack per-topology blocks into the big
    comparison table.
    """
    tables = list(tables)
    if not tables:
        raise ValueError("merge_tables needs at least one table")
    columns = ["source", *tables[0].columns]
    merged = Table(title, columns)
    for tab in tables:
        if list(tab.columns) != list(tables[0].columns):
            raise ValueError("merge_tables requires identical schemas")
        for row in tab.rows:
            merged.add_row(tab.title, *row)
        merged.notes.extend(tab.notes)
    return merged.sorted_by(key_column) if key_column in columns else merged
