"""Small shared utilities: table rendering, seeding, validation helpers."""

from repro.utils.tables import Table, format_markdown, format_csv
from repro.utils.seeding import rng_from_seed, stable_hash

__all__ = [
    "Table",
    "format_markdown",
    "format_csv",
    "rng_from_seed",
    "stable_hash",
]
