"""Atomic JSON file writes shared by the result cache and artifacts.

A crash (or a full disk) halfway through ``json.dump`` must never leave
a truncated file behind where later tooling expects valid JSON: the
payload is serialized to a temp file in the destination directory and
``os.replace``d into place, which is atomic on POSIX within one
filesystem.  Concurrent writers of the same path simply race to publish
complete documents; readers only ever observe one of them.

The emitted documents are *strict* JSON: non-finite floats (fig9's
undefined ECMP/COYOTE gap is NaN when COYOTE's ratio is 0) are written
as ``null`` rather than Python's spec-violating bare ``NaN`` token,
which jq / ``JSON.parse`` / strict parsers reject wholesale.  Readers
that need the float back map ``null`` to NaN (see
:meth:`~repro.runner.cache.ResultCache.get`).
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from pathlib import Path
from typing import Any


def _null_non_finite(value: Any) -> Any:
    """Recursively replace NaN/inf floats with None (JSON ``null``)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _null_non_finite(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_null_non_finite(item) for item in value]
    return value


def write_json_atomic(
    path: str | Path, payload: Any, *, indent: int = 2, sort_keys: bool = False
) -> Path:
    """Serialize ``payload`` to ``path`` atomically; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(
                _null_non_finite(payload),
                handle,
                indent=indent,
                sort_keys=sort_keys,
                allow_nan=False,
            )
            handle.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path
