"""Deterministic RNG helpers.

Every stochastic component (demand sampling, synthetic topologies, local
search tie-breaking) draws from a generator derived here, so a fixed seed
reproduces an experiment bit-for-bit.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_hash(*parts: object) -> int:
    """A process-independent 63-bit hash of the given parts.

    Python's builtin ``hash`` is salted per process; experiments must not
    depend on it.  We hash the ``repr`` of each part with SHA-256 instead.
    """
    digest = hashlib.sha256("\x1f".join(repr(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def rng_from_seed(seed: int, *scope: object) -> np.random.Generator:
    """Create a Generator seeded from ``seed`` and an optional scope tag.

    The scope tag keeps independent components (e.g. the gravity sampler
    and the local-search tie-breaker) on decorrelated streams even when
    they share the experiment-level seed.
    """
    if scope:
        seed = stable_hash(seed, *scope) % (2**63)
    return np.random.default_rng(seed)
