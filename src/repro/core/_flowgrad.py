"""Differentiable flow propagation through per-destination DAGs.

Both splitting optimizers need, for a candidate set of ratios ``phi`` and
a finite batch of demand matrices:

* the per-edge loads (a posynomial function of ``phi`` — sums over DAG
  paths of products of ratios, with nonnegative demand coefficients);
* gradients of load functionals with respect to the ratios.

Loads are computed by one topological sweep per destination, vectorized
over the demand-matrix batch (each node carries a length-K arrival
vector).  Gradients come in two flavours:

* *reverse mode* (:meth:`FlowGraph.backward`) — the adjoint sweep for a
  single scalar functional ``sum_{e,k} psi_{e,k} * load_{e,k}``; used by
  the smoothed-minimax optimizer where ``psi`` holds softmax weights;
* *forward mode* (:meth:`FlowGraph.load_jacobian`) — full Jacobian of
  every edge load with respect to every log-ratio; used by the GP
  optimizer whose SLSQP subproblem needs per-constraint gradients.

The adjoint recursion: with ``F(v)`` the arrival vector at ``v`` and
``lam(v) = dS/dF(v)``, walking the DAG in reverse topological order,

    lam(root) = 0
    lam(u)    = sum_v phi(u, v) * (psi(u, v) + lam(v))
    dS/dphi(u, v) = sum_k F_k(u) * (psi_k(u, v) + lam_k(v)).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.demands.matrix import DemandMatrix
from repro.graph.dag import Dag
from repro.graph.network import Edge, Network, Node


class FlowGraph:
    """Pre-compiled propagation structure for one destination DAG."""

    def __init__(self, dag: Dag, matrices: Sequence[DemandMatrix]):
        self.dag = dag
        self.root = dag.root
        self.batch = len(matrices)
        self.order: list[Node] = dag.topological_order()
        self.reverse_order: list[Node] = list(reversed(self.order))
        # Demand injected at each node, as a K-vector per node.
        self.inject: dict[Node, np.ndarray] = {}
        for k, dm in enumerate(matrices):
            for source, volume in dm.demands_to(self.root).items():
                if source not in self.inject:
                    self.inject[source] = np.zeros(self.batch)
                self.inject[source][k] += volume
        self.out_edges: dict[Node, list[Edge]] = {
            node: [(node, head) for head in dag.out_neighbors(node)]
            for node in self.order
            if node != self.root
        }

    # -- primal -----------------------------------------------------------

    def forward(
        self, phi: Mapping[Edge, float]
    ) -> tuple[dict[Node, np.ndarray], dict[Edge, np.ndarray]]:
        """Arrival vectors per node and load vectors per DAG edge."""
        zeros = np.zeros(self.batch)
        arrivals: dict[Node, np.ndarray] = {}
        loads: dict[Edge, np.ndarray] = {}
        for node in self.order:
            arrived = arrivals.get(node)
            injected = self.inject.get(node)
            if arrived is None:
                arrived = injected.copy() if injected is not None else zeros.copy()
            elif injected is not None:
                arrived = arrived + injected
            arrivals[node] = arrived
            if node == self.root or not arrived.any():
                continue
            for edge in self.out_edges[node]:
                fraction = phi.get(edge, 0.0)
                if fraction == 0.0:
                    continue
                flow = arrived * fraction
                loads[edge] = flow
                head = edge[1]
                if head in arrivals:
                    arrivals[head] = arrivals[head] + flow
                else:
                    arrivals[head] = flow.copy()
        return arrivals, loads

    # -- reverse mode -------------------------------------------------------

    def backward(
        self,
        phi: Mapping[Edge, float],
        arrivals: Mapping[Node, np.ndarray],
        psi: Mapping[Edge, np.ndarray],
    ) -> dict[Edge, float]:
        """Gradient of ``sum_{e,k} psi[e][k] * load[e][k]`` w.r.t. ``phi``.

        Only edges present in ``psi`` contribute to the functional; the
        returned dict covers every DAG edge with a nonzero gradient.
        """
        zeros = np.zeros(self.batch)
        lam: dict[Node, np.ndarray] = {self.root: zeros}
        grad: dict[Edge, float] = {}
        for node in self.reverse_order:
            if node == self.root:
                continue
            accumulated = zeros
            arrived = arrivals.get(node, zeros)
            for edge in self.out_edges[node]:
                weight = psi.get(edge)
                downstream = lam.get(edge[1], zeros)
                sensitivity = downstream if weight is None else weight + downstream
                gradient = float(np.dot(arrived, sensitivity))
                if gradient != 0.0:
                    grad[edge] = gradient
                fraction = phi.get(edge, 0.0)
                if fraction != 0.0:
                    accumulated = accumulated + fraction * sensitivity
            lam[node] = accumulated
        return grad

    # -- forward mode ----------------------------------------------------------

    def load_jacobian(
        self,
        phi: Mapping[Edge, float],
        arrivals: Mapping[Node, np.ndarray],
        variables: Sequence[Edge],
    ) -> dict[Edge, dict[Edge, np.ndarray]]:
        """``d load[e] / d log phi[a]`` for each variable edge ``a``.

        One forward perturbation sweep per variable: perturbing the
        log-ratio of ``a = (x, y)`` injects ``F(x) * phi(a)`` of extra
        flow at ``y`` (and on ``a`` itself), which then propagates
        downstream through the fixed ratios.

        Returns:
            variable edge -> {DAG edge -> K-vector of load derivatives}.
        """
        zeros = np.zeros(self.batch)
        position = {node: i for i, node in enumerate(self.order)}
        jacobian: dict[Edge, dict[Edge, np.ndarray]] = {}
        for var_edge in variables:
            x, y = var_edge
            base = arrivals.get(x, zeros) * phi.get(var_edge, 0.0)
            derivs: dict[Edge, np.ndarray] = {}
            if base.any():
                derivs[var_edge] = base.copy()
                delta: dict[Node, np.ndarray] = {y: base.copy()}
                for node in self.order[position[y]:]:
                    change = delta.get(node)
                    if change is None or node == self.root:
                        continue
                    for edge in self.out_edges[node]:
                        fraction = phi.get(edge, 0.0)
                        if fraction == 0.0:
                            continue
                        flow = change * fraction
                        derivs[edge] = derivs.get(edge, 0.0) + flow
                        head = edge[1]
                        if head in delta:
                            delta[head] = delta[head] + flow
                        else:
                            delta[head] = flow.copy()
            jacobian[var_edge] = derivs
        return jacobian


def total_loads(
    flowgraphs: Mapping[Node, FlowGraph],
    ratios: Mapping[Node, Mapping[Edge, float]],
) -> dict[Edge, np.ndarray]:
    """Sum per-destination load vectors into network-edge load vectors."""
    combined: dict[Edge, np.ndarray] = {}
    for t, graph in flowgraphs.items():
        _, loads = graph.forward(ratios.get(t, {}))
        for edge, vector in loads.items():
            if edge in combined:
                combined[edge] = combined[edge] + vector
            else:
                combined[edge] = vector.copy()
    return combined


def max_utilization(
    network: Network, loads: Mapping[Edge, np.ndarray]
) -> float:
    """True (unsmoothed) objective: worst utilization over edges and batch."""
    import math

    worst = 0.0
    for edge, vector in loads.items():
        capacity = network.capacity(*edge)
        if math.isfinite(capacity):
            worst = max(worst, float(vector.max()) / capacity)
    return worst
