"""Smoothed-minimax splitting optimizer (the scalable finite-set solver).

Given per-destination DAGs and a *finite* batch of demand matrices
(normalized so ``MxLU`` equals the performance ratio), this optimizer
searches splitting ratios minimizing the worst link utilization:

    min_phi  max_{e, k}  load_e(phi, D_k) / c_e .

Two ideas make the problem unconstrained and smooth:

* **Softmax parameterization.**  Ratios at each splittable node are
  ``phi(u, v) = exp(theta_uv) / sum_w exp(theta_uw)``, so the simplex
  constraints hold by construction — the same variable substitution
  ``z = log x`` that geometric programming uses (Appendix C), with the
  normalization folded into the parameterization instead of a condensed
  constraint.
* **Log-sum-exp smoothing.**  ``max`` is replaced by a temperature-
  annealed soft maximum whose gap to the true maximum is at most
  ``log(N) / tau``.  We anneal ``tau`` upward, warm-starting each stage.

Gradients are exact (hand-derived adjoint sweeps in
:mod:`repro.core._flowgrad`); the stages run L-BFGS-B.  The true
(unsmoothed) objective of the best iterate across all stages and starts
is what the caller receives, so smoothing never inflates the reported
quality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np
from scipy.optimize import minimize

from repro.config import DEFAULT_CONFIG, SolverConfig
from repro.demands.matrix import DemandMatrix
from repro.exceptions import SolverError
from repro.core._flowgrad import FlowGraph, max_utilization
from repro.graph.dag import Dag
from repro.graph.network import Edge, Network, Node
from repro.routing.splitting import Routing

#: Bounds on theta keep exp() well-behaved; the ratio floor this implies
#: (about e^-24 relative) is far below any meaningful split.
_THETA_BOUND = 12.0


@dataclass
class SplittingSolution:
    """Result of a finite-set splitting optimization.

    Attributes:
        routing: the optimized configuration (ratios renormalized).
        objective: true worst utilization over the matrix batch.
        evaluations: number of objective/gradient evaluations performed.
    """

    routing: Routing
    objective: float
    evaluations: int


class _Problem:
    """Flattened variable layout + objective/gradient plumbing."""

    def __init__(
        self,
        network: Network,
        dags: Mapping[Node, Dag],
        matrices: Sequence[DemandMatrix],
    ):
        if not matrices:
            raise SolverError("softmax optimizer needs at least one demand matrix")
        self.network = network
        self.dags = dict(dags)
        self.matrices = list(matrices)
        self.flowgraphs: dict[Node, FlowGraph] = {
            t: FlowGraph(dag, self.matrices) for t, dag in self.dags.items()
        }
        # Variable slots: (destination, node, ordered out-edges).
        self.groups: list[tuple[Node, Node, list[Edge]]] = []
        self.size = 0
        for t in sorted(self.dags, key=str):
            dag = self.dags[t]
            for node in dag.topological_order():
                if node == t:
                    continue
                heads = dag.out_neighbors(node)
                if len(heads) >= 2:
                    edges = [(node, h) for h in heads]
                    self.groups.append((t, node, edges))
                    self.size += len(edges)
        self.evaluations = 0

    # -- parameter conversion ----------------------------------------------

    def theta_from_ratios(
        self, ratios: Mapping[Node, Mapping[Edge, float]], floor: float = 1e-6
    ) -> np.ndarray:
        theta = np.zeros(self.size)
        offset = 0
        for t, _node, edges in self.groups:
            per_dest = ratios.get(t, {})
            block = np.array(
                [math.log(max(per_dest.get(edge, 0.0), floor)) for edge in edges]
            )
            # Softmax is shift-invariant per group; recentre on the group
            # max so the later clipping cannot flatten the distribution.
            block -= block.max()
            theta[offset : offset + len(edges)] = block
            offset += len(edges)
        return np.clip(theta, -_THETA_BOUND, _THETA_BOUND)

    def ratios_from_theta(self, theta: np.ndarray) -> dict[Node, dict[Edge, float]]:
        ratios: dict[Node, dict[Edge, float]] = {t: {} for t in self.dags}
        offset = 0
        for t, _node, edges in self.groups:
            block = theta[offset : offset + len(edges)]
            shifted = np.exp(block - block.max())
            shares = shifted / shifted.sum()
            for edge, share in zip(edges, shares):
                ratios[t][edge] = float(share)
            offset += len(edges)
        # Nodes with a single out-edge always forward everything there.
        for t, dag in self.dags.items():
            for node in dag.nodes():
                if node == t:
                    continue
                heads = dag.out_neighbors(node)
                if len(heads) == 1:
                    ratios[t][(node, heads[0])] = 1.0
        return ratios

    # -- objective -----------------------------------------------------------

    def loads(self, ratios: Mapping[Node, Mapping[Edge, float]]):
        per_destination = {}
        combined: dict[Edge, np.ndarray] = {}
        for t, graph in self.flowgraphs.items():
            arrivals, loads = graph.forward(ratios.get(t, {}))
            per_destination[t] = (arrivals, loads)
            for edge, vector in loads.items():
                if edge in combined:
                    combined[edge] = combined[edge] + vector
                else:
                    combined[edge] = vector.copy()
        return per_destination, combined

    def true_objective(self, theta: np.ndarray) -> float:
        ratios = self.ratios_from_theta(theta)
        _, combined = self.loads(ratios)
        return max_utilization(self.network, combined)

    def mean_utilization(self, theta: np.ndarray) -> tuple[float, np.ndarray]:
        """Average utilization over (finite edges x batch) and its gradient."""
        self.evaluations += 1
        ratios = self.ratios_from_theta(theta)
        per_destination, combined = self.loads(ratios)
        finite = [
            (edge, self.network.capacity(*edge))
            for edge in combined
            if math.isfinite(self.network.capacity(*edge))
        ]
        if not finite:
            return 0.0, np.zeros(self.size)
        entries = sum(combined[edge].size for edge, _c in finite)
        value = sum(float(combined[edge].sum()) / c for edge, c in finite) / entries
        psi = {
            edge: np.full(len(self.matrices), 1.0 / (entries * c))
            for edge, c in finite
        }
        grad_phi: dict[Node, dict[Edge, float]] = {}
        for t, graph in self.flowgraphs.items():
            arrivals, loads = per_destination[t]
            relevant = {e: psi[e] for e in loads if e in psi}
            grad_phi[t] = graph.backward(ratios.get(t, {}), arrivals, relevant)
        gradient = np.zeros(self.size)
        offset = 0
        for t, _node, edges in self.groups:
            shares = np.array([ratios[t].get(e, 0.0) for e in edges])
            raw = np.array([grad_phi[t].get(e, 0.0) for e in edges])
            inner = float(np.dot(shares, raw))
            gradient[offset : offset + len(edges)] = shares * (raw - inner)
            offset += len(edges)
        return value, gradient

    def smoothed(
        self, theta: np.ndarray, temperature: float, regularization: float = 0.0
    ) -> tuple[float, np.ndarray]:
        """Soft maximum (plus mean-utilization tie-breaker) and its gradient."""
        self.evaluations += 1
        ratios = self.ratios_from_theta(theta)
        per_destination, combined = self.loads(ratios)
        utilizations: list[tuple[Edge, np.ndarray]] = []
        for edge, vector in combined.items():
            capacity = self.network.capacity(*edge)
            if math.isfinite(capacity):
                utilizations.append((edge, vector / capacity))
        if not utilizations:
            return 0.0, np.zeros(self.size)
        peak = max(float(v.max()) for _e, v in utilizations)
        exp_sum = 0.0
        weights: dict[Edge, np.ndarray] = {}
        for edge, values in utilizations:
            w = np.exp(temperature * (values - peak))
            weights[edge] = w
            exp_sum += float(w.sum())
        value = peak + math.log(exp_sum) / temperature
        # psi[e][k] = dS/dload = (w / exp_sum) / c_e, plus the mean-
        # utilization regularizer's uniform share (see SolverConfig).
        entries = sum(v.size for _e, v in utilizations)
        if regularization > 0.0:
            mean_util = sum(float(v.sum()) for _e, v in utilizations) / entries
            value += regularization * mean_util
        psi: dict[Edge, np.ndarray] = {}
        for edge, w in weights.items():
            capacity = self.network.capacity(*edge)
            psi[edge] = w / (exp_sum * capacity)
            if regularization > 0.0:
                psi[edge] = psi[edge] + regularization / (entries * capacity)
        # Reverse-mode sweep per destination, then softmax chain rule.
        grad_phi: dict[Node, dict[Edge, float]] = {}
        for t, graph in self.flowgraphs.items():
            arrivals, loads = per_destination[t]
            relevant = {e: psi[e] for e in loads if e in psi}
            grad_phi[t] = graph.backward(ratios.get(t, {}), arrivals, relevant)
        gradient = np.zeros(self.size)
        offset = 0
        for t, _node, edges in self.groups:
            shares = np.array([ratios[t].get(e, 0.0) for e in edges])
            raw = np.array([grad_phi[t].get(e, 0.0) for e in edges])
            inner = float(np.dot(shares, raw))
            gradient[offset : offset + len(edges)] = shares * (raw - inner)
            offset += len(edges)
        return value, gradient


def polish_balanced(
    network: Network,
    dags: Mapping[Node, Dag],
    penalty_matrices: Sequence[DemandMatrix],
    balance_matrices: Sequence[DemandMatrix],
    start_ratios: Mapping[Node, Mapping[Edge, float]],
    bound: float,
    config: SolverConfig = DEFAULT_CONFIG,
    name: str = "COYOTE",
) -> SplittingSolution:
    """Minimize balanced-set mean utilization s.t. worst case <= bound.

    Worst-case-optimal routings are massively degenerate; interior-point
    solvers (the paper's MOSEK) return the balanced center of the
    optimal face, while first-order methods land on extreme vertices
    that behave poorly on demand sets narrower than the one optimized
    for.  This polish recovers the balanced behaviour: starting from a
    worst-case-optimal point it descends the *mean* utilization of a
    canonical balance set (the uncertainty cone's representative matrix
    — the uniform matrix in the oblivious case, so no demand knowledge
    sneaks in) under a quadratic penalty on the worst case over the
    adversarial set exceeding ``bound``.

    The caller should re-verify the polished point with the oracle and
    keep the better configuration.
    """
    penalty_problem = _Problem(network, dags, penalty_matrices)
    balance_problem = _Problem(network, dags, balance_matrices)
    theta0 = penalty_problem.theta_from_ratios(start_ratios)
    if penalty_problem.size == 0:
        # No splittable node anywhere (e.g. a path): nothing to polish.
        ratios = penalty_problem.ratios_from_theta(theta0)
        routing = Routing(dags, ratios, name=name).renormalized()
        return SplittingSolution(routing, penalty_problem.true_objective(theta0), 0)
    penalty_weight = 1e3
    temperature = config.smoothing_temperatures[-1]

    def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
        soft_value, soft_grad = penalty_problem.smoothed(theta, temperature, 0.0)
        mean_value, mean_grad = balance_problem.mean_utilization(theta)
        excess = soft_value - bound
        if excess > 0.0:
            value = mean_value + penalty_weight * excess * excess
            grad = mean_grad + (2.0 * penalty_weight * excess) * soft_grad
        else:
            value, grad = mean_value, mean_grad
        return value, grad

    result = minimize(
        objective,
        theta0,
        jac=True,
        method="L-BFGS-B",
        bounds=[(-_THETA_BOUND, _THETA_BOUND)] * penalty_problem.size,
        options={"maxiter": 2 * config.max_inner_iterations},
    )
    theta = np.asarray(result.x)
    polished_value = penalty_problem.true_objective(theta)
    start_value = penalty_problem.true_objective(theta0)
    if polished_value > max(bound, start_value) * (1.0 + config.ratio_tolerance):
        theta, polished_value = theta0, start_value  # polish made it worse
    ratios = penalty_problem.ratios_from_theta(theta)
    routing = Routing(dags, ratios, name=name).renormalized()
    return SplittingSolution(routing, polished_value, penalty_problem.evaluations)


def optimize_splitting_softmax(
    network: Network,
    dags: Mapping[Node, Dag],
    matrices: Sequence[DemandMatrix],
    config: SolverConfig = DEFAULT_CONFIG,
    initial_ratios: Sequence[Mapping[Node, Mapping[Edge, float]]] = (),
    name: str = "COYOTE",
) -> SplittingSolution:
    """Optimize in-DAG splitting against a finite demand batch.

    Args:
        network: capacitated topology.
        dags: per-destination (augmented) DAGs.
        matrices: demand matrices, ideally normalized to unit optimum so
            the objective *is* the performance ratio.
        config: temperatures and iteration caps.
        initial_ratios: extra warm starts (e.g. ECMP-projected ratios,
            LP-induced ratios); a uniform start is always included.
        name: label for the resulting :class:`Routing`.
    """
    problem = _Problem(network, dags, matrices)
    if problem.size == 0:
        # Every node has a single out-edge: the routing is fully forced.
        theta = np.zeros(0)
        ratios = problem.ratios_from_theta(theta)
        routing = Routing(dags, ratios, name=name).renormalized()
        return SplittingSolution(routing, problem.true_objective(theta), 0)
    starts: list[np.ndarray] = [np.zeros(problem.size)]
    for ratios in initial_ratios:
        starts.append(problem.theta_from_ratios(ratios))

    best_theta: np.ndarray | None = None
    best_value = math.inf
    for start in starts:
        theta = start.copy()
        candidate_value = problem.true_objective(theta)
        if candidate_value < best_value:
            best_value, best_theta = candidate_value, theta.copy()
        for temperature in config.smoothing_temperatures:
            result = minimize(
                problem.smoothed,
                theta,
                args=(temperature, config.regularization),
                jac=True,
                method="L-BFGS-B",
                bounds=[(-_THETA_BOUND, _THETA_BOUND)] * problem.size,
                options={"maxiter": config.max_inner_iterations},
            )
            theta = np.asarray(result.x)
            candidate_value = problem.true_objective(theta)
            if candidate_value < best_value:
                best_value, best_theta = candidate_value, theta.copy()

    if best_theta is None:  # pragma: no cover - empty variable space
        best_theta = np.zeros(problem.size)
        best_value = problem.true_objective(best_theta)
    ratios = problem.ratios_from_theta(best_theta)
    routing = Routing(dags, ratios, name=name).renormalized()
    return SplittingSolution(
        routing=routing,
        objective=best_value,
        evaluations=problem.evaluations,
    )
