"""The COYOTE pipeline (Fig. 5): uncertainty bounds + topology in,
optimized routing (and OSPF lies) out.

Stages, mirroring Section V:

1. **DAG construction** — link weights from the chosen heuristic
   (*reverse capacities* or *local search*), shortest-path DAGs, then
   augmentation (Step II).
2. **In-DAG splitting optimization** — robust (cutting-plane) splitting
   optimization against the uncertainty cone, warm-started from the
   ECMP projection and the base-matrix LP optimum, with ECMP as an
   oracle-evaluated fallback.
3. **OSPF translation** — optional: compile the routing into fake-LSA
   "lies" via :mod:`repro.fibbing` (done separately so that algorithmic
   experiments don't pay for it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.config import DEFAULT_CONFIG, SolverConfig
from repro.core.dag_builder import build_dags
from repro.core.evaluate import project_ecmp_into_dags
from repro.core.local_search import local_search_weights
from repro.core.robust import RobustResult, optimize_robust_splitting
from repro.demands.uncertainty import UncertaintySet, oblivious_set, representative_matrix
from repro.ecmp.routing import ecmp_routing
from repro.ecmp.weights import inverse_capacity_weights
from repro.exceptions import SolverError
from repro.graph.dag import Dag
from repro.graph.network import Edge, Network, Node
from repro.lp.dag_flow import dag_optimal_congestion, induced_splitting_ratios
from repro.lp.worst_case import OracleResult
from repro.routing.splitting import Routing

DAG_HEURISTICS = ("inverse_capacity", "local_search")


@dataclass
class CoyoteResult:
    """Everything the pipeline produced.

    Attributes:
        routing: the optimized COYOTE routing configuration.
        dags: the augmented per-destination DAGs.
        weights: the link weights behind the shortest-path DAGs.
        ecmp: the plain ECMP routing for the same weights (baseline).
        oracle: certified worst-case evaluation of ``routing``.
        robust: full trace of the robust optimization.
    """

    routing: Routing
    dags: dict[Node, Dag]
    weights: dict[Edge, float]
    ecmp: Routing
    oracle: OracleResult
    robust: RobustResult = field(repr=False)


class Coyote:
    """COYOTE pipeline driver.

    Example:
        >>> from repro.topologies import load_topology
        >>> from repro.demands import gravity_matrix, margin_box
        >>> net = load_topology("abilene")
        >>> bounds = margin_box(gravity_matrix(net), margin=2.0)
        >>> result = Coyote(net, bounds).run()       # doctest: +SKIP
        >>> result.oracle.ratio                       # doctest: +SKIP
    """

    def __init__(
        self,
        network: Network,
        uncertainty: UncertaintySet | None = None,
        dag_heuristic: str = "inverse_capacity",
        augment: bool = True,
        optimizer: str = "softmax",
        config: SolverConfig = DEFAULT_CONFIG,
    ):
        if dag_heuristic not in DAG_HEURISTICS:
            raise SolverError(
                f"unknown DAG heuristic {dag_heuristic!r}; pick one of {DAG_HEURISTICS}"
            )
        self.network = network
        self.uncertainty = uncertainty or oblivious_set(network.nodes())
        self.dag_heuristic = dag_heuristic
        self.augment = augment
        self.optimizer = optimizer
        self.config = config

    # -- stages -----------------------------------------------------------

    def compute_weights(self) -> dict[Edge, float]:
        """Step I weights: reverse capacities or local search (Algorithm 1)."""
        if self.dag_heuristic == "inverse_capacity":
            return inverse_capacity_weights(self.network)
        result = local_search_weights(
            self.network, self.uncertainty, config=self.config.scaled_down()
        )
        return dict(result.weights)

    def compute_dags(self, weights: Mapping[Edge, float]) -> dict[Node, Dag]:
        """Steps I+II: shortest-path DAGs, then augmentation."""
        return build_dags(self.network, weights, augment=self.augment)

    def run(self) -> CoyoteResult:
        """Execute the full pipeline and return the optimized routing."""
        weights = self.compute_weights()
        dags = self.compute_dags(weights)
        ecmp = ecmp_routing(self.network, weights)
        ecmp_projection = project_ecmp_into_dags(ecmp, dags)

        # Warm starts: the ECMP point and the LP optimum for the cone's
        # representative matrix (the "Base" ratios).
        starts = [ecmp_projection.ratios]
        base = representative_matrix(self.uncertainty)
        if base:
            flows = dag_optimal_congestion(self.network, dags, base)
            starts.append(induced_splitting_ratios(dags, flows))

        robust = optimize_robust_splitting(
            self.network,
            dags,
            self.uncertainty,
            config=self.config,
            optimizer=self.optimizer,
            extra_starts=starts,
            fallbacks=[ecmp_projection],
            name="COYOTE",
        )
        return CoyoteResult(
            routing=robust.routing,
            dags=dags,
            weights=dict(weights),
            ecmp=ecmp,
            oracle=robust.oracle,
            robust=robust,
        )
