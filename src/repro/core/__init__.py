"""COYOTE's algorithmic core: DAG construction, splitting optimization, pipeline."""

from repro.core.dag_builder import augment_dag, build_dags, reverse_capacity_dags
from repro.core.robust import RobustResult, optimize_robust_splitting
from repro.core.coyote import Coyote, CoyoteResult

__all__ = [
    "augment_dag",
    "build_dags",
    "reverse_capacity_dags",
    "RobustResult",
    "optimize_robust_splitting",
    "Coyote",
    "CoyoteResult",
]
