"""Failure-scenario precomputation (Section VI).

"Routing configurations for failure scenarios (e.g., every single
link/node failure) can be precomputed" — COYOTE's routing is static, so
an operator prepares one configuration per anticipated failure and
switches when OSPF reconverges.  This module enumerates single-link
failure scenarios, re-runs the pipeline's DAG construction and robust
splitting on each degraded topology, and reports the certified ratios,
giving the data an operator needs to judge failure headroom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.config import DEFAULT_CONFIG, SolverConfig
from repro.core.dag_builder import build_dags
from repro.core.evaluate import project_ecmp_into_dags
from repro.core.robust import optimize_robust_splitting
from repro.demands.uncertainty import UncertaintySet
from repro.ecmp.routing import ecmp_routing
from repro.ecmp.weights import inverse_capacity_weights
from repro.graph.network import Network
from repro.routing.splitting import Routing


@dataclass
class FailureScenario:
    """One precomputed configuration for a degraded topology.

    Attributes:
        failed_link: the undirected link taken down (canonical order).
        routing: COYOTE's routing for the degraded network.
        ratio: certified worst-case ratio on the degraded network.
        ecmp_ratio: plain ECMP's ratio there (the do-nothing baseline).
    """

    failed_link: tuple
    routing: Routing
    ratio: float
    ecmp_ratio: float


@dataclass
class FailurePlan:
    """The full single-link-failure sweep."""

    baseline_ratio: float
    scenarios: list[FailureScenario] = field(default_factory=list)
    skipped: list[tuple] = field(default_factory=list)

    def worst_scenario(self) -> FailureScenario | None:
        return max(self.scenarios, key=lambda s: s.ratio, default=None)

    def max_degradation(self) -> float:
        """Worst ratio across scenarios relative to the intact network."""
        worst = self.worst_scenario()
        if worst is None or self.baseline_ratio <= 0:
            return 1.0
        return worst.ratio / self.baseline_ratio


def _undirected_links(network: Network) -> Iterator[tuple]:
    seen: set[frozenset] = set()
    for (u, v) in network.edges():
        link = frozenset((u, v))
        if link not in seen:
            seen.add(link)
            yield (u, v)


def degraded_network(network: Network, link: tuple) -> Network:
    """A copy of the network with both directions of ``link`` removed."""
    u, v = link
    removed = {(u, v), (v, u)}
    survivor = Network(f"{network.name}-minus-{u}-{v}")
    for node in network.nodes():
        survivor.add_node(node)
    for edge in network.edges():
        if edge not in removed:
            survivor.add_edge(*edge, network.capacity(*edge))
    return survivor


def precompute_failure_plan(
    network: Network,
    uncertainty: UncertaintySet,
    config: SolverConfig = DEFAULT_CONFIG,
    max_scenarios: int | None = None,
) -> FailurePlan:
    """COYOTE configurations for every single-link failure.

    Links whose removal disconnects the network are recorded in
    ``skipped`` (no all-pairs TE configuration exists for them).

    Args:
        network: the intact topology.
        uncertainty: the demand cone (restricted per scenario to pairs
            both of whose endpoints remain connected — here: all pairs,
            since we skip disconnecting links).
        config: solver knobs; failure sweeps typically use
            ``config.scaled_down()``.
        max_scenarios: optionally cap the number of scenarios (testing).
    """
    baseline = _coyote_ratio(network, uncertainty, config)
    plan = FailurePlan(baseline_ratio=baseline.ratio)
    for index, link in enumerate(_undirected_links(network)):
        if max_scenarios is not None and index >= max_scenarios:
            break
        survivor = degraded_network(network, link)
        if not survivor.is_strongly_connected():
            plan.skipped.append(link)
            continue
        scenario = _coyote_ratio(survivor, uncertainty, config)
        plan.scenarios.append(
            FailureScenario(
                failed_link=link,
                routing=scenario.routing,
                ratio=scenario.ratio,
                ecmp_ratio=scenario.ecmp_ratio,
            )
        )
    return plan


@dataclass
class _ScenarioResult:
    routing: Routing
    ratio: float
    ecmp_ratio: float


def _coyote_ratio(
    network: Network, uncertainty: UncertaintySet, config: SolverConfig
) -> _ScenarioResult:
    weights = inverse_capacity_weights(network)
    dags = build_dags(network, weights, augment=True)
    ecmp = ecmp_routing(network, weights)
    projection = project_ecmp_into_dags(ecmp, dags)
    result = optimize_robust_splitting(
        network,
        dags,
        uncertainty,
        config=config,
        extra_starts=[projection.ratios],
        fallbacks=[projection],
    )
    from repro.lp.worst_case import WorstCaseOracle

    oracle = WorstCaseOracle(network, uncertainty, dags=dags, config=config)
    ecmp_ratio = oracle.evaluate(ecmp).ratio
    return _ScenarioResult(result.routing, result.oracle.ratio, ecmp_ratio)
