"""DAG construction (Section V-B): shortest-path DAGs plus augmentation.

Step I builds a shortest-path DAG per destination from link weights
(either *reverse capacities* or the *local search* heuristic supplies the
weights).  Step II augments each DAG: every link absent from the DAG is
oriented toward the incident node that is closer to the destination,
breaking ties lexicographically.

Acyclicity of the augmented DAG follows from the orientation rule: every
shortest-path edge strictly decreases the (positive-weight) distance to
the destination, every augmented edge weakly decreases it, and
equal-distance augmented edges all point from lexicographically larger to
smaller labels — so no directed cycle can close.

The augmented DAG contains the shortest-path DAG by construction, which
is what guarantees COYOTE never does worse than ECMP on the optimized
objective (ECMP's splitting is a feasible point of the enlarged space).
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.ecmp.weights import inverse_capacity_weights
from repro.exceptions import GraphError
from repro.graph.dag import Dag
from repro.graph.network import Edge, Network, Node
from repro.graph.paths import dijkstra_to_target, shortest_path_dag
from repro.kernel import kernel_enabled


def augment_dag(
    network: Network,
    sp_dag: Dag,
    distances: Mapping[Node, float],
) -> Dag:
    """Step II: add every non-DAG link, oriented toward the destination.

    Args:
        network: the underlying capacitated digraph.
        sp_dag: the shortest-path DAG rooted at the destination.
        distances: weighted distance of every node to the destination
            (from the same weights used to build ``sp_dag``).

    Returns:
        A new DAG containing ``sp_dag`` plus the oriented extra links.
    """
    target = sp_dag.root
    edges = list(sp_dag.edges())
    seen_links = {frozenset(edge) for edge in edges}
    for u, v in network.edges():
        link = frozenset((u, v))
        if link in seen_links:
            continue
        seen_links.add(link)
        du, dv = distances.get(u, math.inf), distances.get(v, math.inf)
        if math.isinf(du) or math.isinf(dv):
            continue
        if du > dv:
            oriented = (u, v)
        elif dv > du:
            oriented = (v, u)
        else:
            # Equal distance: orient toward the lexicographically smaller
            # label ("suppose that the nodes are numbered").
            oriented = (u, v) if str(v) < str(u) else (v, u)
        tail, head = oriented
        if tail == target:
            continue  # the root never forwards
        if network.has_edge(tail, head):
            edges.append(oriented)
    return Dag(target, edges, network)


def build_dags(
    network: Network,
    weights: Mapping[Edge, float],
    destinations: list[Node] | None = None,
    augment: bool = True,
) -> dict[Node, Dag]:
    """Shortest-path DAGs for the given weights, optionally augmented.

    The kernel path (default) batches all destinations' Dijkstras into
    one CSR shortest-path call; the reference path runs one search per
    destination and threads its distances into the DAG extraction.
    Changing how either path derives DAGs changes solver semantics —
    bump ``CACHE_VERSION`` in :mod:`repro.runner.spec` alongside.

    Raises:
        GraphError: when some node cannot reach a requested destination
            (the topology loaders guarantee strong connectivity, so this
            signals a malformed custom network).
    """
    targets = destinations if destinations is not None else network.nodes()
    dags: dict[Node, Dag] = {}
    if kernel_enabled():
        from repro.kernel.spf import all_targets_spf

        state = all_targets_spf(network, weights)
        per_target = {t: (state.dag(t), state.distances(t)) for t in targets}
    else:
        per_target = {}
        for t in targets:
            # One Dijkstra per destination: the DAG extraction reuses the
            # distances instead of re-running the search.
            distances = dijkstra_to_target(network, weights, t)
            per_target[t] = (shortest_path_dag(network, weights, t, distances), distances)
    for t, (sp, distances) in per_target.items():
        unreachable = [n for n, d in distances.items() if math.isinf(d)]
        if unreachable:
            raise GraphError(
                f"nodes {sorted(map(str, unreachable))} cannot reach destination {t!r}"
            )
        dags[t] = augment_dag(network, sp, distances) if augment else sp
    return dags


def reverse_capacity_dags(
    network: Network,
    destinations: list[Node] | None = None,
    augment: bool = True,
) -> tuple[dict[Node, Dag], dict[Edge, float]]:
    """The paper's default heuristic: inverse-capacity weights, then Steps I+II."""
    weights = inverse_capacity_weights(network)
    return build_dags(network, weights, destinations, augment=augment), weights
