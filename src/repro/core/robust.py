"""Robust splitting optimization: the adversarial cutting-plane outer loop.

The paper handles infinite demand sets through dualization (Appendix C).
We realize the same guarantee in oracle form, the standard equivalent for
robust optimization:

1. optimize splitting ratios against a *finite* set ``T`` of demand
   matrices (each normalized to unit within-DAG optimum, so the raw
   worst utilization equals the performance ratio);
2. call the slave-LP oracle to find the worst-case demand for the
   resulting routing over the *whole* uncertainty cone;
3. if the oracle ratio exceeds the finite-set objective by more than the
   tolerance, add the oracle's demand matrix to ``T`` and repeat.

The finite-set objective is a lower bound and the oracle ratio an upper
bound on the optimal robust ratio achievable with these DAGs, so their
gap certifies convergence.  The returned routing always carries the
oracle-certified ratio.

A list of fallback routings (e.g. plain ECMP) can be supplied: each is
oracle-evaluated once at the end and the best configuration wins, which
preserves the paper's "no worse than ECMP" guarantee even if the
numerical optimizer underperforms on some instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.config import DEFAULT_CONFIG, SolverConfig
from repro.core.gp import optimize_splitting_gp
from repro.core.softmax_opt import SplittingSolution, optimize_splitting_softmax
from repro.demands.matrix import DemandMatrix
from repro.demands.uncertainty import UncertaintySet, representative_matrix
from repro.exceptions import SolverError
from repro.graph.dag import Dag
from repro.graph.network import Edge, Network, Node
from repro.lp.worst_case import OracleResult, WorstCaseOracle, normalize_to_unit_optimum
from repro.routing.splitting import Routing


@dataclass
class RobustResult:
    """Outcome of the robust splitting optimization.

    Attributes:
        routing: the best configuration found.
        objective: final finite-set objective (lower bound).
        oracle: final oracle evaluation of ``routing`` (certified ratio).
        rounds: adversarial rounds executed.
        history: per-round (finite-set objective, oracle ratio) pairs.
        matrices: the final critical demand set ``T``.
    """

    routing: Routing
    objective: float
    oracle: OracleResult
    rounds: int
    history: list[tuple[float, float]] = field(default_factory=list)
    matrices: list[DemandMatrix] = field(default_factory=list)


def _inner_optimize(
    optimizer: str,
    network: Network,
    dags: Mapping[Node, Dag],
    matrices: Sequence[DemandMatrix],
    config: SolverConfig,
    starts: Sequence[Mapping[Node, Mapping[Edge, float]]],
    name: str,
) -> SplittingSolution:
    if optimizer == "softmax":
        return optimize_splitting_softmax(
            network, dags, matrices, config, initial_ratios=starts, name=name
        )
    if optimizer == "gp":
        best: SplittingSolution | None = None
        for start in list(starts) or [None]:
            solution = optimize_splitting_gp(
                network, dags, matrices, config, initial_ratios=start, name=name
            )
            if best is None or solution.objective < best.objective:
                best = solution
        assert best is not None
        return best
    raise SolverError(f"unknown splitting optimizer {optimizer!r}")


def optimize_robust_splitting(
    network: Network,
    dags: Mapping[Node, Dag],
    uncertainty: UncertaintySet,
    config: SolverConfig = DEFAULT_CONFIG,
    optimizer: str = "softmax",
    initial_matrices: Sequence[DemandMatrix] = (),
    extra_starts: Sequence[Mapping[Node, Mapping[Edge, float]]] = (),
    fallbacks: Sequence[Routing] = (),
    name: str = "COYOTE",
) -> RobustResult:
    """Optimize in-DAG splitting against an uncertainty cone.

    Args:
        network: capacitated topology.
        dags: per-destination (augmented) forwarding DAGs.
        uncertainty: the demand cone (margin box or fully oblivious).
        config: tolerances / iteration caps.
        optimizer: ``"softmax"`` (scalable) or ``"gp"`` (paper-faithful,
            small instances).
        initial_matrices: seed demand matrices for ``T`` (a representative
            matrix of the cone is always added).
        extra_starts: warm-start ratio assignments for the inner solver.
        fallbacks: routings to oracle-evaluate at the end (e.g. ECMP).
        name: label of the resulting routing.
    """
    oracle = WorstCaseOracle(network, uncertainty, dags=dags, config=config)
    # One min-congestion solver for the whole run: every cut/normalize
    # below re-solves the same factorized within-DAG LP with fresh RHS.
    from repro.lp.mcf import MinCongestionSolver

    mcf_solver = MinCongestionSolver(network, dags)
    matrices: list[DemandMatrix] = []
    for dm in (*initial_matrices, representative_matrix(uncertainty)):
        # Pairs toward destinations without a DAG cannot carry flow in
        # this configuration; drop them before normalizing.
        dm = dm.restricted_to_targets(set(dags))
        if dm:
            matrices.append(
                normalize_to_unit_optimum(network, dm, dags=dags, solver=mcf_solver)
            )

    history: list[tuple[float, float]] = []
    best_routing: Routing | None = None
    best_oracle: OracleResult | None = None
    best_objective = float("inf")
    previous_starts = list(extra_starts)
    rounds = 0

    for rounds in range(1, config.max_adversarial_rounds + 1):
        solution = _inner_optimize(
            optimizer, network, dags, matrices, config, previous_starts, name
        )
        oracle_result = oracle.evaluate(solution.routing)
        history.append((solution.objective, oracle_result.ratio))
        if best_oracle is None or oracle_result.ratio < best_oracle.ratio:
            best_routing, best_oracle = solution.routing, oracle_result
            best_objective = solution.objective
        # Convergence: the oracle cannot find demands (meaningfully) worse
        # than the finite set already covers.
        if oracle_result.ratio <= solution.objective * (1.0 + config.ratio_tolerance):
            break
        added = 0
        for cut in oracle_result.cuts:
            if not cut:
                continue
            normalized = normalize_to_unit_optimum(
                network, cut, dags=dags, solver=mcf_solver
            )
            if any(
                normalized.close_to(existing, tolerance=1e-6) for existing in matrices
            ):
                continue
            matrices.append(normalized)
            added += 1
        if added == 0:
            break  # the oracle is cycling; no progress possible
        # Warm starts for the next round: the incumbent, the LP optimum
        # for the newest adversarial matrix, and the caller's starts.
        from repro.lp.dag_flow import induced_splitting_ratios

        newest = matrices[-1]
        induced = induced_splitting_ratios(dags, mcf_solver.solve(newest))
        previous_starts = [solution.routing.ratios, induced, *extra_starts]

    assert best_routing is not None and best_oracle is not None

    # Balance polish: among (near-)worst-case-optimal routings prefer one
    # with low average utilization (see polish_balanced).  Accepted only
    # if the oracle confirms the worst case did not regress.
    if optimizer == "softmax" and matrices:
        from repro.core.softmax_opt import polish_balanced

        balance = representative_matrix(uncertainty).restricted_to_targets(set(dags))
        polished = polish_balanced(
            network,
            dags,
            penalty_matrices=matrices,
            balance_matrices=[
                normalize_to_unit_optimum(network, balance, dags=dags, solver=mcf_solver)
            ],
            start_ratios=best_routing.ratios,
            bound=best_objective if best_objective < float("inf") else best_oracle.ratio,
            config=config,
            name=name,
        )
        polished_oracle = oracle.evaluate(polished.routing)
        if polished_oracle.ratio <= best_oracle.ratio * (1.0 + config.ratio_tolerance):
            best_routing, best_oracle = polished.routing, polished_oracle
            # Keep (objective, oracle) describing the same routing:
            # polished.objective is the polished point's max over T.
            best_objective = polished.objective

    # ECMP-dominance safeguard: keep the best oracle-certified routing.
    for fallback in fallbacks:
        fallback_result = oracle.evaluate(fallback)
        if fallback_result.ratio < best_oracle.ratio:
            best_routing, best_oracle = fallback, fallback_result
            best_objective = fallback_result.ratio

    return RobustResult(
        routing=best_routing,
        objective=best_objective,
        oracle=best_oracle,
        rounds=rounds,
        history=history,
        matrices=matrices,
    )
