"""The local-search DAG-generation heuristic (Algorithm 1, Appendix A).

The algorithm maintains a set ``D`` of "critical" demand matrices and
alternates two steps until the ECMP utilization over ``D`` drops below a
bound ``B`` (or a round budget runs out):

1. *Oracle step* — compute the demand matrix that maximizes the link
   utilization of ECMP under the current weights (the slave LP with a
   network-wide witness, normalizing against the unrestricted optimum,
   as in the oblivious-OSPF work of Altin et al. [12]); add it to ``D``.
2. *Weight step* — Fortz-Thorup-style neighborhood search: repeatedly
   change a single link weight when it lowers the worst ECMP utilization
   across the matrices in ``D``.  Following the paper's adaptation we
   optimize the *maximum* link utilization (not Fortz-Thorup's smoothed
   cost), and the neighborhood focuses on links around the most
   congested edge ("reduce utilization at the most congested node by
   increasing the path diversity locally").

The result is a set of integer link weights whose shortest-path DAGs are
simultaneously good for every critical matrix; COYOTE then augments the
DAGs and re-optimizes the in-DAG splitting on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import DEFAULT_CONFIG, SolverConfig
from repro.demands.matrix import DemandMatrix
from repro.demands.uncertainty import UncertaintySet, oblivious_set
from repro.ecmp.routing import ecmp_routing
from repro.ecmp.weights import integer_scaled_weights, inverse_capacity_weights
from repro.exceptions import SolverError
from repro.graph.network import Edge, Network
from repro.kernel import kernel_enabled
from repro.lp.worst_case import WorstCaseOracle, normalize_to_unit_optimum
from repro.runner.timing import phase
from repro.utils.seeding import rng_from_seed

#: Integer OSPF weights explored by the neighborhood search, as in
#: Fortz & Thorup's experiments (they use [1, 20]).
MAX_WEIGHT = 20


@dataclass
class LocalSearchResult:
    """Outcome of Algorithm 1.

    Attributes:
        weights: the final integer link weights.
        matrices: the accumulated critical demand matrices (normalized to
            unit unrestricted optimum).
        utilization: final worst ECMP utilization across ``matrices``.
        oracle_ratio: final oracle-certified worst-case ECMP ratio.
        rounds: outer rounds executed.
        history: oracle ratio after each outer round.
    """

    weights: dict[Edge, int]
    matrices: list[DemandMatrix]
    utilization: float
    oracle_ratio: float
    rounds: int
    history: list[float] = field(default_factory=list)


def ecmp_utilization(
    network: Network,
    weights: dict[Edge, float],
    matrices: list[DemandMatrix],
) -> float:
    """Worst ECMP max-link-utilization across normalized matrices.

    Kernel swap-in: one batched SPF + vectorized propagation replaces
    DAG-object construction per destination (reference path kept below
    for differential tests).  Changing these semantics requires a
    ``CACHE_VERSION`` bump in :mod:`repro.runner.spec`.
    """
    if not matrices:
        return 0.0
    if kernel_enabled():
        from repro.kernel.delta import ecmp_max_utilization

        return ecmp_max_utilization(network, weights, matrices)
    routing = ecmp_routing(network, weights)
    return max(routing.max_link_utilization(dm, network) for dm in matrices)


def _candidate_values(current: int) -> list[int]:
    """Neighbor weights for a single-link move (clamped to [1, MAX_WEIGHT])."""
    raw = {
        current - 2,
        current - 1,
        current + 1,
        current + 2,
        max(1, current // 2),
        current * 2,
        1,
        MAX_WEIGHT,
    }
    return sorted(v for v in raw if 1 <= v <= MAX_WEIGHT and v != current)


def _focus_from_utilization(
    network: Network, utilization: dict[Edge, float]
) -> list[Edge]:
    """The search neighborhood: edges incident to the most congested links.

    Ties on utilization break lexicographically (not by dict insertion
    order): the kernel path accumulates loads in edge-index order while
    the reference accumulates in propagation order, and the two modes
    must explore identical neighborhoods to stay row-identical.
    """
    if not utilization:
        return network.edges()
    hot = sorted(utilization, key=lambda edge: (-utilization[edge], str(edge)))[:3]
    endpoints = {node for edge in hot for node in edge}
    focus = [
        e for e in network.edges() if e[0] in endpoints or e[1] in endpoints
    ]
    return focus or network.edges()


def _focus_edges(
    network: Network,
    weights: dict[Edge, float],
    matrices: list[DemandMatrix],
) -> list[Edge]:
    """Edges incident to the most congested links (the search neighborhood)."""
    routing = ecmp_routing(network, weights)
    utilization: dict[Edge, float] = {}
    for dm in matrices:
        loads = routing.link_loads(dm)
        for edge, flow in loads.items():
            capacity = network.capacity(*edge)
            utilization[edge] = max(utilization.get(edge, 0.0), flow / capacity)
    return _focus_from_utilization(network, utilization)


def weight_search(
    network: Network,
    weights: dict[Edge, int],
    matrices: list[DemandMatrix],
    config: SolverConfig = DEFAULT_CONFIG,
    max_moves: int = 12,
    tabu_length: int = 4,
) -> dict[Edge, int]:
    """FORTZTHORUP(G, D, c): single-weight moves minimizing worst utilization.

    The kernel path scores every candidate move through
    :class:`~repro.kernel.delta.EcmpDeltaEvaluator` — only destinations
    whose shortest-path DAG a single-weight change can touch are
    re-solved; everything else reuses committed arrays.  The pure-Python
    path (``REPRO_KERNEL=0``) re-derives every destination per candidate
    and is kept as the behavioral reference.  Both record the
    ``"weight_step"`` timing sub-phase (nested inside the owning cell's
    "solve" phase, so it is *part of* — not additive to — solve time).
    """
    if not matrices:
        return dict(weights)
    with phase("weight_step"):
        if kernel_enabled():
            return _weight_search_kernel(network, weights, matrices, max_moves, tabu_length)
        return _weight_search_reference(network, weights, matrices, max_moves, tabu_length)


def _weight_search_reference(
    network: Network,
    weights: dict[Edge, int],
    matrices: list[DemandMatrix],
    max_moves: int,
    tabu_length: int,
) -> dict[Edge, int]:
    """From-scratch re-evaluation per candidate (the differential oracle)."""
    current = dict(weights)
    best_value = ecmp_utilization(network, current, matrices)
    tabu: list[Edge] = []
    for _ in range(max_moves):
        focus = _focus_edges(network, current, matrices)
        move: tuple[Edge, int] | None = None
        move_value = best_value
        for edge in focus:
            if edge in tabu:
                continue
            original = current[edge]
            for value in _candidate_values(original):
                current[edge] = value
                candidate = ecmp_utilization(network, current, matrices)
                if candidate < move_value - 1e-9:
                    move_value, move = candidate, (edge, value)
            current[edge] = original
        if move is None:
            break
        edge, value = move
        current[edge] = value
        best_value = move_value
        tabu.append(edge)
        if len(tabu) > tabu_length:
            tabu.pop(0)
    return current


def _weight_search_kernel(
    network: Network,
    weights: dict[Edge, int],
    matrices: list[DemandMatrix],
    max_moves: int,
    tabu_length: int,
) -> dict[Edge, int]:
    """Delta-evaluated neighborhood search (same moves, array state)."""
    from repro.kernel.delta import EcmpDeltaEvaluator

    evaluator = EcmpDeltaEvaluator(
        network, {e: float(w) for e, w in weights.items()}, matrices
    )
    current = dict(weights)
    best_value = evaluator.utilization()
    tabu: list[Edge] = []
    for _ in range(max_moves):
        focus = _focus_from_utilization(network, evaluator.per_edge_utilization())
        move: tuple[Edge, int] | None = None
        chosen = None
        move_value = best_value
        for edge in focus:
            if edge in tabu:
                continue
            for value in _candidate_values(current[edge]):
                # prune_above: a candidate whose load lower bound cannot
                # beat the incumbent threshold is rejected without a
                # re-solve — exactly the moves the full evaluation's
                # `< move_value - 1e-9` test would reject anyway.
                candidate = evaluator.evaluate_move(
                    edge, float(value), prune_above=move_value - 1e-9
                )
                if candidate is None:
                    continue
                if candidate.utilization < move_value - 1e-9:
                    move_value, move, chosen = candidate.utilization, (edge, value), candidate
        if move is None:
            break
        edge, value = move
        current[edge] = value
        evaluator.commit(chosen)
        best_value = move_value
        tabu.append(edge)
        if len(tabu) > tabu_length:
            tabu.pop(0)
    return current


def local_search_weights(
    network: Network,
    uncertainty: UncertaintySet | None = None,
    bound: float = 1.05,
    config: SolverConfig = DEFAULT_CONFIG,
    seed: int | None = None,
) -> LocalSearchResult:
    """Algorithm 1: iterate worst-case oracle + weight search.

    Args:
        network: the capacitated topology.
        uncertainty: demand set the adversary draws from (defaults to the
            fully oblivious set over all node pairs).
        bound: the termination bound ``B`` on normalized utilization.
        config: iteration caps (``max_adversarial_rounds`` bounds the
            outer loop).
        seed: reserved for RNG-based tie-breaking; recorded for
            reproducibility.
    """
    if uncertainty is None:
        uncertainty = oblivious_set(network.nodes())
    rng_from_seed(seed if seed is not None else config.seed, "local-search")
    weights = integer_scaled_weights(inverse_capacity_weights(network), MAX_WEIGHT)
    oracle = WorstCaseOracle(network, uncertainty, dags=None, config=config)
    from repro.lp.mcf import MinCongestionSolver

    mcf_solver = MinCongestionSolver(network)
    matrices: list[DemandMatrix] = []
    history: list[float] = []
    rounds = 0
    best_weights = dict(weights)
    best_ratio = float("inf")
    for rounds in range(1, config.max_adversarial_rounds + 1):
        routing = ecmp_routing(network, weights)
        result = oracle.evaluate(routing)
        history.append(result.ratio)
        if result.ratio < best_ratio:
            best_ratio, best_weights = result.ratio, dict(weights)
        if result.demand is not None and result.demand:
            matrices.append(
                normalize_to_unit_optimum(network, result.demand, solver=mcf_solver)
            )
        if result.ratio <= bound:
            break
        improved = weight_search(network, weights, matrices, config)
        if improved == weights and rounds > 1:
            break  # stuck: more rounds would re-derive the same point
        weights = improved
    if not history:
        raise SolverError("local search executed zero rounds")
    # Return the best-seen weights: the last weight-search step optimizes
    # against the finite critical set and may regress the full-set ratio.
    utilization = ecmp_utilization(network, best_weights, matrices)
    return LocalSearchResult(
        weights=best_weights,
        matrices=matrices,
        utilization=utilization,
        oracle_ratio=best_ratio,
        rounds=rounds,
        history=history,
    )
