"""Iterative geometric-programming splitting optimizer (Appendix C).

This is the paper-faithful solver.  Link loads are posynomials in the
splitting ratios ``phi`` (sums over DAG paths of products of ratios with
nonnegative demand coefficients), so under the substitution
``phi = exp(phi_tilde)`` every load constraint

    log load_e(exp(phi_tilde), D_k) <= alpha_tilde

is convex (log-sum-exp of affine functions).  The one non-convex piece
is the per-node normalization ``sum_v phi(u, v) = 1``; following the
paper's Complementary-GP treatment we *condense* it around the current
iterate ``phi0`` into its best monomial approximation, which in log
space is the affine constraint

    sum_v a_v * phi_tilde(u, v) >= sum_v a_v * log phi0(u, v),
    a_v = phi0(u, v)  (when sum_v phi0 = 1),

solve the resulting convex program (SLSQP with exact gradients from the
forward-mode Jacobian), renormalize, re-condense, and repeat until the
objective stops improving.

Complexity note: the SLSQP subproblem materializes a dense constraint
Jacobian of shape (|E| * K) x (#ratios), so this solver targets small
instances — the running example, the hardness gadgets, and topologies up
to a few dozen ratio variables.  The smoothed-minimax optimizer
(:mod:`repro.core.softmax_opt`) is the scalable default; the test suite
cross-checks the two on the running example against the closed-form
golden-ratio optimum (Appendix B).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np
from scipy.optimize import minimize

from repro.config import DEFAULT_CONFIG, SolverConfig
from repro.core._flowgrad import FlowGraph, max_utilization
from repro.core.softmax_opt import SplittingSolution
from repro.demands.matrix import DemandMatrix
from repro.exceptions import SolverError
from repro.graph.dag import Dag
from repro.graph.network import Edge, Network, Node
from repro.routing.splitting import Routing, uniform_ratios

_LOG_FLOOR = -16.0  # ratios below e^-16 are effectively pruned edges
_LOAD_EPS = 1e-30


class _GpProblem:
    """Variable layout and constraint evaluation for the condensed program."""

    def __init__(
        self,
        network: Network,
        dags: Mapping[Node, Dag],
        matrices: Sequence[DemandMatrix],
    ):
        if not matrices:
            raise SolverError("GP optimizer needs at least one demand matrix")
        self.network = network
        self.dags = dict(dags)
        self.matrices = list(matrices)
        self.flowgraphs = {t: FlowGraph(dag, self.matrices) for t, dag in self.dags.items()}
        self.groups: list[tuple[Node, Node, list[Edge]]] = []
        self.var_index: dict[tuple[Node, Edge], int] = {}
        for t in sorted(self.dags, key=str):
            dag = self.dags[t]
            for node in dag.topological_order():
                if node == t:
                    continue
                heads = dag.out_neighbors(node)
                if len(heads) >= 2:
                    edges = [(node, h) for h in heads]
                    self.groups.append((t, node, edges))
                    for edge in edges:
                        self.var_index[(t, edge)] = len(self.var_index)
        self.size = len(self.var_index)
        # Constraint rows: finite-capacity edges x batch entries.
        self.capacities = {
            e: network.capacity(*e) for e in network.finite_capacity_edges()
        }

    # -- conversions ------------------------------------------------------

    def ratios_from_x(self, x: np.ndarray) -> dict[Node, dict[Edge, float]]:
        ratios: dict[Node, dict[Edge, float]] = {t: {} for t in self.dags}
        for (t, edge), index in self.var_index.items():
            ratios[t][edge] = math.exp(x[index])
        for t, dag in self.dags.items():
            for node in dag.nodes():
                if node == t:
                    continue
                heads = dag.out_neighbors(node)
                if len(heads) == 1:
                    ratios[t][(node, heads[0])] = 1.0
        return ratios

    def x_from_ratios(self, ratios: Mapping[Node, Mapping[Edge, float]]) -> np.ndarray:
        x = np.zeros(self.size)
        for (t, edge), index in self.var_index.items():
            value = ratios.get(t, {}).get(edge, 0.0)
            x[index] = math.log(value) if value > math.exp(_LOG_FLOOR) else _LOG_FLOOR
        return x

    def normalized(self, ratios: Mapping[Node, Mapping[Edge, float]]):
        """Exact per-node renormalization of a ratio assignment."""
        fixed: dict[Node, dict[Edge, float]] = {t: dict(r) for t, r in ratios.items()}
        for t, _node, edges in self.groups:
            total = sum(fixed[t].get(e, 0.0) for e in edges)
            if total <= 0:
                share = 1.0 / len(edges)
                for e in edges:
                    fixed[t][e] = share
            else:
                for e in edges:
                    fixed[t][e] = fixed[t].get(e, 0.0) / total
        return fixed

    # -- evaluation -----------------------------------------------------------

    def loads_and_jacobian(self, x: np.ndarray):
        """Loads (per edge, per matrix) and d(load)/d(log ratio) Jacobians."""
        ratios = self.ratios_from_x(x)
        loads: dict[Edge, np.ndarray] = {}
        jacobians: dict[Edge, dict[int, np.ndarray]] = {}
        for t, graph in self.flowgraphs.items():
            phi = ratios.get(t, {})
            arrivals, dest_loads = graph.forward(phi)
            variables = [e for (tt, e) in self.var_index if tt == t]
            jac = graph.load_jacobian(phi, arrivals, variables)
            for edge, vector in dest_loads.items():
                if edge in loads:
                    loads[edge] = loads[edge] + vector
                else:
                    loads[edge] = vector.copy()
            for var_edge, derivs in jac.items():
                index = self.var_index[(t, var_edge)]
                for edge, dvec in derivs.items():
                    jacobians.setdefault(edge, {}).setdefault(index, np.zeros(len(self.matrices)))
                    jacobians[edge][index] = jacobians[edge][index] + dvec
        return ratios, loads, jacobians

    def true_objective(self, ratios: Mapping[Node, Mapping[Edge, float]]) -> float:
        combined: dict[Edge, np.ndarray] = {}
        for t, graph in self.flowgraphs.items():
            _, dest_loads = graph.forward(ratios.get(t, {}))
            for edge, vector in dest_loads.items():
                if edge in combined:
                    combined[edge] = combined[edge] + vector
                else:
                    combined[edge] = vector.copy()
        return max_utilization(self.network, combined)


def optimize_splitting_gp(
    network: Network,
    dags: Mapping[Node, Dag],
    matrices: Sequence[DemandMatrix],
    config: SolverConfig = DEFAULT_CONFIG,
    initial_ratios: Mapping[Node, Mapping[Edge, float]] | None = None,
    condensation_rounds: int = 6,
    name: str = "COYOTE-GP",
) -> SplittingSolution:
    """Iterative monomial-condensation GP solve (small instances).

    Args:
        network: capacitated topology.
        dags: per-destination DAGs.
        matrices: finite demand batch (normalized to unit optimum for
            performance-ratio semantics).
        config: iteration caps for the inner SLSQP solves.
        initial_ratios: starting point (defaults to uniform splits).
        condensation_rounds: outer re-condensation iterations.
        name: label for the resulting routing.
    """
    problem = _GpProblem(network, dags, matrices)
    if initial_ratios is None:
        initial_ratios = {t: uniform_ratios(dag) for t, dag in dags.items()}
    current = problem.normalized(initial_ratios)
    best_ratios = current
    best_value = problem.true_objective(current)
    evaluations = 0

    if problem.size == 0:
        routing = Routing(dags, current, name=name).renormalized()
        return SplittingSolution(routing, best_value, 0)

    n = problem.size
    for _round in range(condensation_rounds):
        x0 = problem.x_from_ratios(current)
        # Condensed normalization rows: sum_v a_v x_v >= sum_v a_v log phi0_v
        # with a_v = phi0_v (rows are affine in log space).
        norm_rows: list[tuple[np.ndarray, float]] = []
        for t, _node, edges in problem.groups:
            coeffs = np.zeros(n)
            rhs = 0.0
            for e in edges:
                a = max(current[t].get(e, 0.0), math.exp(_LOG_FLOOR))
                index = problem.var_index[(t, e)]
                coeffs[index] = a
                rhs += a * math.log(a)
            norm_rows.append((coeffs, rhs))

        # Objective variables: z = [x..., alpha_tilde]; minimize alpha_tilde.
        def objective(z: np.ndarray):
            grad = np.zeros(n + 1)
            grad[-1] = 1.0
            return float(z[-1]), grad

        def load_constraints(z: np.ndarray):
            nonlocal evaluations
            evaluations += 1
            x = z[:n]
            _, loads, jacobians = problem.loads_and_jacobian(x)
            values: list[float] = []
            rows: list[np.ndarray] = []
            for edge, vector in loads.items():
                capacity = problem.capacities.get(edge)
                if capacity is None:
                    continue
                jac = jacobians.get(edge, {})
                for k in range(len(problem.matrices)):
                    load = float(vector[k])
                    # alpha_tilde - log(load / c) >= 0
                    values.append(z[-1] - math.log(max(load, _LOAD_EPS) / capacity))
                    row = np.zeros(n + 1)
                    row[-1] = 1.0
                    if load > _LOAD_EPS:
                        for index, dvec in jac.items():
                            row[index] = -float(dvec[k]) / load
                    rows.append(row)
            if not values:
                return np.array([1.0]), np.zeros((1, n + 1))
            return np.array(values), np.vstack(rows)

        cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

        def cons_f(z: np.ndarray) -> np.ndarray:
            key = hash(z.tobytes())
            if key not in cache:
                cache.clear()
                cache[key] = load_constraints(z)
            return cache[key][0]

        def cons_j(z: np.ndarray) -> np.ndarray:
            key = hash(z.tobytes())
            if key not in cache:
                cache.clear()
                cache[key] = load_constraints(z)
            return cache[key][1]

        constraints = [{"type": "ineq", "fun": cons_f, "jac": cons_j}]
        for coeffs, rhs in norm_rows:
            constraints.append(
                {
                    "type": "ineq",
                    "fun": (lambda z, c=coeffs, r=rhs: float(np.dot(c, z[:n]) - r)),
                    "jac": (lambda z, c=coeffs: np.concatenate([c, [0.0]])),
                }
            )
        z0 = np.concatenate([x0, [math.log(max(best_value, 1e-6))]])
        bounds = [(_LOG_FLOOR, 0.0)] * n + [(None, None)]
        result = minimize(
            objective,
            z0,
            jac=True,
            method="SLSQP",
            bounds=bounds,
            constraints=constraints,
            options={"maxiter": config.max_inner_iterations, "ftol": 1e-9},
        )
        candidate = problem.normalized(problem.ratios_from_x(np.asarray(result.x[:n])))
        value = problem.true_objective(candidate)
        if value < best_value - 1e-12:
            best_value, best_ratios = value, candidate
            current = candidate
        else:
            break  # condensation converged

    routing = Routing(dags, best_ratios, name=name).renormalized()
    return SplittingSolution(routing, best_value, evaluations)
