"""Evaluation helpers shared by the experiment drivers (Section VI).

Every scheme in the paper's evaluation reports the same quantity: the
worst-case performance ratio over the uncertainty set, normalized by the
demands-aware optimum within the (augmented) DAGs.  These wrappers build
the oracle once per (DAGs, uncertainty) pair and evaluate any number of
routings against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.config import DEFAULT_CONFIG, SolverConfig
from repro.demands.uncertainty import UncertaintySet
from repro.graph.dag import Dag
from repro.graph.network import Edge, Network, Node
from repro.lp.worst_case import OracleResult, WorstCaseOracle
from repro.routing.splitting import Routing


@dataclass
class SchemeEvaluation:
    """One scheme's worst-case result against one uncertainty set."""

    scheme: str
    ratio: float
    oracle: OracleResult


def performance_ratio(
    network: Network,
    dags: Mapping[Node, Dag],
    routing: Routing,
    uncertainty: UncertaintySet,
    config: SolverConfig = DEFAULT_CONFIG,
) -> OracleResult:
    """``PERF(routing, uncertainty)`` with within-DAG normalization."""
    oracle = WorstCaseOracle(network, uncertainty, dags=dags, config=config)
    return oracle.evaluate(routing)


def evaluate_schemes(
    network: Network,
    dags: Mapping[Node, Dag],
    routings: Sequence[Routing],
    uncertainty: UncertaintySet,
    config: SolverConfig = DEFAULT_CONFIG,
) -> list[SchemeEvaluation]:
    """Evaluate several routings against one oracle (compiled once)."""
    oracle = WorstCaseOracle(network, uncertainty, dags=dags, config=config)
    results = []
    for routing in routings:
        outcome = oracle.evaluate(routing)
        results.append(SchemeEvaluation(routing.name, outcome.ratio, outcome))
    return results


def project_ecmp_into_dags(
    ecmp: Routing,
    dags: Mapping[Node, Dag],
    name: str = "ECMP-projected",
) -> Routing:
    """Express ECMP's splitting inside the augmented DAGs.

    The augmented DAG contains the shortest-path DAG, so equal splitting
    over the shortest-path out-edges — and zero on the extra edges — is a
    feasible point of COYOTE's search space.  Used as a warm start and as
    the "no worse than ECMP" fallback.
    """
    ratios: dict[Node, dict[Edge, float]] = {}
    for t, dag in dags.items():
        source = ecmp.dags.get(t)
        per_dest: dict[Edge, float] = {}
        for node in dag.nodes():
            if node == t:
                continue
            heads = dag.out_neighbors(node)
            if not heads:
                continue
            sp_heads = (
                [h for h in heads if source.has_edge(node, h)] if source is not None else []
            )
            chosen = sp_heads or heads
            share = 1.0 / len(chosen)
            for head in heads:
                per_dest[(node, head)] = share if head in chosen else 0.0
        ratios[t] = per_dest
    return Routing(dags, ratios, name=name)
