"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch a single base class.  Subclasses are deliberately fine-grained: the
solvers, the OSPF simulator, and the topology loaders fail for very
different reasons and users should be able to tell them apart.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class GraphError(ReproError):
    """Raised for malformed networks (bad capacity, unknown node, ...)."""


class DagError(GraphError):
    """Raised when a per-destination DAG violates its invariants."""


class DemandError(ReproError):
    """Raised for malformed demand matrices or uncertainty sets."""


class SolverError(ReproError):
    """Raised when an LP/convex subproblem fails to solve."""


class InfeasibleError(SolverError):
    """Raised when an optimization problem is provably infeasible."""


class UnboundedError(SolverError):
    """Raised when an optimization problem is unbounded."""


class RoutingError(ReproError):
    """Raised for malformed routing configurations (splitting ratios)."""


class OspfError(ReproError):
    """Raised by the OSPF simulator (bad LSA, non-convergence, ...)."""


class FibbingError(ReproError):
    """Raised when lie synthesis cannot realize a requested configuration."""


class TopologyError(ReproError):
    """Raised by the topology registry for unknown or malformed entries."""


class ExperimentError(ReproError):
    """Raised by experiment drivers for invalid parameters."""
