"""Linear-programming substrate with pluggable solver backends.

The paper's toolchain was AMPL + MOSEK; this package replaces it with a
small modeling layer (:mod:`repro.lp.model`), a solver-backend registry
(:mod:`repro.lp.backend` — direct HiGHS by default, scipy's ``linprog``
as the reference engine, gurobi optional), and problem-specific builders:

* :mod:`repro.lp.mcf` — min-congestion multicommodity flow (``OPTU``);
* :mod:`repro.lp.dag_flow` — demands-aware optimum restricted to DAGs;
* :mod:`repro.lp.worst_case` — the per-edge adversarial ("slave") LP;
* :mod:`repro.lp.certificate` — the Theorem 5 dual certificate.

Numerical contract (details in ``docs/lp_backends.md``): every backend
runs at its engine's default tolerances — HiGHS (both the direct and
scipy paths) at 1e-7 primal/dual feasibility, Gurobi at 1e-6 — and the
parity suite pins cross-backend objective agreement to 1e-7 on the
repository's LP families.  Normalized statuses map onto engines as

    normalized      linprog.status      gurobi Status
    ------------    ----------------    --------------------------
    optimal         0                   OPTIMAL (2)
    infeasible      2                   INFEASIBLE (3)
    unbounded       3                   UNBOUNDED (5)
    error           1, 4 (limits/       anything else; INF_OR_UNBD
                    numerical)          only after a DualReductions=0
                                        re-solve stays ambiguous

and surface as ``InfeasibleError`` / ``UnboundedError`` / ``SolverError``
at the modeling layer.
"""

from repro.lp.model import LinExpr, Model, Solution, Variable
from repro.lp.mcf import MinCongestionResult, min_congestion
from repro.lp.dag_flow import dag_optimal_congestion, induced_splitting_ratios

__all__ = [
    "LinExpr",
    "Model",
    "Solution",
    "Variable",
    "MinCongestionResult",
    "min_congestion",
    "dag_optimal_congestion",
    "induced_splitting_ratios",
]
