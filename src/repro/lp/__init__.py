"""Linear-programming substrate built on scipy's HiGHS backend.

The paper's toolchain was AMPL + MOSEK; this package replaces it with a
small modeling layer (:mod:`repro.lp.model`) and problem-specific builders:

* :mod:`repro.lp.mcf` — min-congestion multicommodity flow (``OPTU``);
* :mod:`repro.lp.dag_flow` — demands-aware optimum restricted to DAGs;
* :mod:`repro.lp.worst_case` — the per-edge adversarial ("slave") LP;
* :mod:`repro.lp.certificate` — the Theorem 5 dual certificate.
"""

from repro.lp.model import LinExpr, Model, Solution, Variable
from repro.lp.mcf import MinCongestionResult, min_congestion
from repro.lp.dag_flow import dag_optimal_congestion, induced_splitting_ratios

__all__ = [
    "LinExpr",
    "Model",
    "Solution",
    "Variable",
    "MinCongestionResult",
    "min_congestion",
    "dag_optimal_congestion",
    "induced_splitting_ratios",
]
