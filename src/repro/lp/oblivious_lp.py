"""Unconstrained (source-and-destination-based) oblivious routing.

The related-work baseline of Section VIII: Applegate & Cohen [11] showed
that *unconstrained* oblivious routing — forwarding may depend on both
source and destination, unlike IP — achieves remarkably low oblivious
ratios on real ISP topologies, but deploying it needs MPLS tunnels or
per-flow SDN rules.  COYOTE's whole premise is making do without that.

This module implements the Applegate-Cohen master LP in cutting-plane
form so the repository can quantify the price of destination-based
forwarding (Theorem 4 says it can be Omega(|V|) in the worst case; on
backbones it is small):

    minimize   r
    s.t.       f routes one unit s->t for every pair (per-commodity flow)
               load_e(f, D) <= r * c_e   for every routable demand D

The separation oracle for the second family is the same slave LP as the
destination-based case, except the fixed routing's load coefficients
come from per-*pair* flows instead of per-destination splits, and the
witness flow is unrestricted.  We reuse :class:`repro.lp.worst_case`'s
compiled system by passing the per-pair coefficients directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.config import DEFAULT_CONFIG, SolverConfig
from repro.demands.matrix import DemandMatrix, Pair
from repro.demands.uncertainty import UncertaintySet, oblivious_set
from repro.exceptions import SolverError
from repro.graph.network import Edge, Network, Node
from repro.lp.model import LinExpr, Model, Variable
from repro.lp.worst_case import WorstCaseOracle, normalize_to_unit_optimum


@dataclass
class ObliviousFlowResult:
    """An unconstrained oblivious routing and its certification.

    Attributes:
        ratio: oracle-certified oblivious performance ratio.
        flows: (source, target) -> {edge -> fraction of the pair's
            demand routed on that edge} (a unit flow per pair).
        rounds: cutting-plane rounds used.
        history: (master objective, oracle ratio) per round.
    """

    ratio: float
    flows: dict[Pair, dict[Edge, float]]
    rounds: int
    history: list[tuple[float, float]] = field(default_factory=list)


def _master_lp(
    network: Network,
    pairs: list[Pair],
    matrices: list[DemandMatrix],
) -> tuple[float, dict[Pair, dict[Edge, float]]]:
    """Best per-pair routing against a finite demand set (exact LP)."""
    model = Model("oblivious-master")
    r = model.add_var("r")
    flow: dict[Pair, dict[Edge, Variable]] = {}
    for pair in pairs:
        s, t = pair
        edges = [e for e in network.edges() if e[0] != t and e[1] != s]
        flow[pair] = {e: model.add_var(f"f[{pair}][{e}]") for e in edges}
        incident: dict[Node, tuple[list[Edge], list[Edge]]] = {}
        for (u, v) in edges:
            incident.setdefault(u, ([], []))
            incident.setdefault(v, ([], []))
            incident[u][0].append((u, v))
            incident[v][1].append((u, v))
        for node, (out_list, in_list) in incident.items():
            if node == t:
                continue
            balance = LinExpr()
            for e in out_list:
                balance.add_term(flow[pair][e], 1.0)
            for e in in_list:
                balance.add_term(flow[pair][e], -1.0)
            model.add_eq(balance, 1.0 if node == s else 0.0)
        if s not in incident:
            raise SolverError(f"pair {pair!r} has no usable edges")
    for dm in matrices:
        for edge in network.finite_capacity_edges():
            load = LinExpr()
            for pair in pairs:
                var = flow[pair].get(edge)
                volume = dm.get(*pair)
                if var is not None and volume > 0:
                    load.add_term(var, volume)
            if load.terms:
                load.add_term(r, -network.capacity(*edge))
                model.add_le(load, 0.0)
    model.minimize(r)
    solution = model.solve()
    flows = {
        pair: {
            e: solution.value(var)
            for e, var in per_pair.items()
            if solution.value(var) > 1e-12
        }
        for pair, per_pair in flow.items()
    }
    return float(solution.objective), flows


def _pair_coefficients(
    flows: Mapping[Pair, Mapping[Edge, float]]
) -> dict[Edge, dict[Pair, float]]:
    """Per-edge load coefficients of a fixed per-pair routing."""
    coefficients: dict[Edge, dict[Pair, float]] = {}
    for pair, per_pair in flows.items():
        for edge, fraction in per_pair.items():
            if fraction > 0:
                coefficients.setdefault(edge, {})[pair] = fraction
    return coefficients


def exact_unconstrained_oblivious(
    network: Network,
    pairs: list[Pair] | None = None,
) -> ObliviousFlowResult:
    """The exact Applegate-Cohen LP (dualized, all demands at once).

    One linear program certifies the oblivious ratio of the computed
    per-pair routing against *every* routable demand matrix:

        minimize r
        f routes one unit s->t per pair
        for every finite-capacity edge e:
            sum_h pi_e(h) * c_h <= r
            f_st(e) / c_e <= p_e(s, t)            for every pair
            p_e(s, k) <= p_e(s, j) + pi_e(j, k)   for every edge (j,k),
                                                   every source s
            p_e(s, s) = 0, pi_e >= 0, p_e >= 0

    Feasibility of the (pi_e, p_e) block is exactly the Theorem 5 /
    Applegate-Cohen certificate for edge ``e``, so the optimum is the
    true unconstrained oblivious ratio — no cutting planes, no
    degeneracy.  Problem size grows as |E|^2 + |E| * |V|^2 variables;
    fine for the evaluation backbones up to ~30 nodes.
    """
    if pairs is None:
        pairs = [(s, t) for s in network.nodes() for t in network.nodes() if s != t]
    model = Model("applegate-cohen")
    r = model.add_var("r")

    # Unit flow per pair.
    flow: dict[Pair, dict[Edge, Variable]] = {}
    for pair in pairs:
        s, t = pair
        edges = [e for e in network.edges() if e[0] != t and e[1] != s]
        flow[pair] = {e: model.add_var(f"f[{pair}][{e}]") for e in edges}
        incident: dict[Node, tuple[list[Edge], list[Edge]]] = {}
        for (u, v) in edges:
            incident.setdefault(u, ([], []))
            incident.setdefault(v, ([], []))
            incident[u][0].append((u, v))
            incident[v][1].append((u, v))
        for node, (out_list, in_list) in incident.items():
            if node == t:
                continue
            balance = LinExpr()
            for e in out_list:
                balance.add_term(flow[pair][e], 1.0)
            for e in in_list:
                balance.add_term(flow[pair][e], -1.0)
            model.add_eq(balance, 1.0 if node == s else 0.0)

    sources = sorted({s for (s, _t) in pairs}, key=str)
    finite = network.finite_capacity_edges()
    for e in finite:
        capacity_e = network.capacity(*e)
        pi = {h: model.add_var(f"pi[{e}][{h}]") for h in finite}
        p: dict[tuple[Node, Node], Variable] = {}
        for s in sources:
            for node in network.nodes():
                if node != s:
                    p[(s, node)] = model.add_var(f"p[{e}][{s},{node}]")
        # R1: the certificate budget.
        budget = LinExpr()
        for h, var in pi.items():
            budget.add_term(var, network.capacity(*h))
        budget.add_term(r, -1.0)
        model.add_le(budget, 0.0)
        # R2: per-pair load fraction bounded by the potential.
        for pair in pairs:
            var = flow[pair].get(e)
            if var is not None:
                model.add_le(var * (1.0 / capacity_e) - p[pair], 0.0)
        # Triangle inequalities: p(s, k) <= p(s, j) + pi(j, k).
        for (j, k) in network.edges():
            pi_var = pi.get((j, k))
            for s in sources:
                lhs = LinExpr()
                if k != s:
                    lhs.add_term(p[(s, k)], 1.0)
                if j != s:
                    lhs.add_term(p[(s, j)], -1.0)
                if pi_var is not None:
                    lhs.add_term(pi_var, -1.0)
                if lhs.terms:
                    model.add_le(lhs, 0.0)

    model.minimize(r)
    solution = model.solve()
    flows = {
        pair: {
            e: solution.value(var)
            for e, var in per_pair.items()
            if solution.value(var) > 1e-9
        }
        for pair, per_pair in flow.items()
    }
    return ObliviousFlowResult(
        ratio=float(solution.objective), flows=flows, rounds=1, history=[]
    )


def optimize_unconstrained_oblivious(
    network: Network,
    uncertainty: UncertaintySet | None = None,
    config: SolverConfig = DEFAULT_CONFIG,
) -> ObliviousFlowResult:
    """Applegate-Cohen oblivious routing via cutting planes.

    Args:
        network: the capacitated topology.
        uncertainty: demand cone (default: fully oblivious on all pairs).
        config: ``max_adversarial_rounds`` bounds the loop.

    Returns:
        The optimized per-pair routing with its certified ratio; on ISP
        topologies the ratio should be close to the literature's ~1-2
        range, far below the destination-based optimum of Theorem 4's
        worst cases.
    """
    if uncertainty is None:
        uncertainty = oblivious_set(network.nodes())
    pairs = [
        (s, t)
        for (s, t) in uncertainty.pairs
        if network.has_node(s) and network.has_node(t)
    ]
    oracle = WorstCaseOracle(network, uncertainty, dags=None, config=config)
    # Shared across every cut: normalization re-solves one factorized
    # unrestricted min-congestion LP with fresh RHS per round.
    from repro.lp.mcf import MinCongestionSolver

    mcf_solver = MinCongestionSolver(network)
    matrices: list[DemandMatrix] = [
        normalize_to_unit_optimum(
            network, DemandMatrix({pair: 1.0 for pair in pairs}), solver=mcf_solver
        )
    ]
    history: list[tuple[float, float]] = []
    best_ratio = float("inf")
    best_flows: dict[Pair, dict[Edge, float]] = {}
    rounds = 0
    for rounds in range(1, config.max_adversarial_rounds + 1):
        objective, flows = _master_lp(network, pairs, matrices)
        coefficients = _pair_coefficients(flows)
        findings: list[tuple[float, DemandMatrix]] = []
        for edge in network.finite_capacity_edges():
            coeffs = coefficients.get(edge)
            if not coeffs:
                continue
            utilization, demand = oracle.worst_utilization_for_edge(edge, coeffs)
            if demand:
                findings.append((utilization, demand))
        findings.sort(key=lambda item: item[0], reverse=True)
        worst = findings[0][0] if findings else 0.0
        history.append((objective, worst))
        if worst < best_ratio:
            best_ratio, best_flows = worst, flows
        if worst <= objective * (1.0 + config.ratio_tolerance) or not findings:
            break
        # Multiple cuts per round: the master LP is cheap relative to the
        # oracle sweep, so feeding it several violated demands converges
        # in far fewer rounds.
        added = 0
        for _u, demand in findings[:4]:
            normalized = normalize_to_unit_optimum(network, demand, solver=mcf_solver)
            if any(normalized.close_to(dm, tolerance=1e-9) for dm in matrices):
                continue
            matrices.append(normalized)
            added += 1
        if added == 0:
            break
    return ObliviousFlowResult(
        ratio=best_ratio, flows=best_flows, rounds=rounds, history=history
    )
