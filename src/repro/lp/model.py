"""A small LP modeling layer over the pluggable solver backends.

Design goals, in order:

1. *Readable problem builders.* The flow formulations in this library are
   easier to audit when written as ``model.add_eq(outflow - inflow, demand)``
   than as raw matrix stuffing.
2. *Cheap re-solves.* The adversarial evaluation of Section VI solves one
   LP per network edge where only the objective changes; :meth:`Model.compile`
   freezes the constraint matrices once, :meth:`CompiledLP.solve` accepts a
   fresh objective per call, and :meth:`CompiledLP.reusable` returns a
   persistent solver instance that keeps the factorized matrix loaded
   across objective/RHS swaps.
3. *Duals.* The Theorem 5 certificate and the cutting-plane machinery need
   constraint marginals, which every backend exposes in scipy's sign
   convention (marginals of the minimized problem).

Constraints accumulate directly into flat CSR buffers (one ``float`` and
one ``int32`` append per nonzero): no dense ``(num_vars,)`` row is ever
materialized, and :meth:`Model.compile` is O(nnz).  The ``*_terms``
methods accept iterables of ``(variable, coefficient)`` pairs for hot
builders that don't need :class:`LinExpr` arithmetic.

Numerical behavior: solves run at the active backend's engine defaults
(HiGHS: 1e-7 primal/dual feasibility; Gurobi: 1e-6 — see
:mod:`repro.lp.backend`); no tolerance options are forwarded, so two
same-engine solves of one model are deterministic, while *cross*-backend
objective agreement is only guaranteed to ~1e-7.  Backend statuses map
onto the library's exceptions as ``infeasible`` →
:class:`~repro.exceptions.InfeasibleError`, ``unbounded`` →
:class:`~repro.exceptions.UnboundedError`, ``error`` →
:class:`~repro.exceptions.SolverError`.

Only what the library needs is implemented: continuous variables, linear
constraints, minimize/maximize.  No integer variables (the apportionment
code uses combinatorial rounding instead, as the paper does).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np
from scipy import sparse

from repro.exceptions import InfeasibleError, SolverError, UnboundedError
from repro.lp import backend as lp_backend
from repro.lp.backend.base import (
    INFEASIBLE,
    OPTIMAL,
    UNBOUNDED,
    BackendInstance,
    BackendSolution,
    LinearProgram,
    dense_objective,
)


class Variable:
    """A continuous decision variable (a handle into its model)."""

    __slots__ = ("index", "name", "lower", "upper")

    def __init__(self, index: int, name: str, lower: float, upper: float):
        self.index = index
        self.name = name
        self.lower = lower
        self.upper = upper

    # Arithmetic produces LinExpr so builders can write natural formulas.
    def __add__(self, other):
        return LinExpr.of(self) + other

    def __radd__(self, other):
        return LinExpr.of(self) + other

    def __sub__(self, other):
        return LinExpr.of(self) - other

    def __rsub__(self, other):
        return (-1.0) * LinExpr.of(self) + other

    def __mul__(self, coefficient: float):
        return LinExpr.of(self) * coefficient

    def __rmul__(self, coefficient: float):
        return LinExpr.of(self) * coefficient

    def __neg__(self):
        return LinExpr.of(self) * -1.0

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


class LinExpr:
    """A linear expression: ``sum(coef_i * var_i) + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(self, terms: dict[int, float] | None = None, constant: float = 0.0):
        self.terms: dict[int, float] = terms if terms is not None else {}
        self.constant = constant

    @classmethod
    def of(cls, item: "Variable | LinExpr | float") -> "LinExpr":
        if isinstance(item, LinExpr):
            return cls(dict(item.terms), item.constant)
        if isinstance(item, Variable):
            return cls({item.index: 1.0})
        return cls({}, float(item))

    @classmethod
    def weighted_sum(cls, pairs: Iterable[tuple["Variable", float]]) -> "LinExpr":
        """Fast path for big sums: avoids repeated temporary expressions."""
        terms: dict[int, float] = {}
        for var, coef in pairs:
            if coef == 0.0:
                continue
            terms[var.index] = terms.get(var.index, 0.0) + coef
        return cls(terms)

    def add_term(self, var: "Variable", coef: float) -> "LinExpr":
        """In-place accumulation (returns self for chaining)."""
        if coef != 0.0:
            self.terms[var.index] = self.terms.get(var.index, 0.0) + coef
        return self

    def __add__(self, other):
        result = LinExpr.of(self)
        other = LinExpr.of(other)
        for index, coef in other.terms.items():
            result.terms[index] = result.terms.get(index, 0.0) + coef
        result.constant += other.constant
        return result

    def __radd__(self, other):
        return self + other

    def __sub__(self, other):
        return self + (LinExpr.of(other) * -1.0)

    def __rsub__(self, other):
        return (self * -1.0) + other

    def __mul__(self, coefficient: float):
        coefficient = float(coefficient)
        return LinExpr(
            {i: c * coefficient for i, c in self.terms.items()},
            self.constant * coefficient,
        )

    def __rmul__(self, coefficient: float):
        return self * coefficient

    def __neg__(self):
        return self * -1.0

    def __repr__(self) -> str:
        return f"LinExpr(terms={len(self.terms)}, constant={self.constant})"


@dataclass
class Solution:
    """The result of an LP solve.

    Attributes:
        objective: optimal objective value (in the user's sense, i.e.
            negated back when the problem was a maximization).
        values: optimal value per variable index.
        ineq_duals: marginals of the <= constraints, in insertion order.
        eq_duals: marginals of the == constraints, in insertion order.
    """

    objective: float
    values: np.ndarray
    ineq_duals: np.ndarray
    eq_duals: np.ndarray

    def value(self, var: Variable) -> float:
        return float(self.values[var.index])

    def value_map(self, variables: Mapping[object, Variable]) -> dict[object, float]:
        """Extract a {key: value} dict for a keyed family of variables."""
        return {key: float(self.values[v.index]) for key, v in variables.items()}


def _check_solution(result: BackendSolution, maximize: bool) -> Solution:
    """Map a backend solution onto :class:`Solution` or the library errors."""
    if result.status == INFEASIBLE:
        raise InfeasibleError(result.message)
    if result.status == UNBOUNDED:
        # For a maximization the backend solved the negated problem:
        # unbounded below there means unbounded above for the caller.
        raise UnboundedError(result.message)
    if result.status != OPTIMAL:
        raise SolverError(f"LP solve failed ({result.status}): {result.message}")
    objective = -result.objective if maximize else result.objective
    return Solution(float(objective), result.x, result.ineq_duals, result.eq_duals)


class CompiledLP:
    """Frozen constraint matrices; solve repeatedly with fresh objectives.

    Thin wrapper pairing an immutable
    :class:`~repro.lp.backend.base.LinearProgram` with the active solver
    backend.  Each :meth:`solve` is an isolated cold solve; sequences of
    related solves should go through :meth:`reusable`.
    """

    def __init__(self, program: LinearProgram):
        self.program = program
        self.num_vars = program.num_vars

    def _objective_vector(self, objective, maximize: bool) -> np.ndarray:
        vec = dense_objective(self.num_vars, objective)
        if len(vec) != self.num_vars:
            raise SolverError(
                f"objective has {len(vec)} entries, model has {self.num_vars} variables"
            )
        return -vec if maximize else vec

    def solve(self, objective, maximize: bool = False) -> Solution:
        """Solve with a dense objective vector (or sparse index mapping).

        Raises:
            InfeasibleError / UnboundedError / SolverError: per status.
        """
        result = lp_backend.get_backend().solve(
            self.program, self._objective_vector(objective, maximize)
        )
        return _check_solution(result, maximize)

    def reusable(self, warm: bool | None = None) -> "ReusableLP":
        """A persistent solver instance for repeated objective/RHS swaps.

        Args:
            warm: chain the previous solve's basis (fast, but solution
                vectors become solve-order dependent at degenerate
                optima).  ``None`` defers to ``REPRO_LP_WARM``.
        """
        if warm is None:
            warm = lp_backend.warm_starts_enabled()
        instance = lp_backend.get_backend().instance(self.program, warm=warm)
        return ReusableLP(self, instance)


class ReusableLP:
    """A backend instance bound to one compiled LP (objective/RHS swaps)."""

    def __init__(self, compiled: CompiledLP, instance: BackendInstance):
        self._compiled = compiled
        self._instance = instance

    def solve(
        self,
        objective,
        maximize: bool = False,
        b_eq: np.ndarray | None = None,
    ) -> Solution:
        """Re-solve with a new objective (dense vector or ``{index: coef}``).

        ``b_eq`` replaces the equality right-hand sides in place, which
        is how the min-congestion solver swaps demand matrices without
        rebuilding conservation constraints.
        """
        if isinstance(objective, Mapping):
            if maximize:
                objective = {i: -c for i, c in objective.items()}
            result = self._instance.solve(objective, b_eq=b_eq)
        else:
            result = self._instance.solve(
                self._compiled._objective_vector(objective, maximize), b_eq=b_eq
            )
        return _check_solution(result, maximize)

    def invalidate_basis(self) -> None:
        """Force the next solve to start from a cold basis."""
        self._instance.invalidate_basis()


def _as_index(var: "Variable | int") -> int:
    return var.index if isinstance(var, Variable) else int(var)


class Model:
    """An LP under construction: variables, constraints, one objective.

    Constraint rows append directly onto flat CSR buffers; the
    ``add_le`` / ``add_ge`` / ``add_eq`` expression forms and the
    ``*_terms`` iterable forms share the same storage, so a model can
    mix both freely.
    """

    def __init__(self, name: str = "lp"):
        self.name = name
        self._vars: list[Variable] = []
        # Incremental CSR buffers (data + column indices + row pointers).
        self._ub_data: list[float] = []
        self._ub_cols: list[int] = []
        self._ub_indptr: list[int] = [0]
        self._ub_rhs: list[float] = []
        self._eq_data: list[float] = []
        self._eq_cols: list[int] = []
        self._eq_indptr: list[int] = [0]
        self._eq_rhs: list[float] = []
        self._objective: LinExpr = LinExpr()
        self._maximize = False

    # -- variables ----------------------------------------------------------

    def add_var(
        self,
        name: str,
        lower: float = 0.0,
        upper: float = math.inf,
    ) -> Variable:
        """Create a variable with the given bounds (default: nonnegative)."""
        if lower > upper:
            raise SolverError(f"variable {name!r}: lower bound {lower} > upper bound {upper}")
        var = Variable(len(self._vars), name, lower, upper)
        self._vars.append(var)
        return var

    def add_vars(self, keys: Iterable[object], prefix: str, lower: float = 0.0) -> dict[object, Variable]:
        """Create a keyed family of variables, e.g. one per edge."""
        return {key: self.add_var(f"{prefix}[{key}]", lower=lower) for key in keys}

    @property
    def num_vars(self) -> int:
        return len(self._vars)

    @property
    def num_constraints(self) -> int:
        return (len(self._ub_indptr) - 1) + (len(self._eq_indptr) - 1)

    # -- constraints ----------------------------------------------------------

    def add_le_terms(
        self,
        terms: "Iterable[tuple[Variable | int, float]] | Mapping[int, float]",
        rhs: float,
    ) -> int:
        """Add ``sum(coef * var) <= rhs`` from sparse terms; returns row index.

        Terms append straight onto the CSR buffers — no dense row, no
        intermediate expression.  Duplicate variables are allowed (CSR
        canonicalization sums them on compile); zero coefficients are
        skipped.
        """
        if isinstance(terms, Mapping):
            terms = terms.items()
        data, cols = self._ub_data, self._ub_cols
        for var, coef in terms:
            if coef != 0.0:
                data.append(float(coef))
                cols.append(_as_index(var))
        self._ub_indptr.append(len(data))
        self._ub_rhs.append(float(rhs))
        return len(self._ub_rhs) - 1

    def add_ge_terms(self, terms, rhs: float) -> int:
        """Add ``sum(coef * var) >= rhs`` (stored negated as a <= row)."""
        if isinstance(terms, Mapping):
            terms = terms.items()
        return self.add_le_terms(
            ((var, -coef) for var, coef in terms), -float(rhs)
        )

    def add_eq_terms(
        self,
        terms: "Iterable[tuple[Variable | int, float]] | Mapping[int, float]",
        rhs: float,
    ) -> int:
        """Add ``sum(coef * var) == rhs`` from sparse terms; returns row index."""
        if isinstance(terms, Mapping):
            terms = terms.items()
        data, cols = self._eq_data, self._eq_cols
        for var, coef in terms:
            if coef != 0.0:
                data.append(float(coef))
                cols.append(_as_index(var))
        self._eq_indptr.append(len(data))
        self._eq_rhs.append(float(rhs))
        return len(self._eq_rhs) - 1

    def add_le(self, expr: "LinExpr | Variable | float", rhs: "LinExpr | Variable | float") -> int:
        """Add ``expr <= rhs``; returns the inequality row index (for duals)."""
        diff = LinExpr.of(expr) - LinExpr.of(rhs)
        return self.add_le_terms(diff.terms, -diff.constant)

    def add_ge(self, expr, rhs) -> int:
        """Add ``expr >= rhs`` (stored as ``-expr <= -rhs``)."""
        return self.add_le(LinExpr.of(rhs), LinExpr.of(expr))

    def add_eq(self, expr, rhs) -> int:
        """Add ``expr == rhs``; returns the equality row index (for duals)."""
        diff = LinExpr.of(expr) - LinExpr.of(rhs)
        return self.add_eq_terms(diff.terms, -diff.constant)

    # -- objective & solving -------------------------------------------------

    def minimize(self, expr: "LinExpr | Variable") -> None:
        self._objective = LinExpr.of(expr)
        self._maximize = False

    def maximize(self, expr: "LinExpr | Variable") -> None:
        self._objective = LinExpr.of(expr)
        self._maximize = True

    def compile(self) -> CompiledLP:
        """Freeze constraints into sparse matrices (objective supplied later)."""
        n = len(self._vars)

        def assemble(data, cols, indptr) -> sparse.csr_matrix | None:
            if len(indptr) == 1:
                return None
            matrix = sparse.csr_matrix(
                (
                    np.asarray(data, dtype=float),
                    np.asarray(cols, dtype=np.int32),
                    np.asarray(indptr, dtype=np.int64),
                ),
                shape=(len(indptr) - 1, n),
            )
            # Canonicalize: sum duplicate (row, col) entries, sort indices —
            # the invariant LinearProgram promises its backends.
            matrix.sum_duplicates()
            matrix.sort_indices()
            return matrix

        program = LinearProgram(
            num_vars=n,
            a_ub=assemble(self._ub_data, self._ub_cols, self._ub_indptr),
            b_ub=np.asarray(self._ub_rhs, dtype=float) if self._ub_rhs else None,
            a_eq=assemble(self._eq_data, self._eq_cols, self._eq_indptr),
            b_eq=np.asarray(self._eq_rhs, dtype=float) if self._eq_rhs else None,
            col_lower=np.array([v.lower for v in self._vars], dtype=float),
            col_upper=np.array([v.upper for v in self._vars], dtype=float),
        )
        return CompiledLP(program)

    def objective_vector(self, expr: "LinExpr | Variable | None" = None) -> np.ndarray:
        """Dense coefficient vector for ``expr`` (default: the set objective)."""
        source = LinExpr.of(expr) if expr is not None else self._objective
        vec = np.zeros(len(self._vars))
        for index, coef in source.terms.items():
            vec[index] = coef
        return vec

    def objective_terms(self, expr: "LinExpr | Variable | None" = None) -> dict[int, float]:
        """Sparse ``{column: coefficient}`` objective (no dense vector)."""
        source = LinExpr.of(expr) if expr is not None else self._objective
        return dict(source.terms)

    def solve(self) -> Solution:
        """Compile and solve with the objective set via minimize/maximize."""
        compiled = self.compile()
        solution = compiled.solve(self.objective_vector(), maximize=self._maximize)
        # The objective's constant term is not part of the vector; add it back.
        solution.objective += self._objective.constant
        return solution

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, vars={self.num_vars}, "
            f"le={len(self._ub_indptr) - 1}, eq={len(self._eq_indptr) - 1})"
        )
