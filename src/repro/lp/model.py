"""A small LP modeling layer over ``scipy.optimize.linprog`` (HiGHS).

Design goals, in order:

1. *Readable problem builders.* The flow formulations in this library are
   easier to audit when written as ``model.add_eq(outflow - inflow, demand)``
   than as raw matrix stuffing.
2. *Cheap re-solves.* The adversarial evaluation of Section VI solves one
   LP per network edge where only the objective changes; :meth:`Model.compile`
   freezes the constraint matrices once and :meth:`CompiledLP.solve` accepts
   a fresh objective vector per call.
3. *Duals.* The Theorem 5 certificate and the cutting-plane machinery need
   constraint marginals, which HiGHS exposes.

Only what the library needs is implemented: continuous variables, linear
constraints, minimize/maximize.  No integer variables (the apportionment
code uses combinatorial rounding instead, as the paper does).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.exceptions import InfeasibleError, SolverError, UnboundedError


class Variable:
    """A continuous decision variable (a handle into its model)."""

    __slots__ = ("index", "name", "lower", "upper")

    def __init__(self, index: int, name: str, lower: float, upper: float):
        self.index = index
        self.name = name
        self.lower = lower
        self.upper = upper

    # Arithmetic produces LinExpr so builders can write natural formulas.
    def __add__(self, other):
        return LinExpr.of(self) + other

    def __radd__(self, other):
        return LinExpr.of(self) + other

    def __sub__(self, other):
        return LinExpr.of(self) - other

    def __rsub__(self, other):
        return (-1.0) * LinExpr.of(self) + other

    def __mul__(self, coefficient: float):
        return LinExpr.of(self) * coefficient

    def __rmul__(self, coefficient: float):
        return LinExpr.of(self) * coefficient

    def __neg__(self):
        return LinExpr.of(self) * -1.0

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


class LinExpr:
    """A linear expression: ``sum(coef_i * var_i) + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(self, terms: dict[int, float] | None = None, constant: float = 0.0):
        self.terms: dict[int, float] = terms if terms is not None else {}
        self.constant = constant

    @classmethod
    def of(cls, item: "Variable | LinExpr | float") -> "LinExpr":
        if isinstance(item, LinExpr):
            return cls(dict(item.terms), item.constant)
        if isinstance(item, Variable):
            return cls({item.index: 1.0})
        return cls({}, float(item))

    @classmethod
    def weighted_sum(cls, pairs: Iterable[tuple["Variable", float]]) -> "LinExpr":
        """Fast path for big sums: avoids repeated temporary expressions."""
        terms: dict[int, float] = {}
        for var, coef in pairs:
            if coef == 0.0:
                continue
            terms[var.index] = terms.get(var.index, 0.0) + coef
        return cls(terms)

    def add_term(self, var: "Variable", coef: float) -> "LinExpr":
        """In-place accumulation (returns self for chaining)."""
        if coef != 0.0:
            self.terms[var.index] = self.terms.get(var.index, 0.0) + coef
        return self

    def __add__(self, other):
        result = LinExpr.of(self)
        other = LinExpr.of(other)
        for index, coef in other.terms.items():
            result.terms[index] = result.terms.get(index, 0.0) + coef
        result.constant += other.constant
        return result

    def __radd__(self, other):
        return self + other

    def __sub__(self, other):
        return self + (LinExpr.of(other) * -1.0)

    def __rsub__(self, other):
        return (self * -1.0) + other

    def __mul__(self, coefficient: float):
        coefficient = float(coefficient)
        return LinExpr(
            {i: c * coefficient for i, c in self.terms.items()},
            self.constant * coefficient,
        )

    def __rmul__(self, coefficient: float):
        return self * coefficient

    def __neg__(self):
        return self * -1.0

    def __repr__(self) -> str:
        return f"LinExpr(terms={len(self.terms)}, constant={self.constant})"


@dataclass
class Solution:
    """The result of an LP solve.

    Attributes:
        objective: optimal objective value (in the user's sense, i.e.
            negated back when the problem was a maximization).
        values: optimal value per variable index.
        ineq_duals: marginals of the <= constraints, in insertion order.
        eq_duals: marginals of the == constraints, in insertion order.
    """

    objective: float
    values: np.ndarray
    ineq_duals: np.ndarray
    eq_duals: np.ndarray

    def value(self, var: Variable) -> float:
        return float(self.values[var.index])

    def value_map(self, variables: Mapping[object, Variable]) -> dict[object, float]:
        """Extract a {key: value} dict for a keyed family of variables."""
        return {key: float(self.values[v.index]) for key, v in variables.items()}


class CompiledLP:
    """Frozen constraint matrices; solve repeatedly with fresh objectives."""

    def __init__(
        self,
        num_vars: int,
        a_ub: sparse.csr_matrix | None,
        b_ub: np.ndarray | None,
        a_eq: sparse.csr_matrix | None,
        b_eq: np.ndarray | None,
        bounds: list[tuple[float, float]],
    ):
        self.num_vars = num_vars
        self._a_ub = a_ub
        self._b_ub = b_ub
        self._a_eq = a_eq
        self._b_eq = b_eq
        self._bounds = bounds

    def solve(self, objective: np.ndarray, maximize: bool = False) -> Solution:
        """Solve with the given dense objective vector.

        Raises:
            InfeasibleError / UnboundedError / SolverError: per HiGHS status.
        """
        if len(objective) != self.num_vars:
            raise SolverError(
                f"objective has {len(objective)} entries, model has {self.num_vars} variables"
            )
        c = -np.asarray(objective, dtype=float) if maximize else np.asarray(objective, dtype=float)
        result = linprog(
            c,
            A_ub=self._a_ub,
            b_ub=self._b_ub,
            A_eq=self._a_eq,
            b_eq=self._b_eq,
            bounds=self._bounds,
            method="highs",
        )
        if result.status == 2:
            raise InfeasibleError(result.message)
        if result.status == 3:
            raise UnboundedError(result.message)
        if result.status != 0:
            raise SolverError(f"LP solve failed (status {result.status}): {result.message}")
        objective_value = float(result.fun)
        if maximize:
            objective_value = -objective_value
        ineq_duals = (
            np.asarray(result.ineqlin.marginals) if self._a_ub is not None else np.empty(0)
        )
        eq_duals = np.asarray(result.eqlin.marginals) if self._a_eq is not None else np.empty(0)
        return Solution(objective_value, np.asarray(result.x), ineq_duals, eq_duals)


class Model:
    """An LP under construction: variables, constraints, one objective."""

    def __init__(self, name: str = "lp"):
        self.name = name
        self._vars: list[Variable] = []
        # Constraints stored as parallel COO buffers; assembled on compile.
        self._ub_rows: list[dict[int, float]] = []
        self._ub_rhs: list[float] = []
        self._eq_rows: list[dict[int, float]] = []
        self._eq_rhs: list[float] = []
        self._objective: LinExpr = LinExpr()
        self._maximize = False

    # -- variables ----------------------------------------------------------

    def add_var(
        self,
        name: str,
        lower: float = 0.0,
        upper: float = math.inf,
    ) -> Variable:
        """Create a variable with the given bounds (default: nonnegative)."""
        if lower > upper:
            raise SolverError(f"variable {name!r}: lower bound {lower} > upper bound {upper}")
        var = Variable(len(self._vars), name, lower, upper)
        self._vars.append(var)
        return var

    def add_vars(self, keys: Iterable[object], prefix: str, lower: float = 0.0) -> dict[object, Variable]:
        """Create a keyed family of variables, e.g. one per edge."""
        return {key: self.add_var(f"{prefix}[{key}]", lower=lower) for key in keys}

    @property
    def num_vars(self) -> int:
        return len(self._vars)

    @property
    def num_constraints(self) -> int:
        return len(self._ub_rows) + len(self._eq_rows)

    # -- constraints ----------------------------------------------------------

    def add_le(self, expr: "LinExpr | Variable | float", rhs: "LinExpr | Variable | float") -> int:
        """Add ``expr <= rhs``; returns the inequality row index (for duals)."""
        diff = LinExpr.of(expr) - LinExpr.of(rhs)
        self._ub_rows.append(diff.terms)
        self._ub_rhs.append(-diff.constant)
        return len(self._ub_rows) - 1

    def add_ge(self, expr, rhs) -> int:
        """Add ``expr >= rhs`` (stored as ``-expr <= -rhs``)."""
        return self.add_le(LinExpr.of(rhs), LinExpr.of(expr))

    def add_eq(self, expr, rhs) -> int:
        """Add ``expr == rhs``; returns the equality row index (for duals)."""
        diff = LinExpr.of(expr) - LinExpr.of(rhs)
        self._eq_rows.append(diff.terms)
        self._eq_rhs.append(-diff.constant)
        return len(self._eq_rows) - 1

    # -- objective & solving -------------------------------------------------

    def minimize(self, expr: "LinExpr | Variable") -> None:
        self._objective = LinExpr.of(expr)
        self._maximize = False

    def maximize(self, expr: "LinExpr | Variable") -> None:
        self._objective = LinExpr.of(expr)
        self._maximize = True

    def compile(self) -> CompiledLP:
        """Freeze constraints into sparse matrices (objective supplied later)."""
        n = len(self._vars)

        def assemble(rows: list[dict[int, float]]) -> sparse.csr_matrix | None:
            if not rows:
                return None
            data: list[float] = []
            row_idx: list[int] = []
            col_idx: list[int] = []
            for r, terms in enumerate(rows):
                for c, coef in terms.items():
                    row_idx.append(r)
                    col_idx.append(c)
                    data.append(coef)
            return sparse.csr_matrix(
                (data, (row_idx, col_idx)), shape=(len(rows), n)
            )

        bounds = [(v.lower, None if math.isinf(v.upper) else v.upper) for v in self._vars]
        return CompiledLP(
            n,
            assemble(self._ub_rows),
            np.asarray(self._ub_rhs, dtype=float) if self._ub_rhs else None,
            assemble(self._eq_rows),
            np.asarray(self._eq_rhs, dtype=float) if self._eq_rhs else None,
            bounds,
        )

    def objective_vector(self, expr: "LinExpr | Variable | None" = None) -> np.ndarray:
        """Dense coefficient vector for ``expr`` (default: the set objective)."""
        source = LinExpr.of(expr) if expr is not None else self._objective
        vec = np.zeros(len(self._vars))
        for index, coef in source.terms.items():
            vec[index] = coef
        return vec

    def solve(self) -> Solution:
        """Compile and solve with the objective set via minimize/maximize."""
        compiled = self.compile()
        solution = compiled.solve(self.objective_vector(), maximize=self._maximize)
        # The objective's constant term is not part of the vector; add it back.
        solution.objective += self._objective.constant
        return solution

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, vars={self.num_vars}, "
            f"le={len(self._ub_rows)}, eq={len(self._eq_rows)})"
        )
