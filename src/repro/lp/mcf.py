"""Min-congestion multicommodity flow — the ``OPTU(D)`` of Section III.

``OPTU(D)`` is the smallest maximum link utilization any per-destination
routing can achieve for demand matrix ``D``.  Aggregating commodities by
destination is lossless for this objective: any optimal aggregated flow
can be made acyclic (cycle removal never raises congestion), and an
acyclic destination flow induces per-destination splitting ratios
``phi_t(u, v) = g_t(u, v) / sum_w g_t(u, w)`` realizing exactly the same
loads.  The LP therefore has one flow variable per (destination, edge).

The same builder optionally restricts each destination's flow to a given
DAG, which yields the *demands-aware optimum within the DAGs* — the
normalizer used throughout the paper's evaluation (Section VI).

Because the constraint matrix depends only on the *support* of the
demand (which destinations receive traffic) and not on the volumes —
conservation right-hand sides carry the volumes, capacity rows have a
demand-independent RHS of 0 — a cutting-plane loop that normalizes many
matrices over the same topology re-solves one factorized LP with fresh
equality RHS instead of rebuilding it.  :class:`MinCongestionSolver`
caches one compiled structure per destination set and swaps ``b_eq``;
:func:`min_congestion` is the one-shot convenience wrapper over it.

Numerics: solves inherit the active LP backend's engine defaults (HiGHS
1e-7 feasibility; see :mod:`repro.lp.backend`); extracted flows drop
values below 1e-12, matching the historical serial path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.demands.matrix import DemandMatrix
from repro.exceptions import InfeasibleError, RoutingError
from repro.graph.dag import Dag
from repro.graph.network import Edge, Network, Node
from repro.lp.model import Model, ReusableLP, Variable


@dataclass
class MinCongestionResult:
    """Optimal congestion plus the witnessing destination flows.

    Attributes:
        alpha: the optimal maximum link utilization.
        flows: destination -> {edge -> flow volume}; only positive flows
            are stored.
    """

    alpha: float
    flows: dict[Node, dict[Edge, float]]

    def flow_on(self, destination: Node, edge: Edge) -> float:
        return self.flows.get(destination, {}).get(edge, 0.0)

    def total_load(self, edge: Edge) -> float:
        return sum(per_dest.get(edge, 0.0) for per_dest in self.flows.values())


def _allowed_edges(
    network: Network, destination: Node, dags: Mapping[Node, Dag] | None
) -> list[Edge]:
    """Edges commodity ``destination`` may use."""
    if dags is not None:
        dag = dags.get(destination)
        if dag is None:
            raise RoutingError(f"no DAG provided for destination {destination!r}")
        return dag.edges()
    # Unrestricted: every edge except those leaving the destination (flow
    # to t terminates at t, so such edges can only waste capacity).
    return [e for e in network.edges() if e[0] != destination]


class _Structure:
    """One compiled min-congestion LP for a fixed destination set."""

    def __init__(
        self,
        network: Network,
        destinations: tuple[Node, ...],
        dags: Mapping[Node, Dag] | None,
    ):
        model = Model("min-congestion")
        self.alpha = model.add_var("alpha")
        self.flow_vars: dict[Node, dict[Edge, Variable]] = {}
        # (destination, node) behind each conservation row, in row order —
        # the recipe for rebuilding b_eq from any demand matrix.
        self.eq_rows: list[tuple[Node, Node]] = []
        self.incident_nodes: dict[Node, set[Node]] = {}

        for t in destinations:
            edges = _allowed_edges(network, t, dags)
            self.flow_vars[t] = {e: model.add_var(f"g[{t}][{e}]") for e in edges}
            incident: dict[Node, tuple[list[Edge], list[Edge]]] = {}
            for (u, v) in edges:
                incident.setdefault(u, ([], []))[0].append((u, v))
                incident.setdefault(v, ([], []))[1].append((u, v))
            self.incident_nodes[t] = set(incident)
            for node, (out_list, in_list) in incident.items():
                if node == t:
                    continue
                terms = [(self.flow_vars[t][e], 1.0) for e in out_list]
                terms += [(self.flow_vars[t][e], -1.0) for e in in_list]
                model.add_eq_terms(terms, 0.0)
                self.eq_rows.append((t, node))

        # Capacity: total load on each finite-capacity edge at most alpha * c.
        for edge in network.finite_capacity_edges():
            capacity = network.capacity(*edge)
            terms = [
                (self.flow_vars[t][edge], 1.0)
                for t in destinations
                if edge in self.flow_vars[t]
            ]
            if terms:
                terms.append((self.alpha, -capacity))
                model.add_le_terms(terms, 0.0)

        self.reusable: ReusableLP = model.compile().reusable()


class MinCongestionSolver:
    """Re-solves ``OPTU(D)`` over one topology by swapping equality RHS.

    One compiled constraint structure is cached per destination set
    (given the fixed ``network`` / ``dags``); solving a new demand with
    the same support only writes fresh conservation right-hand sides
    into the loaded model.  Results are identical to one-shot
    :func:`min_congestion` calls — the default isolated-solve backend
    contract guarantees solve-order independence.
    """

    def __init__(self, network: Network, dags: Mapping[Node, Dag] | None = None):
        self.network = network
        self.dags = dict(dags) if dags is not None else None
        self._structures: dict[tuple[Node, ...], _Structure] = {}

    def _structure_for(self, destinations: tuple[Node, ...]) -> _Structure:
        structure = self._structures.get(destinations)
        if structure is None:
            structure = _Structure(self.network, destinations, self.dags)
            self._structures[destinations] = structure
        return structure

    def solve(self, demand: DemandMatrix) -> MinCongestionResult:
        """``OPTU(demand)``; see :func:`min_congestion` for semantics."""
        destinations = tuple(sorted(demand.targets(), key=str))
        structure = self._structure_for(destinations)

        demands_by_dest = {t: demand.demands_to(t) for t in destinations}
        for t in destinations:
            allowed = structure.incident_nodes[t]
            for source, volume in demands_by_dest[t].items():
                if volume > 0 and source not in allowed:
                    raise InfeasibleError(
                        f"demand {source!r} -> {t!r} cannot be routed: source has no "
                        f"allowed edges for this destination"
                    )

        b_eq = (
            np.array(
                [demands_by_dest[t].get(node, 0.0) for t, node in structure.eq_rows],
                dtype=float,
            )
            if structure.eq_rows
            else None
        )
        solution = structure.reusable.solve(
            {structure.alpha.index: 1.0}, b_eq=b_eq
        )

        flows: dict[Node, dict[Edge, float]] = {}
        for t in destinations:
            flows[t] = {
                e: solution.value(var)
                for e, var in structure.flow_vars[t].items()
                if solution.value(var) > 1e-12
            }
        return MinCongestionResult(alpha=float(solution.objective), flows=flows)


def min_congestion(
    network: Network,
    demand: DemandMatrix,
    dags: Mapping[Node, Dag] | None = None,
) -> MinCongestionResult:
    """Solve ``OPTU(D)`` (optionally restricted to per-destination DAGs).

    Raises:
        InfeasibleError: when some demand source cannot reach its
            destination through the allowed edges (e.g. a node outside
            the destination's DAG).
    """
    return MinCongestionSolver(network, dags).solve(demand)


def optimal_utilization(
    network: Network,
    demand: DemandMatrix,
    dags: Mapping[Node, Dag] | None = None,
) -> float:
    """Just the ``OPTU(D)`` value (convenience wrapper)."""
    if not demand:
        return 0.0
    return min_congestion(network, demand, dags).alpha


def is_routable(
    network: Network,
    demand: DemandMatrix,
    dags: Mapping[Node, Dag] | None = None,
    tolerance: float = 1e-9,
) -> bool:
    """True when the demand fits within capacities (``OPTU(D) <= 1``)."""
    if not demand:
        return True
    if not math.isfinite(demand.total()):
        return False
    return min_congestion(network, demand, dags).alpha <= 1.0 + tolerance
