"""Min-congestion multicommodity flow — the ``OPTU(D)`` of Section III.

``OPTU(D)`` is the smallest maximum link utilization any per-destination
routing can achieve for demand matrix ``D``.  Aggregating commodities by
destination is lossless for this objective: any optimal aggregated flow
can be made acyclic (cycle removal never raises congestion), and an
acyclic destination flow induces per-destination splitting ratios
``phi_t(u, v) = g_t(u, v) / sum_w g_t(u, w)`` realizing exactly the same
loads.  The LP therefore has one flow variable per (destination, edge).

The same builder optionally restricts each destination's flow to a given
DAG, which yields the *demands-aware optimum within the DAGs* — the
normalizer used throughout the paper's evaluation (Section VI).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.demands.matrix import DemandMatrix
from repro.exceptions import InfeasibleError, RoutingError
from repro.graph.dag import Dag
from repro.graph.network import Edge, Network, Node
from repro.lp.model import LinExpr, Model, Variable


@dataclass
class MinCongestionResult:
    """Optimal congestion plus the witnessing destination flows.

    Attributes:
        alpha: the optimal maximum link utilization.
        flows: destination -> {edge -> flow volume}; only positive flows
            are stored.
    """

    alpha: float
    flows: dict[Node, dict[Edge, float]]

    def flow_on(self, destination: Node, edge: Edge) -> float:
        return self.flows.get(destination, {}).get(edge, 0.0)

    def total_load(self, edge: Edge) -> float:
        return sum(per_dest.get(edge, 0.0) for per_dest in self.flows.values())


def _allowed_edges(
    network: Network, destination: Node, dags: Mapping[Node, Dag] | None
) -> list[Edge]:
    """Edges commodity ``destination`` may use."""
    if dags is not None:
        dag = dags.get(destination)
        if dag is None:
            raise RoutingError(f"no DAG provided for destination {destination!r}")
        return dag.edges()
    # Unrestricted: every edge except those leaving the destination (flow
    # to t terminates at t, so such edges can only waste capacity).
    return [e for e in network.edges() if e[0] != destination]


def min_congestion(
    network: Network,
    demand: DemandMatrix,
    dags: Mapping[Node, Dag] | None = None,
) -> MinCongestionResult:
    """Solve ``OPTU(D)`` (optionally restricted to per-destination DAGs).

    Raises:
        InfeasibleError: when some demand source cannot reach its
            destination through the allowed edges (e.g. a node outside
            the destination's DAG).
    """
    model = Model("min-congestion")
    alpha = model.add_var("alpha")
    flow_vars: dict[Node, dict[Edge, Variable]] = {}
    destinations = sorted(demand.targets(), key=str)

    for t in destinations:
        edges = _allowed_edges(network, t, dags)
        flow_vars[t] = {e: model.add_var(f"g[{t}][{e}]") for e in edges}
        demands_to_t = demand.demands_to(t)
        # Conservation at every node that could carry commodity t.
        incident: dict[Node, tuple[list[Edge], list[Edge]]] = {}
        for (u, v) in edges:
            incident.setdefault(u, ([], []))[0].append((u, v))
            incident.setdefault(v, ([], []))[1].append((u, v))
        for source, volume in demands_to_t.items():
            if volume > 0 and source not in incident:
                raise InfeasibleError(
                    f"demand {source!r} -> {t!r} cannot be routed: source has no "
                    f"allowed edges for this destination"
                )
        for node, (out_list, in_list) in incident.items():
            if node == t:
                continue
            balance = LinExpr()
            for e in out_list:
                balance.add_term(flow_vars[t][e], 1.0)
            for e in in_list:
                balance.add_term(flow_vars[t][e], -1.0)
            model.add_eq(balance, demands_to_t.get(node, 0.0))

    # Capacity: total load on each finite-capacity edge at most alpha * c.
    for edge in network.finite_capacity_edges():
        capacity = network.capacity(*edge)
        usage = LinExpr()
        for t in destinations:
            var = flow_vars[t].get(edge)
            if var is not None:
                usage.add_term(var, 1.0)
        if usage.terms:
            usage.add_term(alpha, -capacity)
            model.add_le(usage, 0.0)

    model.minimize(alpha)
    solution = model.solve()

    flows: dict[Node, dict[Edge, float]] = {}
    for t in destinations:
        per_dest = {
            e: solution.value(var)
            for e, var in flow_vars[t].items()
            if solution.value(var) > 1e-12
        }
        flows[t] = per_dest
    return MinCongestionResult(alpha=float(solution.objective), flows=flows)


def optimal_utilization(
    network: Network,
    demand: DemandMatrix,
    dags: Mapping[Node, Dag] | None = None,
) -> float:
    """Just the ``OPTU(D)`` value (convenience wrapper)."""
    if not demand:
        return 0.0
    return min_congestion(network, demand, dags).alpha


def is_routable(
    network: Network,
    demand: DemandMatrix,
    dags: Mapping[Node, Dag] | None = None,
    tolerance: float = 1e-9,
) -> bool:
    """True when the demand fits within capacities (``OPTU(D) <= 1``)."""
    if not demand:
        return True
    if not math.isfinite(demand.total()):
        return False
    return min_congestion(network, demand, dags).alpha <= 1.0 + tolerance
