"""The adversarial ("slave") LP of Appendix C, equations (10)-(11).

For a *fixed* routing ``phi`` the performance ratio over an uncertainty
set ``D`` is, by scale invariance,

    PERF(phi, D) = max_e  max { load_e(phi, D) / c_e :
                                D in cone(D),  OPT(D) <= 1 }

i.e. one LP per edge where the objective is the (linear!) load placed on
that edge and the constraints assert that a witness flow ``g`` routes
``D`` at congestion <= 1, and that ``D`` lies in the margin cone
``lambda * lo <= d <= lambda * hi``.

Two witness modes select the normalizer ``OPT``:

* ``dags``    — the witness flow is restricted to the per-destination
  DAGs, so ratios are relative to the *demands-aware optimum within the
  same DAGs* (the normalization used in Section VI / Table I);
* ``network`` — the witness may use any edge, normalizing against the
  unrestricted optimum (used by the local-search heuristic, which follows
  the oblivious-OSPF objective of [12]).

The paper writes the flow-conservation rows of the slave LP with a
``<= 0`` sense (eq. 10); taken literally that lets the adversary inflate
demands beyond what the witness flow delivers, making the LP unbounded.
We use the standard equality conservation from Applegate & Cohen [11],
which is the form the dualization (Theorem 5) actually corresponds to.

All constraint matrices are compiled once per (witness, uncertainty)
pair and stay loaded in a persistent backend instance; evaluating a
routing only swaps the (sparse) objective, so a sweep over all edges
costs one re-solve of the factorized LP per edge and nothing more.
Per-edge solves are isolated (cold basis, see
:mod:`repro.lp.backend`) so results are independent of sweep order and
of how ``REPRO_LP_JOBS`` partitions the sweep across threads; solves
run at the backend engine's default tolerances (HiGHS 1e-7) and demand
entries below 1e-10 are dropped from extracted worst-case matrices.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Mapping

from repro.config import DEFAULT_CONFIG, SolverConfig
from repro.demands.matrix import DemandMatrix, Pair
from repro.demands.uncertainty import UncertaintySet
from repro.exceptions import SolverError
from repro.graph.dag import Dag
from repro.graph.network import Edge, Network, Node
from repro.lp import backend as lp_backend
from repro.lp.model import LinExpr, Model, ReusableLP, Variable
from repro.routing.splitting import Routing


@dataclass
class OracleResult:
    """Outcome of a worst-case evaluation of a fixed routing.

    Attributes:
        ratio: ``PERF(phi, D)`` — worst-case utilization against demands
            normalized to ``OPT <= 1``.
        edge: the link attaining the worst ratio.
        demand: a worst-case demand matrix (already scaled to be routable
            at congestion <= 1 under the witness mode).
        per_edge: worst-case utilization per evaluated edge.
        cuts: worst-case demands of the most-violated edges, best first —
            the cutting-plane loop adds several per round to converge in
            fewer oracle sweeps.
    """

    ratio: float
    edge: Edge | None
    demand: DemandMatrix | None
    per_edge: dict[Edge, float]
    cuts: list[DemandMatrix] = field(default_factory=list)


class WorstCaseOracle:
    """Reusable adversarial evaluator for a fixed (witness, uncertainty) pair."""

    def __init__(
        self,
        network: Network,
        uncertainty: UncertaintySet,
        dags: Mapping[Node, Dag] | None = None,
        config: SolverConfig = DEFAULT_CONFIG,
    ):
        """Args:
        network: the capacitated topology.
        uncertainty: the demand cone the adversary may pick from.
        dags: witness restriction; ``None`` selects the network-wide
            witness (normalization against the unrestricted optimum).
        config: solver tolerances.
        """
        self.network = network
        self.dags = dict(dags) if dags is not None else None
        self.uncertainty = uncertainty
        self.config = config
        self._build()

    # -- construction ---------------------------------------------------

    def _witness_edges(self, destination: Node) -> list[Edge]:
        if self.dags is not None:
            dag = self.dags.get(destination)
            if dag is None:
                raise SolverError(f"no DAG provided for destination {destination!r}")
            return dag.edges()
        return [e for e in self.network.edges() if e[0] != destination]

    def _pair_allowed(self, source: Node, destination: Node) -> bool:
        if source == destination:
            return False
        if self.dags is not None:
            dag = self.dags.get(destination)
            return dag is not None and dag.has_node(source)
        return self.network.has_node(source) and self.network.has_node(destination)

    def _build(self) -> None:
        model = Model("slave")
        self._demand_vars: dict[Pair, Variable] = {}
        for (s, t) in self.uncertainty.pairs:
            if self._pair_allowed(s, t):
                self._demand_vars[(s, t)] = model.add_var(f"d[{s},{t}]")

        destinations = sorted({t for (_s, t) in self._demand_vars}, key=str)
        flow_vars: dict[Node, dict[Edge, Variable]] = {}
        for t in destinations:
            edges = self._witness_edges(t)
            flow_vars[t] = {e: model.add_var(f"g[{t}][{e}]") for e in edges}
            incident: dict[Node, tuple[list[Edge], list[Edge]]] = {}
            for (u, v) in edges:
                incident.setdefault(u, ([], []))
                incident.setdefault(v, ([], []))
                incident[u][0].append((u, v))
                incident[v][1].append((u, v))
            # Conservation: outflow - inflow equals the demand originated
            # at the node (equality; see module docstring).
            for node, (out_list, in_list) in incident.items():
                if node == t:
                    continue
                balance = LinExpr()
                for e in out_list:
                    balance.add_term(flow_vars[t][e], 1.0)
                for e in in_list:
                    balance.add_term(flow_vars[t][e], -1.0)
                demand_var = self._demand_vars.get((node, t))
                if demand_var is not None:
                    balance.add_term(demand_var, -1.0)
                model.add_eq(balance, 0.0)

        # Witness congestion at most 1 on every finite-capacity edge.
        for edge in self.network.finite_capacity_edges():
            usage = LinExpr()
            for t in destinations:
                var = flow_vars[t].get(edge)
                if var is not None:
                    usage.add_term(var, 1.0)
            if usage.terms:
                model.add_le(usage, self.network.capacity(*edge))

        # Margin cone: lambda * lo <= d <= lambda * hi (skipped for the
        # oblivious set, whose only constraint is nonnegativity).
        if not self.uncertainty.oblivious:
            lam = model.add_var("lambda")
            for pair, var in self._demand_vars.items():
                lo, hi = self.uncertainty.bounds[pair]
                if hi < math.inf:
                    model.add_le(var - hi * lam, 0.0)
                if lo > 0:
                    model.add_le(lo * lam - var, 0.0)

        self._model = model
        self._compiled = model.compile()
        # One persistent backend instance for the serial path; parallel
        # sweeps build one per worker thread (instances are stateful).
        self._reusable: ReusableLP = self._compiled.reusable()

    # -- queries ----------------------------------------------------------

    @property
    def demand_pairs(self) -> list[Pair]:
        """Pairs the adversary can actually use (support of the LP)."""
        return list(self._demand_vars)

    def worst_utilization_for_edge(
        self,
        edge: Edge,
        coefficients: Mapping[Pair, float],
        reusable: ReusableLP | None = None,
    ) -> tuple[float, DemandMatrix]:
        """Maximize the utilization of ``edge`` over the uncertainty set.

        Args:
            edge: the link under attack.
            coefficients: pair -> fraction of that pair's demand crossing
                ``edge`` under the fixed routing (``f_st(u) * phi_t(e)``).
            reusable: solver instance to use (default: the oracle's own;
                parallel sweeps pass per-thread instances).

        Returns:
            (utilization, worst-case demand matrix).
        """
        capacity = self.network.capacity(*edge)
        if not math.isfinite(capacity):
            return 0.0, DemandMatrix({})
        objective: dict[int, float] = {}
        for pair, coefficient in coefficients.items():
            var = self._demand_vars.get(pair)
            if var is not None and coefficient > 0.0:
                objective[var.index] = coefficient / capacity
        if not objective:
            return 0.0, DemandMatrix({})
        if reusable is None:
            reusable = self._reusable
        solution = reusable.solve(objective, maximize=True)
        demand = DemandMatrix(
            {
                pair: solution.value(var)
                for pair, var in self._demand_vars.items()
                if solution.value(var) > 1e-10
            }
        )
        return float(solution.objective), demand

    def evaluate(
        self,
        routing: Routing,
        edges: list[Edge] | None = None,
        keep_cuts: int = 4,
    ) -> OracleResult:
        """``PERF(routing, D)`` via one slave LP per (loaded, finite) edge.

        Args:
            routing: the fixed configuration under evaluation.
            edges: restrict the sweep (default: all finite-capacity edges).
            keep_cuts: how many of the worst per-edge demand matrices to
                return for cutting-plane use.
        """
        # Objective-coefficient assembly rides the vectorized kernel when
        # enabled (see repro.kernel.coefficients); any change to how
        # coefficients are derived is a solver-semantics change — bump
        # CACHE_VERSION in repro.runner.spec.
        coefficients = routing.load_coefficients(list(self._demand_vars))
        candidates = edges if edges is not None else self.network.finite_capacity_edges()
        loaded = [
            (edge, coefficients[edge])
            for edge in candidates
            if coefficients.get(edge)
        ]
        results = self._sweep(loaded)
        per_edge: dict[Edge, float] = {}
        findings: list[tuple[float, Edge, DemandMatrix]] = []
        for (edge, _coeffs), (utilization, demand) in zip(loaded, results):
            per_edge[edge] = utilization
            if demand:
                findings.append((utilization, edge, demand))
        findings.sort(key=lambda item: item[0], reverse=True)
        cuts: list[DemandMatrix] = []
        for _u, _e, demand in findings[: max(keep_cuts, 1)]:
            if not any(demand.close_to(seen, tolerance=1e-9) for seen in cuts):
                cuts.append(demand)
        if not findings:
            return OracleResult(0.0, None, None, per_edge, [])
        best_ratio, best_edge, best_demand = findings[0]
        return OracleResult(best_ratio, best_edge, best_demand, per_edge, cuts)

    def _sweep(
        self, loaded: list[tuple[Edge, Mapping[Pair, float]]]
    ) -> list[tuple[float, DemandMatrix]]:
        """Solve the per-edge LPs, threading them when ``REPRO_LP_JOBS`` > 1.

        Each worker thread gets its own backend instance (instances are
        stateful); because per-edge solves are isolated, the result list
        is identical to the serial sweep regardless of partitioning —
        which is why the job count stays out of cell fingerprints.
        """
        jobs = lp_backend.lp_jobs()
        if jobs <= 1 or len(loaded) <= 1:
            return [
                self.worst_utilization_for_edge(edge, coeffs)
                for edge, coeffs in loaded
            ]
        import threading

        local = threading.local()

        def solve_one(item: tuple[Edge, Mapping[Pair, float]]):
            instance = getattr(local, "reusable", None)
            if instance is None:
                instance = self._compiled.reusable()
                local.reusable = instance
            return self.worst_utilization_for_edge(item[0], item[1], reusable=instance)

        with ThreadPoolExecutor(max_workers=min(jobs, len(loaded))) as pool:
            return list(pool.map(solve_one, loaded))

    def check_membership(self, demand: DemandMatrix) -> bool:
        """True when ``demand`` lies in the uncertainty cone (direction-wise)."""
        return self.uncertainty.contains_direction(demand)


def evaluate_on_matrices(
    network: Network,
    dags: Mapping[Node, Dag],
    routing: Routing,
    matrices: list[DemandMatrix],
) -> float:
    """Max over a finite list of ``MxLU(phi, D) / OPT_DAG(D)`` ratios.

    Used by the optimizers' inner loops where the adversarial set has
    already been discretized into concrete matrices.
    """
    from repro.lp.dag_flow import dag_optimal_congestion  # local: avoid cycle

    worst = 0.0
    for demand in matrices:
        if not demand:
            continue
        mlu = routing.max_link_utilization(demand, network)
        optimum = dag_optimal_congestion(network, dags, demand).alpha
        if optimum <= 0:
            raise SolverError("demand matrix with zero within-DAG optimum")
        worst = max(worst, mlu / optimum)
    return worst


def normalize_to_unit_optimum(
    network: Network,
    demand: DemandMatrix,
    dags: Mapping[Node, Dag] | None = None,
    solver: "object | None" = None,
) -> DemandMatrix:
    """Scale ``demand`` so its optimal congestion equals 1.

    After normalization, ``MxLU(phi, D)`` *is* the performance ratio of
    ``phi`` on ``D``, which lets the finite-set optimizers use raw loads
    as their objective.  ``dags=None`` normalizes against the
    unrestricted optimum, otherwise against the within-DAG optimum.

    ``solver`` may carry a :class:`~repro.lp.mcf.MinCongestionSolver`
    already bound to (network, dags): cutting-plane loops normalize one
    matrix per cut, and the shared solver re-solves a factorized LP
    instead of rebuilding it each round.
    """
    from repro.lp.mcf import min_congestion  # local: avoid cycle

    if solver is not None:
        optimum = solver.solve(demand).alpha
    else:
        optimum = min_congestion(network, demand, dags=dags).alpha
    if optimum <= 0:
        raise SolverError("cannot normalize a demand with zero optimal congestion")
    return demand.scaled(1.0 / optimum)
