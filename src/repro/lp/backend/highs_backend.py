"""The default backend: scipy's vendored HiGHS bindings, driven directly.

``scipy.optimize._highspy`` ships the raw HiGHS C++ bindings that
``linprog(method="highs")`` itself runs on.  Driving them directly
skips linprog's per-call wrapper work (bounds normalization, model
re-validation, result marshalling) and — the real win — lets one
:class:`HighsInstance` keep the factorized constraint matrix loaded
across the hundreds of objective/RHS swaps the worst-case oracle and
margin sweeps perform.

Semantics relative to the scipy backend:

* **Tolerances.** The engine runs at HiGHS defaults (primal/dual
  feasibility 1e-7), identical to what linprog uses; no options besides
  ``output_flag=False`` are set.
* **Status mapping.** ``kOptimal`` → ``optimal``, ``kInfeasible`` →
  ``infeasible``, ``kUnbounded`` → ``unbounded``; ``kUnboundedOrInfeasible``
  and every other model status → ``error`` — the same buckets scipy's
  ``linprog`` statuses 0/2/3/other collapse to, so the two backends are
  status-identical by construction.
* **Duals.** Raw HiGHS row duals, split at the ub/eq boundary of the
  stacked row order — exactly how scipy derives ``marginals``, with no
  sign adjustment.
* **Determinism.** In the default isolated mode each solve fully
  resets the engine (``clear()``) and re-passes the prepared model, so
  every solve *is* a cold solve by construction — bit-identical to this
  backend's one-shot path and independent of solve order, safe for
  golden tables and parallel sweeps.  (``clearSolver()`` is not
  enough: HiGHS retains internal state, e.g. its cost-perturbation
  stream, that steers degenerate vertex selection at the last ulp.)
  Because the engine and effective options exactly match linprog's,
  isolated solves are also bit-identical to the ``scipy`` backend on
  every family tested — pinned as a canary by the parity suite, with
  backend fingerprints kept as defense-in-depth.  With ``warm=True``
  the previous optimal basis is kept: same objectives within engine
  tolerance, but degenerate optima may pick different vertices
  depending on history (see ``docs/lp_backends.md``).
"""

from __future__ import annotations

import numpy as np

from repro.lp.backend import base

try:  # vendored bindings; private module, so probe defensively
    from scipy.optimize._highspy import _core as _highs_core
except ImportError:  # pragma: no cover - scipy always bundles it today
    _highs_core = None


def _build_model(program: base.LinearProgram) -> "_highs_core.HighsLp":
    matrix, row_lower, row_upper = program.stacked_csc
    lp = _highs_core.HighsLp()
    lp.num_col_ = program.num_vars
    lp.num_row_ = matrix.shape[0]
    lp.a_matrix_.num_col_ = program.num_vars
    lp.a_matrix_.num_row_ = matrix.shape[0]
    lp.col_cost_ = np.zeros(program.num_vars)
    lp.col_lower_ = np.asarray(program.col_lower, dtype=float)
    lp.col_upper_ = np.asarray(program.col_upper, dtype=float)
    lp.row_lower_ = row_lower
    lp.row_upper_ = row_upper
    lp.a_matrix_.format_ = _highs_core.MatrixFormat.kColwise
    lp.a_matrix_.start_ = matrix.indptr.astype(np.int64)
    lp.a_matrix_.index_ = matrix.indices.astype(np.int32)
    lp.a_matrix_.value_ = matrix.data.astype(np.float64)
    return lp


def _extract(
    highs: "_highs_core._Highs", program: base.LinearProgram
) -> base.BackendSolution:
    status = highs.getModelStatus()
    if status == _highs_core.HighsModelStatus.kOptimal:
        solution = highs.getSolution()
        row_dual = np.asarray(solution.row_dual, dtype=float)
        num_ub = program.num_ub
        return base.BackendSolution(
            status=base.OPTIMAL,
            message="Optimization terminated successfully.",
            objective=float(highs.getInfo().objective_function_value),
            x=np.asarray(solution.col_value, dtype=float),
            ineq_duals=row_dual[:num_ub],
            eq_duals=row_dual[num_ub:],
        )
    if status == _highs_core.HighsModelStatus.kInfeasible:
        mapped = base.INFEASIBLE
    elif status == _highs_core.HighsModelStatus.kUnbounded:
        mapped = base.UNBOUNDED
    else:
        mapped = base.ERROR
    return base.BackendSolution(
        status=mapped,
        message=f"HiGHS model status: {status.name}",
        objective=float("nan"),
        x=np.empty(0),
        ineq_duals=np.empty(0),
        eq_duals=np.empty(0),
    )


class HighsInstance(base.BackendInstance):
    """A prepared HiGHS model: swap costs/RHS, re-solve.

    The instance owns one ``_Highs`` object plus the prebuilt
    ``HighsLp`` (the expensive part: CSC conversion, bounds assembly —
    done once).  In isolated mode (default) each solve bakes the
    current cost/RHS into the prepared model, fully resets the engine
    (``clear()``), and re-passes it — so every solve *is* a cold solve
    by construction, not by best-effort state reset.  (``clearSolver()``
    alone is not enough: HiGHS retains internal state — e.g. its cost
    perturbation stream — that can steer degenerate vertex selection at
    the last ulp, making results depend on solve order.)  In warm mode
    the model stays loaded, only changed columns/rows are updated
    (sparse set-interface), and the previous optimal basis seeds the
    dual simplex; any non-optimal termination invalidates it.
    """

    def __init__(self, program: base.LinearProgram, warm: bool):
        self._program = program
        self._warm = warm
        self._highs = _highs_core._Highs()
        self._model = _build_model(program)
        # Private row-bound copies: b_eq swaps mutate these, never the
        # arrays cached on the (shared, frozen) program.
        _, row_lower, row_upper = program.stacked_csc
        self._row_lower = row_lower.copy()
        self._row_upper = row_upper.copy()
        self._cost = np.zeros(program.num_vars)
        self._b_eq = (
            np.asarray(program.b_eq, dtype=float).copy()
            if program.b_eq is not None
            else None
        )
        self._have_basis = False
        if warm:
            self._apply_options()
            self._highs.passModel(self._model)

    def _apply_options(self) -> None:
        self._highs.setOptionValue("output_flag", False)
        # Match linprog's effective option set (it forces presolve "on"
        # where the engine default is "choose").
        self._highs.setOptionValue("presolve", "on")

    def _bake_b_eq(self, b_eq: np.ndarray | None) -> None:
        if b_eq is None:
            return
        if self._b_eq is None:
            raise ValueError("program has no equality rows to update")
        new_rhs = np.asarray(b_eq, dtype=float)
        if np.array_equal(new_rhs, self._b_eq):
            return
        offset = self._program.num_ub
        self._row_lower[offset:] = new_rhs
        self._row_upper[offset:] = new_rhs
        self._model.row_lower_ = self._row_lower
        self._model.row_upper_ = self._row_upper
        self._b_eq = new_rhs.copy()

    def _solve_isolated(self, cost: np.ndarray, b_eq) -> base.BackendSolution:
        self._model.col_cost_ = cost
        self._bake_b_eq(b_eq)
        self._highs.clear()
        self._apply_options()
        self._highs.passModel(self._model)
        self._highs.run()
        return _extract(self._highs, self._program)

    def _solve_warm(self, cost: np.ndarray, b_eq) -> base.BackendSolution:
        changed = np.nonzero(cost != self._cost)[0]
        if changed.size:
            self._highs.changeColsCost(
                int(changed.size), changed.astype(np.int32), cost[changed]
            )
            self._cost = cost.copy()
        if b_eq is not None:
            if self._b_eq is None:
                raise ValueError("program has no equality rows to update")
            new_rhs = np.asarray(b_eq, dtype=float)
            offset = self._program.num_ub
            for row in np.nonzero(new_rhs != self._b_eq)[0]:
                value = float(new_rhs[row])
                self._highs.changeRowBounds(int(offset + row), value, value)
            self._b_eq = new_rhs.copy()
        if not self._have_basis:
            self._highs.clearSolver()
        self._highs.run()
        result = _extract(self._highs, self._program)
        self._have_basis = result.status == base.OPTIMAL
        return result

    def solve(self, objective, b_eq=None) -> base.BackendSolution:
        cost = base.dense_objective(self._program.num_vars, objective)
        if self._warm:
            return self._solve_warm(cost, b_eq)
        return self._solve_isolated(cost, b_eq)

    def invalidate_basis(self) -> None:
        self._have_basis = False


class HighsBackend(base.SolverBackend):
    """Direct vendored-HiGHS backend (the default, ``highs``)."""

    name = "highs"

    def available(self) -> bool:
        return _highs_core is not None

    def solve(self, program: base.LinearProgram, objective: np.ndarray) -> base.BackendSolution:
        return HighsInstance(program, warm=False).solve(objective)

    def instance(self, program: base.LinearProgram, warm: bool = False) -> HighsInstance:
        return HighsInstance(program, warm=warm)
