"""The scipy backend: one ``linprog(method="highs")`` call per solve.

This is the reference engine — byte-for-byte the call the modeling
layer made before backends existed, kept as the semantics oracle for
the parity suite.  Solves run at scipy's HiGHS defaults (primal/dual
feasibility 1e-7); no tolerance options are forwarded.  Statuses map
``linprog.status`` 0 → :data:`~repro.lp.backend.base.OPTIMAL`, 2 →
:data:`~repro.lp.backend.base.INFEASIBLE`, 3 →
:data:`~repro.lp.backend.base.UNBOUNDED`, anything else →
:data:`~repro.lp.backend.base.ERROR`.  Duals come straight from
``result.ineqlin.marginals`` / ``result.eqlin.marginals``.

The backend has no incremental interface, so its instances inherit the
cold-per-solve fallback; it exists for differential testing and as an
escape hatch (``REPRO_LP_BACKEND=scipy``), not for speed.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.lp.backend import base


class ScipyBackend(base.SolverBackend):
    """``scipy.optimize.linprog`` with the HiGHS method."""

    name = "scipy"

    def available(self) -> bool:
        return True

    def solve(self, program: base.LinearProgram, objective: np.ndarray) -> base.BackendSolution:
        result = linprog(
            objective,
            A_ub=program.a_ub,
            b_ub=program.b_ub,
            A_eq=program.a_eq,
            b_eq=program.b_eq,
            bounds=program.scipy_bounds,
            method="highs",
        )
        status = {
            0: base.OPTIMAL,
            2: base.INFEASIBLE,
            3: base.UNBOUNDED,
        }.get(result.status, base.ERROR)
        if status != base.OPTIMAL:
            return base.BackendSolution(
                status=status,
                message=str(result.message),
                objective=float("nan"),
                x=np.empty(0),
                ineq_duals=np.empty(0),
                eq_duals=np.empty(0),
            )
        ineq = (
            np.asarray(result.ineqlin.marginals, dtype=float)
            if program.a_ub is not None
            else np.empty(0)
        )
        eq = (
            np.asarray(result.eqlin.marginals, dtype=float)
            if program.a_eq is not None
            else np.empty(0)
        )
        return base.BackendSolution(
            status=base.OPTIMAL,
            message=str(result.message),
            objective=float(result.fun),
            x=np.asarray(result.x, dtype=float),
            ineq_duals=ineq,
            eq_duals=eq,
        )
