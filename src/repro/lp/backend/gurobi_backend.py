"""Optional Gurobi backend, behind a soft import and a license probe.

``gurobipy`` is never a hard dependency: importing this module never
raises, :meth:`GurobiBackend.available` answers ``False`` when either
the package or a usable license is absent, and the registry only
exposes the backend when the probe succeeds.  The environment is the
quiet-startup idiom — an empty :class:`gurobipy.Env` with ``OutputFlag``
and ``LogToConsole`` zeroed *before* ``start()`` — shared by every model
the backend builds.

Status mapping (the gurobi↔scipy correspondence the parity suite pins):

========================  ==========================================
Gurobi ``Status``         normalized status
========================  ==========================================
``OPTIMAL`` (2)           ``optimal``   (scipy/linprog status 0)
``INFEASIBLE`` (3)        ``infeasible`` (linprog status 2)
``UNBOUNDED`` (5)         ``unbounded``  (linprog status 3)
``INF_OR_UNBD`` (4)       re-solved with ``DualReductions=0`` to
                          disambiguate; still ambiguous → ``error``
anything else             ``error``     (linprog status 1/4)
========================  ==========================================

Tolerances: Gurobi's defaults (``FeasibilityTol`` / ``OptimalityTol``
1e-6, tightened nowhere) differ from HiGHS' 1e-7 defaults, so
cross-backend objective agreement is asserted at 1e-7 relative only in
the parity suite — do not expect solution *vectors* to match across
engines at degenerate optima.  Duals come from constraint ``Pi``
attributes, which already follow the minimized-marginal sign convention
the backend contract requires.
"""

from __future__ import annotations

import numpy as np

from repro.lp.backend import base

try:  # soft dependency: absence just disables the backend
    import gurobipy as _gp
except ImportError:  # pragma: no cover - exercised on the optional CI leg
    _gp = None

_env = None
_env_failed = False


def _environment():
    """The shared quiet Env, or ``None`` when gurobi can't start one."""
    global _env, _env_failed
    if _gp is None or _env_failed:
        return None
    if _env is None:
        try:
            env = _gp.Env(empty=True)
            env.setParam("OutputFlag", 0)
            env.setParam("LogToConsole", 0)
            env.start()
            _env = env
        except _gp.GurobiError:  # no license / expired license
            _env_failed = True
            return None
    return _env


class GurobiInstance(base.BackendInstance):
    """A persistent gurobi model with swappable objective and equality RHS."""

    def __init__(self, program: base.LinearProgram, warm: bool):
        self._program = program
        self._warm = warm
        env = _environment()
        if env is None:
            raise base.BackendUnavailable("gurobi backend is not available")
        self._model = _gp.Model(env=env)
        self._x = self._model.addMVar(
            program.num_vars,
            lb=np.asarray(program.col_lower, dtype=float),
            ub=np.asarray(program.col_upper, dtype=float),
        )
        self._ub_rows = (
            self._model.addMConstr(
                program.a_ub, self._x, _gp.GRB.LESS_EQUAL,
                np.asarray(program.b_ub, dtype=float),
            )
            if program.a_ub is not None
            else None
        )
        self._eq_rows = (
            self._model.addMConstr(
                program.a_eq, self._x, _gp.GRB.EQUAL,
                np.asarray(program.b_eq, dtype=float),
            )
            if program.a_eq is not None
            else None
        )
        self._model.update()

    def solve(self, objective, b_eq=None) -> base.BackendSolution:
        cost = base.dense_objective(self._program.num_vars, objective)
        self._model.setObjective(cost @ self._x, _gp.GRB.MINIMIZE)
        if b_eq is not None:
            if self._eq_rows is None:
                raise ValueError("program has no equality rows to update")
            self._eq_rows.setAttr("RHS", np.asarray(b_eq, dtype=float))
        if not self._warm:
            self._model.reset()
        self._model.optimize()
        status = self._model.Status
        if status == _gp.GRB.INF_OR_UNBD:
            # Presolve's dual reductions blur the two; re-solve without
            # them, exactly once, to get a definite verdict.
            self._model.setParam("DualReductions", 0)
            self._model.reset()
            self._model.optimize()
            status = self._model.Status
            self._model.setParam("DualReductions", 1)
        if status == _gp.GRB.OPTIMAL:
            return base.BackendSolution(
                status=base.OPTIMAL,
                message="Optimization terminated successfully.",
                objective=float(self._model.ObjVal),
                x=np.asarray(self._x.X, dtype=float),
                ineq_duals=(
                    np.asarray(self._ub_rows.getAttr("Pi"), dtype=float)
                    if self._ub_rows is not None
                    else np.empty(0)
                ),
                eq_duals=(
                    np.asarray(self._eq_rows.getAttr("Pi"), dtype=float)
                    if self._eq_rows is not None
                    else np.empty(0)
                ),
            )
        mapped = {
            _gp.GRB.INFEASIBLE: base.INFEASIBLE,
            _gp.GRB.UNBOUNDED: base.UNBOUNDED,
        }.get(status, base.ERROR)
        return base.BackendSolution(
            status=mapped,
            message=f"Gurobi status code: {status}",
            objective=float("nan"),
            x=np.empty(0),
            ineq_duals=np.empty(0),
            eq_duals=np.empty(0),
        )

    def invalidate_basis(self) -> None:
        self._model.reset()


class GurobiBackend(base.SolverBackend):
    """Optional ``gurobi`` backend (requires gurobipy and a license)."""

    name = "gurobi"

    def available(self) -> bool:
        return _environment() is not None

    def solve(self, program: base.LinearProgram, objective: np.ndarray) -> base.BackendSolution:
        return GurobiInstance(program, warm=False).solve(objective)

    def instance(self, program: base.LinearProgram, warm: bool = False) -> GurobiInstance:
        return GurobiInstance(program, warm=warm)
