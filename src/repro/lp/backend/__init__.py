"""Solver-backend registry: named LP engines behind one interface.

Backends register under a name; :func:`get_backend` resolves the active
one from the ``REPRO_LP_BACKEND`` environment variable (default
``highs``, the direct vendored-HiGHS engine).  Because different
engines can legitimately return different optimal *vertices* for
degenerate LPs, the active backend name participates in sweep-cell
fingerprints (see :meth:`repro.runner.spec.SweepCell.fingerprint`), so
cached results never cross a backend boundary.

Selection knobs:

* ``REPRO_LP_BACKEND`` — ``highs`` (default), ``scipy``, ``gurobi``, or
  any third-party name registered via :func:`register_backend`.
* ``REPRO_LP_WARM`` — ``1`` opts reusable instances into warm-basis
  chaining (faster, but solution vectors become solve-order dependent
  at degenerate optima); also fingerprinted.
* ``REPRO_LP_JOBS`` — thread count for embarrassingly parallel LP
  sweeps (the worst-case oracle's per-edge solves); **not**
  fingerprinted, because isolated solves make results independent of
  how work is partitioned.

Registering a third-party backend::

    from repro.lp.backend import register_backend
    from repro.lp.backend.base import SolverBackend

    class MyBackend(SolverBackend):
        name = "mine"
        ...

    register_backend(MyBackend())
    # then: REPRO_LP_BACKEND=mine repro run fig9

See ``docs/lp_backends.md`` for the full contract (statuses, duals,
tolerances, warm-start and basis-invalidation semantics).
"""

from __future__ import annotations

import os

from repro.lp.backend.base import (  # noqa: F401  (re-exported interface)
    ERROR,
    INFEASIBLE,
    OPTIMAL,
    UNBOUNDED,
    BackendInstance,
    BackendSolution,
    BackendUnavailable,
    LinearProgram,
    SolverBackend,
)

#: Environment variable naming the active backend.
BACKEND_ENV = "REPRO_LP_BACKEND"
#: Environment variable opting reusable instances into warm-basis chaining.
WARM_ENV = "REPRO_LP_WARM"
#: Environment variable setting the LP sweep thread count.
JOBS_ENV = "REPRO_LP_JOBS"

DEFAULT_BACKEND = "highs"

_BACKENDS: dict[str, SolverBackend] = {}


def register_backend(backend: SolverBackend) -> SolverBackend:
    """Register ``backend`` under its ``name`` (later registrations win)."""
    _BACKENDS[backend.name] = backend
    return backend


def _ensure_builtin_backends() -> None:
    if _BACKENDS:
        return
    from repro.lp.backend.gurobi_backend import GurobiBackend
    from repro.lp.backend.highs_backend import HighsBackend
    from repro.lp.backend.scipy_backend import ScipyBackend

    register_backend(HighsBackend())
    register_backend(ScipyBackend())
    register_backend(GurobiBackend())


def backend_names() -> tuple[str, ...]:
    """All registered backend names, available ones first, then sorted."""
    _ensure_builtin_backends()
    return tuple(
        sorted(_BACKENDS, key=lambda name: (not _BACKENDS[name].available(), name))
    )


def available_backends() -> tuple[str, ...]:
    """The registered backends whose availability probe passes, sorted."""
    _ensure_builtin_backends()
    return tuple(
        sorted(name for name, backend in _BACKENDS.items() if backend.available())
    )


def active_backend_name() -> str:
    """The backend name the environment selects (not validated)."""
    return os.environ.get(BACKEND_ENV, DEFAULT_BACKEND).strip() or DEFAULT_BACKEND


def warm_starts_enabled() -> bool:
    """Whether ``REPRO_LP_WARM`` opts reusable instances into warm bases."""
    return os.environ.get(WARM_ENV, "").strip().lower() in {"1", "true", "yes", "on"}


def lp_jobs() -> int:
    """The LP sweep thread count (``REPRO_LP_JOBS``, default 1)."""
    raw = os.environ.get(JOBS_ENV, "").strip()
    try:
        return max(1, int(raw)) if raw else 1
    except ValueError:
        return 1


def get_backend(name: str | None = None) -> SolverBackend:
    """Resolve a backend by name (default: the environment's choice).

    Raises:
        BackendUnavailable: unknown name, or the backend's availability
            probe fails (missing package, no license).
    """
    _ensure_builtin_backends()
    resolved = (name or active_backend_name()).strip()
    backend = _BACKENDS.get(resolved)
    if backend is None:
        raise BackendUnavailable(
            f"unknown LP backend {resolved!r}; registered: "
            f"{', '.join(sorted(_BACKENDS))}"
        )
    if not backend.available():
        raise BackendUnavailable(
            f"LP backend {resolved!r} is registered but not available here "
            f"(missing package or license); available: "
            f"{', '.join(available_backends())}"
        )
    return backend
