"""The solver-backend interface: one LP form, many engines.

Every backend consumes the same immutable :class:`LinearProgram` — the
sparse standard form :mod:`repro.lp.model` compiles to — and produces a
:class:`BackendSolution` with a *normalized* status string, so the
modeling layer can raise the library's exceptions without knowing which
engine solved the problem.  The contract every backend must honor:

* **Sense.** ``solve`` always *minimizes* ``objective @ x``; callers
  that maximize negate the vector and the returned objective themselves
  (the modeling layer does this), so dual signs are uniform across
  backends.
* **Statuses.** Exactly one of :data:`OPTIMAL`, :data:`INFEASIBLE`,
  :data:`UNBOUNDED`, or :data:`ERROR`.  A backend that cannot
  distinguish infeasible from unbounded must either disambiguate (e.g.
  re-solve without presolve/dual reductions) or report :data:`ERROR` —
  never guess.
* **Duals.** ``ineq_duals`` / ``eq_duals`` follow scipy's ``linprog``
  marginal convention: partial derivatives of the *minimized* objective
  with respect to the constraint right-hand sides (non-positive for
  binding ``<=`` rows of a minimization).  Backends whose native duals
  use the opposite sign (none of the bundled ones do) must flip before
  returning.
* **Numerical tolerances.** Backends run at their engine's default
  feasibility/optimality tolerances (HiGHS and Gurobi both default to
  1e-7); the cross-backend parity suite asserts objective agreement
  within 1e-7 on the repository's LP families, and callers must not
  expect agreement tighter than that between *different* engines.
* **Instances and warm starts.** :meth:`SolverBackend.instance` returns
  a stateful :class:`BackendInstance` bound to one constraint matrix.
  In the default *isolated* mode every ``solve`` must return exactly
  what a fresh one-shot solve would (bit-identical for the same engine)
  — any internal basis is discarded per call.  With ``warm=True`` the
  instance may chain the previous solve's basis: objectives still match
  a cold solve within the engine tolerance, but *solution vectors may
  differ at degenerate optima* and depend on the solve sequence.  An
  instance must invalidate its cached basis whenever a solve does not
  end :data:`OPTIMAL` and when :meth:`BackendInstance.invalidate_basis`
  is called; the constraint matrix of an instance never changes (only
  objectives and equality right-hand sides may be swapped).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from functools import cached_property
from typing import Mapping

import numpy as np
from scipy import sparse

#: Normalized solve statuses shared by every backend.
OPTIMAL = "optimal"
INFEASIBLE = "infeasible"
UNBOUNDED = "unbounded"
ERROR = "error"


class BackendUnavailable(RuntimeError):
    """Raised when a backend is selected but cannot run here.

    Distinct from a solve failure: the engine itself is missing (import
    failed, no license), so no :class:`BackendSolution` exists to carry
    an :data:`ERROR` status.
    """


@dataclass(frozen=True)
class LinearProgram:
    """An immutable sparse LP in scipy standard form.

    ``A_ub @ x <= b_ub``, ``A_eq @ x == b_eq``, ``col_lower <= x <=
    col_upper``; the objective vector is supplied per solve.  Matrices
    are CSR with canonical (duplicate-free, sorted) indices so backends
    can hand the arrays to their engines without re-validation.

    Attributes:
        num_vars: number of columns.
        a_ub: ``<=`` constraint matrix, or ``None`` when there are none.
        b_ub: right-hand sides of the ``<=`` rows.
        a_eq: ``==`` constraint matrix, or ``None``.
        b_eq: right-hand sides of the ``==`` rows.
        col_lower: per-variable lower bounds (finite; default 0).
        col_upper: per-variable upper bounds (``inf`` when free above).
    """

    num_vars: int
    a_ub: sparse.csr_matrix | None
    b_ub: np.ndarray | None
    a_eq: sparse.csr_matrix | None
    b_eq: np.ndarray | None
    col_lower: np.ndarray
    col_upper: np.ndarray

    @property
    def num_ub(self) -> int:
        return 0 if self.a_ub is None else self.a_ub.shape[0]

    @property
    def num_eq(self) -> int:
        return 0 if self.a_eq is None else self.a_eq.shape[0]

    @cached_property
    def scipy_bounds(self) -> list[tuple[float, float | None]]:
        """The ``bounds`` list ``scipy.optimize.linprog`` expects (cached)."""
        return [
            (float(lo), None if np.isinf(hi) else float(hi))
            for lo, hi in zip(self.col_lower, self.col_upper)
        ]

    @cached_property
    def stacked_csc(self) -> tuple[sparse.csc_matrix, np.ndarray, np.ndarray]:
        """``(A, row_lower, row_upper)`` with ub rows stacked above eq rows.

        The row order (inequalities first) is the contract for splitting
        row duals back into ``ineq_duals`` / ``eq_duals`` and matches
        scipy's internal stacking, so marginals agree across backends.
        """
        blocks = []
        lower: list[np.ndarray] = []
        upper: list[np.ndarray] = []
        if self.a_ub is not None:
            blocks.append(self.a_ub)
            lower.append(np.full(self.num_ub, -np.inf))
            upper.append(np.asarray(self.b_ub, dtype=float))
        if self.a_eq is not None:
            blocks.append(self.a_eq)
            lower.append(np.asarray(self.b_eq, dtype=float))
            upper.append(np.asarray(self.b_eq, dtype=float))
        if not blocks:
            empty = sparse.csc_matrix((0, self.num_vars))
            return empty, np.empty(0), np.empty(0)
        return (
            sparse.vstack(blocks).tocsc(),
            np.concatenate(lower),
            np.concatenate(upper),
        )


@dataclass
class BackendSolution:
    """One backend solve, in the minimized sense (see module docstring).

    Attributes:
        status: one of :data:`OPTIMAL` / :data:`INFEASIBLE` /
            :data:`UNBOUNDED` / :data:`ERROR`.
        message: engine diagnostic for non-optimal statuses.
        objective: minimized objective value (valid only when optimal).
        x: primal solution (valid only when optimal).
        ineq_duals: marginals of the ``<=`` rows, scipy convention.
        eq_duals: marginals of the ``==`` rows, scipy convention.
    """

    status: str
    message: str
    objective: float
    x: np.ndarray
    ineq_duals: np.ndarray
    eq_duals: np.ndarray


def dense_objective(
    num_vars: int, objective: "np.ndarray | Mapping[int, float]"
) -> np.ndarray:
    """Normalize a dense vector or sparse ``{column: coef}`` objective."""
    if isinstance(objective, Mapping):
        vec = np.zeros(num_vars)
        for index, coef in objective.items():
            vec[index] = coef
        return vec
    return np.asarray(objective, dtype=float)


class BackendInstance(abc.ABC):
    """A stateful handle on one LP: fixed matrix, swappable objective/RHS.

    Obtained from :meth:`SolverBackend.instance`; see the module
    docstring for the isolated/warm contract.
    """

    @abc.abstractmethod
    def solve(
        self,
        objective: "np.ndarray | Mapping[int, float]",
        b_eq: np.ndarray | None = None,
    ) -> BackendSolution:
        """Minimize ``objective`` (optionally with fresh equality RHS).

        Args:
            objective: dense vector or sparse ``{column: coefficient}``
                mapping (absent columns are zero).
            b_eq: replacement equality right-hand sides; ``None`` keeps
                the current ones.
        """

    @abc.abstractmethod
    def invalidate_basis(self) -> None:
        """Drop any cached basis; the next solve starts cold."""


class SolverBackend(abc.ABC):
    """One LP engine: a name, an availability probe, and solve paths."""

    #: Registry identifier (the ``REPRO_LP_BACKEND`` value selecting it).
    name: str = "abstract"

    @abc.abstractmethod
    def available(self) -> bool:
        """Whether the engine can solve on this machine (imports, license)."""

    @abc.abstractmethod
    def solve(
        self, program: LinearProgram, objective: np.ndarray
    ) -> BackendSolution:
        """One-shot cold solve (minimize)."""

    def instance(self, program: LinearProgram, warm: bool = False) -> BackendInstance:
        """A reusable handle on ``program`` (default: cold per solve).

        Backends without an incremental engine interface inherit this
        wrapper, which re-enters :meth:`solve` each call — correct, just
        not faster.
        """
        return _OneShotInstance(self, program)


class _OneShotInstance(BackendInstance):
    """Fallback instance: each solve is an independent cold solve."""

    def __init__(self, backend: SolverBackend, program: LinearProgram):
        self._backend = backend
        self._program = program
        self._b_eq = program.b_eq

    def solve(self, objective, b_eq=None):
        if b_eq is not None:
            self._b_eq = np.asarray(b_eq, dtype=float)
        program = self._program
        if self._b_eq is not program.b_eq:
            from dataclasses import replace

            program = replace(program, b_eq=self._b_eq)
        return self._backend.solve(
            program, dense_objective(program.num_vars, objective)
        )

    def invalidate_basis(self) -> None:  # cold every call already
        return None
