"""Demands-aware optimal routing *within* per-destination DAGs.

Solving ``OPTU`` restricted to given DAGs yields both the normalizer of
the paper's evaluation metric and the "Base" scheme of Table I (the
optimal routing for the base demand matrix, later exposed to demand
uncertainty).  Because DAG edges are acyclic per destination, the optimal
flow *induces* splitting ratios directly: each node forwards proportional
to its optimal out-flows.
"""

from __future__ import annotations

from typing import Mapping

from repro.demands.matrix import DemandMatrix
from repro.graph.dag import Dag
from repro.graph.network import Edge, Network, Node
from repro.lp.mcf import MinCongestionResult, min_congestion
from repro.routing.splitting import Routing

#: Out-flows below this volume are treated as zero when deriving ratios.
_FLOW_EPSILON = 1e-10


def dag_optimal_congestion(
    network: Network,
    dags: Mapping[Node, Dag],
    demand: DemandMatrix,
) -> MinCongestionResult:
    """``OPT_DAG(D)``: best congestion achievable inside the given DAGs."""
    return min_congestion(network, demand, dags=dags)


def induced_splitting_ratios(
    dags: Mapping[Node, Dag],
    result: MinCongestionResult,
) -> dict[Node, dict[Edge, float]]:
    """Convert optimal DAG flows into per-node splitting ratios.

    Nodes that carry no flow for a destination get a uniform split over
    their DAG out-edges: the choice is irrelevant for the optimized
    demand but keeps the configuration total (every node can forward),
    which matters when the routing is later evaluated on *other* demand
    matrices (the Base scheme under uncertainty).
    """
    ratios: dict[Node, dict[Edge, float]] = {}
    for t, dag in dags.items():
        flows = result.flows.get(t, {})
        per_dest: dict[Edge, float] = {}
        for node in dag.nodes():
            if node == t:
                continue
            heads = dag.out_neighbors(node)
            if not heads:
                continue
            out_flows = [max(flows.get((node, head), 0.0), 0.0) for head in heads]
            total = sum(out_flows)
            if total > _FLOW_EPSILON:
                for head, volume in zip(heads, out_flows):
                    per_dest[(node, head)] = volume / total
            else:
                share = 1.0 / len(heads)
                for head in heads:
                    per_dest[(node, head)] = share
        ratios[t] = per_dest
    return ratios


def optimal_dag_routing(
    network: Network,
    dags: Mapping[Node, Dag],
    demand: DemandMatrix,
    name: str = "Base",
) -> Routing:
    """The "Base" scheme: optimal within-DAG routing for one demand matrix."""
    result = dag_optimal_congestion(network, dags, demand)
    ratios = induced_splitting_ratios(dags, result)
    return Routing(dags, ratios, name=name)
