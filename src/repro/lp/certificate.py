"""Theorem 5: dual certificates for the oblivious performance ratio.

Theorem 5 states that a routing ``phi`` has oblivious ratio at most ``r``
if there exist nonnegative edge weights ``pi_e(h)`` (one family per
network edge ``e``) such that

  R1:  sum_h pi_e(h) * c_h <= r                       for every edge e;
  R2:  f_st(u) * phi_t(u, v) <= c_e * dist_{pi_e}(s, t)  for all pairs,

where ``dist_{pi_e}`` is the shortest-path distance inside the
destination DAG under weights ``pi_e``.  For a *fixed* routing, finding
the best certificate is an LP per edge (variables ``pi_e(h)`` and
shortest-path potentials ``p_e(s, t)``); by LP duality its value equals
the slave LP's optimum, which gives us an independent cross-check of the
whole adversarial evaluation stack (exercised in the test suite).

This implementation covers the fully oblivious case (demands constrained
only by routability), matching the theorem's statement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import SolverError
from repro.graph.dag import Dag
from repro.graph.network import Edge, Network, Node
from repro.lp.model import LinExpr, Model
from repro.routing.splitting import Routing


@dataclass
class Certificate:
    """A Theorem-5 certificate for one edge.

    Attributes:
        edge: the edge ``e`` being certified.
        ratio: the certified bound ``sum_h pi(h) * c_h``.
        weights: the ``pi_e(h)`` weights over finite-capacity edges.
    """

    edge: Edge
    ratio: float
    weights: dict[Edge, float]


def _default_pairs(dags: Mapping[Node, Dag]) -> list[tuple[Node, Node]]:
    """All (source, destination) pairs the DAGs can carry."""
    return [(s, t) for t, dag in dags.items() for s in dag.nodes() if s != t]


def best_certificate_for_edge(
    network: Network,
    dags: Mapping[Node, Dag],
    routing: Routing,
    edge: Edge,
    pairs: list[tuple[Node, Node]] | None = None,
) -> Certificate:
    """Solve the per-edge certificate LP (minimize R1's left-hand side).

    Variables:
        pi[h] >= 0 for finite-capacity edges ``h`` (infinite-capacity
            edges are forced to zero weight — any positive weight would
            make R1 infinite);
        p[(s, t)] >= 0 — shortest-path potentials per demand pair,
            constrained by the triangle inequalities over DAG edges.

    Args:
        pairs: the demand support being certified against (defaults to
            every pair the DAGs can carry — the fully oblivious case).
    """
    capacity_e = network.capacity(*edge)
    if not math.isfinite(capacity_e):
        raise SolverError(f"cannot certify infinite-capacity edge {edge!r}")
    model = Model(f"certificate[{edge}]")
    finite_edges = network.finite_capacity_edges()
    pi = {h: model.add_var(f"pi[{h}]") for h in finite_edges}

    # Load coefficients f_st(u) * phi_t(e) of the fixed routing on `edge`.
    if pairs is None:
        pairs = _default_pairs(dags)
    coefficients = routing.load_coefficients(pairs).get(edge, {})

    # Potentials exist per destination: p[(v, t)] approximates the
    # pi-shortest distance from v to t within the DAG of t.
    potentials: dict[tuple[Node, Node], object] = {}
    for t, dag in dags.items():
        for v in dag.nodes():
            if v != t:
                potentials[(v, t)] = model.add_var(f"p[{v},{t}]")
        # Triangle inequalities: pi(a) + p(k, t) - p(j, t) >= 0 for DAG
        # edges a = (j, k); p(t, t) is identically zero.
        for (j, k) in dag.edges():
            expr = LinExpr()
            if (j, k) in pi:
                expr.add_term(pi[(j, k)], 1.0)
            if k != t:
                expr.add_term(potentials[(k, t)], 1.0)
            expr.add_term(potentials[(j, t)], -1.0)
            model.add_ge(expr, 0.0)

    # R2: the fraction of (s, t) demand crossing `edge` is at most
    # c_e * p(s, t).
    for (s, t), coefficient in coefficients.items():
        model.add_ge(capacity_e * potentials[(s, t)], coefficient)

    objective = LinExpr()
    for h, var in pi.items():
        objective.add_term(var, network.capacity(*h))
    model.minimize(objective)
    solution = model.solve()
    weights = {h: solution.value(var) for h, var in pi.items() if solution.value(var) > 1e-12}
    return Certificate(edge=edge, ratio=float(solution.objective), weights=weights)


def certified_oblivious_ratio(
    network: Network,
    dags: Mapping[Node, Dag],
    routing: Routing,
    pairs: list[tuple[Node, Node]] | None = None,
) -> float:
    """Best certified oblivious ratio: max over edges of the per-edge LP.

    Edges that carry no flow under the routing are skipped (their
    certificate is trivially zero).  ``pairs`` restricts the certified
    demand support (default: all pairs, the fully oblivious statement of
    Theorem 5).
    """
    if pairs is None:
        pairs = _default_pairs(dags)
    loaded_edges = set(routing.load_coefficients(pairs))
    worst = 0.0
    for edge in network.finite_capacity_edges():
        if edge not in loaded_edges:
            continue
        worst = max(
            worst,
            best_certificate_for_edge(network, dags, routing, edge, pairs).ratio,
        )
    return worst
