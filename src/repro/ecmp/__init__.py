"""Traditional TE with ECMP: link weights and equal-split shortest-path routing."""

from repro.ecmp.weights import (
    inverse_capacity_weights,
    unit_weights,
    integer_scaled_weights,
)
from repro.ecmp.routing import ecmp_routing, ecmp_dags

__all__ = [
    "inverse_capacity_weights",
    "unit_weights",
    "integer_scaled_weights",
    "ecmp_routing",
    "ecmp_dags",
]
