"""Traditional TE with ECMP (Section II).

ECMP splits traffic *equally* among the next hops on shortest paths to
the destination.  The splitting ratios are therefore fully determined by
the link weights: build the shortest-path DAG per destination and give
every out-edge of a node the same fraction.
"""

from __future__ import annotations

from typing import Mapping

from repro.graph.dag import Dag
from repro.graph.network import Edge, Network, Node
from repro.graph.paths import shortest_path_dag
from repro.kernel import kernel_enabled
from repro.routing.splitting import Routing, uniform_ratios


def ecmp_dags(
    network: Network,
    weights: Mapping[Edge, float],
    destinations: list[Node] | None = None,
) -> dict[Node, Dag]:
    """Shortest-path DAG per destination for the given weights.

    Kernel swap-in: one batched all-destination SPF replaces the
    per-destination Dijkstras (identical DAG edge sets; see the
    differential suite).  If the extraction semantics here ever change,
    bump ``CACHE_VERSION`` in :mod:`repro.runner.spec`.
    """
    if kernel_enabled():
        from repro.kernel.spf import shortest_path_dags

        return shortest_path_dags(network, weights, destinations)
    targets = destinations if destinations is not None else network.nodes()
    return {t: shortest_path_dag(network, weights, t) for t in targets}


def ecmp_routing(
    network: Network,
    weights: Mapping[Edge, float],
    destinations: list[Node] | None = None,
    name: str = "ECMP",
) -> Routing:
    """The full ECMP routing configuration (DAGs + equal splitting)."""
    dags = ecmp_dags(network, weights, destinations)
    ratios = {t: uniform_ratios(dag) for t, dag in dags.items()}
    return Routing(dags, ratios, name=name)
