"""OSPF link-weight heuristics.

The paper's default is *reverse capacities* — "link weights are set to be
the inverse of link capacities", which matches Cisco's recommended default
OSPF cost (reference bandwidth divided by link bandwidth) [16].
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.exceptions import GraphError
from repro.graph.network import Edge, Network

#: Cisco's default OSPF auto-cost reference bandwidth is 100 Mbps; we keep
#: the same role for normalization: weight = reference / capacity.
DEFAULT_REFERENCE = 100.0


def inverse_capacity_weights(
    network: Network, reference: float = DEFAULT_REFERENCE
) -> dict[Edge, float]:
    """``w(e) = reference / c(e)``, the Cisco-recommended default.

    Infinite-capacity edges get the smallest positive weight among real
    links divided by 2 so they are always preferred, which mirrors their
    role in the paper's examples ("arbitrarily high capacity").
    """
    if reference <= 0:
        raise GraphError(f"reference bandwidth must be > 0, got {reference}")
    finite = [
        reference / network.capacity(*edge) for edge in network.finite_capacity_edges()
    ]
    infinite_weight = (min(finite) / 2.0) if finite else 1.0
    weights: dict[Edge, float] = {}
    for edge in network.edges():
        capacity = network.capacity(*edge)
        weights[edge] = reference / capacity if math.isfinite(capacity) else infinite_weight
    return weights


def unit_weights(network: Network) -> dict[Edge, float]:
    """All links cost 1 (hop-count routing)."""
    return {edge: 1.0 for edge in network.edges()}


def integer_scaled_weights(
    weights: Mapping[Edge, float], maximum: int = 65535
) -> dict[Edge, int]:
    """Scale float weights to OSPF's integer cost range [1, maximum].

    Real OSPF carries 16-bit costs; the OSPF simulator uses this to check
    that COYOTE's weight choices survive integer quantization.
    """
    if not weights:
        return {}
    smallest = min(weights.values())
    if smallest <= 0:
        raise GraphError("weights must be positive before integer scaling")
    scale = 1.0 / smallest
    scaled = {edge: max(1, round(w * scale)) for edge, w in weights.items()}
    largest = max(scaled.values())
    if largest > maximum:
        # Compress proportionally; ties may coarsen, which is the same
        # trade-off real deployments face with 16-bit costs.
        factor = maximum / largest
        scaled = {edge: max(1, round(v * factor)) for edge, v in scaled.items()}
    return scaled
