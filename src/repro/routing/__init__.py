"""Destination-based routing configurations: splitting ratios + propagation."""

from repro.routing.splitting import Routing
from repro.routing.propagation import (
    propagate_to_destination,
    source_fractions,
    load_coefficients,
)

__all__ = [
    "Routing",
    "propagate_to_destination",
    "source_fractions",
    "load_coefficients",
]
