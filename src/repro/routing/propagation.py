"""Flow propagation through per-destination DAGs (Section III).

Given splitting ratios ``phi_t`` on a DAG rooted at ``t``:

* the *fraction* of the demand ``s -> t`` reaching node ``v`` is
  ``f_st(v) = sum_{(u,v)} f_st(u) * phi_t(u, v)`` with ``f_st(s) = 1``;
* the *aggregate* flow to ``t`` arriving at ``v`` given per-source
  demands ``d_vt`` is ``F_t(v) = d_vt + sum_{(u,v)} F_t(u) * phi_t(u, v)``.

Both recursions resolve in one pass over the DAG's topological order.
The per-pair fractions feed the slave LP's objective coefficients
(``d_st * f_st(u) * phi_t(e)`` is the contribution of pair ``(s, t)`` to
the load on ``e``); the aggregate form is what the fast evaluation and
the splitting optimizers use.
"""

from __future__ import annotations

from typing import Mapping

from repro.exceptions import RoutingError
from repro.graph.dag import Dag
from repro.graph.network import Edge, Node

Ratios = Mapping[Edge, float]


def propagate_to_destination(
    dag: Dag,
    ratios: Ratios,
    demands_to_t: Mapping[Node, float],
) -> tuple[dict[Node, float], dict[Edge, float]]:
    """Aggregate node arrivals and edge flows for one destination.

    Args:
        dag: the forwarding DAG rooted at the destination.
        ratios: phi_t, keyed by DAG edge.
        demands_to_t: source node -> demand volume toward the root.

    Returns:
        ``(arrivals, edge_flows)`` where ``arrivals[v]`` is the total flow
        to the root arriving at (or originating in) ``v`` and
        ``edge_flows[(u, v)]`` the flow placed on each DAG edge.

    Raises:
        RoutingError: when a demand originates at a node outside the DAG.
    """
    for source, volume in demands_to_t.items():
        if volume > 0 and not dag.has_node(source):
            raise RoutingError(
                f"demand source {source!r} is not part of the DAG rooted at {dag.root!r}"
            )
    arrivals: dict[Node, float] = {}
    edge_flows: dict[Edge, float] = {}
    for node in dag.topological_order():
        incoming = arrivals.get(node, 0.0) + demands_to_t.get(node, 0.0)
        arrivals[node] = incoming
        if node == dag.root or incoming == 0.0:
            continue
        for head in dag.out_neighbors(node):
            share = incoming * ratios.get((node, head), 0.0)
            if share == 0.0:
                continue
            edge_flows[(node, head)] = edge_flows.get((node, head), 0.0) + share
            arrivals[head] = arrivals.get(head, 0.0) + share
    return arrivals, edge_flows


def source_fractions(dag: Dag, ratios: Ratios, source: Node) -> dict[Node, float]:
    """``f_st(v)`` for one (source, destination) pair: fractions per node."""
    arrivals, _ = propagate_to_destination(dag, ratios, {source: 1.0})
    return arrivals


def load_coefficients(
    dags: Mapping[Node, Dag],
    ratios_by_destination: Mapping[Node, Ratios],
    pairs: list[tuple[Node, Node]],
) -> dict[Edge, dict[tuple[Node, Node], float]]:
    """Per-edge linear coefficients of the load as a function of demands.

    ``result[e][(s, t)] = f_st(u) * phi_t(e)`` so that the load on ``e``
    under a demand matrix ``D`` is ``sum_(s,t) d_st * result[e][(s, t)]``.
    This is exactly the objective of the slave LP (Appendix C, eq. 10).

    Pairs whose source cannot appear in the destination's DAG are skipped
    (they can never contribute load), mirroring the LP which simply has a
    zero column for them.

    Kernel swap-in: the vectorized assembly in
    :mod:`repro.kernel.coefficients` batches all of a destination's
    sources into one level sweep; :func:`load_coefficients_reference`
    stays as the differential oracle.  Semantics changes here invalidate
    cached sweep results — bump ``CACHE_VERSION`` in
    :mod:`repro.runner.spec`.
    """
    from repro.kernel import kernel_enabled

    if kernel_enabled() and all(dag.network is not None for dag in dags.values()):
        from repro.kernel.coefficients import load_coefficients as kernel_coefficients

        return kernel_coefficients(dags, ratios_by_destination, pairs)
    return load_coefficients_reference(dags, ratios_by_destination, pairs)


def load_coefficients_reference(
    dags: Mapping[Node, Dag],
    ratios_by_destination: Mapping[Node, Ratios],
    pairs: list[tuple[Node, Node]],
) -> dict[Edge, dict[tuple[Node, Node], float]]:
    """Pure-Python coefficient assembly (the kernel's reference oracle)."""
    coefficients: dict[Edge, dict[tuple[Node, Node], float]] = {}
    by_destination: dict[Node, list[Node]] = {}
    for s, t in pairs:
        by_destination.setdefault(t, []).append(s)
    for t, sources in by_destination.items():
        dag = dags.get(t)
        if dag is None:
            raise RoutingError(f"no DAG for destination {t!r}")
        ratios = ratios_by_destination.get(t, {})
        for s in sources:
            if not dag.has_node(s):
                continue
            fractions = source_fractions(dag, ratios, s)
            for u, fraction in fractions.items():
                if fraction == 0.0 or u == dag.root:
                    continue
                for v in dag.out_neighbors(u):
                    phi = ratios.get((u, v), 0.0)
                    if phi == 0.0:
                        continue
                    coefficients.setdefault((u, v), {})[(s, t)] = fraction * phi
    return coefficients
