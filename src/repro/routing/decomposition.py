"""Flow-to-path decomposition of a destination-based routing.

A routing's per-pair behaviour is a distribution over DAG paths: each
(source, destination) pair's traffic splits across the paths of the
destination DAG with probability equal to the product of the splitting
ratios along the path.  Enumerating that distribution powers:

* human-readable inspection ("where does Seattle->Atlanta actually go,
  and with what weights?");
* exact expected-path-length computation (cross-checked against the
  dynamic-programming version in :mod:`repro.graph.paths`);
* MPLS-style tunnel sets — the deployment alternative COYOTE avoids,
  useful for quantifying how many tunnels a routing would have needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import RoutingError
from repro.graph.network import Node
from repro.routing.splitting import Routing

#: Paths with probability below this are pruned from enumerations.
DEFAULT_CUTOFF = 1e-9


@dataclass(frozen=True)
class WeightedPath:
    """One forwarding path and the fraction of traffic using it."""

    nodes: tuple[Node, ...]
    fraction: float

    @property
    def hops(self) -> int:
        return len(self.nodes) - 1


def paths_for_pair(
    routing: Routing,
    source: Node,
    target: Node,
    cutoff: float = DEFAULT_CUTOFF,
) -> list[WeightedPath]:
    """All paths carrying (source -> target) traffic, heaviest first.

    Raises:
        RoutingError: when the routing has no DAG for the target or the
            source is not part of it.
    """
    dag = routing.dags.get(target)
    if dag is None:
        raise RoutingError(f"no DAG for destination {target!r}")
    if not dag.has_node(source):
        raise RoutingError(f"{source!r} not in the DAG rooted at {target!r}")
    ratios = routing.ratios.get(target, {})

    def walk(node: Node, probability: float, prefix: tuple) -> Iterator[WeightedPath]:
        if node == target:
            yield WeightedPath(prefix + (node,), probability)
            return
        for head in dag.out_neighbors(node):
            fraction = ratios.get((node, head), 0.0)
            branch = probability * fraction
            if branch > cutoff:
                yield from walk(head, branch, prefix + (node,))

    paths = sorted(walk(source, 1.0, ()), key=lambda p: p.fraction, reverse=True)
    return paths


def path_count(routing: Routing, cutoff: float = DEFAULT_CUTOFF) -> int:
    """Total number of used paths across all pairs — the tunnel count an
    MPLS realization of the same routing would require."""
    total = 0
    for target, dag in routing.dags.items():
        for source in dag.nodes():
            if source == target:
                continue
            total += len(paths_for_pair(routing, source, target, cutoff))
    return total


def expected_hops_via_paths(
    routing: Routing, source: Node, target: Node
) -> float:
    """Expected hop count computed from the explicit path distribution.

    Mathematically identical to :meth:`Routing.expected_hops`; having
    both lets the test suite cross-check the DP against enumeration.
    """
    paths = paths_for_pair(routing, source, target, cutoff=0.0)
    total_fraction = sum(p.fraction for p in paths)
    if total_fraction <= 0:
        raise RoutingError(f"no paths from {source!r} to {target!r}")
    return sum(p.fraction * p.hops for p in paths) / total_fraction
