"""The :class:`Routing` configuration: per-destination DAGs + splitting ratios.

This is the ``phi`` object of Section III.  For each destination ``t`` it
stores a forwarding DAG and, for each DAG node with out-degree >= 1, the
fraction of ``t``-bound flow forwarded on each out-edge.  Ratios must be
nonnegative and sum to one at every non-root DAG node (a node with a
single out-edge implicitly forwards everything there).
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.demands.matrix import DemandMatrix
from repro.exceptions import RoutingError
from repro.graph.dag import Dag
from repro.graph.network import Edge, Network, Node
from repro.graph.paths import expected_path_lengths
from repro.routing.propagation import load_coefficients, propagate_to_destination

_SUM_TOLERANCE = 1e-6


class Routing:
    """A per-destination (PD) routing configuration.

    Attributes:
        dags: destination -> forwarding DAG rooted there.
        ratios: destination -> {DAG edge -> splitting fraction}.
        name: label used in experiment tables ("ECMP", "COYOTE", ...).
    """

    def __init__(
        self,
        dags: Mapping[Node, Dag],
        ratios: Mapping[Node, Mapping[Edge, float]],
        name: str = "routing",
        validate: bool = True,
    ):
        self.dags: dict[Node, Dag] = dict(dags)
        self.ratios: dict[Node, dict[Edge, float]] = {
            t: dict(r) for t, r in ratios.items()
        }
        self.name = name
        if validate:
            self.validate()

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Check ratio nonnegativity, support, and per-node normalization."""
        for t, dag in self.dags.items():
            if dag.root != t:
                raise RoutingError(f"DAG stored under {t!r} is rooted at {dag.root!r}")
            ratios = self.ratios.get(t, {})
            for (u, v), value in ratios.items():
                if value < -_SUM_TOLERANCE:
                    raise RoutingError(f"negative ratio {value} on {(u, v)!r} toward {t!r}")
                if value > _SUM_TOLERANCE and not dag.has_edge(u, v):
                    raise RoutingError(
                        f"ratio on {(u, v)!r} toward {t!r} is not a DAG edge"
                    )
            for node in dag.nodes():
                if node == t:
                    continue
                total = sum(ratios.get((node, head), 0.0) for head in dag.out_neighbors(node))
                if not math.isclose(total, 1.0, rel_tol=0, abs_tol=_SUM_TOLERANCE * 10):
                    raise RoutingError(
                        f"ratios out of node {node!r} toward {t!r} sum to {total:.9f}, expected 1"
                    )

    # -- propagation ----------------------------------------------------------

    def destination_ratios(self, t: Node) -> dict[Edge, float]:
        if t not in self.dags:
            raise RoutingError(f"routing {self.name!r} has no DAG for destination {t!r}")
        return dict(self.ratios.get(t, {}))

    def link_loads(self, demand: DemandMatrix) -> dict[Edge, float]:
        """Total flow per edge when routing ``demand`` with this configuration.

        Kernel swap-in: one vectorized level sweep per destination DAG
        (:mod:`repro.kernel.coefficients`) replaces the per-node dict
        recursion; :meth:`link_loads_reference` remains the differential
        oracle.  Semantics changes here require a ``CACHE_VERSION`` bump
        in :mod:`repro.runner.spec`.
        """
        from repro.kernel import kernel_enabled

        targets = demand.targets()
        missing = [t for t in targets if t not in self.dags]
        if missing:
            raise RoutingError(
                f"no DAG for destination {missing[0]!r} in routing {self.name!r}"
            )
        if (
            kernel_enabled()
            and targets
            and all(self.dags[t].network is not None for t in targets)
        ):
            from repro.kernel.coefficients import link_loads as kernel_link_loads

            network = self.dags[next(iter(targets))].network
            return kernel_link_loads(network, self.dags, self.ratios, demand)
        return self.link_loads_reference(demand)

    def link_loads_reference(self, demand: DemandMatrix) -> dict[Edge, float]:
        """Pure-Python per-destination propagation (the kernel's oracle)."""
        loads: dict[Edge, float] = {}
        for t in demand.targets():
            if t not in self.dags:
                raise RoutingError(f"no DAG for destination {t!r} in routing {self.name!r}")
            _, edge_flows = propagate_to_destination(
                self.dags[t], self.ratios.get(t, {}), demand.demands_to(t)
            )
            for edge, flow in edge_flows.items():
                loads[edge] = loads.get(edge, 0.0) + flow
        return loads

    def max_link_utilization(self, demand: DemandMatrix, network: Network) -> float:
        """``MxLU(phi, D)``: the congestion of the most utilized link."""
        loads = self.link_loads(demand)
        worst = 0.0
        for edge, flow in loads.items():
            capacity = network.capacity(*edge)
            if math.isfinite(capacity):
                worst = max(worst, flow / capacity)
        return worst

    def load_coefficients(
        self, pairs: list[tuple[Node, Node]]
    ) -> dict[Edge, dict[tuple[Node, Node], float]]:
        """Per-edge load as linear coefficients over the demand pairs."""
        return load_coefficients(self.dags, self.ratios, pairs)

    # -- path metrics -----------------------------------------------------------

    def expected_hops(self, source: Node, target: Node) -> float:
        """Expected hop count of the ``source -> target`` traffic."""
        dag = self.dags.get(target)
        if dag is None:
            raise RoutingError(f"no DAG for destination {target!r}")
        if not dag.has_node(source):
            raise RoutingError(f"{source!r} is not in the DAG rooted at {target!r}")
        lengths = expected_path_lengths(dag, self.ratios.get(target, {}))
        return lengths[source]

    def average_stretch_against(self, baseline: "Routing") -> float:
        """Average over all pairs of expected-hops ratio vs. ``baseline``.

        This is Fig. 11's "average stretch": expected path length of this
        routing divided by the baseline's (ECMP), averaged across pairs
        present in both configurations.
        """
        ratios: list[float] = []
        for t, dag in self.dags.items():
            if t not in baseline.dags:
                continue
            ours = expected_path_lengths(dag, self.ratios.get(t, {}))
            theirs = expected_path_lengths(
                baseline.dags[t], baseline.ratios.get(t, {})
            )
            for node in dag.nodes():
                if node == t or node not in theirs:
                    continue
                if theirs[node] > 0:
                    ratios.append(ours[node] / theirs[node])
        if not ratios:
            raise RoutingError("no comparable pairs between the two routings")
        return sum(ratios) / len(ratios)

    # -- editing ----------------------------------------------------------------

    def with_ratios(
        self, new_ratios: Mapping[Node, Mapping[Edge, float]], name: str | None = None
    ) -> "Routing":
        """Same DAGs, different ratios (used by the optimizers)."""
        return Routing(self.dags, new_ratios, name=name or self.name)

    def renormalized(self, floor: float = 0.0) -> "Routing":
        """Clamp tiny/negative ratios to ``floor`` and rescale rows to sum 1.

        Numerical optimizers can leave ratios at ``1e-12`` or ``-1e-15``;
        this cleans them up into a valid configuration.
        """
        cleaned: dict[Node, dict[Edge, float]] = {}
        for t, dag in self.dags.items():
            ratios = self.ratios.get(t, {})
            fixed: dict[Edge, float] = {}
            for node in dag.nodes():
                if node == t:
                    continue
                heads = dag.out_neighbors(node)
                raw = [max(ratios.get((node, h), 0.0), floor) for h in heads]
                total = sum(raw)
                if total <= 0:
                    raw = [1.0] * len(heads)
                    total = float(len(heads))
                for head, value in zip(heads, raw):
                    fixed[(node, head)] = value / total
            cleaned[t] = fixed
        return Routing(self.dags, cleaned, name=self.name)

    def __repr__(self) -> str:
        return f"Routing({self.name!r}, destinations={len(self.dags)})"


def uniform_ratios(dag: Dag) -> dict[Edge, float]:
    """Equal split over each node's DAG out-edges (ECMP-style within a DAG)."""
    ratios: dict[Edge, float] = {}
    for node in dag.nodes():
        if node == dag.root:
            continue
        heads = dag.out_neighbors(node)
        if not heads:
            continue
        share = 1.0 / len(heads)
        for head in heads:
            ratios[(node, head)] = share
    return ratios
