"""A simulated OSPF router: LSDB, flooding endpoint, FIB.

Routers originate their own router LSA, re-flood every newer LSA they
receive (reliable flooding), and rebuild their FIB from SPF whenever
their database changes.  The FIB maps each known prefix to its ECMP
next-hop set (with multiplicities from virtual links).
"""

from __future__ import annotations

from repro.ospf.lsa import Lsa, LsaLink, RouterLsa
from repro.ospf.lsdb import LinkStateDatabase
from repro.ospf.spf import NextHop, SpfCalculator, SpfGraph


class Router:
    """One OSPF speaker."""

    def __init__(self, router_id: str):
        self.router_id = router_id
        self.lsdb = LinkStateDatabase()
        self._fib: dict[str, list[NextHop]] | None = None
        self._sequence = 0

    # -- origination -----------------------------------------------------

    def originate(self, links: dict[str, float]) -> RouterLsa:
        """(Re-)announce this router's adjacencies; bumps the sequence."""
        self._sequence += 1
        lsa = RouterLsa(
            origin=self.router_id,
            links=tuple(LsaLink(neighbor, cost) for neighbor, cost in sorted(links.items())),
            sequence=self._sequence,
        )
        self.lsdb.install(lsa)
        self._fib = None
        return lsa

    # -- flooding ----------------------------------------------------------

    def receive(self, lsa: Lsa) -> bool:
        """Install if newer; True means the LSA must be re-flooded."""
        adopted = self.lsdb.install(lsa)
        if adopted:
            self._fib = None
        return adopted

    def flush_routes(self) -> None:
        """Force an SPF re-run on the next FIB access (e.g. after an LSA
        was withdrawn directly from the database)."""
        self._fib = None

    # -- forwarding state ----------------------------------------------------

    def build_fib(self) -> dict[str, list[NextHop]]:
        """Run SPF over the current LSDB and install routes per prefix."""
        calculator = SpfCalculator(SpfGraph(self.lsdb))
        fib: dict[str, list[NextHop]] = {}
        for prefix in sorted(self.lsdb.prefixes()):
            hops = calculator.next_hops(self.router_id, prefix)
            if hops:
                fib[prefix] = hops
        self._fib = fib
        return fib

    @property
    def fib(self) -> dict[str, list[NextHop]]:
        if self._fib is None:
            self.build_fib()
        assert self._fib is not None
        return self._fib

    def next_hops(self, prefix: str) -> list[NextHop]:
        return self.fib.get(prefix, [])

    def splitting_fractions(self, prefix: str) -> dict[str, float]:
        """Neighbor -> realized ECMP fraction (multiplicity-weighted)."""
        hops = self.next_hops(prefix)
        total = sum(h.multiplicity for h in hops)
        if total == 0:
            return {}
        return {h.neighbor: h.multiplicity / total for h in hops}

    def __repr__(self) -> str:
        return f"Router({self.router_id!r}, lsas={len(self.lsdb)})"
