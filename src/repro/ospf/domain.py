"""An OSPF routing domain: routers wired by a capacitated network.

The domain owns the routers, simulates reliable flooding (synchronous
rounds: every router forwards newly-adopted LSAs to its neighbors until
no database changes), and extracts network-wide forwarding state:

* per-prefix forwarding DAGs induced by the routers' FIBs;
* the realized splitting ratios (ECMP over FIB entries, virtual-link
  multiplicities included);

which is exactly the data the Fibbing controller needs to verify that
its lies produced the intended configuration.

Failures are supported (:meth:`fail_link`): the affected routers
re-originate their router LSAs and flooding re-converges, which the test
suite uses to check that lies survive reconvergence semantics.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.exceptions import OspfError
from repro.graph.dag import Dag
from repro.graph.network import Edge, Network, Node
from repro.ospf.lsa import FakeNodeLsa, PrefixLsa
from repro.ospf.router import Router
from repro.routing.splitting import Routing

#: Flooding rounds are bounded by the network diameter; this cap only
#: guards against implementation bugs.
_MAX_FLOOD_ROUNDS = 10_000


class OspfDomain:
    """All OSPF state for one network."""

    def __init__(self, network: Network, weights: Mapping[Edge, float]):
        self.network = network
        self.weights = dict(weights)
        self.routers: dict[str, Router] = {
            str(node): Router(str(node)) for node in network.nodes()
        }
        self._node_of = {str(node): node for node in network.nodes()}
        self._prefix_owner: dict[str, str] = {}
        self._converged = False
        for node in network.nodes():
            links = {
                str(head): self.weights[(node, head)]
                for head in network.successors(node)
            }
            self.routers[str(node)].originate(links)

    # -- prefixes ----------------------------------------------------------

    def advertise_prefix(self, router_id: str, prefix: str, cost: float = 0.0) -> None:
        """Attach a destination prefix to a router (its loopback/network)."""
        router_id = str(router_id)
        if router_id not in self.routers:
            raise OspfError(f"unknown router {router_id!r}")
        if prefix in self._prefix_owner:
            raise OspfError(f"prefix {prefix!r} already advertised")
        self._prefix_owner[prefix] = router_id
        self.routers[router_id].receive(PrefixLsa(prefix, router_id, cost))
        self._converged = False

    def advertise_loopbacks(self) -> None:
        """Give every router a prefix named after itself (the common case)."""
        for router_id in self.routers:
            self.advertise_prefix(router_id, router_id)

    def prefix_owner(self, prefix: str) -> str:
        owner = self._prefix_owner.get(prefix)
        if owner is None:
            raise OspfError(f"unknown prefix {prefix!r}")
        return owner

    def node_of(self, router_id: str) -> Node:
        """Map a router id back to its network node label."""
        node = self._node_of.get(router_id)
        if node is None:
            raise OspfError(f"unknown router {router_id!r}")
        return node

    def prefixes(self) -> list[str]:
        return list(self._prefix_owner)

    # -- lies --------------------------------------------------------------------

    def inject_lies(self, lies: Iterable[FakeNodeLsa]) -> int:
        """Flood fake-node LSAs into the domain (returns count injected)."""
        count = 0
        for lie in lies:
            attachment = self.routers.get(lie.attachment)
            if attachment is None:
                raise OspfError(f"lie attaches to unknown router {lie.attachment!r}")
            if not self.network.has_edge(
                self._node_of[lie.attachment], self._node_of[lie.forwarding_neighbor]
            ):
                raise OspfError(
                    f"lie forwarding address {lie.forwarding_neighbor!r} is not a "
                    f"neighbor of {lie.attachment!r}"
                )
            attachment.receive(lie)
            count += 1
            self._converged = False
        return count

    def clear_lies(self) -> None:
        """Remove every fake LSA from all routers (controller rollback)."""
        for router in self.routers.values():
            for fake in list(router.lsdb.fake_lsas()):
                router.lsdb.remove(fake.key)
            router.flush_routes()
        self._converged = False

    # -- flooding ----------------------------------------------------------------

    def flood(self) -> int:
        """Synchronous reliable flooding until every LSDB is identical.

        Returns the number of rounds it took.  Each round, every router
        offers its full database to each neighbor; neighbors adopt the
        newer LSAs.  (Real OSPF sends only changed LSAs; offering the
        database is behaviourally identical and simpler.)
        """
        neighbors: dict[str, list[str]] = {
            str(node): [str(h) for h in self.network.successors(node)]
            for node in self.network.nodes()
        }
        for round_number in range(1, _MAX_FLOOD_ROUNDS + 1):
            changed = False
            snapshots = {
                rid: router.lsdb.all_lsas() for rid, router in self.routers.items()
            }
            for rid, lsas in snapshots.items():
                for neighbor_id in neighbors[rid]:
                    receiver = self.routers[neighbor_id]
                    for lsa in lsas:
                        if receiver.receive(lsa):
                            changed = True
            if not changed:
                self._converged = True
                return round_number
        raise OspfError("flooding did not converge (sequence churn?)")

    def converge(self) -> None:
        if not self._converged:
            self.flood()

    # -- failures -------------------------------------------------------------

    def fail_link(self, tail: Node, head: Node) -> None:
        """Take a (directed pair of) link(s) down and re-originate LSAs."""
        for a, b in ((tail, head), (head, tail)):
            if not self.network.has_edge(a, b):
                continue
            router = self.routers[str(a)]
            current = {
                str(n): self.weights[(a, n)]
                for n in self.network.successors(a)
                if (str(a), str(n)) != (str(a), str(b))
            }
            router.originate(current)
        self._converged = False

    # -- extraction -----------------------------------------------------------

    def forwarding_dag(self, prefix: str) -> Dag:
        """The forwarding DAG toward ``prefix`` induced by all FIBs."""
        self.converge()
        owner = self.prefix_owner(prefix)
        edges: list[Edge] = []
        for rid, router in self.routers.items():
            if rid == owner:
                continue
            for hop in router.next_hops(prefix):
                edges.append((self._node_of[rid], self._node_of[hop.neighbor]))
        return Dag(self._node_of[owner], edges, self.network)

    def splitting_ratios(self, prefix: str) -> dict[Edge, float]:
        """Realized per-edge splitting fractions toward ``prefix``."""
        self.converge()
        owner = self.prefix_owner(prefix)
        ratios: dict[Edge, float] = {}
        for rid, router in self.routers.items():
            if rid == owner:
                continue
            for neighbor, fraction in router.splitting_fractions(prefix).items():
                ratios[(self._node_of[rid], self._node_of[neighbor])] = fraction
        return ratios

    def extract_routing(self, name: str = "OSPF") -> Routing:
        """Full routing configuration over all advertised prefixes.

        Prefix names map to destinations; when every router advertises a
        loopback named after itself this is directly comparable to the
        algorithmic :class:`Routing` objects.
        """
        self.converge()
        dags: dict[Node, Dag] = {}
        ratios: dict[Node, dict[Edge, float]] = {}
        for prefix in self.prefixes():
            owner_node = self._node_of[self.prefix_owner(prefix)]
            dag = self.forwarding_dag(prefix)
            dags[owner_node] = dag
            ratios[owner_node] = self.splitting_ratios(prefix)
        return Routing(dags, ratios, name=name)

    def total_fake_lsas(self) -> int:
        """Count of distinct fake LSAs present after convergence."""
        self.converge()
        any_router = next(iter(self.routers.values()))
        return len(any_router.lsdb.fake_lsas())
