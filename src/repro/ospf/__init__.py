"""An OSPF link-state simulator: LSAs, flooding, per-router SPF, ECMP FIBs.

This package stands in for the real OSPF routers (mininet + Quagga) of
the paper's prototype: routers flood link-state advertisements, each
router runs Dijkstra over its link-state database and installs
equal-cost next hops in its FIB.  Fake-node LSAs (the "lies" of
Fibbing [8, 9]) participate in SPF exactly like real routers, which is
what lets :mod:`repro.fibbing` reshape forwarding without touching any
router logic.
"""

from repro.ospf.lsa import FakeNodeLsa, LsaLink, PrefixLsa, RouterLsa
from repro.ospf.lsdb import LinkStateDatabase
from repro.ospf.router import Router
from repro.ospf.domain import OspfDomain

__all__ = [
    "FakeNodeLsa",
    "LsaLink",
    "PrefixLsa",
    "RouterLsa",
    "LinkStateDatabase",
    "Router",
    "OspfDomain",
]
