"""Shortest-path-first computation over a link-state database.

Every router independently runs Dijkstra over the topology described by
its LSDB — real routers *and* fake nodes — then derives, per prefix, its
ECMP next-hop set: the real neighbors (resolving fake nodes to their
forwarding addresses) through which the minimum-cost route to the prefix
passes.  A fake node injected with several parallel virtual links shows
up as repeated next hops, which is exactly how [18] coaxes unequal
splits out of ECMP's equal hashing.

Route costs compare with a small relative tolerance, mirroring integer
OSPF costs where equality is exact.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.exceptions import OspfError
from repro.ospf.lsdb import LinkStateDatabase

_COST_RTOL = 1e-9


@dataclass(frozen=True)
class NextHop:
    """One FIB entry component: a real neighbor and its multiplicity.

    ECMP hashes uniformly over FIB entries; ``multiplicity`` counts how
    many (virtual) entries point at this neighbor, so the realized
    splitting fraction is ``multiplicity / total_entries``.
    """

    neighbor: str
    multiplicity: int


class SpfGraph:
    """The Dijkstra-ready view of an LSDB."""

    def __init__(self, lsdb: LinkStateDatabase):
        lsdb.validate()
        self.adjacency: dict[str, list[tuple[str, float]]] = {}
        # Bidirectional adjacency check: OSPF only uses a link if both
        # endpoints report it; we keep the simulator honest by requiring
        # the reverse link to exist in the database.
        declared: dict[str, dict[str, float]] = {}
        for lsa in lsdb.router_lsas():
            declared[lsa.origin] = {link.neighbor: link.cost for link in lsa.links}
        for origin, links in declared.items():
            usable = []
            for neighbor, cost in links.items():
                if neighbor in declared and origin in declared[neighbor]:
                    usable.append((neighbor, cost))
            self.adjacency[origin] = usable
        # Prefix anchors: prefix -> [(advertiser, cost)].
        self.prefix_routes: dict[str, list[tuple[str, float]]] = {}
        for plsa in lsdb.prefix_lsas():
            self.prefix_routes.setdefault(plsa.prefix, []).append(
                (plsa.origin, plsa.cost)
            )
        # Fake nodes: attachment -> [fake LSAs]; they act as leaf nodes
        # reachable only from their attachment router.
        self.fakes_by_attachment: dict[str, list] = {}
        for flsa in lsdb.fake_lsas():
            self.fakes_by_attachment.setdefault(flsa.attachment, []).append(flsa)

    def routers(self) -> list[str]:
        return list(self.adjacency)


def shortest_distances(graph: SpfGraph, root: str) -> dict[str, float]:
    """Dijkstra over real routers from ``root`` (fake nodes are leaves)."""
    if root not in graph.adjacency:
        raise OspfError(f"unknown SPF root {root!r}")
    dist = {router: math.inf for router in graph.adjacency}
    dist[root] = 0.0
    heap: list[tuple[float, int, str]] = [(0.0, 0, root)]
    counter = 1
    done: set[str] = set()
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        for neighbor, cost in graph.adjacency[node]:
            candidate = d + cost
            if candidate < dist[neighbor]:
                dist[neighbor] = candidate
                heapq.heappush(heap, (candidate, counter, neighbor))
                counter += 1
    return dist


def prefix_route_cost(
    graph: SpfGraph, dist: dict[str, float], root: str, prefix: str
) -> float:
    """Minimum cost from ``root`` to ``prefix`` over real and fake routes."""
    best = math.inf
    for advertiser, cost in graph.prefix_routes.get(prefix, ()):
        best = min(best, dist.get(advertiser, math.inf) + cost)
    for attachment, fakes in graph.fakes_by_attachment.items():
        base = dist.get(attachment, math.inf)
        for fake in fakes:
            if fake.prefix == prefix:
                best = min(best, base + fake.route_cost)
    return best


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=_COST_RTOL, abs_tol=1e-12)


class SpfCalculator:
    """SPF with an all-pairs distance cache shared across prefixes.

    Real OSPF derives every destination's next hops from one SPF tree
    per router; we get the same asymptotics by computing the distance
    table of every router once per LSDB state and answering next-hop
    queries from lookups.
    """

    def __init__(self, graph: SpfGraph):
        self.graph = graph
        self._dist: dict[str, dict[str, float]] = {}

    def distances_from(self, router: str) -> dict[str, float]:
        if router not in self._dist:
            self._dist[router] = shortest_distances(self.graph, router)
        return self._dist[router]

    def route_cost(self, router: str, prefix: str) -> float:
        """Best cost from ``router`` to ``prefix`` (fakes included)."""
        return prefix_route_cost(self.graph, self.distances_from(router), router, prefix)

    def next_hops(self, root: str, prefix: str) -> list[NextHop]:
        """The ECMP next-hop set of ``root`` for ``prefix``.

        A neighbor qualifies when some minimum-cost route leaves ``root``
        through it.  Three route shapes exist:

        * via a real neighbor ``n``: ``cost(root, n) + best_cost_from(n)``;
        * via a local fake node: ``fake.route_cost`` (resolved to the
          fake's forwarding neighbor, once per virtual link);
        * the root itself advertises the prefix: traffic is delivered
          locally, no next hop.
        """
        graph = self.graph
        best = self.route_cost(root, prefix)
        if math.isinf(best):
            return []
        for advertiser, cost in graph.prefix_routes.get(prefix, ()):
            if advertiser == root and _close(cost, best):
                return []
        hops: dict[str, int] = {}
        for neighbor, link_cost in graph.adjacency[root]:
            via = link_cost + self.route_cost(neighbor, prefix)
            if _close(via, best):
                hops[neighbor] = hops.get(neighbor, 0) + 1
        for fake in graph.fakes_by_attachment.get(root, ()):
            if fake.prefix == prefix and _close(fake.route_cost, best):
                hops[fake.forwarding_neighbor] = hops.get(fake.forwarding_neighbor, 0) + 1
        return [NextHop(neighbor, count) for neighbor, count in sorted(hops.items())]


def compute_next_hops(graph: SpfGraph, root: str, prefix: str) -> list[NextHop]:
    """One-shot convenience wrapper around :class:`SpfCalculator`."""
    return SpfCalculator(graph).next_hops(root, prefix)
