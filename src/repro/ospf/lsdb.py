"""The link-state database and its freshness rule.

Each router keeps an LSDB keyed by LSA identity; an incoming LSA
replaces the stored copy only if its sequence number is strictly newer
(the OSPF freshness rule, RFC 2328 section 13).  ``digest()`` gives a
cheap convergence check: two routers agree exactly when their digests
match.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.exceptions import OspfError
from repro.ospf.lsa import FakeNodeLsa, Lsa, PrefixLsa, RouterLsa


class LinkStateDatabase:
    """A set of freshest-known LSAs."""

    def __init__(self) -> None:
        self._store: dict[tuple[str, str], Lsa] = {}

    def install(self, lsa: Lsa) -> bool:
        """Install ``lsa`` if newer than the stored copy; True if adopted."""
        current = self._store.get(lsa.key)
        if current is not None and current.sequence >= lsa.sequence:
            return False
        self._store[lsa.key] = lsa
        return True

    def remove(self, key: tuple[str, str]) -> None:
        self._store.pop(key, None)

    def get(self, key: tuple[str, str]) -> Lsa | None:
        return self._store.get(key)

    def router_lsas(self) -> list[RouterLsa]:
        return [lsa for lsa in self._store.values() if isinstance(lsa, RouterLsa)]

    def prefix_lsas(self) -> list[PrefixLsa]:
        return [lsa for lsa in self._store.values() if isinstance(lsa, PrefixLsa)]

    def fake_lsas(self) -> list[FakeNodeLsa]:
        return [lsa for lsa in self._store.values() if isinstance(lsa, FakeNodeLsa)]

    def all_lsas(self) -> list[Lsa]:
        return list(self._store.values())

    def prefixes(self) -> set[str]:
        names = {lsa.prefix for lsa in self.prefix_lsas()}
        names.update(lsa.prefix for lsa in self.fake_lsas())
        return names

    def digest(self) -> frozenset[tuple[tuple[str, str], int]]:
        """Identity+sequence fingerprint used for convergence detection."""
        return frozenset((key, lsa.sequence) for key, lsa in self._store.items())

    def copy_from(self, lsas: Iterable[Lsa]) -> int:
        """Bulk-install; returns how many LSAs were adopted."""
        return sum(1 for lsa in lsas if self.install(lsa))

    def validate(self) -> None:
        """Sanity checks: fake nodes must attach to known routers."""
        routers = {lsa.origin for lsa in self.router_lsas()}
        for fake in self.fake_lsas():
            if fake.attachment not in routers:
                raise OspfError(
                    f"fake node {fake.fake_id!r} attaches to unknown router "
                    f"{fake.attachment!r}"
                )

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[Lsa]:
        return iter(self._store.values())
