"""Link-state advertisements.

Three LSA kinds cover what the reproduction needs:

* :class:`RouterLsa` — a router's adjacencies and their OSPF costs
  (type-1 LSA);
* :class:`PrefixLsa` — a destination prefix advertised by a router
  (collapsing OSPF's stub-network/external machinery into one record);
* :class:`FakeNodeLsa` — a Fibbing lie: a virtual node attached to one
  real router that advertises a prefix at a chosen cost and names the
  *forwarding address* (the real neighbor that should receive the
  traffic attracted by the lie).

LSAs carry sequence numbers so the flooding logic can discard stale
copies, mirroring the real protocol's freshness rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import OspfError


@dataclass(frozen=True)
class LsaLink:
    """One adjacency inside a router LSA."""

    neighbor: str
    cost: float

    def __post_init__(self) -> None:
        if self.cost <= 0:
            raise OspfError(f"OSPF link cost must be > 0, got {self.cost}")


@dataclass(frozen=True)
class RouterLsa:
    """A router's view of its own adjacencies (type-1 LSA)."""

    origin: str
    links: tuple[LsaLink, ...]
    sequence: int = 1

    @property
    def key(self) -> tuple[str, str]:
        return ("router", self.origin)


@dataclass(frozen=True)
class PrefixLsa:
    """A destination prefix advertised by a real router.

    Attributes:
        prefix: the prefix name (e.g. ``"t"`` or ``"t1"``).
        origin: the advertising router.
        cost: metric from the origin to the prefix (0 for loopbacks).
    """

    prefix: str
    origin: str
    cost: float = 0.0
    sequence: int = 1

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise OspfError(f"prefix cost must be >= 0, got {self.cost}")

    @property
    def key(self) -> tuple[str, str]:
        return ("prefix", f"{self.prefix}@{self.origin}")


@dataclass(frozen=True)
class FakeNodeLsa:
    """A Fibbing lie: fake node + virtual link + prefix advertisement.

    The fake node ``fake_id`` appears attached to router ``attachment``
    with cost ``attach_cost`` and advertises ``prefix`` at cost
    ``prefix_cost``.  Traffic that ``attachment`` sends "toward the fake
    node" is physically delivered to ``forwarding_neighbor`` (Fibbing's
    forwarding-address mechanism), which must be a real neighbor of the
    attachment router.
    """

    fake_id: str
    attachment: str
    forwarding_neighbor: str
    prefix: str
    attach_cost: float
    prefix_cost: float
    sequence: int = 1

    def __post_init__(self) -> None:
        if self.attach_cost <= 0:
            raise OspfError(f"fake attach cost must be > 0, got {self.attach_cost}")
        if self.prefix_cost < 0:
            raise OspfError(f"fake prefix cost must be >= 0, got {self.prefix_cost}")
        if self.attachment == self.forwarding_neighbor:
            raise OspfError("forwarding neighbor must differ from the attachment router")

    @property
    def key(self) -> tuple[str, str]:
        return ("fake", self.fake_id)

    @property
    def route_cost(self) -> float:
        """Cost of the lie's route as seen from the attachment router."""
        return self.attach_cost + self.prefix_cost


Lsa = RouterLsa | PrefixLsa | FakeNodeLsa
