"""The Fibbing controller: install lies, verify the realized forwarding.

This is the reproduction of the paper's prototype controller (built on
Vissicchio et al.'s Fibbing controller [9] plus the splitting
approximation of [18]):

1. apportion the target splitting ratios into bounded multiplicities;
2. synthesize one fake LSA per (router, next hop, virtual copy);
3. inject them into an :class:`repro.ospf.OspfDomain` and flood;
4. extract every router's FIB and check that the realized forwarding
   DAGs and splitting fractions match the target.

The verification step is the point: nothing in the OSPF simulator knows
about COYOTE, so a passing report demonstrates that plain SPF over the
falsified database reproduces the optimized configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.fibbing.lies import lies_for_routing
from repro.graph.network import Edge, Network, Node
from repro.ospf.domain import OspfDomain
from repro.routing.splitting import Routing


@dataclass
class FibbingReport:
    """Result of compiling + installing + verifying one routing.

    Attributes:
        lies_injected: number of fake LSAs flooded.
        realized: the routing extracted from the converged FIBs.
        intended: the apportioned routing the lies were compiled from.
        dag_mismatches: (destination, router) pairs whose realized
            next-hop set differs from the intended one.
        max_ratio_error: worst |realized - intended| splitting fraction.
        target_ratio_error: worst |realized - original target| fraction
            (includes the apportionment error, i.e. Fig. 10's quantity).
    """

    lies_injected: int
    realized: Routing
    intended: Routing
    dag_mismatches: list[tuple[Node, Node]] = field(default_factory=list)
    max_ratio_error: float = 0.0
    target_ratio_error: float = 0.0

    @property
    def faithful(self) -> bool:
        """True when OSPF realized the intended configuration exactly."""
        return not self.dag_mismatches and self.max_ratio_error < 1e-9


class FibbingController:
    """Compiles routings to lies against a concrete OSPF domain."""

    def __init__(self, network: Network, weights: Mapping[Edge, float]):
        self.network = network
        self.weights = dict(weights)

    def build_domain(self) -> OspfDomain:
        """A fresh OSPF domain with per-router loopback prefixes."""
        domain = OspfDomain(self.network, self.weights)
        domain.advertise_loopbacks()
        domain.flood()
        return domain

    def install(
        self,
        routing: Routing,
        budget: int = 16,
        domain: OspfDomain | None = None,
    ) -> FibbingReport:
        """Compile ``routing`` into lies, flood them, verify the FIBs.

        Args:
            routing: target configuration (DAGs + splitting ratios).
            budget: virtual links per interface for apportionment.
            domain: reuse an existing domain (lies are cleared first).
        """
        if domain is None:
            domain = self.build_domain()
        else:
            domain.clear_lies()
        lies, intended = lies_for_routing(self.network, self.weights, routing, budget)
        domain.inject_lies(lies)
        domain.flood()

        dag_mismatches: list[tuple[Node, Node]] = []
        max_ratio_error = 0.0
        target_ratio_error = 0.0
        realized_dags = {}
        realized_ratios: dict[Node, dict[Edge, float]] = {}
        for t, dag in routing.dags.items():
            prefix = str(t)
            realized_dag = domain.forwarding_dag(prefix)
            realized = domain.splitting_ratios(prefix)
            realized_dags[t] = realized_dag
            realized_ratios[t] = realized
            intended_t = intended.ratios.get(t, {})
            for node in dag.nodes():
                if node == t:
                    continue
                want = {
                    head
                    for head in dag.out_neighbors(node)
                    if intended_t.get((node, head), 0.0) > 0
                }
                have = {
                    head
                    for head in realized_dag.out_neighbors(node)
                    if realized.get((node, head), 0.0) > 0
                }
                if want != have:
                    dag_mismatches.append((t, node))
            for edge, fraction in intended_t.items():
                delta = abs(realized.get(edge, 0.0) - fraction)
                max_ratio_error = max(max_ratio_error, delta)
                target = routing.ratios.get(t, {}).get(edge, 0.0)
                target_ratio_error = max(
                    target_ratio_error, abs(realized.get(edge, 0.0) - target)
                )

        realized_routing = Routing(
            realized_dags, realized_ratios, name=f"{routing.name}-realized"
        )
        return FibbingReport(
            lies_injected=len(lies),
            realized=realized_routing,
            intended=intended,
            dag_mismatches=dag_mismatches,
            max_ratio_error=max_ratio_error,
            target_ratio_error=target_ratio_error,
        )
