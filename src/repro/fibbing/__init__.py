"""Translation of COYOTE routings into OSPF lies (Section V-D).

Fibbing [8, 9] realizes arbitrary per-destination forwarding DAGs by
injecting fake nodes/links into the link-state database; Németh et
al. [18] approximate unequal splits by giving ECMP repeated virtual
next hops.  This package implements both: ratio apportionment into
bounded integer multiplicities, fake-LSA synthesis, and an end-to-end
controller that installs the lies into :class:`repro.ospf.OspfDomain`
and verifies the realized FIBs.
"""

from repro.fibbing.apportionment import apportion, approximate_routing
from repro.fibbing.lies import lies_for_destination, lies_for_routing, LIE_COST_FRACTION
from repro.fibbing.controller import FibbingController, FibbingReport

__all__ = [
    "apportion",
    "approximate_routing",
    "lies_for_destination",
    "lies_for_routing",
    "LIE_COST_FRACTION",
    "FibbingController",
    "FibbingReport",
]
