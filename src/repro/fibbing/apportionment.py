"""Integer apportionment of splitting ratios (Fig. 10's "k virtual NHs").

ECMP hashes uniformly over FIB entries, so a splitting ratio vector
``phi`` at a router can only be realized as ``m_v / sum(m)`` with
integer multiplicities ``m_v``.  The paper bounds the number of virtual
links per interface (3, 5 or 10 in Fig. 10); we search, over every
feasible total, the largest-remainder rounding that minimizes the worst
absolute ratio error — exhaustive because totals are at most
``budget * out_degree`` (tiny).
"""

from __future__ import annotations

from typing import Mapping, TypeVar

from repro.exceptions import FibbingError
from repro.graph.network import Edge, Node
from repro.routing.splitting import Routing

K = TypeVar("K")


def _round_to_total(fractions: dict[K, float], total: int, budget: int) -> dict[K, int] | None:
    """Largest-remainder apportionment of ``total`` seats, capped per key."""
    floors = {k: min(int(f * total), budget) for k, f in fractions.items()}
    assigned = sum(floors.values())
    remaining = total - assigned
    if remaining < 0:
        return None
    remainders = sorted(
        fractions,
        key=lambda k: (fractions[k] * total) - int(fractions[k] * total),
        reverse=True,
    )
    seats = dict(floors)
    index = 0
    while remaining > 0 and index < 4 * len(remainders):
        key = remainders[index % len(remainders)]
        index += 1
        if seats[key] < budget:
            seats[key] += 1
            remaining -= 1
    if remaining > 0:
        return None  # every key is saturated at the budget
    return seats


def apportion(fractions: Mapping[K, float], budget: int) -> dict[K, int]:
    """Best bounded-integer approximation of a ratio vector.

    Args:
        fractions: key -> nonnegative fraction; must sum to ~1.
        budget: maximum multiplicity per key (virtual links per interface).

    Returns:
        key -> multiplicity with ``1 <= sum(m) <= budget * len`` and each
        ``m <= budget``, minimizing ``max_k |m_k / sum(m) - fraction_k|``.

    Raises:
        FibbingError: on an empty/invalid fraction vector or budget < 1.
    """
    if budget < 1:
        raise FibbingError(f"virtual-link budget must be >= 1, got {budget}")
    items = {k: float(v) for k, v in fractions.items()}
    if not items:
        raise FibbingError("cannot apportion an empty fraction vector")
    total_fraction = sum(items.values())
    if total_fraction <= 0:
        raise FibbingError("fractions must have positive sum")
    if any(v < 0 for v in items.values()):
        raise FibbingError("fractions must be nonnegative")
    normalized = {k: v / total_fraction for k, v in items.items()}

    best: dict[K, int] | None = None
    best_error = float("inf")
    for total in range(1, budget * len(normalized) + 1):
        seats = _round_to_total(normalized, total, budget)
        if seats is None:
            continue
        realized_total = sum(seats.values())
        if realized_total == 0:
            continue
        error = max(
            abs(seats[k] / realized_total - normalized[k]) for k in normalized
        )
        if error < best_error - 1e-15:
            best_error, best = error, seats
    if best is None:
        raise FibbingError("no feasible apportionment (budget too small?)")
    return best


def approximate_routing(
    routing: Routing, budget: int, name: str | None = None
) -> tuple[Routing, dict[str, float]]:
    """Round every router's ratios to bounded multiplicities.

    Returns the realizable routing plus statistics:
    ``max_error`` (worst per-edge ratio deviation), ``virtual_links``
    (total multiplicity above one entry per used next hop — the number
    of *additional* FIB entries the lies create), and ``fib_entries``.
    """
    new_ratios: dict[Node, dict[Edge, float]] = {}
    max_error = 0.0
    virtual_links = 0
    fib_entries = 0
    for t, dag in routing.dags.items():
        ratios = routing.ratios.get(t, {})
        per_dest: dict[Edge, float] = {}
        for node in dag.nodes():
            if node == t:
                continue
            heads = dag.out_neighbors(node)
            if not heads:
                continue
            fractions = {head: ratios.get((node, head), 0.0) for head in heads}
            seats = apportion(fractions, budget)
            total = sum(seats.values())
            used = sum(1 for s in seats.values() if s > 0)
            fib_entries += total
            virtual_links += total - used
            for head in heads:
                realized = seats[head] / total
                per_dest[(node, head)] = realized
                max_error = max(max_error, abs(realized - fractions[head]))
        new_ratios[t] = per_dest
    approx = Routing(
        routing.dags, new_ratios, name=name or f"{routing.name}-{budget}NH"
    )
    stats = {
        "max_error": max_error,
        "virtual_links": float(virtual_links),
        "fib_entries": float(fib_entries),
    }
    return approx, stats
