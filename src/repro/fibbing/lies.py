"""Fake-LSA synthesis: turning multiplicities into OSPF lies.

For each (router ``u``, destination prefix) pair with desired next-hop
multiplicities ``m_v``, we inject ``m_v`` fake nodes attached to ``u``
whose forwarding address is ``v``.  Every lie advertises the prefix at
the same tiny cost ``delta`` (a fraction of the smallest real link
weight), giving three properties that make the construction correct:

* at ``u`` the lies beat every real route (``delta`` < any real path
  cost), so ``u``'s ECMP set is exactly the injected next hops with the
  injected multiplicities;
* at any other router ``w`` the lie route costs ``dist(w, u) + delta``,
  which always loses to ``w``'s own lies (cost ``delta``) — lies are
  effectively router-local, so each router's next-hop set is
  independently programmable;
* the prefix owner still delivers locally (its advertisement costs 0,
  beating ``delta``).
"""

from __future__ import annotations

from typing import Mapping

from repro.exceptions import FibbingError
from repro.graph.network import Edge, Network, Node
from repro.ospf.lsa import FakeNodeLsa
from repro.routing.splitting import Routing

#: The lie cost is this fraction of the smallest real link weight.
LIE_COST_FRACTION = 1e-3


def lie_cost(weights: Mapping[Edge, float]) -> float:
    """The per-lie route cost delta for a given weight assignment."""
    if not weights:
        raise FibbingError("cannot derive a lie cost from an empty weight map")
    smallest = min(weights.values())
    if smallest <= 0:
        raise FibbingError("link weights must be positive")
    return smallest * LIE_COST_FRACTION


def lies_for_destination(
    network: Network,
    weights: Mapping[Edge, float],
    prefix: str,
    owner: Node,
    multiplicities: Mapping[Node, Mapping[Node, int]],
) -> list[FakeNodeLsa]:
    """Fake LSAs realizing the given next-hop multiplicities for one prefix.

    Args:
        network: the real topology (used to validate forwarding addresses).
        weights: real link weights (used to size the lie cost).
        prefix: the destination prefix being lied about.
        owner: the router that legitimately advertises the prefix.
        multiplicities: router -> {next-hop neighbor -> multiplicity}.

    Raises:
        FibbingError: for lies at the owner, unknown neighbors, or
            non-positive multiplicities.
    """
    delta = lie_cost(weights)
    lies: list[FakeNodeLsa] = []
    for node, hops in multiplicities.items():
        if node == owner:
            raise FibbingError(f"cannot inject lies at the prefix owner {owner!r}")
        for neighbor, count in hops.items():
            if count <= 0:
                continue
            if not network.has_edge(node, neighbor):
                raise FibbingError(
                    f"next hop {neighbor!r} is not a neighbor of {node!r}"
                )
            for copy in range(count):
                lies.append(
                    FakeNodeLsa(
                        fake_id=f"fake:{prefix}:{node}:{neighbor}:{copy}",
                        attachment=str(node),
                        forwarding_neighbor=str(neighbor),
                        prefix=prefix,
                        attach_cost=delta / 2.0,
                        prefix_cost=delta / 2.0,
                    )
                )
    return lies


def lies_for_routing(
    network: Network,
    weights: Mapping[Edge, float],
    routing: Routing,
    budget: int,
) -> tuple[list[FakeNodeLsa], Routing]:
    """Compile a whole routing into lies (one prefix per destination).

    Ratios are first apportioned into multiplicities within ``budget``
    virtual links per interface; the returned realizable routing is what
    the lies will actually produce (useful for pre-verification).
    """
    from repro.fibbing.apportionment import apportion  # local: avoid cycle

    all_lies: list[FakeNodeLsa] = []
    realized_ratios: dict[Node, dict[Edge, float]] = {}
    for t, dag in routing.dags.items():
        ratios = routing.ratios.get(t, {})
        multiplicities: dict[Node, dict[Node, int]] = {}
        per_dest: dict[Edge, float] = {}
        for node in dag.nodes():
            if node == t:
                continue
            heads = dag.out_neighbors(node)
            if not heads:
                continue
            fractions = {head: ratios.get((node, head), 0.0) for head in heads}
            seats = apportion(fractions, budget)
            multiplicities[node] = {h: s for h, s in seats.items() if s > 0}
            total = sum(seats.values())
            for head in heads:
                per_dest[(node, head)] = seats[head] / total
        all_lies.extend(
            lies_for_destination(network, weights, str(t), t, multiplicities)
        )
        realized_ratios[t] = per_dest
    realizable = Routing(routing.dags, realized_ratios, name=f"{routing.name}-lies")
    return all_lies, realizable
