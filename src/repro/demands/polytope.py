"""Demand-polytope utilities (Section IV's proof machinery).

The hardness proofs restrict attention to demand matrices that are
(a) routable within the edge capacities and (b) *non-dominated*: no
other routable matrix is entry-wise at least as large.  These helpers
make those notions executable — the Theorem 1 tests use them to check
that the reduction's extreme demands D1/D2 are exactly the relevant
vertices, and they are generally useful for constructing adversarial
demand sets.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.demands.matrix import DemandMatrix, Pair
from repro.exceptions import DemandError
from repro.graph.network import Network
from repro.lp.mcf import min_congestion
from repro.lp.model import LinExpr, Model


def dominates(a: DemandMatrix, b: DemandMatrix, tolerance: float = 1e-9) -> bool:
    """True when ``a`` is entry-wise >= ``b`` and strictly larger somewhere."""
    pairs = set(a.pairs()) | set(b.pairs())
    strictly = False
    for pair in pairs:
        va, vb = a.get(*pair), b.get(*pair)
        if va < vb - tolerance:
            return False
        if va > vb + tolerance:
            strictly = True
    return strictly


def non_dominated(matrices: Iterable[DemandMatrix]) -> list[DemandMatrix]:
    """The subset of matrices not dominated by any other in the list."""
    matrices = list(matrices)
    survivors = []
    for i, candidate in enumerate(matrices):
        if not any(
            dominates(other, candidate)
            for j, other in enumerate(matrices)
            if j != i
        ):
            survivors.append(candidate)
    return survivors


def max_routable_scaling(network: Network, demand: DemandMatrix) -> float:
    """Largest ``lambda`` such that ``lambda * demand`` is routable.

    By scale invariance this is ``1 / OPTU(demand)``; the paper's proofs
    repeatedly scale demands onto the boundary of the routable polytope.
    """
    if not demand:
        raise DemandError("cannot scale an empty demand matrix")
    alpha = min_congestion(network, demand).alpha
    if alpha <= 0:
        raise DemandError("demand has zero optimal congestion; scaling unbounded")
    return 1.0 / alpha


def saturate(network: Network, demand: DemandMatrix) -> DemandMatrix:
    """Scale a demand matrix onto the routable polytope's boundary."""
    return demand.scaled(max_routable_scaling(network, demand))


def max_demand_along(
    network: Network,
    direction: Sequence[Pair],
    fixed: DemandMatrix | None = None,
) -> DemandMatrix:
    """Maximize total demand over the given pairs within capacities.

    Solves ``max sum_{p in direction} d_p`` subject to the joint demand
    (the optimized pairs plus the ``fixed`` background) being routable at
    congestion <= 1.  Used to find polytope vertices like Theorem 1's
    ``D1 = (2 SUM, 0)``.
    """
    if not direction:
        raise DemandError("need at least one pair to optimize")
    model = Model("max-demand")
    demand_vars = {pair: model.add_var(f"d[{pair}]") for pair in direction}
    background = fixed or DemandMatrix({})
    targets = sorted({t for (_s, t) in direction} | background.targets(), key=str)
    flow = {}
    for t in targets:
        edges = [e for e in network.edges() if e[0] != t]
        flow[t] = {e: model.add_var(f"g[{t}][{e}]") for e in edges}
        incident = {}
        for (u, v) in edges:
            incident.setdefault(u, ([], []))
            incident.setdefault(v, ([], []))
            incident[u][0].append((u, v))
            incident[v][1].append((u, v))
        for node, (out_list, in_list) in incident.items():
            if node == t:
                continue
            balance = LinExpr()
            for e in out_list:
                balance.add_term(flow[t][e], 1.0)
            for e in in_list:
                balance.add_term(flow[t][e], -1.0)
            var = demand_vars.get((node, t))
            if var is not None:
                balance.add_term(var, -1.0)
            model.add_eq(balance, background.get(node, t))
    for edge in network.finite_capacity_edges():
        usage = LinExpr()
        for t in targets:
            var = flow[t].get(edge)
            if var is not None:
                usage.add_term(var, 1.0)
        if usage.terms:
            model.add_le(usage, network.capacity(*edge))
    objective = LinExpr()
    for var in demand_vars.values():
        objective.add_term(var, 1.0)
    model.maximize(objective)
    solution = model.solve()
    combined = {
        pair: solution.value(var)
        for pair, var in demand_vars.items()
        if solution.value(var) > 1e-12
    }
    for pair, value in background.items():
        combined[pair] = combined.get(pair, 0.0) + value
    return DemandMatrix(combined)
