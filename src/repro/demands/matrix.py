"""Demand matrices (Section III): nonnegative demands between node pairs.

A demand matrix ``D = {d_st}`` assigns the traffic volume sent from each
source ``s`` to each target ``t``.  Zero entries are not stored; the
*support* of a matrix is the set of pairs with positive demand.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.exceptions import DemandError
from repro.graph.network import Node

Pair = tuple[Node, Node]


class DemandMatrix:
    """An immutable sparse matrix of inter-node traffic demands."""

    __slots__ = ("_demands",)

    def __init__(self, demands: Mapping[Pair, float]):
        cleaned: dict[Pair, float] = {}
        for (s, t), value in demands.items():
            if s == t:
                raise DemandError(f"demand from {s!r} to itself is not allowed")
            if value < 0:
                raise DemandError(f"negative demand {value} for pair ({s!r}, {t!r})")
            if value > 0:
                cleaned[(s, t)] = float(value)
        self._demands = cleaned

    # -- queries ----------------------------------------------------------

    def get(self, source: Node, target: Node) -> float:
        return self._demands.get((source, target), 0.0)

    def pairs(self) -> list[Pair]:
        """Support pairs (positive demand), in insertion order."""
        return list(self._demands)

    def items(self) -> Iterator[tuple[Pair, float]]:
        return iter(self._demands.items())

    def sources(self) -> set[Node]:
        return {s for (s, _t) in self._demands}

    def targets(self) -> set[Node]:
        return {t for (_s, t) in self._demands}

    def total(self) -> float:
        return sum(self._demands.values())

    def max_entry(self) -> float:
        return max(self._demands.values(), default=0.0)

    def demands_to(self, target: Node) -> dict[Node, float]:
        """Source -> demand for one destination (the per-DAG aggregation)."""
        return {s: d for (s, t), d in self._demands.items() if t == target}

    # -- algebra ----------------------------------------------------------

    def scaled(self, factor: float) -> "DemandMatrix":
        """The matrix with every entry multiplied by ``factor`` (>= 0)."""
        if factor < 0:
            raise DemandError(f"scaling factor must be >= 0, got {factor}")
        return DemandMatrix({pair: d * factor for pair, d in self._demands.items()})

    def restricted_to(self, nodes: Iterable[Node]) -> "DemandMatrix":
        """Drop every pair not fully inside ``nodes``."""
        keep = set(nodes)
        return DemandMatrix(
            {(s, t): d for (s, t), d in self._demands.items() if s in keep and t in keep}
        )

    def restricted_to_targets(self, targets: Iterable[Node]) -> "DemandMatrix":
        """Drop every pair whose destination is not in ``targets``."""
        keep = set(targets)
        return DemandMatrix(
            {(s, t): d for (s, t), d in self._demands.items() if t in keep}
        )

    def blended(self, other: "DemandMatrix", weight: float) -> "DemandMatrix":
        """Convex combination ``(1 - weight) * self + weight * other``."""
        if not 0.0 <= weight <= 1.0:
            raise DemandError(f"blend weight must be in [0, 1], got {weight}")
        pairs = set(self._demands) | set(other._demands)
        return DemandMatrix(
            {
                pair: (1.0 - weight) * self.get(*pair) + weight * other.get(*pair)
                for pair in pairs
            }
        )

    def close_to(self, other: "DemandMatrix", tolerance: float = 1e-9) -> bool:
        pairs = set(self._demands) | set(other._demands)
        return all(abs(self.get(*p) - other.get(*p)) <= tolerance for p in pairs)

    # -- constructors -------------------------------------------------------

    @classmethod
    def single(cls, source: Node, target: Node, volume: float) -> "DemandMatrix":
        return cls({(source, target): volume})

    @classmethod
    def uniform(cls, nodes: Iterable[Node], volume: float) -> "DemandMatrix":
        """All ordered pairs carry the same demand (a handy stress test)."""
        nodes = list(nodes)
        return cls({(s, t): volume for s in nodes for t in nodes if s != t})

    # -- dunder -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._demands)

    def __bool__(self) -> bool:
        return bool(self._demands)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DemandMatrix) and self._demands == other._demands

    def __hash__(self) -> int:
        return hash(frozenset(self._demands.items()))

    def __repr__(self) -> str:
        return f"DemandMatrix(pairs={len(self._demands)}, total={self.total():.3f})"
