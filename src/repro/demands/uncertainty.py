"""Demand uncertainty sets (Section III and VI).

The paper's evaluation parameterizes uncertainty by a *margin* ``x``: with
base demand ``d_st``, the actual demand may be anything in
``[d_st / x, d_st * x]``.  Because the performance ratio is invariant to
rescaling, the relevant set is the *cone* spanned by the box:
``{ D : exists lambda > 0 with lambda * lo_st <= d_st <= lambda * hi_st }``.
The fully *oblivious* set (margin = infinity, no base matrix needed) is the
nonnegative orthant over a pair support.

:class:`UncertaintySet` carries exactly what the slave LP needs: the pair
support, per-pair (lo, hi) bounds, and whether a scaling variable lambda
is required.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.demands.matrix import DemandMatrix, Pair
from repro.exceptions import DemandError
from repro.graph.network import Node


@dataclass(frozen=True)
class UncertaintySet:
    """A cone of demand matrices defined by per-pair interval bounds.

    Attributes:
        pairs: ordered support (pairs allowed to carry demand).
        bounds: pair -> (lo, hi); ``hi = math.inf`` means unbounded above.
        oblivious: True when the set is the whole nonnegative orthant, in
            which case no lambda scaling variable is needed in the LPs.
        label: human-readable description for experiment output.
    """

    pairs: tuple[Pair, ...]
    bounds: dict[Pair, tuple[float, float]]
    oblivious: bool
    label: str

    def __post_init__(self) -> None:
        for pair in self.pairs:
            lo, hi = self.bounds[pair]
            if lo < 0 or hi < lo:
                raise DemandError(f"bad bounds {self.bounds[pair]} for pair {pair!r}")

    def contains_direction(self, matrix: DemandMatrix, tolerance: float = 1e-7) -> bool:
        """True when some positive scaling of ``matrix`` satisfies the bounds.

        Checks cone membership: we search for a feasible lambda such that
        ``lambda * lo <= d <= lambda * hi`` for every support pair.
        """
        if self.oblivious:
            return all(pair in set(self.pairs) for pair in matrix.pairs())
        lam_low, lam_high = 0.0, math.inf
        for pair in self.pairs:
            d = matrix.get(*pair)
            lo, hi = self.bounds[pair]
            if d == 0.0:
                if lo > 0:
                    # Any positive lambda would force d >= lambda * lo > 0.
                    lam_high = 0.0
                continue
            if hi < math.inf:
                lam_low = max(lam_low, d / hi if hi > 0 else math.inf)
            if lo > 0:
                lam_high = min(lam_high, d / lo)
        extra = set(matrix.pairs()) - set(self.pairs)
        if extra:
            return False
        return lam_low <= lam_high * (1.0 + tolerance) and lam_high > 0


def margin_box(base: DemandMatrix, margin: float, label: str | None = None) -> UncertaintySet:
    """The paper's margin-``x`` uncertainty set around a base matrix.

    ``margin = 1`` collapses to the ray through the base matrix (no
    uncertainty); larger margins widen each entry to
    ``[d_st / margin, d_st * margin]``.
    """
    if margin < 1.0:
        raise DemandError(f"margin must be >= 1, got {margin}")
    if not base:
        raise DemandError("margin_box needs a base matrix with positive entries")
    pairs = tuple(base.pairs())
    bounds = {
        pair: (base.get(*pair) / margin, base.get(*pair) * margin) for pair in pairs
    }
    return UncertaintySet(
        pairs=pairs,
        bounds=bounds,
        oblivious=False,
        label=label or f"margin={margin:g}",
    )


def oblivious_set(nodes: Iterable[Node], label: str = "oblivious") -> UncertaintySet:
    """All demand matrices over the ordered pairs of ``nodes`` (margin = inf)."""
    nodes = list(nodes)
    if len(nodes) < 2:
        raise DemandError("oblivious_set needs at least two nodes")
    pairs = tuple((s, t) for s in nodes for t in nodes if s != t)
    return oblivious_pairs(pairs, label=label)


def oblivious_pairs(pairs: Iterable[Pair], label: str = "oblivious") -> UncertaintySet:
    """All demand matrices supported on an explicit pair list.

    Used when only some nodes are traffic sources (the running example's
    two users, the hardness gadgets' s1/s2).
    """
    pairs = tuple(pairs)
    if not pairs:
        raise DemandError("oblivious_pairs needs at least one pair")
    bounds = {pair: (0.0, math.inf) for pair in pairs}
    return UncertaintySet(pairs=pairs, bounds=bounds, oblivious=True, label=label)


def single_matrix_set(base: DemandMatrix, label: str | None = None) -> UncertaintySet:
    """The degenerate set containing (all scalings of) one matrix."""
    return margin_box(base, 1.0, label=label or "exact")


def representative_matrix(uncertainty: UncertaintySet) -> DemandMatrix:
    """A canonical interior matrix of the cone, used to seed optimizers.

    For a margin box the geometric mean ``sqrt(lo * hi)`` recovers the
    base matrix the box was built from; for the oblivious set we fall
    back to the uniform all-pairs matrix.
    """
    if uncertainty.oblivious:
        return DemandMatrix({pair: 1.0 for pair in uncertainty.pairs})
    demands: dict[Pair, float] = {}
    for pair in uncertainty.pairs:
        lo, hi = uncertainty.bounds[pair]
        demands[pair] = math.sqrt(lo * hi) if math.isfinite(hi) else max(lo, 1.0)
    return DemandMatrix(demands)
