"""The bimodal demand model (Medina et al. [23], used for Figs. 8-9).

"A small fraction of all pairs of routers exchange large quantities of
traffic, and the other pairs send small flows."  We sample which pairs are
elephants with a seeded RNG, then draw elephant/mouse volumes from two
well-separated ranges.
"""

from __future__ import annotations

from repro.demands.matrix import DemandMatrix
from repro.exceptions import DemandError
from repro.graph.network import Network
from repro.utils.seeding import rng_from_seed


def bimodal_matrix(
    network: Network,
    seed: int,
    elephant_fraction: float = 0.2,
    elephant_volume: float = 1.0,
    mouse_volume: float = 0.05,
    jitter: float = 0.25,
) -> DemandMatrix:
    """Sample a bimodal matrix over all ordered node pairs.

    Args:
        network: the topology (only the node set is used).
        seed: RNG seed; identical seeds reproduce identical matrices.
        elephant_fraction: probability that a pair is an elephant.
        elephant_volume: mean volume for elephant pairs.
        mouse_volume: mean volume for mouse pairs.
        jitter: relative half-width of the uniform volume perturbation,
            e.g. 0.25 draws from [0.75 * mean, 1.25 * mean].
    """
    if not 0.0 < elephant_fraction < 1.0:
        raise DemandError(f"elephant_fraction must be in (0, 1), got {elephant_fraction}")
    if elephant_volume <= mouse_volume:
        raise DemandError("elephant_volume must exceed mouse_volume for a bimodal model")
    if not 0.0 <= jitter < 1.0:
        raise DemandError(f"jitter must be in [0, 1), got {jitter}")
    rng = rng_from_seed(seed, "bimodal", network.name)
    demands: dict[tuple, float] = {}
    nodes = network.nodes()
    for s in nodes:
        for t in nodes:
            if s == t:
                continue
            mean = elephant_volume if rng.random() < elephant_fraction else mouse_volume
            low, high = mean * (1.0 - jitter), mean * (1.0 + jitter)
            demands[(s, t)] = float(rng.uniform(low, high))
    return DemandMatrix(demands)
