"""The gravity demand model (Roughan et al. [22], used for Figs. 6-7, Table I).

"The amount of flow sent from router i to router j is proportional to the
product of i's and j's total outgoing capacities."  The matrix is then
scaled so the largest entry equals ``peak`` — absolute scale is irrelevant
to the performance-ratio metric (Section III notes scale invariance), but
a sensible peak keeps the LPs well conditioned.
"""

from __future__ import annotations

from repro.demands.matrix import DemandMatrix
from repro.exceptions import DemandError
from repro.graph.network import Network


def gravity_matrix(network: Network, peak: float = 1.0) -> DemandMatrix:
    """Deterministic gravity matrix over all ordered node pairs.

    Args:
        network: the capacitated topology (outgoing capacity = node mass).
        peak: value assigned to the largest demand after rescaling.
    """
    if peak <= 0:
        raise DemandError(f"peak must be > 0, got {peak}")
    nodes = network.nodes()
    if len(nodes) < 2:
        raise DemandError("gravity model needs at least two nodes")
    mass = {node: network.total_capacity_out(node) for node in nodes}
    raw: dict[tuple, float] = {}
    for s in nodes:
        for t in nodes:
            if s != t:
                raw[(s, t)] = mass[s] * mass[t]
    largest = max(raw.values())
    if largest <= 0:
        raise DemandError("gravity model degenerate: all node masses are zero")
    scale = peak / largest
    return DemandMatrix({pair: value * scale for pair, value in raw.items()})
