"""Traffic demand models: matrices, gravity/bimodal samplers, uncertainty sets."""

from repro.demands.matrix import DemandMatrix
from repro.demands.gravity import gravity_matrix
from repro.demands.bimodal import bimodal_matrix
from repro.demands.uncertainty import UncertaintySet, margin_box, oblivious_set

__all__ = [
    "DemandMatrix",
    "gravity_matrix",
    "bimodal_matrix",
    "UncertaintySet",
    "margin_box",
    "oblivious_set",
]
