"""Command-line interface: run experiments, sweep grids, benchmark, inspect.

Examples:
    repro list
    repro run running-example
    repro run fig6 --full
    repro run table1 --csv /tmp/table1.csv --jobs 4
    repro sweep table1 --jobs 4 --out artifacts/
    repro sweep fig11 --full --jobs 8        # topology-parallel stretch
    repro sweep fig11 --full --shard 0/4 --cache-dir /shared/store
    repro sweep fig9 --cache-dir /fast/local --cache-dir /shared/store
    repro cache merge shard0 shard1 --into merged
    repro cache stats merged && repro cache verify merged
    repro bench fig6 --jobs 2                # emits BENCH_fig6.json
    repro bench all --out bench/             # every declared benchmark
    repro bench fig6 --baseline BENCH_fig6.json --fail-on-regress 20
    repro topo geant
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.bench.baseline import compare_to_baseline, load_baselines
from repro.bench.harness import run_benchmark, write_bench_result
from repro.bench.registry import BENCHMARKS, benchmark_names, get_benchmark
from repro.config import ExperimentConfig
from repro.exceptions import ReproError
from repro.lp import backend as lp_backend
from repro.experiments.registry import (
    EXPERIMENTS,
    experiment_spec,
    run_experiment,
    sweepable_experiment_ids,
)
from repro.runner.artifacts import write_artifacts
from repro.runner.campaign import (
    DEFAULT_CLAIM_TTL,
    CampaignError,
    ClaimPolicy,
    build_manifest,
    default_owner,
    load_manifest,
    parse_shard,
    write_manifest,
)
from repro.runner.executor import run_sweep
from repro.runner.faults import (
    DEFAULT_MAX_ATTEMPTS,
    FAULTS_ENV,
    FailurePolicy,
    parse_faults,
)
from repro.runner.store import (
    CellStore,
    DirStore,
    OverlayStore,
    default_cache_dir,
    merge_stores,
    open_store,
    store_stats,
    verify_store,
)
from repro.topologies.zoo import available_topologies, load_topology, topology_info
from repro.utils.tables import format_csv, format_markdown


def _experiment_config(args: argparse.Namespace) -> ExperimentConfig:
    """The single ExperimentConfig source for a CLI invocation.

    ``--full`` selects the paper-scale config (margins *and* topology
    subsets, via ``config.full``); otherwise the environment decides.
    """
    return ExperimentConfig.paper() if args.full else ExperimentConfig.from_environment()


def _cache_from(args: argparse.Namespace, default_on: bool) -> CellStore | None:
    """The result store an invocation should use, if any.

    ``repro sweep`` caches by default (``default_on=True``); ``repro run``
    solves fresh unless ``--cache-dir`` opts in, so editing solver code and
    re-running the established command can never serve stale rows.
    Repeating ``--cache-dir`` layers the directories into a read-through
    :class:`~repro.runner.store.OverlayStore` (first = local fast store,
    later = shared authoritative; writes land in every layer).
    """
    if args.no_cache:
        return None
    if args.cache_dir:
        return open_store(args.cache_dir)
    return DirStore(default_cache_dir()) if default_on else None


def _store_root(store: CellStore):
    """The directory campaign metadata (claims, manifest) lives under.

    An overlay anchors its campaign state at the *last* (shared,
    authoritative) layer: claims only coordinate if every host overlaying
    the same shared store reads and writes them in that shared
    directory, and the manifest's completion counts describe the store a
    resumed run will actually be served from.
    """
    anchor = store.stores[-1] if isinstance(store, OverlayStore) else store
    if isinstance(anchor, DirStore):
        return anchor.root
    raise ReproError(
        f"store {store.describe()} has no directory root for campaign metadata"
    )


def _write_csv(table, path: str | None) -> None:
    if not path:
        return
    with open(path, "w") as handle:
        handle.write(format_csv(table))
    print(f"CSV written to {path}")


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(eid) for eid in EXPERIMENTS)
    sweepable = set(sweepable_experiment_ids())
    for experiment in EXPERIMENTS.values():
        tag = " [sweep]" if experiment.id in sweepable else ""
        print(f"{experiment.id:<{width}}  {experiment.description}{tag}")
    return 0


def _failure_policy(args: argparse.Namespace) -> FailurePolicy:
    """The retry/timeout/quarantine policy a CLI invocation selected."""
    return FailurePolicy(
        max_attempts=args.max_attempts,
        max_failures=args.max_failures,
        keep_going=args.keep_going,
        cell_timeout=args.cell_timeout,
    )


def _apply_faults(args: argparse.Namespace) -> None:
    """Resolve --inject-fault into the environment the fault layer reads.

    Flag specs are appended to any pre-existing ``$REPRO_FAULTS`` (so a
    CI job can set a base plan and a step can add to it), validated up
    front so a bad grammar fails before any cell solves, and exported so
    sweep worker processes inherit the plan.
    """
    injected = getattr(args, "inject_fault", None)
    if not injected:
        return
    parts = [os.environ.get(FAULTS_ENV, "")] + list(injected)
    plan = ";".join(part for part in parts if part)
    parse_faults(plan)  # fail fast on a bad spec
    os.environ[FAULTS_ENV] = plan


def _cmd_run(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    experiment = EXPERIMENTS[args.experiment]
    started = time.time()
    if experiment.grid is not None:
        report = run_sweep(
            experiment.grid(config),
            jobs=args.jobs,
            cache=_cache_from(args, default_on=False),
            failures=_failure_policy(args),
        )
        table = report.table()
        summary = f" [{report.summary()}]"
        if report.cached:
            # The cache keys hash config, not code: after editing solver code,
            # cached rows are stale until CACHE_VERSION is bumped.
            print(
                f"note: {report.cached} of {len(report.results)} cells served from "
                "the result cache; pass --no-cache to re-solve",
                file=sys.stderr,
            )
    else:
        if args.jobs > 1 or args.cache_dir or args.no_cache:
            print(
                f"note: {args.experiment} has no cell grid; --jobs/--cache-dir "
                "apply only to sweepable experiments (see `repro list`)",
                file=sys.stderr,
            )
        table = run_experiment(args.experiment, config)
        summary = ""
    elapsed = time.time() - started
    print(format_markdown(table))
    print(f"(completed in {elapsed:.1f}s){summary}")
    _write_csv(table, args.csv)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    spec = experiment_spec(args.experiment, config)
    shard = parse_shard(args.shard) if args.shard else None
    cache = _cache_from(args, default_on=True)
    if (shard is not None or args.steal) and cache is None:
        raise ReproError(
            "--shard/--steal coordinate through a result store; drop --no-cache"
        )
    claims = None
    if shard is not None or args.steal:
        claims = ClaimPolicy(
            root=_store_root(cache), owner=default_owner(), ttl=args.claim_ttl
        )
    try:
        report = run_sweep(
            spec,
            jobs=args.jobs,
            cache=cache,
            shard=shard,
            claims=claims,
            steal=args.steal,
            failures=_failure_policy(args),
        )
    except BaseException as error:
        # An aborted sweep still resolved cells and logged lifecycle
        # events; flush them so the failure is triageable from artifacts.
        partial = getattr(error, "partial_report", None)
        if partial is not None and args.out:
            for path in write_artifacts(partial, args.out):
                print(f"partial artifact written to {path}", file=sys.stderr)
        raise
    table = None
    if report.table_ready:
        table = report.table()
        print(format_markdown(table))
        if report.quarantined:
            print(
                f"warning: {report.quarantined} cell(s) quarantined after repeated "
                "failures; their rows are omitted (triage: `repro cache failures`)",
                file=sys.stderr,
            )
    else:
        print(
            f"partial sweep ({len(report.skipped)} of {len(spec.cells)} cells left "
            "to other shards/owners); no table emitted -- merge the campaign "
            "stores (`repro cache merge`) and re-run against the merged store",
            file=sys.stderr,
        )
    print(report.summary())
    if cache is not None:
        manifest = build_manifest(spec, report, cache, shard=shard, policy=claims)
        manifest_file = write_manifest(manifest, _store_root(cache))
        print(f"campaign manifest written to {manifest_file}")
    if args.out:
        for path in write_artifacts(report, args.out):
            print(f"artifact written to {path}")
    if table is not None:
        _write_csv(table, args.csv)
    elif args.csv:
        print("note: --csv skipped for a partial sweep", file=sys.stderr)
    # Exit 3 = "ran to completion, but some cells are quarantined": distinct
    # from 0 (clean, possibly shard-partial) and 1 (hard error) so CI and
    # campaign drivers can branch on it.
    return 3 if report.quarantined else 0


def _cache_targets(paths: list[str]) -> list[DirStore]:
    return [DirStore(path) for path in (paths or [default_cache_dir()])]


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    for store in _cache_targets(args.stores):
        stats = store_stats(store)
        mib = stats["bytes"] / (1024 * 1024)
        print(f"{stats['root']}: {stats['entries']} entries, {mib:.2f} MiB")
        for version, count in sorted(stats["by_version"].items()):
            print(f"  version {version}: {count}")
        for kind, count in sorted(stats["by_kind"].items()):
            print(f"  kind {kind}: {count}")
        if stats["unreadable"]:
            print(f"  unreadable: {stats['unreadable']}")
        try:
            manifest = load_manifest(store.root)
        except CampaignError:
            continue
        shard_info = manifest.get("shard", {})
        print(
            f"  campaign: {manifest.get('experiment')} "
            f"shard {shard_info.get('index')}/{shard_info.get('count')}, "
            f"{manifest.get('completed_cells')}/{manifest.get('cells_total')} "
            "cells completed"
        )
    return 0


def _cmd_cache_merge(args: argparse.Namespace) -> int:
    dest = DirStore(args.into)
    sources = [DirStore(path) for path in args.sources]
    stats = merge_stores(sources, dest)
    print(f"merged {len(sources)} store(s) into {dest.describe()}: {stats.summary()}")
    # Conflicts mean two stores hold different results for the same
    # content key -- determinism is broken somewhere; surface it loudly.
    return 1 if stats.conflicting else 0


def _cmd_cache_failures(args: argparse.Namespace) -> int:
    """List (or clear) the persisted failure records of each store."""
    for store in _cache_targets(args.stores):
        if args.clear:
            cleared = store.clear_failures()
            print(f"{store.describe()}: cleared {cleared} failure record(s)")
            continue
        records = sorted(store.failure_records(), key=lambda item: item[0])
        print(f"{store.describe()}: {len(records)} failure record(s)")
        for key, payload in records:
            print(
                f"  {key}  {payload.get('error_class', '?'):<13} "
                f"attempts={payload.get('attempts', '?')}  "
                f"{payload.get('error_type', '?')}: {payload.get('message', '')}"
            )
    return 0


def _cmd_cache_verify(args: argparse.Namespace) -> int:
    failed = False
    for store in _cache_targets(args.stores):
        report = verify_store(store)
        print(f"{store.describe()}: {report.summary()}")
        for key, reason in report.problems:
            print(f"  {key}: {reason}", file=sys.stderr)
        failed = failed or not report.ok
    return 1 if failed else 0


def _resolve_benchmark_names(requested: list[str]) -> list[str]:
    """Expand "all" and validate names (order preserved, no duplicates)."""
    if "all" in requested:
        return benchmark_names()
    names: list[str] = []
    for name in requested:
        get_benchmark(name)  # raises ExperimentError for unknown names
        if name not in names:
            names.append(name)
    return names


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.list:
        config = _experiment_config(args)
        width = max(len(name) for name in BENCHMARKS)
        for benchmark in BENCHMARKS.values():
            print(f"{benchmark.name:<{width}}  {benchmark.description}")
            print(f"{'':<{width}}  grid: {benchmark.grid_summary(config)}")
        return 0
    if not args.benchmarks:
        print("error: name at least one benchmark (or 'all'; see --list)", file=sys.stderr)
        return 1
    config = _experiment_config(args)
    # Benchmarks measure solve cost, so they never cache by default;
    # --cache-dir opts in (CI's warm self-compare leg uses this).
    cache = _cache_from(args, default_on=False)
    # Loaded before any benchmark runs: a bad path fails fast, and an
    # --out that overlaps the baseline directory can't clobber the
    # reference timings before they are read.
    baselines = load_baselines(args.baseline) if args.baseline is not None else None
    if args.profile and args.jobs > 1:
        print(
            "note: --profile covers the coordinating process only; "
            "worker-side solves (--jobs > 1) are not attributed",
            file=sys.stderr,
        )
    payloads = []
    for name in _resolve_benchmark_names(args.benchmarks):
        result = run_benchmark(
            name,
            config,
            jobs=args.jobs,
            cache=cache,
            profile=args.profile,
            failures=_failure_policy(args),
        )
        path = write_bench_result(result, args.out)
        print(f"{result.summary()} -> {path}")
        if result.profile:
            top = result.profile[0]
            print(
                f"  profile: top cumulative {top['function']} "
                f"({top['cumtime_seconds']:.2f}s, {top['file']}:{top['line']}); "
                f"full top-{len(result.profile)} in {path}"
            )
        payloads.append(result.payload())
    if baselines is None:
        return 0
    failed = False
    for payload in payloads:
        comparison = compare_to_baseline(payload, baselines, args.fail_on_regress)
        print(comparison.message)
        failed = failed or comparison.failed
    return 1 if failed else 0


def _cmd_backends(_args: argparse.Namespace) -> int:
    active = lp_backend.active_backend_name()
    width = max(len(name) for name in lp_backend.backend_names())
    for name in lp_backend.backend_names():
        available = name in lp_backend.available_backends()
        marks = []
        if name == active:
            marks.append("active")
        marks.append("available" if available else "unavailable")
        print(f"{name:<{width}}  [{', '.join(marks)}]")
    if lp_backend.warm_starts_enabled():
        print("warm starts: enabled (REPRO_LP_WARM)")
    return 0


def _cmd_topo(args: argparse.Namespace) -> int:
    if args.name is None:
        for name in available_topologies():
            spec = topology_info(name)
            print(f"{name:<14} {spec.kind:<10} {spec.nodes:>3} nodes "
                  f"{spec.links:>3} links  [{spec.paper_label}]")
        return 0
    spec = topology_info(args.name)
    network = load_topology(args.name)
    print(f"name:        {spec.name}")
    print(f"paper label: {spec.paper_label}")
    print(f"kind:        {spec.kind}")
    print(f"nodes:       {network.num_nodes}")
    print(f"links:       {network.num_edges // 2} undirected "
          f"({network.num_edges} directed)")
    print(f"note:        {spec.note}")
    return 0


def _positive_int(value: str) -> int:
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}") from None
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def _non_negative_int(value: str) -> int:
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}") from None
    if parsed < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {parsed}")
    return parsed


def _non_negative_float(value: str) -> float:
    try:
        parsed = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {value!r}") from None
    if parsed < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {parsed}")
    return parsed


def _add_runner_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for sweep cells (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH", action="append",
        help="result store directory ($REPRO_CACHE_DIR, $XDG_CACHE_HOME/repro, "
        "or ~/.cache/repro; `sweep` caches by default, `run` only when this "
        "flag is given).  Repeat to layer stores read-through: first is the "
        "local fast layer, last is the shared authoritative one",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="solve every cell even if a cached result exists",
    )
    parser.add_argument(
        "--lp-backend", metavar="NAME",
        help="LP solver backend (default: $REPRO_LP_BACKEND or 'highs'; "
        "see `repro backends` and docs/lp_backends.md)",
    )
    parser.add_argument(
        "--cell-timeout", type=_non_negative_float, default=None, metavar="SECONDS",
        help="wall-clock budget per cell, enforced by a watchdog in parallel "
        "runs (default: the cell kind's own budget; 0 disables)",
    )
    parser.add_argument(
        "--max-attempts", type=_positive_int, default=DEFAULT_MAX_ATTEMPTS, metavar="N",
        help="attempts per cell before quarantining it (transient errors "
        f"retry with backoff; default: {DEFAULT_MAX_ATTEMPTS})",
    )
    parser.add_argument(
        "--max-failures", type=_non_negative_int, default=0, metavar="N",
        help="tolerate up to N quarantined cells before aborting the sweep "
        "(default: 0 -- the first quarantine aborts)",
    )
    parser.add_argument(
        "--keep-going", action="store_true",
        help="never abort on quarantined cells: skip their rows, persist "
        "their failure records, and exit 3 if any (docs/campaigns.md)",
    )
    parser.add_argument(
        "--inject-fault", metavar="SPEC", action="append",
        help="deterministic fault injection for testing the failure domain, "
        "e.g. 'site=solve,action=raise,exc=OSError,times=1' (repeatable; "
        f"appended to ${FAULTS_ENV}; see docs/campaigns.md)",
    )


def _apply_lp_backend(args: argparse.Namespace) -> None:
    """Resolve --lp-backend into the environment the LP layer reads.

    The flag is exported (rather than threaded through call signatures)
    so sweep worker processes inherit the selection, and validated up
    front so an unknown or unavailable backend fails before any cell
    solves.  Fingerprints read the same environment variable, keeping
    cache keys and the actual solver in lockstep.
    """
    name = getattr(args, "lp_backend", None)
    if name:
        try:
            lp_backend.get_backend(name)  # fail before any cell solves
        except lp_backend.BackendUnavailable as error:
            raise ReproError(str(error)) from error
        os.environ[lp_backend.BACKEND_ENV] = name


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="COYOTE (CoNEXT 2016) reproduction: experiments and topologies",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="run one experiment and print its table")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS), metavar="EXPERIMENT")
    run.add_argument("--full", action="store_true", help="use the paper-scale grid")
    run.add_argument("--csv", metavar="PATH", help="also write the table as CSV")
    _add_runner_flags(run)
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser(
        "sweep",
        help="run a grid experiment (fig6-fig11, table1) through the parallel "
        "sweep runner",
    )
    sweep.add_argument(
        "experiment", choices=sorted(sweepable_experiment_ids()), metavar="EXPERIMENT"
    )
    sweep.add_argument("--full", action="store_true", help="use the paper-scale grid")
    sweep.add_argument("--csv", metavar="PATH", help="also write the table as CSV")
    sweep.add_argument(
        "--out", metavar="DIR",
        help="write JSON artifacts (table + per-cell results + lifecycle events)",
    )
    sweep.add_argument(
        "--shard", metavar="I/N",
        help="solve only the cells hashing into shard I of N (0-based); other "
        "shards' cells are skipped, the run is coordinated through claim "
        "files, and a campaign manifest records progress (docs/campaigns.md)",
    )
    sweep.add_argument(
        "--steal", action="store_true",
        help="after this shard's own cells, also solve unstored foreign cells "
        "whose claims are absent or expired (bounded duplicate solves on "
        "claim-expiry races are the documented cost)",
    )
    sweep.add_argument(
        "--claim-ttl", type=_non_negative_float, default=DEFAULT_CLAIM_TTL,
        metavar="SECONDS",
        help="seconds before a claim counts as abandoned and becomes stealable "
        f"(default: {DEFAULT_CLAIM_TTL:g}; must outlive the slowest chunk)",
    )
    _add_runner_flags(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    cache = sub.add_parser(
        "cache", help="inspect, merge, and verify result stores (docs/campaigns.md)"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    stats = cache_sub.add_parser(
        "stats", help="entry counts, sizes, and campaign progress per store"
    )
    stats.add_argument(
        "stores", nargs="*", metavar="DIR",
        help="store roots (default: the default cache directory)",
    )
    stats.set_defaults(func=_cmd_cache_stats)
    merge = cache_sub.add_parser(
        "merge", help="fold every valid entry of the source stores into one store"
    )
    merge.add_argument("sources", nargs="+", metavar="SRC", help="source store roots")
    merge.add_argument(
        "--into", required=True, metavar="DEST", help="destination store root"
    )
    merge.set_defaults(func=_cmd_cache_merge)
    verify = cache_sub.add_parser(
        "verify", help="re-hash every entry's fingerprint against its filename"
    )
    verify.add_argument(
        "stores", nargs="*", metavar="DIR",
        help="store roots (default: the default cache directory)",
    )
    verify.set_defaults(func=_cmd_cache_verify)
    failures = cache_sub.add_parser(
        "failures",
        help="list quarantined cells' persisted failure records (--clear re-arms them)",
    )
    failures.add_argument(
        "stores", nargs="*", metavar="DIR",
        help="store roots (default: the default cache directory)",
    )
    failures.add_argument(
        "--clear", action="store_true",
        help="delete every failure record so the cells are re-attempted",
    )
    failures.set_defaults(func=_cmd_cache_failures)

    bench = sub.add_parser(
        "bench",
        help="time declared benchmarks through the sweep runner and emit "
        "BENCH_<name>.json; with --baseline, gate on wall-clock regressions",
    )
    bench.add_argument(
        "benchmarks", nargs="*", metavar="BENCHMARK",
        help="benchmark names (or 'all'); see --list",
    )
    bench.add_argument(
        "--list", action="store_true", help="list declared benchmarks and their grids"
    )
    bench.add_argument("--full", action="store_true", help="use the paper-scale grid")
    bench.add_argument(
        "--out", metavar="DIR", default=".",
        help="directory for BENCH_<name>.json results (default: current directory)",
    )
    bench.add_argument(
        "--baseline", metavar="PATH",
        help="BENCH_*.json file or directory of them to compare wall-clock against",
    )
    bench.add_argument(
        "--fail-on-regress", type=_non_negative_float, default=10.0, metavar="PCT",
        help="with --baseline: exit non-zero when wall-clock regresses more than "
        "PCT percent (default: 10)",
    )
    bench.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and embed the top cumulative functions in "
        "BENCH_<name>.json (diagnosis aid; inflates wall-clock, so don't "
        "record baselines from profiled runs)",
    )
    _add_runner_flags(bench)
    bench.set_defaults(func=_cmd_bench)

    topo = sub.add_parser("topo", help="list topologies or show one")
    topo.add_argument("name", nargs="?", help="topology name (omit to list all)")
    topo.set_defaults(func=_cmd_topo)

    backends = sub.add_parser(
        "backends", help="list LP solver backends and which one is active"
    )
    backends.set_defaults(func=_cmd_backends)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        _apply_lp_backend(args)
        _apply_faults(args)
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
