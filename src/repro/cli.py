"""Command-line interface: run experiments, inspect topologies.

Examples:
    repro list
    repro run running-example
    repro run fig6 --full
    repro run table1 --csv /tmp/table1.csv
    repro topo geant
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.config import ExperimentConfig
from repro.exceptions import ReproError
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.topologies.zoo import available_topologies, load_topology, topology_info
from repro.utils.tables import format_csv, format_markdown


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(eid) for eid in EXPERIMENTS)
    for experiment in EXPERIMENTS.values():
        print(f"{experiment.id:<{width}}  {experiment.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = ExperimentConfig.paper() if args.full else ExperimentConfig.from_environment()
    started = time.time()
    table = run_experiment(args.experiment, config)
    elapsed = time.time() - started
    print(format_markdown(table))
    print(f"(completed in {elapsed:.1f}s)")
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(format_csv(table))
        print(f"CSV written to {args.csv}")
    return 0


def _cmd_topo(args: argparse.Namespace) -> int:
    if args.name is None:
        for name in available_topologies():
            spec = topology_info(name)
            print(f"{name:<14} {spec.kind:<10} {spec.nodes:>3} nodes "
                  f"{spec.links:>3} links  [{spec.paper_label}]")
        return 0
    spec = topology_info(args.name)
    network = load_topology(args.name)
    print(f"name:        {spec.name}")
    print(f"paper label: {spec.paper_label}")
    print(f"kind:        {spec.kind}")
    print(f"nodes:       {network.num_nodes}")
    print(f"links:       {network.num_edges // 2} undirected "
          f"({network.num_edges} directed)")
    print(f"note:        {spec.note}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="COYOTE (CoNEXT 2016) reproduction: experiments and topologies",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="run one experiment and print its table")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS), metavar="EXPERIMENT")
    run.add_argument("--full", action="store_true", help="use the paper-scale grid")
    run.add_argument("--csv", metavar="PATH", help="also write the table as CSV")
    run.set_defaults(func=_cmd_run)

    topo = sub.add_parser("topo", help="list topologies or show one")
    topo.add_argument("name", nargs="?", help="topology name (omit to list all)")
    topo.set_defaults(func=_cmd_topo)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
