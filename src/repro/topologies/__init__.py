"""Evaluation topologies: Internet Topology Zoo equivalents plus gadgets."""

from repro.topologies.zoo import (
    TopologySpec,
    available_topologies,
    load_topology,
    topology_info,
    TABLE1_TOPOLOGIES,
    STRETCH_TOPOLOGIES,
)
from repro.topologies.generators import (
    running_example_network,
    prototype_network,
    integer_gadget_network,
    path_sink_network,
    ring_network,
    grid_network,
    ring_with_chords,
    tree_with_chords,
)

__all__ = [
    "TopologySpec",
    "available_topologies",
    "load_topology",
    "topology_info",
    "TABLE1_TOPOLOGIES",
    "STRETCH_TOPOLOGIES",
    "running_example_network",
    "prototype_network",
    "integer_gadget_network",
    "path_sink_network",
    "ring_network",
    "grid_network",
    "ring_with_chords",
    "tree_with_chords",
]
