"""Network generators: paper gadgets and synthetic backbones.

Paper-specific instances:

* :func:`running_example_network` — Fig. 1 (and the Appendix B variant
  with infinite side-link capacities);
* :func:`prototype_network` — Fig. 12a, the mininet triangle;
* :func:`integer_gadget_network` — the INTEGER gadget / BIPARTITION
  reduction of Theorem 1 (Figs. 2-3);
* :func:`path_sink_network` — the Omega(|V|) lower-bound instance of
  Theorem 4 (Fig. 4).

Synthetic backbones (:func:`ring_with_chords`, :func:`tree_with_chords`)
stand in for Topology Zoo graphs whose exact link lists we do not embed;
they are deterministic given a seed and match the published node/link
counts (see ``repro.topologies.zoo``).
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import TopologyError
from repro.graph.network import Network
from repro.utils.seeding import rng_from_seed

#: Stand-in for "arbitrarily high" capacity that keeps LPs bounded: any
#: value far above total achievable demand behaves as infinite but still
#: appears in capacity constraints.
LARGE_CAPACITY = 1e6


def running_example_network(infinite_side_links: bool = False) -> Network:
    """The 4-node example of Fig. 1 (s1, s2, v, t; unit capacities).

    Args:
        infinite_side_links: when True, links (s1,s2), (s1,v), (s2,v) get
            effectively infinite capacity — the Section V-C / Appendix B
            variant whose optimal oblivious splitting is the inverse
            golden ratio (worst-case utilization ``sqrt(5) - 1``).
    """
    side = LARGE_CAPACITY if infinite_side_links else 1.0
    return Network.from_undirected(
        [
            ("s1", "s2", side),
            ("s1", "v", side),
            ("s2", "v", side),
            ("s2", "t", 1.0),
            ("v", "t", 1.0),
        ],
        name="running-example",
    )


def prototype_network(bandwidth: float = 1.0) -> Network:
    """Fig. 12a: the triangle used by the prototype evaluation.

    Nodes s1, s2 and target t, every link of equal ``bandwidth``
    (1 Mbps in the paper's mininet run).
    """
    return Network.from_undirected(
        [
            ("s1", "s2", bandwidth),
            ("s1", "t", bandwidth),
            ("s2", "t", bandwidth),
        ],
        name="prototype-triangle",
    )


def integer_gadget_network(weights: Sequence[int]) -> Network:
    """The BIPARTITION reduction instance of Theorem 1 (Figs. 2-3).

    For each integer ``w_i`` an INTEGER gadget with vertices
    ``x1_i, x2_i, m_i`` is created: bidirectional edges
    (x1_i, x2_i), (x1_i, m_i), (x2_i, m_i) of capacity ``w_i``, plus
    directed edges (s1, x1_i) and (s2, x2_i) of capacity ``2 * w_i`` and
    (m_i, t) of capacity ``2 * w_i``.
    """
    if not weights:
        raise TopologyError("integer gadget needs at least one weight")
    if any(w <= 0 for w in weights):
        raise TopologyError("integer gadget weights must be positive")
    net = Network(name=f"integer-gadget-{len(weights)}")
    for i, w in enumerate(weights):
        x1, x2, mid = f"x1_{i}", f"x2_{i}", f"m_{i}"
        for u, v in ((x1, x2), (x1, mid), (x2, mid)):
            net.add_edge(u, v, float(w))
            net.add_edge(v, u, float(w))
        net.add_edge("s1", x1, 2.0 * w)
        net.add_edge("s2", x2, 2.0 * w)
        net.add_edge(mid, "t", 2.0 * w)
    return net


def path_sink_network(length: int) -> Network:
    """Theorem 4's instance: an n-path with per-node unit links to a sink.

    Path nodes ``x1..xn`` are joined by bidirectional infinite-capacity
    edges; each ``xi`` has a directed capacity-1 edge to the target
    ``t``.  Any *oblivious* per-destination routing must route some
    ``xi``'s traffic entirely over ``(xi, t)`` (else the path edges would
    form a forwarding loop), so its ratio is Omega(n).
    """
    if length < 2:
        raise TopologyError(f"path instance needs length >= 2, got {length}")
    net = Network(name=f"path-sink-{length}")
    nodes = [f"x{i}" for i in range(1, length + 1)]
    for left, right in zip(nodes, nodes[1:]):
        net.add_edge(left, right, LARGE_CAPACITY)
        net.add_edge(right, left, LARGE_CAPACITY)
    for node in nodes:
        net.add_edge(node, "t", 1.0)
    return net


def ring_network(size: int, capacity: float = 1.0) -> Network:
    """A bidirectional ring (smallest 2-connected test topology)."""
    if size < 3:
        raise TopologyError(f"ring needs >= 3 nodes, got {size}")
    links = [(f"n{i}", f"n{(i + 1) % size}", capacity) for i in range(size)]
    return Network.from_undirected(links, name=f"ring-{size}")


def grid_network(rows: int, cols: int, capacity: float = 1.0) -> Network:
    """A rows x cols grid with bidirectional unit links."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise TopologyError(f"grid needs >= 2 nodes, got {rows}x{cols}")
    links = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                links.append((f"g{r}_{c}", f"g{r}_{c + 1}", capacity))
            if r + 1 < rows:
                links.append((f"g{r}_{c}", f"g{r + 1}_{c}", capacity))
    return Network.from_undirected(links, name=f"grid-{rows}x{cols}")


def _draw_capacity(rng, choices: Sequence[float]) -> float:
    """Backbone-like capacity mix: big pipes more common in the core."""
    weights = [0.5, 0.3, 0.2][: len(choices)]
    total = sum(weights)
    pick = rng.random() * total
    cumulative = 0.0
    for choice, weight in zip(choices, weights):
        cumulative += weight
        if pick <= cumulative:
            return choice
    return choices[-1]


def ring_with_chords(
    name: str,
    num_nodes: int,
    num_links: int,
    seed: int,
    capacities: Sequence[float] = (10.0, 2.5, 1.0),
) -> Network:
    """A 2-connected backbone: a ring plus random chords up to ``num_links``.

    Deterministic for a given (name, seed).  Chord endpoints are drawn
    with mild degree bias (preferential attachment), giving the skewed
    degree distributions typical of ISP backbones.
    """
    if num_nodes < 3:
        raise TopologyError(f"backbone needs >= 3 nodes, got {num_nodes}")
    if num_links < num_nodes:
        raise TopologyError(
            f"backbone {name!r}: num_links ({num_links}) below ring size ({num_nodes})"
        )
    rng = rng_from_seed(seed, "ring-with-chords", name, num_nodes, num_links)
    nodes = [f"{name}{i}" for i in range(num_nodes)]
    links: list[tuple[str, str, float]] = []
    present: set[frozenset] = set()
    for i in range(num_nodes):
        u, v = nodes[i], nodes[(i + 1) % num_nodes]
        links.append((u, v, _draw_capacity(rng, capacities)))
        present.add(frozenset((u, v)))
    degree = {node: 2 for node in nodes}
    attempts = 0
    while len(links) < num_links and attempts < 100 * num_links:
        attempts += 1
        u = nodes[int(rng.integers(num_nodes))]
        weights = [degree[n] for n in nodes]
        weights[nodes.index(u)] = 0
        total = sum(weights)
        pick = rng.random() * total
        cumulative, v = 0.0, nodes[0]
        for node, weight in zip(nodes, weights):
            cumulative += weight
            if pick <= cumulative:
                v = node
                break
        if u == v or frozenset((u, v)) in present:
            continue
        links.append((u, v, _draw_capacity(rng, capacities)))
        present.add(frozenset((u, v)))
        degree[u] += 1
        degree[v] += 1
    return Network.from_undirected(links, name=name)


def tree_with_chords(
    name: str,
    num_nodes: int,
    num_chords: int,
    seed: int,
    capacities: Sequence[float] = (2.5, 1.0, 0.622),
) -> Network:
    """A random tree plus a few chords — the "almost a tree" topologies.

    BBNPlanet and Gambia are excluded from Table I precisely because they
    are nearly trees; this generator reproduces that structure.
    """
    if num_nodes < 2:
        raise TopologyError(f"tree needs >= 2 nodes, got {num_nodes}")
    rng = rng_from_seed(seed, "tree-with-chords", name, num_nodes, num_chords)
    nodes = [f"{name}{i}" for i in range(num_nodes)]
    links: list[tuple[str, str, float]] = []
    present: set[frozenset] = set()
    for i in range(1, num_nodes):
        parent = nodes[int(rng.integers(i))]
        links.append((parent, nodes[i], _draw_capacity(rng, capacities)))
        present.add(frozenset((parent, nodes[i])))
    added, attempts = 0, 0
    while added < num_chords and attempts < 100 * (num_chords + 1):
        attempts += 1
        u = nodes[int(rng.integers(num_nodes))]
        v = nodes[int(rng.integers(num_nodes))]
        if u == v or frozenset((u, v)) in present:
            continue
        links.append((u, v, _draw_capacity(rng, capacities)))
        present.add(frozenset((u, v)))
        added += 1
    return Network.from_undirected(links, name=name)
