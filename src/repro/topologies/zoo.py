"""The 16 evaluation backbones (Internet Topology Zoo equivalents).

The paper evaluates COYOTE on 16 ITZ backbones.  Networks whose
structure is thoroughly documented in the literature are hand-coded here
(Abilene, NSFNET, GEANT, InternetMCI); the remainder are deterministic
synthetic equivalents with the published node/link counts and
backbone-like degree/capacity distributions (see DESIGN.md's
substitution table).  Capacities follow the paper's convention: link
capacities where "known" (hand-coded entries carry Gbps figures),
otherwise a backbone-like {10, 2.5, 1} Gbps mix.

Every topology is validated to be strongly connected at load time —
all-pairs TE requires it (the paper drops BBNPlanet and Gambia from
Table I for being nearly trees; we keep them loadable for the stretch
experiment of Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exceptions import TopologyError
from repro.graph.network import Network
from repro.topologies.generators import ring_with_chords, tree_with_chords

_SEED = 20161101  # shared base seed; generators scope it per name


def _abilene() -> Network:
    """Abilene (Internet2), 11 PoPs / 14 links, all 10 Gbps."""
    c = 10.0
    return Network.from_undirected(
        [
            ("Seattle", "Sunnyvale", c),
            ("Seattle", "Denver", c),
            ("Sunnyvale", "LosAngeles", c),
            ("Sunnyvale", "Denver", c),
            ("LosAngeles", "Houston", c),
            ("Denver", "KansasCity", c),
            ("KansasCity", "Houston", c),
            ("KansasCity", "Indianapolis", c),
            ("Houston", "Atlanta", c),
            ("Indianapolis", "Atlanta", c),
            ("Indianapolis", "Chicago", c),
            ("Chicago", "NewYork", c),
            ("Atlanta", "Washington", c),
            ("NewYork", "Washington", c),
        ],
        name="abilene",
    )


def _nsf() -> Network:
    """NSFNET T1 backbone, 14 nodes / 21 links (unit-ish capacities)."""
    c = 1.0
    nodes = [
        "WA", "CA1", "CA2", "UT", "CO", "TX", "NE",
        "IL", "PA", "GA", "MI", "NY", "NJ", "DC",
    ]
    index_links = [
        (0, 1), (0, 2), (0, 7),
        (1, 2), (1, 3),
        (2, 5),
        (3, 4), (3, 10),
        (4, 5), (4, 6),
        (5, 9), (5, 13),
        (6, 7),
        (7, 8),
        (8, 9), (8, 11), (8, 12),
        (10, 11), (10, 13),
        (11, 12),
        (12, 13),
    ]
    return Network.from_undirected(
        [(nodes[i], nodes[j], c) for i, j in index_links], name="nsf"
    )


def _geant() -> Network:
    """GEANT (circa 2004), 22 nodes / 36 links, 10 / 2.5 / 0.622 Gbps mix.

    Hand-coded approximation of the published pan-European layout: a
    high-capacity core (UK-NL-DE-FR-IT-CH) with regional attachments.
    """
    big, mid, small = 10.0, 2.5, 0.622
    return Network.from_undirected(
        [
            ("UK", "NL", big),
            ("UK", "FR", big),
            ("UK", "US", big),
            ("UK", "IE", mid),
            ("NL", "DE", big),
            ("NL", "BE", mid),
            ("NL", "US", big),
            ("DE", "FR", big),
            ("DE", "CH", big),
            ("DE", "AT", big),
            ("DE", "PL", mid),
            ("DE", "CZ", mid),
            ("DE", "SE", mid),
            ("DE", "IL", mid),
            ("FR", "CH", big),
            ("FR", "ES", mid),
            ("FR", "BE", mid),
            ("FR", "LU", small),
            ("CH", "IT", big),
            ("CH", "AT", mid),
            ("IT", "AT", mid),
            ("IT", "GR", mid),
            ("IT", "ES", mid),
            ("IT", "IL", mid),
            ("AT", "HU", mid),
            ("AT", "SI", small),
            ("AT", "SK", small),
            ("AT", "CZ", mid),
            ("HU", "HR", small),
            ("HU", "SK", small),
            ("SI", "HR", small),
            ("PL", "CZ", mid),
            ("SE", "PL", mid),
            ("ES", "PT", mid),
            ("PT", "UK", mid),
            ("GR", "DE", mid),
        ],
        name="geant",
    )


def _internetmci() -> Network:
    """InternetMCI, 19 nodes / 33 links (ITZ sizes), 2.5 Gbps-class core."""
    c, a = 2.5, 1.0
    return Network.from_undirected(
        [
            ("Seattle", "SanFrancisco", c),
            ("Seattle", "Chicago", c),
            ("SanFrancisco", "LosAngeles", c),
            ("SanFrancisco", "Denver", c),
            ("SanFrancisco", "Chicago", c),
            ("SanFrancisco", "DC", c),
            ("LosAngeles", "Phoenix", a),
            ("LosAngeles", "Dallas", c),
            ("Phoenix", "Dallas", a),
            ("Denver", "KansasCity", a),
            ("Dallas", "Houston", c),
            ("Dallas", "Atlanta", c),
            ("Dallas", "Chicago", c),
            ("Houston", "NewOrleans", a),
            ("NewOrleans", "Atlanta", a),
            ("KansasCity", "Chicago", a),
            ("Chicago", "Cleveland", c),
            ("Chicago", "NewYork", c),
            ("Chicago", "StLouis", a),
            ("StLouis", "Atlanta", a),
            ("Cleveland", "NewYork", c),
            ("Cleveland", "Detroit", a),
            ("Detroit", "Chicago", a),
            ("Atlanta", "DC", c),
            ("Atlanta", "Miami", a),
            ("Miami", "DC", a),
            ("DC", "NewYork", c),
            ("DC", "Philadelphia", a),
            ("Philadelphia", "NewYork", a),
            ("NewYork", "Boston", c),
            ("Boston", "Chicago", c),
            ("Atlanta", "Houston", a),
            ("Denver", "Dallas", a),
        ],
        name="internetmci",
    )


@dataclass(frozen=True)
class TopologySpec:
    """Registry entry for one evaluation topology.

    Attributes:
        name: canonical lowercase identifier.
        paper_label: how the paper's tables/figures refer to it.
        kind: "hand-coded" or "synthetic".
        nodes: node count (published ITZ-equivalent size).
        links: undirected link count.
        note: provenance / substitution documentation.
        builder: zero-argument constructor returning the Network.
    """

    name: str
    paper_label: str
    kind: str
    nodes: int
    links: int
    note: str
    builder: Callable[[], Network]


def _synthetic(name: str, label: str, nodes: int, links: int, note: str) -> TopologySpec:
    return TopologySpec(
        name=name,
        paper_label=label,
        kind="synthetic",
        nodes=nodes,
        links=links,
        note=note,
        builder=lambda: ring_with_chords(name, nodes, links, _SEED),
    )


def _tree_like(name: str, label: str, nodes: int, chords: int, note: str) -> TopologySpec:
    return TopologySpec(
        name=name,
        paper_label=label,
        kind="synthetic",
        nodes=nodes,
        links=nodes - 1 + chords,
        note=note,
        builder=lambda: tree_with_chords(name, nodes, chords, _SEED),
    )


_SPECS: list[TopologySpec] = [
    TopologySpec(
        "abilene", "abilene cost", "hand-coded", 11, 14,
        "Internet2 Abilene, published PoP/link list, uniform 10G.", _abilene,
    ),
    TopologySpec(
        "nsf", "NSF cost", "hand-coded", 14, 21,
        "Classic NSFNET T1 backbone (14/21).", _nsf,
    ),
    TopologySpec(
        "geant", "Geant", "hand-coded", 22, 36,
        "GEANT 2004 approximation; capacity tiers 10/2.5/0.622G.", _geant,
    ),
    TopologySpec(
        "internetmci", "Internetmci", "hand-coded", 19, 33,
        "InternetMCI at ITZ-published size (19/33).", _internetmci,
    ),
    _synthetic(
        "as1221", "1221", 25, 45,
        "Rocketfuel AS1221 (Telstra) reduced backbone equivalent.",
    ),
    _synthetic(
        "as1755", "1755", 23, 38,
        "Rocketfuel AS1755 (Ebone) reduced backbone equivalent (23 PoPs).",
    ),
    _synthetic(
        "as3257", "3257", 27, 50,
        "Rocketfuel AS3257 (Tiscali) reduced backbone equivalent.",
    ),
    _synthetic(
        "att", "atnt cost", 25, 42,
        "AT&T IP backbone equivalent.",
    ),
    _synthetic(
        "bics", "BICS", 24, 38,
        "BICS pan-European backbone equivalent.",
    ),
    _synthetic(
        "bteurope", "BtEurope", 22, 37,
        "BT Europe backbone equivalent.",
    ),
    _synthetic(
        "digex", "Digex", 20, 26,
        "Digex backbone equivalent (sparse).",
    ),
    _synthetic(
        "germany", "Germany cost", 17, 26,
        "Germany research network (17-node variant) equivalent.",
    ),
    _synthetic(
        "grnet", "GRNet", 18, 23,
        "GRNet (Greece) backbone equivalent (sparse).",
    ),
    _synthetic(
        "italy", "Italy cost", 20, 32,
        "Italian research network equivalent.",
    ),
    _tree_like(
        "bbnplanet", "BBNPlanet", 20, 2,
        "BBNPlanet is nearly a tree; excluded from Table I as in the paper.",
    ),
    _tree_like(
        "gambia", "Gambia", 10, 1,
        "Gambia is nearly a tree; excluded from Table I as in the paper.",
    ),
]

_REGISTRY: dict[str, TopologySpec] = {spec.name: spec for spec in _SPECS}

#: Topologies included in Table I (all but the two near-trees).
TABLE1_TOPOLOGIES: tuple[str, ...] = tuple(
    spec.name for spec in _SPECS if spec.name not in ("bbnplanet", "gambia")
)

#: Topologies in the Fig. 11 stretch experiment (all but Gambia).
STRETCH_TOPOLOGIES: tuple[str, ...] = tuple(
    spec.name for spec in _SPECS if spec.name != "gambia"
)


def available_topologies() -> list[str]:
    """Canonical names of every registered topology."""
    return [spec.name for spec in _SPECS]


def topology_info(name: str) -> TopologySpec:
    """Registry metadata for ``name`` (case-insensitive)."""
    spec = _REGISTRY.get(name.lower())
    if spec is None:
        raise TopologyError(
            f"unknown topology {name!r}; available: {', '.join(available_topologies())}"
        )
    return spec


def load_topology(name: str) -> Network:
    """Build the named topology and validate strong connectivity."""
    spec = topology_info(name)
    network = spec.builder()
    if not network.is_strongly_connected():
        raise TopologyError(f"topology {name!r} is not strongly connected")
    return network
