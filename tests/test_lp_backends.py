"""Differential suite for the LP solver backends.

Every available backend must agree with the scipy reference on the
repository's real LP families (the worst-case oracle's slave LP and the
min-congestion normalizer, i.e. the fig9/fig11 workloads): objectives
within 1e-7, identical normalized status mapping, and warm-start solves
matching cold solves.  Backends that are not available here (gurobi
without a license) are skipped per-test, so the same suite runs on the
minimal CI image and on the optional-deps leg.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.demands.gravity import gravity_matrix
from repro.demands.uncertainty import margin_box
from repro.ecmp.routing import ecmp_routing
from repro.ecmp.weights import inverse_capacity_weights
from repro.exceptions import InfeasibleError, UnboundedError
from repro.lp import backend as lp_backend
from repro.lp.backend import base
from repro.lp.backend.scipy_backend import ScipyBackend
from repro.lp.mcf import MinCongestionSolver, min_congestion
from repro.lp.model import Model
from repro.lp.worst_case import WorstCaseOracle
from repro.runner.spec import SweepCell, cell_key
from repro.topologies.zoo import load_topology

#: Cross-engine objective agreement promised by the backend contract.
PARITY_TOL = 1e-7


def _available_backends() -> list[str]:
    return list(lp_backend.available_backends())


@pytest.fixture(scope="module")
def oracle_programs():
    """(program, objectives) pairs from the real fig9/fig11 LP families."""
    cases = []
    for topology in ("abilene", "nsf"):
        network = load_topology(topology)
        demand = gravity_matrix(network)
        oracle = WorstCaseOracle(network, margin_box(demand, 2.0))
        weights = inverse_capacity_weights(network)
        routing = ecmp_routing(network, weights)
        coefficients = routing.load_coefficients(oracle.demand_pairs)
        program = oracle._compiled.program
        objectives = []
        for edge in network.finite_capacity_edges()[:6]:
            coeffs = coefficients.get(edge)
            if not coeffs:
                continue
            capacity = network.capacity(*edge)
            vec = np.zeros(program.num_vars)
            for pair, coefficient in coeffs.items():
                var = oracle._demand_vars.get(pair)
                if var is not None and coefficient > 0.0:
                    vec[var.index] = -coefficient / capacity  # maximize load
            if vec.any():
                objectives.append(vec)
        assert objectives, f"no loaded edges on {topology}"
        cases.append((topology, program, objectives))
    return cases


@pytest.mark.parametrize("name", sorted(set(lp_backend.backend_names()) - {"scipy"}))
def test_objective_parity_with_scipy(name, oracle_programs):
    if name not in _available_backends():
        pytest.skip(f"backend {name!r} not available here")
    backend = lp_backend.get_backend(name)
    reference = ScipyBackend()
    for topology, program, objectives in oracle_programs:
        for vec in objectives:
            expected = reference.solve(program, vec)
            actual = backend.solve(program, vec)
            assert actual.status == expected.status == base.OPTIMAL
            assert actual.objective == pytest.approx(
                expected.objective, abs=PARITY_TOL, rel=PARITY_TOL
            ), f"{name} diverged from scipy on {topology}"


@pytest.mark.parametrize("name", sorted(set(lp_backend.backend_names()) - {"scipy"}))
def test_persistent_instance_parity(name, oracle_programs):
    """Instance solves (the production sweep path) match one-shot scipy."""
    if name not in _available_backends():
        pytest.skip(f"backend {name!r} not available here")
    backend = lp_backend.get_backend(name)
    reference = ScipyBackend()
    for topology, program, objectives in oracle_programs:
        instance = backend.instance(program)
        for vec in objectives:
            expected = reference.solve(program, vec)
            actual = instance.solve(vec)
            assert actual.status == base.OPTIMAL
            assert actual.objective == pytest.approx(
                expected.objective, abs=PARITY_TOL, rel=PARITY_TOL
            ), f"{name} instance diverged on {topology}"


def test_default_highs_instance_is_bit_identical_to_scipy(oracle_programs):
    """Canary: the direct driver reproduces linprog exactly — objective,
    solution vector, and duals.  Expected, since it runs the identical
    engine with the identical effective options and resets fully per
    solve — but pinned empirically (which is also why backends keep
    distinct fingerprints); a failure here means the direct driver's
    option set or reset discipline drifted from scipy's."""
    backend = lp_backend.get_backend("highs")
    reference = ScipyBackend()
    for _topology, program, objectives in oracle_programs:
        instance = backend.instance(program)
        for vec in objectives:
            expected = reference.solve(program, vec)
            actual = instance.solve(vec)
            assert actual.objective == expected.objective  # bitwise
            np.testing.assert_array_equal(actual.x, expected.x)
            np.testing.assert_array_equal(actual.ineq_duals, expected.ineq_duals)
            np.testing.assert_array_equal(actual.eq_duals, expected.eq_duals)


@pytest.mark.parametrize("name", sorted(lp_backend.backend_names()))
def test_status_mapping_identical(name):
    if name not in _available_backends():
        pytest.skip(f"backend {name!r} not available here")
    backend = lp_backend.get_backend(name)

    infeasible = Model()
    x = infeasible.add_var("x", lower=0.0)
    infeasible.add_le(x, -1.0)
    program = infeasible.compile().program
    assert backend.solve(program, np.zeros(1)).status == base.INFEASIBLE

    unbounded = Model()
    unbounded.add_var("y")
    program = unbounded.compile().program
    assert backend.solve(program, np.array([-1.0])).status == base.UNBOUNDED

    optimal = Model()
    z = optimal.add_var("z", lower=2.0)
    program = optimal.compile().program
    result = backend.solve(program, np.array([1.0]))
    assert result.status == base.OPTIMAL
    assert result.objective == pytest.approx(2.0)


@pytest.mark.parametrize("name", sorted(lp_backend.backend_names()))
def test_warm_start_equals_cold_start(name, oracle_programs):
    """Warm-chained objectives equal cold objectives (the correctness
    half of the warm-start contract; vertices may legitimately differ)."""
    if name not in _available_backends():
        pytest.skip(f"backend {name!r} not available here")
    backend = lp_backend.get_backend(name)
    _topology, program, objectives = oracle_programs[0]
    warm = backend.instance(program, warm=True)
    cold = backend.instance(program, warm=False)
    for vec in objectives:
        warm_result = warm.solve(vec)
        cold_result = cold.solve(vec)
        assert warm_result.status == cold_result.status == base.OPTIMAL
        assert warm_result.objective == pytest.approx(
            cold_result.objective, abs=PARITY_TOL, rel=PARITY_TOL
        )
    # After invalidation the next solve starts cold and must still agree.
    warm.invalidate_basis()
    result = warm.solve(objectives[0])
    assert result.objective == pytest.approx(
        cold.solve(objectives[0]).objective, abs=PARITY_TOL, rel=PARITY_TOL
    )


def test_min_congestion_solver_matches_one_shot():
    """RHS-swapped re-solves equal fresh builds, matrix for matrix."""
    network = load_topology("abilene")
    base_demand = gravity_matrix(network)
    solver = MinCongestionSolver(network)
    for scale in (1.0, 0.5, 2.0):
        demand = base_demand.scaled(scale)
        reused = solver.solve(demand)
        fresh = min_congestion(network, demand)
        assert reused.alpha == fresh.alpha  # same backend, isolated: bitwise
        assert reused.flows == fresh.flows


def test_model_layer_raises_library_errors():
    m = Model()
    x = m.add_var("x")
    m.add_le(x, -1.0)
    m.minimize(x)
    with pytest.raises(InfeasibleError):
        m.solve()

    m2 = Model()
    y = m2.add_var("y")
    m2.maximize(y)
    with pytest.raises(UnboundedError):
        m2.solve()


class TestRegistry:
    def test_default_backend_is_highs(self, monkeypatch):
        monkeypatch.delenv(lp_backend.BACKEND_ENV, raising=False)
        assert lp_backend.active_backend_name() == "highs"
        assert lp_backend.get_backend().name == "highs"

    def test_environment_selects_backend(self, monkeypatch):
        monkeypatch.setenv(lp_backend.BACKEND_ENV, "scipy")
        assert lp_backend.get_backend().name == "scipy"

    def test_unknown_backend_raises(self):
        with pytest.raises(lp_backend.BackendUnavailable, match="unknown"):
            lp_backend.get_backend("nonexistent")

    def test_unavailable_backend_raises_when_missing(self):
        if "gurobi" in _available_backends():
            pytest.skip("gurobi available; nothing unavailable to probe")
        with pytest.raises(lp_backend.BackendUnavailable, match="not available"):
            lp_backend.get_backend("gurobi")

    def test_third_party_registration(self):
        class FakeBackend(base.SolverBackend):
            name = "fake-test-backend"

            def available(self):
                return True

            def solve(self, program, objective):
                raise NotImplementedError

        try:
            lp_backend.register_backend(FakeBackend())
            assert lp_backend.get_backend("fake-test-backend").name == "fake-test-backend"
        finally:
            lp_backend._BACKENDS.pop("fake-test-backend", None)


class TestFingerprints:
    def _cell(self):
        from repro.config import DEFAULT_CONFIG

        return SweepCell(
            experiment="fig6",
            topology="geant",
            demand_model="gravity",
            margin=0.5,
            seed=7,
            solver=DEFAULT_CONFIG,
        )

    def test_backend_in_fingerprint(self, monkeypatch):
        monkeypatch.delenv(lp_backend.BACKEND_ENV, raising=False)
        monkeypatch.delenv(lp_backend.WARM_ENV, raising=False)
        cell = self._cell()
        fingerprint = cell.fingerprint()
        assert fingerprint["lp_backend"] == "highs"
        assert fingerprint["lp_warm"] is False
        default_key = cell_key(cell)
        monkeypatch.setenv(lp_backend.BACKEND_ENV, "scipy")
        assert cell_key(cell) != default_key

    def test_warm_flag_in_fingerprint(self, monkeypatch):
        monkeypatch.delenv(lp_backend.BACKEND_ENV, raising=False)
        monkeypatch.delenv(lp_backend.WARM_ENV, raising=False)
        cell = self._cell()
        cold_key = cell_key(cell)
        monkeypatch.setenv(lp_backend.WARM_ENV, "1")
        assert cell.fingerprint()["lp_warm"] is True
        assert cell_key(cell) != cold_key

    def test_jobs_not_in_fingerprint(self, monkeypatch):
        monkeypatch.delenv(lp_backend.BACKEND_ENV, raising=False)
        monkeypatch.delenv(lp_backend.WARM_ENV, raising=False)
        cell = self._cell()
        serial_key = cell_key(cell)
        monkeypatch.setenv(lp_backend.JOBS_ENV, "8")
        assert cell_key(cell) == serial_key
