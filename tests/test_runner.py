"""Tests for the parallel sweep runner: keys, cache, executor, artifacts."""

import json
import time
from dataclasses import replace

import pytest

from repro.config import ExperimentConfig, SolverConfig
from repro.experiments.common import SCHEME_COLUMNS
from repro.experiments.margin_sweep import margin_sweep_experiment, margin_sweep_spec
from repro.experiments.registry import experiment_spec, sweepable_experiment_ids
from repro.exceptions import ExperimentError
from repro.runner.artifacts import write_artifacts
from repro.runner.cache import ResultCache, default_cache_dir
from repro.runner.executor import _chunk_pending, run_sweep
from repro.runner.spec import SweepCell, SweepSpec, cell_key, grid_cells

TINY_SOLVER = SolverConfig(
    max_adversarial_rounds=2,
    max_inner_iterations=10,
    smoothing_temperatures=(8.0, 64.0),
)


def make_cell(margin=1.0, topology="abilene", solver=TINY_SOLVER, **overrides):
    return SweepCell(
        experiment=overrides.pop("experiment", "test"),
        topology=topology,
        demand_model=overrides.pop("demand_model", "gravity"),
        margin=margin,
        seed=overrides.pop("seed", 7),
        solver=solver,
        **overrides,
    )


def make_spec(margins=(1.0, 2.0, 3.0), **cell_kwargs):
    cells = tuple(make_cell(margin=m, **cell_kwargs) for m in margins)
    return SweepSpec(experiment="test", title="test sweep", cells=cells)


def _stub_solve(cell: SweepCell) -> dict[str, float]:
    """Deterministic fake solver; later cells finish first under a pool."""
    time.sleep(max(0.0, 0.3 - 0.1 * cell.margin))
    return {scheme: cell.margin + i for i, scheme in enumerate(SCHEME_COLUMNS)}


def _failing_stub_solve(cell: SweepCell) -> dict[str, float]:
    """Fails fast on margin 3.0 while earlier cells are still in flight."""
    if cell.margin == 3.0:
        raise RuntimeError("solver blew up")
    return _stub_solve(cell)


class TestCellKey:
    def test_stable_for_equal_cells(self):
        assert cell_key(make_cell()) == cell_key(make_cell())

    def test_margin_and_topology_change_key(self):
        base = cell_key(make_cell())
        assert cell_key(make_cell(margin=2.0)) != base
        assert cell_key(make_cell(topology="nsf")) != base

    def test_solver_config_changes_key(self):
        base = cell_key(make_cell())
        for change in (
            {"max_adversarial_rounds": 5},
            {"lp_tolerance": 1e-6},
            {"smoothing_temperatures": (8.0,)},
            {"seed": 1},
        ):
            tweaked = replace(TINY_SOLVER, **change)
            assert cell_key(make_cell(solver=tweaked)) != base, change

    def test_experiment_id_shares_key(self):
        # fig6 and a table1 block over the same inputs solve the same cell.
        assert cell_key(make_cell(experiment="fig6")) == cell_key(
            make_cell(experiment="table1")
        )

    def test_version_tag_changes_key(self, monkeypatch):
        base = cell_key(make_cell())
        monkeypatch.setattr("repro.runner.spec.CACHE_VERSION", "runner-v999")
        assert cell_key(make_cell()) != base

    def test_scheme_columns_change_key(self, monkeypatch):
        # A renamed/added scheme must invalidate entries that would
        # otherwise be served with missing result keys.
        base = cell_key(make_cell())
        monkeypatch.setattr("repro.runner.spec.SCHEME_COLUMNS", (*SCHEME_COLUMNS, "NEW"))
        assert cell_key(make_cell()) != base


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = make_cell()
        result = {scheme: 1.5 for scheme in SCHEME_COLUMNS}
        path = cache.put(cell, result)
        assert path.is_file()
        assert cache.get(cell) == result
        assert len(cache) == 1

    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(make_cell()) is None

    def test_solver_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = make_cell()
        cache.put(cell, {"ECMP": 1.0})
        tweaked = replace(cell, solver=replace(TINY_SOLVER, max_adversarial_rounds=9))
        assert cache.get(tweaked) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = make_cell()
        path = cache.put(cell, {"ECMP": 1.0})
        path.write_text("not json{")
        assert cache.get(cell) is None

    def test_fingerprint_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = make_cell()
        path = cache.put(cell, {"ECMP": 1.0})
        payload = json.loads(path.read_text())
        payload["fingerprint"]["margin"] = 99.0
        path.write_text(json.dumps(payload))
        assert cache.get(cell) is None

    def test_non_object_payload_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = make_cell()
        path = cache.put(cell, {"ECMP": 1.0})
        path.write_text("[]")
        assert cache.get(cell) is None

    def test_non_numeric_result_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = make_cell()
        path = cache.put(cell, {"ECMP": 1.0})
        payload = json.loads(path.read_text())
        payload["result"]["ECMP"] = None
        path.write_text(json.dumps(payload))
        assert cache.get(cell) is None

    def test_scheme_incomplete_result_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = make_cell()
        path = cache.put(cell, {scheme: 1.5 for scheme in SCHEME_COLUMNS})
        payload = json.loads(path.read_text())
        del payload["result"][SCHEME_COLUMNS[0]]
        path.write_text(json.dumps(payload))
        assert cache.get(cell) is None

    def test_default_cache_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        assert default_cache_dir() == tmp_path / "alt"


class TestRunSweep:
    def test_serial_rows_in_declared_order(self):
        spec = make_spec()
        report = run_sweep(spec, solve=_stub_solve)
        assert report.table().column("margin") == [1.0, 2.0, 3.0]
        assert report.solved == 3 and report.cached == 0

    def test_parallel_rows_in_declared_order(self):
        # The stub makes later cells finish first; row order must not care.
        spec = make_spec(margins=(1.0, 1.5, 2.0, 2.5))
        report = run_sweep(spec, jobs=2, solve=_stub_solve)
        table = report.table()
        assert table.column("margin") == [1.0, 1.5, 2.0, 2.5]
        assert table.rows == run_sweep(spec, solve=_stub_solve).table().rows

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            run_sweep(make_spec(), jobs=0, solve=_stub_solve)

    def test_cache_hit_on_second_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        first = run_sweep(spec, cache=cache, solve=_stub_solve)
        assert first.solved == 3 and first.cached == 0
        second = run_sweep(spec, cache=cache, solve=_stub_solve)
        assert second.solved == 0 and second.cached == 3
        assert second.table().rows == first.table().rows

    def test_partial_cache_solves_only_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(make_spec(margins=(1.0, 2.0)), cache=cache, solve=_stub_solve)
        report = run_sweep(make_spec(margins=(1.0, 2.0, 3.0)), cache=cache, solve=_stub_solve)
        assert report.cached == 2 and report.solved == 1

    def test_solver_change_misses_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        run_sweep(spec, cache=cache, solve=_stub_solve)
        tweaked = spec.with_solver(replace(TINY_SOLVER, max_inner_iterations=11))
        report = run_sweep(tweaked, cache=cache, solve=_stub_solve)
        assert report.solved == 3 and report.cached == 0

    def test_failed_cell_preserves_earlier_cached_results(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec(margins=(1.0, 2.0, 3.0))
        with pytest.raises(RuntimeError, match="solver blew up"):
            run_sweep(spec, cache=cache, solve=_failing_stub_solve)
        # The two cells solved before the failure are already cached.
        report = run_sweep(spec, cache=cache, solve=_stub_solve)
        assert report.cached == 2 and report.solved == 1

    def test_parallel_failure_preserves_in_flight_results(self, tmp_path):
        # Margin 3.0 fails after its chunk-mates solved (and while the other
        # worker's chunk is still running); those results must still be cached.
        cache = ResultCache(tmp_path)
        spec = make_spec(margins=(1.0, 2.0, 3.0))
        with pytest.raises(RuntimeError, match="solver blew up"):
            run_sweep(spec, jobs=2, cache=cache, solve=_failing_stub_solve)
        report = run_sweep(spec, cache=cache, solve=_stub_solve)
        assert report.cached == 2 and report.solved == 1

    def test_parallel_failure_names_the_cell(self):
        with pytest.raises(RuntimeError, match="solver blew up") as excinfo:
            run_sweep(make_spec(), jobs=2, solve=_failing_stub_solve)
        assert "margin=3" in str(excinfo.value.__cause__)

    def test_cache_shared_across_experiments(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(make_spec(experiment="fig6"), cache=cache, solve=_stub_solve)
        report = run_sweep(make_spec(experiment="table1"), cache=cache, solve=_stub_solve)
        assert report.solved == 0 and report.cached == 3


class TestSpecs:
    def test_registry_declares_grids(self):
        assert set(sweepable_experiment_ids()) == {"fig6", "fig7", "fig8", "table1"}

    def test_non_grid_experiment_rejected(self):
        with pytest.raises(ExperimentError, match="does not decompose"):
            experiment_spec("thm1")

    def test_table1_grid_is_topology_major(self):
        config = ExperimentConfig(margins=(1.0, 2.0), solver=TINY_SOLVER)
        spec = experiment_spec("table1", config)
        assert spec.with_topology_column
        assert [(c.topology, c.margin) for c in spec.cells] == [
            ("abilene", 1.0), ("abilene", 2.0),
            ("nsf", 1.0), ("nsf", 2.0),
            ("germany", 1.0), ("germany", 2.0),
        ]

    def test_table1_full_config_selects_paper_topologies(self):
        spec = experiment_spec("table1", ExperimentConfig.paper())
        assert len({cell.topology for cell in spec.cells}) == 14

    def test_grid_cells_accepts_generator_margins(self):
        # An exhaustible iterable must still yield cells for every topology.
        cells = grid_cells(
            "test", ["abilene", "nsf"], "gravity",
            (m for m in (1.0, 2.0)), TINY_SOLVER, 7,
        )
        assert [(c.topology, c.margin) for c in cells] == [
            ("abilene", 1.0), ("abilene", 2.0), ("nsf", 1.0), ("nsf", 2.0),
        ]

    def test_margin_sweep_spec_one_topology(self):
        config = ExperimentConfig(margins=(1.0,), solver=TINY_SOLVER)
        spec = margin_sweep_spec("nsf", "gravity", config)
        assert [c.topology for c in spec.cells] == ["nsf"]
        assert not spec.with_topology_column
        assert spec.columns() == ("margin", *SCHEME_COLUMNS)


class TestChunking:
    def test_same_setup_cells_share_a_chunk(self):
        pending = list(enumerate(
            make_cell(margin=m, topology=t)
            for t in ("abilene", "nsf") for m in (1.0, 2.0, 3.0)
        ))
        chunks = _chunk_pending(pending, workers=2)
        assert len(chunks) == 2
        for chunk in chunks:
            assert len({cell.setup_key() for _, cell in chunk}) == 1
        assert sorted(index for chunk in chunks for index, _ in chunk) == list(range(6))

    def test_groups_split_to_fill_idle_workers(self):
        pending = list(enumerate(make_cell(margin=m) for m in (1.0, 2.0, 3.0, 4.0)))
        chunks = _chunk_pending(pending, workers=4)
        assert len(chunks) == 4
        assert sorted(index for chunk in chunks for index, _ in chunk) == list(range(4))

    def test_singleton_groups_cannot_split_further(self):
        pending = [(0, make_cell(topology="abilene")), (1, make_cell(topology="nsf"))]
        assert len(_chunk_pending(pending, workers=8)) == 2


class TestArtifacts:
    def test_write_artifacts(self, tmp_path):
        report = run_sweep(make_spec(), solve=_stub_solve)
        table_path, cells_path = write_artifacts(report, tmp_path / "out")
        table = json.loads(table_path.read_text())
        assert table["experiment"] == "test"
        assert table["rows"] == [list(row) for row in report.table().rows]
        assert table["solved"] == 3 and table["cached"] == 0
        cells = json.loads(cells_path.read_text())
        assert len(cells) == 3
        assert cells[0]["key"] == report.results[0].key
        assert not cells[0]["cached"]


@pytest.mark.slow
class TestParallelEquality:
    """Real-solver equivalence: parallel and serial sweeps agree exactly."""

    def test_parallel_matches_serial(self, tmp_path):
        config = ExperimentConfig(margins=(1.0, 2.0), solver=TINY_SOLVER)
        spec = margin_sweep_spec("abilene", "gravity", config)
        cache = ResultCache(tmp_path)
        parallel = run_sweep(spec, jobs=2, cache=cache)
        serial = run_sweep(spec)
        assert parallel.solved == 2
        for row_parallel, row_serial in zip(parallel.table().rows, serial.table().rows):
            assert row_parallel == pytest.approx(row_serial, rel=1e-9)
        # The driver-level serial path produces the same table too.
        driver = margin_sweep_experiment("abilene", "gravity", config)
        assert driver.rows == serial.table().rows
        # A warm rerun re-solves nothing and reproduces the rows bit-for-bit.
        warm = run_sweep(spec, jobs=2, cache=cache)
        assert warm.solved == 0 and warm.cached == 2
        assert warm.table().rows == parallel.table().rows
