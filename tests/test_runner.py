"""Tests for the parallel sweep runner: kinds, keys, cache, executor, artifacts."""

import dataclasses
import json
import math
import time
from dataclasses import replace

import pytest

import repro.runner.spec as spec_module
import repro.topologies.zoo as zoo
from repro.config import ExperimentConfig, SolverConfig
from repro.experiments.common import SCHEME_COLUMNS
from repro.experiments.fig9_local_search import fig9_spec
from repro.experiments.fig10_approximation import fig10_spec
from repro.experiments.fig11_stretch import fig11_spec
from repro.experiments.margin_sweep import margin_sweep_experiment, margin_sweep_spec
from repro.experiments.registry import experiment_spec, sweepable_experiment_ids
from repro.exceptions import ExperimentError
from repro.runner.artifacts import write_artifacts
from repro.runner.cache import ResultCache, default_cache_dir
from repro.runner.executor import CellResult, SweepReport, _chunk_pending, run_sweep
from repro.runner.memo import LruMemo
from repro.runner.spec import (
    CellKind,
    SweepCell,
    SweepSpec,
    cell_key,
    cell_kind,
    freeze_params,
    grid_cells,
    register_cell_kind,
)
from repro.utils.jsonio import write_json_atomic

TINY_SOLVER = SolverConfig(
    max_adversarial_rounds=2,
    max_inner_iterations=10,
    smoothing_temperatures=(8.0, 64.0),
)


def make_cell(margin=1.0, topology="abilene", solver=TINY_SOLVER, **overrides):
    return SweepCell(
        experiment=overrides.pop("experiment", "test"),
        topology=topology,
        demand_model=overrides.pop("demand_model", "gravity"),
        margin=margin,
        seed=overrides.pop("seed", 7),
        solver=solver,
        **overrides,
    )


def make_spec(margins=(1.0, 2.0, 3.0), **cell_kwargs):
    cells = tuple(make_cell(margin=m, **cell_kwargs) for m in margins)
    return SweepSpec(experiment="test", title="test sweep", cells=cells)


def _stub_solve(cell: SweepCell) -> dict[str, float]:
    """Deterministic fake solver; later cells finish first under a pool."""
    time.sleep(max(0.0, 0.3 - 0.1 * cell.margin))
    return {scheme: cell.margin + i for i, scheme in enumerate(SCHEME_COLUMNS)}


def _failing_stub_solve(cell: SweepCell) -> dict[str, float]:
    """Fails fast on margin 3.0 while earlier cells are still in flight."""
    if cell.margin == 3.0:
        raise RuntimeError("solver blew up")
    return _stub_solve(cell)


class TestCellKey:
    def test_stable_for_equal_cells(self):
        assert cell_key(make_cell()) == cell_key(make_cell())

    def test_margin_and_topology_change_key(self):
        base = cell_key(make_cell())
        assert cell_key(make_cell(margin=2.0)) != base
        assert cell_key(make_cell(topology="nsf")) != base

    def test_solver_config_changes_key(self):
        base = cell_key(make_cell())
        for change in (
            {"max_adversarial_rounds": 5},
            {"lp_tolerance": 1e-6},
            {"smoothing_temperatures": (8.0,)},
            {"seed": 1},
        ):
            tweaked = replace(TINY_SOLVER, **change)
            assert cell_key(make_cell(solver=tweaked)) != base, change

    def test_experiment_id_shares_key(self):
        # fig6 and a table1 block over the same inputs solve the same cell.
        assert cell_key(make_cell(experiment="fig6")) == cell_key(
            make_cell(experiment="table1")
        )

    def test_version_tag_changes_key(self, monkeypatch):
        base = cell_key(make_cell())
        monkeypatch.setattr("repro.runner.spec.CACHE_VERSION", "runner-v999")
        assert cell_key(make_cell()) != base

    def test_version_tag_is_runner_v4(self):
        # runner-v2: the kind/params generalization orphaned runner-v1;
        # runner-v3: the vectorized kernel re-implemented the solver hot
        # path; runner-v4: the LP backend layer replaced the one-shot
        # linprog path and made the backend part of the fingerprint.
        assert spec_module.CACHE_VERSION == "runner-v4"
        assert make_cell().fingerprint()["version"] == "runner-v4"

    def test_kind_columns_change_key(self, monkeypatch):
        # A renamed/added scheme must invalidate entries that would
        # otherwise be served with missing result keys.
        base = cell_key(make_cell())
        margin_kind = cell_kind("margin")
        widened = replace(margin_kind, columns=(*SCHEME_COLUMNS, "NEW"))
        monkeypatch.setitem(spec_module._CELL_KINDS, "margin", widened)
        assert cell_key(make_cell()) != base

    def test_kind_changes_key(self):
        # Two kinds over identical inputs/params never share a cache entry.
        register_cell_kind(CellKind("kind-a", solve=_stub_solve, columns=("X",)))
        register_cell_kind(CellKind("kind-b", solve=_stub_solve, columns=("X",)))
        key_a = cell_key(make_cell(kind="kind-a", params=freeze_params({"p": 1})))
        key_b = cell_key(make_cell(kind="kind-b", params=freeze_params({"p": 1})))
        assert key_a != key_b

    def test_params_change_key(self):
        register_cell_kind(CellKind("kind-p", solve=_stub_solve, columns=("X",)))
        base = cell_key(make_cell(kind="kind-p", params=freeze_params({"budget": 3})))
        other = cell_key(make_cell(kind="kind-p", params=freeze_params({"budget": 5})))
        assert base != other

    def test_freeze_params_is_order_insensitive(self):
        assert freeze_params({"b": [1, 2], "a": 1}) == freeze_params({"a": 1, "b": (1, 2)})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExperimentError, match="unknown cell kind"):
            make_cell(kind="no-such-kind").cell_columns()


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = make_cell()
        result = {scheme: 1.5 for scheme in SCHEME_COLUMNS}
        path = cache.put(cell, result)
        assert path.is_file()
        assert cache.get(cell) == result
        assert len(cache) == 1

    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(make_cell()) is None

    def test_solver_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = make_cell()
        cache.put(cell, {"ECMP": 1.0})
        tweaked = replace(cell, solver=replace(TINY_SOLVER, max_adversarial_rounds=9))
        assert cache.get(tweaked) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = make_cell()
        path = cache.put(cell, {"ECMP": 1.0})
        path.write_text("not json{")
        assert cache.get(cell) is None

    def test_fingerprint_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = make_cell()
        path = cache.put(cell, {"ECMP": 1.0})
        payload = json.loads(path.read_text())
        payload["fingerprint"]["margin"] = 99.0
        path.write_text(json.dumps(payload))
        assert cache.get(cell) is None

    def test_non_object_payload_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = make_cell()
        path = cache.put(cell, {"ECMP": 1.0})
        path.write_text("[]")
        assert cache.get(cell) is None

    def test_non_numeric_result_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = make_cell()
        path = cache.put(cell, {"ECMP": 1.0})
        payload = json.loads(path.read_text())
        payload["result"]["ECMP"] = None
        path.write_text(json.dumps(payload))
        assert cache.get(cell) is None

    def test_scheme_incomplete_result_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = make_cell()
        path = cache.put(cell, {scheme: 1.5 for scheme in SCHEME_COLUMNS})
        payload = json.loads(path.read_text())
        del payload["result"][SCHEME_COLUMNS[0]]
        path.write_text(json.dumps(payload))
        assert cache.get(cell) is None

    def test_nan_result_roundtrips_as_strict_json(self, tmp_path):
        # fig9's undefined gap is NaN; entries must stay spec-valid JSON
        # (null, not a bare NaN token) and read back as NaN.
        cache = ResultCache(tmp_path)
        cell = make_cell()
        result = {scheme: 1.5 for scheme in SCHEME_COLUMNS}
        result["ECMP"] = float("nan")
        path = cache.put(cell, result)
        assert "NaN" not in path.read_text()
        restored = cache.get(cell)
        assert math.isnan(restored["ECMP"]) and restored["Base"] == 1.5

    def test_wrong_column_set_is_a_miss(self, tmp_path):
        # An entry whose result carries a different kind's columns (here:
        # none of the margin schemes) must not be served.
        cache = ResultCache(tmp_path)
        cell = make_cell()
        path = cache.put(cell, {scheme: 1.5 for scheme in SCHEME_COLUMNS})
        payload = json.loads(path.read_text())
        payload["result"] = {"COYOTE-stretch": 1.02}
        path.write_text(json.dumps(payload))
        assert cache.get(cell) is None

    def test_entries_validated_against_own_kind_columns(self, tmp_path):
        # A kind with a single column round-trips without needing the four
        # margin schemes (the pre-v2 cache demanded SCHEME_COLUMNS of all).
        register_cell_kind(CellKind("kind-solo", solve=_stub_solve, columns=("only",)))
        cache = ResultCache(tmp_path)
        cell = make_cell(kind="kind-solo")
        cache.put(cell, {"only": 2.5})
        assert cache.get(cell) == {"only": 2.5}

    def test_default_cache_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        assert default_cache_dir() == tmp_path / "alt"


class TestRunSweep:
    def test_serial_rows_in_declared_order(self):
        spec = make_spec()
        report = run_sweep(spec, solve=_stub_solve)
        assert report.table().column("margin") == [1.0, 2.0, 3.0]
        assert report.solved == 3 and report.cached == 0

    def test_parallel_rows_in_declared_order(self):
        # The stub makes later cells finish first; row order must not care.
        spec = make_spec(margins=(1.0, 1.5, 2.0, 2.5))
        report = run_sweep(spec, jobs=2, solve=_stub_solve)
        table = report.table()
        assert table.column("margin") == [1.0, 1.5, 2.0, 2.5]
        assert table.rows == run_sweep(spec, solve=_stub_solve).table().rows

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            run_sweep(make_spec(), jobs=0, solve=_stub_solve)

    def test_cache_hit_on_second_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        first = run_sweep(spec, cache=cache, solve=_stub_solve)
        assert first.solved == 3 and first.cached == 0
        second = run_sweep(spec, cache=cache, solve=_stub_solve)
        assert second.solved == 0 and second.cached == 3
        assert second.table().rows == first.table().rows

    def test_partial_cache_solves_only_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(make_spec(margins=(1.0, 2.0)), cache=cache, solve=_stub_solve)
        report = run_sweep(make_spec(margins=(1.0, 2.0, 3.0)), cache=cache, solve=_stub_solve)
        assert report.cached == 2 and report.solved == 1

    def test_solver_change_misses_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        run_sweep(spec, cache=cache, solve=_stub_solve)
        tweaked = spec.with_solver(replace(TINY_SOLVER, max_inner_iterations=11))
        report = run_sweep(tweaked, cache=cache, solve=_stub_solve)
        assert report.solved == 3 and report.cached == 0

    def test_failed_cell_preserves_earlier_cached_results(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec(margins=(1.0, 2.0, 3.0))
        with pytest.raises(RuntimeError, match="solver blew up"):
            run_sweep(spec, cache=cache, solve=_failing_stub_solve)
        # The two cells solved before the failure are already cached.
        report = run_sweep(spec, cache=cache, solve=_stub_solve)
        assert report.cached == 2 and report.solved == 1

    def test_parallel_failure_preserves_in_flight_results(self, tmp_path):
        # Margin 3.0 fails after its chunk-mates solved (and while the other
        # worker's chunk is still running); those results must still be cached.
        cache = ResultCache(tmp_path)
        spec = make_spec(margins=(1.0, 2.0, 3.0))
        with pytest.raises(RuntimeError, match="solver blew up"):
            run_sweep(spec, jobs=2, cache=cache, solve=_failing_stub_solve)
        report = run_sweep(spec, cache=cache, solve=_stub_solve)
        assert report.cached == 2 and report.solved == 1

    def test_parallel_failure_names_the_cell(self):
        with pytest.raises(RuntimeError, match="solver blew up") as excinfo:
            run_sweep(make_spec(), jobs=2, solve=_failing_stub_solve)
        assert "margin=3" in str(excinfo.value.__cause__)

    def test_cache_shared_across_experiments(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(make_spec(experiment="fig6"), cache=cache, solve=_stub_solve)
        report = run_sweep(make_spec(experiment="table1"), cache=cache, solve=_stub_solve)
        assert report.solved == 0 and report.cached == 3


class TestSpecs:
    def test_registry_declares_grids(self):
        assert set(sweepable_experiment_ids()) == {
            "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "table1",
        }

    def test_non_grid_experiment_rejected(self):
        with pytest.raises(ExperimentError, match="does not decompose"):
            experiment_spec("thm1")

    def test_table1_grid_is_topology_major(self):
        config = ExperimentConfig(margins=(1.0, 2.0), solver=TINY_SOLVER)
        spec = experiment_spec("table1", config)
        assert spec.with_topology_column
        assert [(c.topology, c.margin) for c in spec.cells] == [
            ("abilene", 1.0), ("abilene", 2.0),
            ("nsf", 1.0), ("nsf", 2.0),
            ("germany", 1.0), ("germany", 2.0),
        ]

    def test_table1_full_config_selects_paper_topologies(self):
        spec = experiment_spec("table1", ExperimentConfig.paper())
        assert len({cell.topology for cell in spec.cells}) == 14

    def test_grid_cells_accepts_generator_margins(self):
        # An exhaustible iterable must still yield cells for every topology.
        cells = grid_cells(
            "test", ["abilene", "nsf"], "gravity",
            (m for m in (1.0, 2.0)), TINY_SOLVER, 7,
        )
        assert [(c.topology, c.margin) for c in cells] == [
            ("abilene", 1.0), ("abilene", 2.0), ("nsf", 1.0), ("nsf", 2.0),
        ]

    def test_margin_sweep_spec_one_topology(self):
        config = ExperimentConfig(margins=(1.0,), solver=TINY_SOLVER)
        spec = margin_sweep_spec("nsf", "gravity", config)
        assert [c.topology for c in spec.cells] == ["nsf"]
        assert not spec.with_topology_column
        assert spec.columns() == ("margin", *SCHEME_COLUMNS)

    def test_margin_sweep_spec_does_not_build_topology(self, monkeypatch):
        # A fully-cached sweep must not pay topology construction just to
        # render node/link counts: the note comes from registry metadata.
        info = zoo.topology_info("abilene")
        booby_trapped = dataclasses.replace(
            info, builder=lambda: pytest.fail("spec building constructed the topology")
        )
        monkeypatch.setitem(zoo._REGISTRY, "abilene", booby_trapped)
        config = ExperimentConfig(margins=(1.0,), solver=TINY_SOLVER)
        spec = margin_sweep_spec("abilene", "gravity", config)
        assert "11 nodes / 28 directed edges" in spec.notes[0]


class TestGeneralizedGrids:
    """fig9/fig10/fig11 decompose into kind-specific sweep cells."""

    def test_fig9_spec_is_margin_parallel(self):
        config = ExperimentConfig(margins=(1.0, 2.0), solver=TINY_SOLVER)
        spec = fig9_spec(config)
        assert [(c.kind, c.margin) for c in spec.cells] == [
            ("fig9-local-search", 1.0), ("fig9-local-search", 2.0),
        ]
        assert spec.columns() == ("margin", "ECMP", "COYOTE", "ECMP/COYOTE")
        assert spec.footer is not None

    def test_fig10_spec_interleaves_base_and_budget_cells(self):
        config = ExperimentConfig(margins=(1.0, 2.0), solver=TINY_SOLVER)
        spec = fig10_spec(config, budgets=(3, 10))
        assert [(c.margin, c.params_dict()["budget"]) for c in spec.cells] == [
            (1.0, None), (1.0, 3), (1.0, 10),
            (2.0, None), (2.0, 3), (2.0, 10),
        ]
        assert spec.columns() == ("margin", "ECMP", "ideal", "3 NHs", "10 NHs")

    def test_fig10_cells_share_setup_key_across_budgets(self):
        config = ExperimentConfig(margins=(1.0,), solver=TINY_SOLVER)
        spec = fig10_spec(config)
        assert len({cell.setup_key() for cell in spec.cells}) == 1

    def test_fig11_spec_is_topology_parallel(self):
        config = ExperimentConfig(margins=(1.0,), solver=TINY_SOLVER)
        spec = fig11_spec(config, topologies=("nsf", "bbnplanet"), margin=2.5)
        assert [(c.kind, c.topology, c.margin) for c in spec.cells] == [
            ("fig11-stretch", "nsf", 2.5), ("fig11-stretch", "bbnplanet", 2.5),
        ]
        assert spec.columns() == ("network", "COYOTE-obl", "COYOTE-pk")
        assert spec.row_columns == ("network",)

    def test_fig11_full_config_selects_stretch_topologies(self):
        spec = fig11_spec(ExperimentConfig.paper())
        assert len(spec.cells) == 15  # all but Gambia

    def test_fig11_table_uses_paper_labels(self):
        config = ExperimentConfig(margins=(1.0,), solver=TINY_SOLVER)
        spec = fig11_spec(config, topologies=("nsf",))
        report = run_sweep(
            spec, solve=lambda cell: {"COYOTE-obl": 1.01, "COYOTE-pk": 1.02}
        )
        assert report.table().rows == [("NSF cost", 1.01, 1.02)]

    def test_same_identity_overlapping_columns_is_an_error(self):
        # Two topologies at one margin under margin-only row columns would
        # silently overwrite each other's schemes; it must fail loudly.
        cells = (make_cell(topology="abilene"), make_cell(topology="nsf"))
        spec = SweepSpec(experiment="test", title="t", cells=cells)
        with pytest.raises(ExperimentError, match="share row identity"):
            run_sweep(spec, solve=_stub_solve).table()

    def test_merged_rows_missing_column_is_an_error(self):
        register_cell_kind(CellKind("kind-gap", solve=_stub_solve, columns=("X", "Y")))
        spec = SweepSpec(
            experiment="test", title="t",
            cells=(make_cell(kind="kind-gap"),),
        )
        with pytest.raises(ExperimentError, match="missing result columns"):
            run_sweep(spec, solve=lambda cell: {"X": 1.0}).table()

    def test_fig10_rows_merge_budget_cells(self):
        # Each margin's base + budget cells collapse into one table row.
        config = ExperimentConfig(margins=(1.0, 2.0), solver=TINY_SOLVER)
        spec = fig10_spec(config, budgets=(3,))

        def fake_solve(cell):
            budget = cell.params_dict()["budget"]
            if budget is None:
                return {"ECMP": 2.0 * cell.margin, "ideal": cell.margin}
            return {f"{budget} NHs": cell.margin + 0.5}

        table = run_sweep(spec, solve=fake_solve).table()
        assert table.rows == [(1.0, 2.0, 1.0, 1.5), (2.0, 4.0, 2.0, 2.5)]


class TestFig9Footer:
    def _report(self, gaps):
        config = ExperimentConfig(margins=tuple(1.0 + i for i in range(len(gaps))),
                                  solver=TINY_SOLVER)
        spec = fig9_spec(config)
        results = [
            CellResult(
                cell=cell,
                key=cell_key(cell),
                ratios={"ECMP": 2.0, "COYOTE": 1.0, "ECMP/COYOTE": gap},
                cached=False,
            )
            for cell, gap in zip(spec.cells, gaps)
        ]
        return SweepReport(spec=spec, results=results)

    def test_mean_over_finite_gaps(self):
        table = self._report([1.5, 2.5]).table()
        assert any("on average 100% further" in note for note in table.notes)

    def test_nan_gap_excluded_from_mean(self):
        # A single undefined gap (COYOTE ratio 0) must not poison the mean.
        table = self._report([1.5, float("nan"), 2.5]).table()
        note = next(note for note in table.notes if "further from the optimum" in note)
        assert "100%" in note and "nan" not in note
        assert "1 margin(s) with an undefined gap excluded" in note

    def test_all_gaps_undefined(self):
        table = self._report([float("nan")]).table()
        assert any("all 1 ECMP/COYOTE gaps were undefined" in note for note in table.notes)

    def test_nan_gap_rows_still_emitted(self):
        table = self._report([float("nan"), 1.5]).table()
        assert math.isnan(table.rows[0][3]) and table.rows[1][3] == 1.5


class TestLruMemo:
    def test_hit_returns_cached_value_without_factory(self):
        memo = LruMemo(limit=2)
        assert memo.get_or_create("a", lambda: 1) == 1
        assert memo.get_or_create("a", lambda: pytest.fail("factory re-ran")) == 1

    def test_eviction_is_least_recently_used_not_insertion_order(self):
        # Regression: the old dict-based memo evicted in FIFO insertion
        # order, so alternating setup keys on one long-lived worker would
        # thrash expensive setups.  A hit must refresh the entry.
        memo = LruMemo(limit=2)
        memo.get_or_create("a", lambda: "A")
        memo.get_or_create("b", lambda: "B")
        memo.get_or_create("a", lambda: pytest.fail("hit rebuilt"))  # refresh "a"
        memo.get_or_create("c", lambda: "C")  # evicts "b", not "a"
        assert "a" in memo and "c" in memo and "b" not in memo
        assert memo.get_or_create("a", lambda: pytest.fail("'a' was evicted")) == "A"

    def test_limit_enforced(self):
        memo = LruMemo(limit=2)
        for key in ("a", "b", "c", "d"):
            memo.get_or_create(key, lambda k=key: k)
        assert len(memo) == 2
        assert memo.keys() == ["c", "d"]

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError, match="limit"):
            LruMemo(limit=0)

    def test_run_sweep_starts_from_cold_memos(self):
        # A sweep's cost must not depend on what an earlier in-process
        # sweep (or driver call) happened to memoize: run_sweep resets
        # every per-process memo at entry.
        memo = LruMemo(limit=2)
        memo.get_or_create("left-over", lambda: object())
        run_sweep(make_spec(margins=(1.0,)), solve=_stub_solve)
        assert len(memo) == 0


class TestAtomicJson:
    def test_roundtrip(self, tmp_path):
        path = write_json_atomic(tmp_path / "deep" / "doc.json", {"x": 1})
        assert json.loads(path.read_text()) == {"x": 1}

    def test_non_finite_floats_become_null(self, tmp_path):
        payload = {"gap": float("nan"), "rows": [[1.0, float("inf")]]}
        path = write_json_atomic(tmp_path / "doc.json", payload)
        text = path.read_text()
        assert "NaN" not in text and "Infinity" not in text
        assert json.loads(text) == {"gap": None, "rows": [[1.0, None]]}

    def test_failed_write_leaves_no_partial_file(self, tmp_path):
        target = tmp_path / "doc.json"
        write_json_atomic(target, {"x": 1})
        with pytest.raises(TypeError):
            write_json_atomic(target, {"x": object()})  # not JSON-serializable
        # The previous complete document survives; no temp litter remains.
        assert json.loads(target.read_text()) == {"x": 1}
        assert list(tmp_path.glob("*.tmp")) == []


class TestChunking:
    def test_same_setup_cells_share_a_chunk(self):
        pending = list(enumerate(
            make_cell(margin=m, topology=t)
            for t in ("abilene", "nsf") for m in (1.0, 2.0, 3.0)
        ))
        chunks = _chunk_pending(pending, workers=2)
        assert len(chunks) == 2
        for chunk in chunks:
            assert len({cell.setup_key() for _, cell in chunk}) == 1
        assert sorted(index for chunk in chunks for index, _ in chunk) == list(range(6))

    def test_groups_split_to_fill_idle_workers(self):
        pending = list(enumerate(make_cell(margin=m) for m in (1.0, 2.0, 3.0, 4.0)))
        chunks = _chunk_pending(pending, workers=4)
        assert len(chunks) == 4
        assert sorted(index for chunk in chunks for index, _ in chunk) == list(range(4))

    def test_singleton_groups_cannot_split_further(self):
        pending = [(0, make_cell(topology="abilene")), (1, make_cell(topology="nsf"))]
        assert len(_chunk_pending(pending, workers=8)) == 2

    def test_splits_fall_on_margin_boundaries(self):
        # fig10-style group: several cells per margin sharing one setup.
        # Splitting mid-margin would rebuild the per-margin oracle/ideal
        # state in two workers, so the split must land between margins.
        pending = list(enumerate(
            make_cell(margin=m, params=freeze_params({"budget": b}))
            for m in (1.0, 2.0) for b in (None, 3, 10)
        ))
        chunks = _chunk_pending(pending, workers=2)
        assert len(chunks) == 2
        for chunk in chunks:
            assert len({cell.margin for _, cell in chunk}) == 1


class TestArtifacts:
    def test_write_artifacts(self, tmp_path):
        report = run_sweep(make_spec(), solve=_stub_solve)
        table_path, cells_path, events_path = write_artifacts(report, tmp_path / "out")
        table = json.loads(table_path.read_text())
        assert table["experiment"] == "test"
        assert table["rows"] == [list(row) for row in report.table().rows]
        assert table["solved"] == 3 and table["cached"] == 0
        cells = json.loads(cells_path.read_text())
        assert len(cells) == 3
        assert cells[0]["key"] == report.results[0].key
        assert not cells[0]["cached"]
        assert cells[0]["status"] == "solved"
        events = json.loads(events_path.read_text())
        assert events["complete"] and events["shard"] is None
        assert events["lifecycle"] == {"solved": 3}
        assert [e["event"] for e in events["events"]] == ["solved"] * 3


@pytest.mark.slow
class TestParallelEquality:
    """Real-solver equivalence: parallel and serial sweeps agree exactly."""

    def test_parallel_matches_serial(self, tmp_path):
        config = ExperimentConfig(margins=(1.0, 2.0), solver=TINY_SOLVER)
        spec = margin_sweep_spec("abilene", "gravity", config)
        cache = ResultCache(tmp_path)
        parallel = run_sweep(spec, jobs=2, cache=cache)
        serial = run_sweep(spec)
        assert parallel.solved == 2
        for row_parallel, row_serial in zip(parallel.table().rows, serial.table().rows):
            assert row_parallel == pytest.approx(row_serial, rel=1e-9)
        # The driver-level serial path produces the same table too.
        driver = margin_sweep_experiment("abilene", "gravity", config)
        assert driver.rows == serial.table().rows
        # A warm rerun re-solves nothing and reproduces the rows bit-for-bit.
        warm = run_sweep(spec, jobs=2, cache=cache)
        assert warm.solved == 0 and warm.cached == 2
        assert warm.table().rows == parallel.table().rows
