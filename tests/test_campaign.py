"""Tests for campaign coordination: shard math, claim files, manifests,
and the executor's sharded / claim-aware / stealing behavior."""

import json
import time

import pytest

from repro.config import SolverConfig
from repro.exceptions import ExperimentError
from repro.experiments.common import SCHEME_COLUMNS
from repro.runner.campaign import (
    CampaignError,
    ClaimPolicy,
    Shard,
    build_manifest,
    cell_shard,
    claim_path,
    claim_status,
    default_owner,
    load_manifest,
    parse_shard,
    read_claim,
    release_claim,
    shard_cells,
    try_claim,
    write_manifest,
)
from repro.runner.executor import run_sweep
from repro.runner.spec import SweepCell, SweepSpec, cell_key, spec_fingerprint
from repro.runner.store import DirStore

TINY_SOLVER = SolverConfig(
    max_adversarial_rounds=2,
    max_inner_iterations=10,
    smoothing_temperatures=(8.0, 64.0),
)


def make_cell(margin=1.0, topology="abilene", **overrides):
    return SweepCell(
        experiment=overrides.pop("experiment", "test"),
        topology=topology,
        demand_model=overrides.pop("demand_model", "gravity"),
        margin=margin,
        seed=overrides.pop("seed", 7),
        solver=TINY_SOLVER,
        **overrides,
    )


def make_spec(margins=(1.0, 2.0, 3.0, 4.0), **cell_kwargs):
    cells = tuple(make_cell(margin=m, **cell_kwargs) for m in margins)
    return SweepSpec(experiment="test", title="test sweep", cells=cells)


def _stub_solve(cell):
    return {scheme: cell.margin + i for i, scheme in enumerate(SCHEME_COLUMNS)}


def policy_for(tmp_path, owner="tester", ttl=3600.0):
    return ClaimPolicy(root=tmp_path, owner=owner, ttl=ttl)


class TestShardMath:
    def test_parse_shard(self):
        shard = parse_shard("1/4")
        assert (shard.index, shard.count) == (1, 4)
        assert str(shard) == "1/4"

    @pytest.mark.parametrize("bad", ["", "2", "2/2", "3/2", "-1/2", "a/b", "1/0"])
    def test_invalid_shard_specs_rejected(self, bad):
        with pytest.raises(CampaignError):
            parse_shard(bad)

    def test_cell_shard_is_deterministic_partition(self):
        cells = make_spec(margins=tuple(float(m) for m in range(1, 9))).cells
        keys = [cell_key(cell) for cell in cells]
        slots = [cell_shard(key, 3) for key in keys]
        assert slots == [cell_shard(key, 3) for key in keys]  # stable
        assert all(0 <= slot < 3 for slot in slots)

    def test_shard_cells_partitions_exactly(self):
        cells = make_spec(margins=tuple(float(m) for m in range(1, 9))).cells
        for index in range(3):
            ours, foreign = shard_cells(cells, Shard(index, 3))
            assert len(ours) + len(foreign) == len(cells)
        union = [
            cell for index in range(3) for cell in shard_cells(cells, Shard(index, 3))[0]
        ]
        assert sorted(cell_key(c) for c in union) == sorted(cell_key(c) for c in cells)


class TestClaims:
    def test_claim_then_held_then_release(self, tmp_path):
        mine = policy_for(tmp_path, owner="a")
        theirs = policy_for(tmp_path, owner="b")
        assert try_claim(mine, "deadbeef") == "claimed"
        assert try_claim(mine, "deadbeef") == "claimed"  # own re-claim
        assert try_claim(theirs, "deadbeef") == "held"
        assert claim_status(tmp_path, "deadbeef") == "active"
        release_claim(mine, "deadbeef")
        assert claim_status(tmp_path, "deadbeef") == "unclaimed"
        assert try_claim(theirs, "deadbeef") == "claimed"

    def test_expired_claim_is_stolen(self, tmp_path):
        dead = policy_for(tmp_path, owner="dead", ttl=0.0)
        assert try_claim(dead, "deadbeef") == "claimed"
        time.sleep(0.01)
        assert claim_status(tmp_path, "deadbeef", ttl=0.0) == "expired"
        thief = policy_for(tmp_path, owner="thief")
        assert try_claim(thief, "deadbeef") == "stolen"
        assert read_claim(claim_path(tmp_path, "deadbeef"))["owner"] == "thief"

    def test_same_host_dead_pid_claim_is_stolen_before_ttl(self, tmp_path):
        import socket

        # A plausibly-unused pid: claims by a dead process on this host
        # are abandoned immediately, without waiting out the long TTL.
        dead_owner = f"{socket.gethostname()}-{2**22 - 3}-feedface"
        ghost = policy_for(tmp_path, owner=dead_owner, ttl=3600.0)
        assert try_claim(ghost, "deadbeef") == "claimed"
        assert claim_status(tmp_path, "deadbeef") == "expired"
        assert try_claim(policy_for(tmp_path, owner="resumer"), "deadbeef") == "stolen"

    def test_same_host_live_pid_claim_is_held(self, tmp_path):
        import os
        import socket

        live_owner = f"{socket.gethostname()}-{os.getppid()}-feedface"
        other = policy_for(tmp_path, owner=live_owner)
        assert try_claim(other, "deadbeef") == "claimed"
        assert try_claim(policy_for(tmp_path, owner="me"), "deadbeef") == "held"

    def test_foreign_host_claim_respects_ttl(self, tmp_path):
        foreign = policy_for(tmp_path, owner="elsewhere-12345-cafebabe")
        assert try_claim(foreign, "deadbeef") == "claimed"
        # No pid probe is possible across hosts, so the live TTL governs.
        assert claim_status(tmp_path, "deadbeef") == "active"

    def test_corrupt_claim_is_stolen(self, tmp_path):
        path = claim_path(tmp_path, "deadbeef")
        path.parent.mkdir(parents=True)
        path.write_text("{torn")
        assert try_claim(policy_for(tmp_path), "deadbeef") == "stolen"

    def test_release_is_idempotent(self, tmp_path):
        release_claim(policy_for(tmp_path), "deadbeef")  # nothing to release

    def test_default_owner_unique_per_invocation(self):
        assert default_owner() != default_owner()


class TestShardedSweeps:
    def test_two_shards_cover_grid_and_merge_row_identical(self, tmp_path):
        spec = make_spec()
        store = DirStore(tmp_path / "store")
        reports = [
            run_sweep(
                spec, cache=store, solve=_stub_solve, shard=Shard(i, 2),
                claims=policy_for(tmp_path / "store", owner=f"host{i}"),
            )
            for i in range(2)
        ]
        total_solved = sum(report.solved for report in reports)
        assert total_solved == len(spec.cells)  # disjoint shards, no duplicates
        for report in reports:
            for skip in report.skipped:
                assert skip.reason == "foreign-shard"
        # Served entirely from the shared store, the merged table matches
        # a plain serial solve row for row.
        warm = run_sweep(spec, cache=store, solve=_stub_solve)
        assert warm.complete and warm.solved == 0
        assert warm.cached == len(spec.cells)
        serial = run_sweep(spec, solve=_stub_solve)
        assert warm.table().rows == serial.table().rows

    def test_partial_report_refuses_table_and_says_why(self, tmp_path):
        spec = make_spec()
        store = DirStore(tmp_path)
        report = run_sweep(spec, cache=store, solve=_stub_solve, shard=Shard(0, 2))
        if report.complete:  # every cell hashed into shard 0
            pytest.skip("grid happened to hash entirely into one shard")
        assert not report.complete
        with pytest.raises(ExperimentError, match="partial"):
            report.table()
        assert "skipped" in report.summary()

    def test_resumed_shard_resolves_nothing(self, tmp_path):
        spec = make_spec()
        store = DirStore(tmp_path)
        shard = Shard(0, 2)
        first = run_sweep(spec, cache=store, solve=_stub_solve, shard=shard)
        resumed = run_sweep(spec, cache=store, solve=_stub_solve, shard=shard)
        assert resumed.solved == 0
        assert resumed.cached == first.solved + first.cached
        counts = resumed.lifecycle_counts()
        assert counts.get("solved", 0) == 0

    def test_sharding_requires_store(self):
        with pytest.raises(ValueError, match="store"):
            run_sweep(make_spec(), solve=_stub_solve, shard=Shard(0, 2))

    def test_steal_requires_claims(self, tmp_path):
        with pytest.raises(ValueError, match="claim"):
            run_sweep(
                make_spec(), cache=DirStore(tmp_path), solve=_stub_solve, steal=True
            )

    def test_steal_resolves_foreign_cells(self, tmp_path):
        spec = make_spec()
        store = DirStore(tmp_path)
        shard = Shard(0, 2)
        foreign = [
            cell for cell in spec.cells if cell_shard(cell_key(cell), 2) != 0
        ]
        report = run_sweep(
            spec, cache=store, solve=_stub_solve, shard=shard,
            claims=policy_for(tmp_path), steal=True,
        )
        assert report.complete
        assert report.stolen == len(foreign)
        assert report.table().rows == run_sweep(spec, solve=_stub_solve).table().rows

    def test_live_foreign_claim_defers_cell(self, tmp_path):
        spec = make_spec()
        store = DirStore(tmp_path)
        held = spec.cells[0]
        other = policy_for(tmp_path, owner="other-host")
        assert try_claim(other, cell_key(held)) == "claimed"
        report = run_sweep(
            spec, cache=store, solve=_stub_solve, claims=policy_for(tmp_path, owner="me"),
        )
        assert [skip.key for skip in report.skipped] == [cell_key(held)]
        assert report.skipped[0].reason == "claimed-elsewhere"
        # The foreign claim survives; we never solved or released it.
        assert read_claim(claim_path(tmp_path, cell_key(held)))["owner"] == "other-host"
        assert not store.contains(held)

    def test_deferred_cell_served_once_owner_stores_it(self, tmp_path):
        spec = make_spec(margins=(1.0, 2.0))
        store = DirStore(tmp_path)
        held = spec.cells[0]
        other = policy_for(tmp_path, owner="other-host")
        assert try_claim(other, cell_key(held)) == "claimed"

        def solve_and_finish_elsewhere(cell):
            # While we solve our own cell, the claim owner finishes the
            # held one: the end-of-run re-probe must pick it up as a hit.
            store.put(held, _stub_solve(held))
            return _stub_solve(cell)

        report = run_sweep(
            spec, cache=store, solve=solve_and_finish_elsewhere,
            claims=policy_for(tmp_path, owner="me"),
        )
        assert report.complete
        assert report.solved == 1 and report.cached == 1
        assert report.results[0].cached  # the held cell, served not solved

    def test_expired_claim_marks_result_stolen(self, tmp_path):
        spec = make_spec(margins=(1.0,))
        store = DirStore(tmp_path)
        dead = policy_for(tmp_path, owner="dead-host", ttl=0.0)
        assert try_claim(dead, cell_key(spec.cells[0])) == "claimed"
        time.sleep(0.01)
        report = run_sweep(
            spec, cache=store, solve=_stub_solve, claims=policy_for(tmp_path, owner="me"),
        )
        assert report.solved == 1 and report.stolen == 1
        assert report.results[0].status == "stolen"
        assert report.lifecycle_counts().get("stolen") == 1


class TestManifest:
    def test_build_write_load_roundtrip(self, tmp_path):
        spec = make_spec()
        store = DirStore(tmp_path)
        shard = Shard(0, 2)
        policy = policy_for(tmp_path, owner="me")
        report = run_sweep(spec, cache=store, solve=_stub_solve, shard=shard, claims=policy)
        manifest = build_manifest(spec, report, store, shard=shard, policy=policy)
        path = write_manifest(manifest, tmp_path)
        loaded = load_manifest(tmp_path)
        assert path.name == "campaign.json"
        assert loaded["schema"] == "repro-campaign-v1"
        assert loaded["experiment"] == "test"
        assert loaded["spec_fingerprint"] == spec_fingerprint(spec)
        assert loaded["shard"] == {"index": 0, "count": 2}
        assert loaded["cells_total"] == len(spec.cells)
        assert loaded["owner"] == "me"
        shard_map = loaded["shard_map"]
        assert sum(entry["cells"] for entry in shard_map.values()) == len(spec.cells)
        # Only this shard has run, so exactly its cells are completed.
        assert loaded["completed_cells"] == shard_map["0"]["cells"]
        assert loaded["counters"]["solved"] == report.solved

    def test_resume_criterion_readable_from_manifest(self, tmp_path):
        spec = make_spec()
        store = DirStore(tmp_path)
        shard = Shard(0, 2)
        run_sweep(spec, cache=store, solve=_stub_solve, shard=shard)
        resumed = run_sweep(spec, cache=store, solve=_stub_solve, shard=shard)
        manifest = build_manifest(spec, resumed, store, shard=shard)
        assert manifest["counters"]["solved"] == 0
        assert manifest["counters"]["cache_hits"] == manifest["shard_cells"]

    def test_load_manifest_rejects_garbage(self, tmp_path):
        with pytest.raises(CampaignError):
            load_manifest(tmp_path)  # absent
        (tmp_path / "campaign.json").write_text(json.dumps({"schema": "other"}))
        with pytest.raises(CampaignError):
            load_manifest(tmp_path)
