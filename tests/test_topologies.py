"""Tests for topology data, generators, and the registry."""

import math

import pytest

from repro.exceptions import TopologyError
from repro.topologies.generators import (
    grid_network,
    integer_gadget_network,
    path_sink_network,
    prototype_network,
    ring_network,
    ring_with_chords,
    running_example_network,
    tree_with_chords,
)
from repro.topologies.zoo import (
    STRETCH_TOPOLOGIES,
    TABLE1_TOPOLOGIES,
    available_topologies,
    load_topology,
    topology_info,
)


class TestRegistry:
    def test_sixteen_topologies(self):
        assert len(available_topologies()) == 16

    def test_all_loadable_and_connected(self):
        for name in available_topologies():
            net = load_topology(name)
            assert net.is_strongly_connected(), name
            assert net.num_nodes >= 10 or name in ("gambia",)

    def test_node_counts_match_spec(self):
        for name in available_topologies():
            spec = topology_info(name)
            net = load_topology(name)
            assert net.num_nodes == spec.nodes, name

    def test_link_counts_match_spec(self):
        for name in available_topologies():
            spec = topology_info(name)
            net = load_topology(name)
            assert net.num_edges == 2 * spec.links, name

    def test_deterministic_generation(self):
        a = load_topology("as1755")
        b = load_topology("as1755")
        assert a.edges() == b.edges()
        assert a.capacities() == b.capacities()

    def test_case_insensitive_lookup(self):
        assert topology_info("GEANT").name == "geant"

    def test_unknown_name_raises(self):
        with pytest.raises(TopologyError, match="unknown topology"):
            load_topology("arpanet-1969")

    def test_table1_excludes_near_trees(self):
        assert "bbnplanet" not in TABLE1_TOPOLOGIES
        assert "gambia" not in TABLE1_TOPOLOGIES
        assert len(TABLE1_TOPOLOGIES) == 14

    def test_stretch_set_excludes_gambia_only(self):
        assert "gambia" not in STRETCH_TOPOLOGIES
        assert "bbnplanet" in STRETCH_TOPOLOGIES
        assert len(STRETCH_TOPOLOGIES) == 15

    def test_abilene_known_structure(self):
        net = load_topology("abilene")
        assert net.num_nodes == 11
        assert net.has_edge("Seattle", "Denver")
        assert net.capacity("Chicago", "NewYork") == 10.0


class TestGadgets:
    def test_running_example_structure(self):
        net = running_example_network()
        assert net.num_nodes == 4
        assert net.capacity("s2", "t") == 1.0

    def test_running_example_infinite_sides(self):
        net = running_example_network(infinite_side_links=True)
        assert net.capacity("s1", "s2") > 1e5
        assert net.capacity("v", "t") == 1.0

    def test_prototype_triangle(self):
        net = prototype_network(bandwidth=2.0)
        assert net.num_nodes == 3
        assert net.capacity("s1", "t") == 2.0

    def test_integer_gadget_structure(self):
        net = integer_gadget_network([3, 5])
        assert net.has_edge("s1", "x1_0") and net.capacity("s1", "x1_0") == 6.0
        assert net.has_edge("x1_1", "x2_1") and net.capacity("x1_1", "x2_1") == 5.0
        assert net.has_edge("m_0", "t") and net.capacity("m_0", "t") == 6.0
        # Gadget-internal links are bidirectional; source links are not.
        assert net.has_edge("x2_0", "x1_0")
        assert not net.has_edge("x1_0", "s1")

    def test_integer_gadget_mincut(self):
        # The min cut from {s1, s2} to t is 2 * SUM (the (m_i, t) edges).
        weights = [2, 3]
        net = integer_gadget_network(weights)
        cut = sum(net.capacity(f"m_{i}", "t") for i in range(len(weights)))
        assert cut == 2 * sum(weights)

    def test_integer_gadget_rejects_bad_weights(self):
        with pytest.raises(TopologyError):
            integer_gadget_network([])
        with pytest.raises(TopologyError):
            integer_gadget_network([1, 0])

    def test_path_sink_structure(self):
        net = path_sink_network(5)
        assert net.num_nodes == 6
        assert net.capacity("x3", "t") == 1.0
        assert math.isinf(net.capacity("x1", "x2")) or net.capacity("x1", "x2") > 1e5

    def test_path_sink_too_short(self):
        with pytest.raises(TopologyError):
            path_sink_network(1)


class TestGenerators:
    def test_ring(self):
        net = ring_network(5)
        assert net.num_nodes == 5 and net.num_edges == 10
        assert net.is_strongly_connected()

    def test_grid(self):
        net = grid_network(3, 4)
        assert net.num_nodes == 12
        assert net.is_strongly_connected()

    def test_ring_with_chords_counts(self):
        net = ring_with_chords("test", 12, 20, seed=1)
        assert net.num_nodes == 12
        assert net.num_edges == 40  # 20 undirected links

    def test_ring_with_chords_two_connected(self):
        net = ring_with_chords("test", 10, 14, seed=2)
        # Removing any single link keeps the ring strongly connected.
        assert net.is_strongly_connected()

    def test_tree_with_chords_counts(self):
        net = tree_with_chords("tree", 10, 2, seed=3)
        assert net.num_nodes == 10
        assert net.num_edges == 2 * (9 + 2)

    def test_chord_budget_validated(self):
        with pytest.raises(TopologyError):
            ring_with_chords("x", 10, 5, seed=1)
