"""Tests for tables, seeding, and configuration."""

import pytest

from repro.config import DEFAULT_CONFIG, ExperimentConfig
from repro.utils.seeding import rng_from_seed, stable_hash
from repro.utils.tables import Table, format_csv, format_markdown, merge_tables


class TestTable:
    def test_add_and_read_rows(self):
        table = Table("t", ["a", "b"])
        table.add_row(1, 2.5)
        assert table.column("b") == [2.5]
        assert len(table) == 1

    def test_row_length_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError, match="columns"):
            table.add_row(1)

    def test_unknown_column(self):
        table = Table("t", ["a"])
        with pytest.raises(ValueError, match="no column"):
            table.column("zzz")

    def test_markdown_rendering(self):
        table = Table("My Title", ["x", "y"])
        table.add_row(1, 0.123456)
        table.add_note("a note")
        text = format_markdown(table)
        assert "### My Title" in text
        assert "| 1 | 0.123 |" in text
        assert "> a note" in text

    def test_csv_rendering(self):
        table = Table("t", ["x", "y"])
        table.add_row("a", 2)
        csv = format_csv(table)
        assert csv.splitlines() == ["x,y", "a,2"]

    def test_sorted_by(self):
        table = Table("t", ["k", "v"])
        table.add_row(3, "c")
        table.add_row(1, "a")
        ordered = table.sorted_by("k")
        assert ordered.column("k") == [1, 3]

    def test_merge_tables(self):
        t1 = Table("first", ["m", "v"])
        t1.add_row(1.0, 10)
        t2 = Table("second", ["m", "v"])
        t2.add_row(2.0, 20)
        merged = merge_tables("all", [t1, t2], key_column="m")
        assert merged.columns[0] == "source"
        assert merged.column("source") == ["first", "second"]

    def test_merge_requires_same_schema(self):
        t1 = Table("a", ["x"])
        t2 = Table("b", ["y"])
        with pytest.raises(ValueError, match="identical schemas"):
            merge_tables("all", [t1, t2], key_column="x")

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_tables("all", [], key_column="x")


class TestSeeding:
    def test_stable_hash_process_independent(self):
        # Known value pinning: guards against accidental algorithm drift.
        assert stable_hash("a", 1) == stable_hash("a", 1)
        assert stable_hash("a", 1) != stable_hash("a", 2)

    def test_scoped_rngs_are_decorrelated(self):
        a = rng_from_seed(7, "alpha").random(8)
        b = rng_from_seed(7, "beta").random(8)
        assert not (a == b).all()


class TestConfig:
    def test_scaled_down_cheaper(self):
        small = DEFAULT_CONFIG.scaled_down()
        assert small.max_adversarial_rounds < DEFAULT_CONFIG.max_adversarial_rounds
        assert len(small.smoothing_temperatures) <= len(
            DEFAULT_CONFIG.smoothing_temperatures
        )

    def test_experiment_config_paper_grid(self):
        config = ExperimentConfig.paper()
        assert config.margins[0] == 1.0
        assert config.margins[-1] == 5.0
        assert len(config.margins) == 9

    def test_experiment_config_reduced(self):
        config = ExperimentConfig.reduced()
        assert len(config.margins) == 3

    def test_from_environment_default_reduced(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert len(ExperimentConfig.from_environment().margins) == 3

    def test_from_environment_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert len(ExperimentConfig.from_environment().margins) == 9

    def test_solver_config_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.seed = 1  # type: ignore[misc]
