"""Tests for the experiment drivers (fast configurations only)."""

import math

import pytest

from repro.config import ExperimentConfig, SolverConfig
from repro.exceptions import ExperimentError
from repro.experiments.fig12_prototype import (
    coyote_forwarding,
    fig12,
    run_scheme,
    te1_forwarding,
    te2_forwarding,
)
from repro.experiments.hardness import (
    direct_link_routing,
    lemma2_routing,
    theorem1_table,
    theorem4_table,
)
from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment
from repro.experiments.running_example import (
    GOLDEN_RATIO_UTILIZATION,
    running_example_table,
)

TINY = ExperimentConfig(
    margins=(1.0, 2.0),
    solver=SolverConfig(
        max_adversarial_rounds=2,
        max_inner_iterations=10,
        smoothing_temperatures=(8.0, 64.0),
    ),
)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = set(experiment_ids())
        expected = {
            "running-example", "thm1", "thm4",
            "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
            "table1",
        }
        assert expected == ids

    def test_unknown_experiment_raises(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            run_experiment("fig99")

    def test_descriptions_present(self):
        assert all(e.description for e in EXPERIMENTS.values())


class TestRunningExample:
    def test_table_values(self):
        table = running_example_table(TINY)
        measured = dict(zip(table.column("scheme"), table.column("measured")))
        assert measured["ECMP (Fig. 1b)"] == pytest.approx(1.5, abs=1e-6)
        assert measured["COYOTE (Fig. 1c)"] == pytest.approx(4 / 3, abs=1e-6)
        assert measured["COYOTE (optimized)"] == pytest.approx(
            GOLDEN_RATIO_UTILIZATION, abs=0.01
        )

    def test_golden_constant(self):
        assert GOLDEN_RATIO_UTILIZATION == pytest.approx(math.sqrt(5) - 1)


class TestHardness:
    def test_theorem1_balanced_is_four_thirds(self):
        table = theorem1_table(TINY, weights=(3, 1, 2))
        ratios = table.column("ratio")
        assert ratios[0] == pytest.approx(4 / 3, abs=1e-6)
        assert ratios[1] > 4 / 3 + 0.1  # unbalanced is strictly worse

    def test_theorem1_rejects_odd_sum(self):
        with pytest.raises(ExperimentError, match="odd sum"):
            theorem1_table(TINY, weights=(1, 2))

    def test_lemma2_routing_valid(self):
        routing = lemma2_routing((3, 1, 2), {0})
        routing.validate()

    def test_theorem4_scaling(self):
        table = theorem4_table(TINY, lengths=(3, 5))
        for n, optimum, ratio, bound in table.rows:
            assert optimum == pytest.approx(1.0, abs=1e-6)
            assert ratio == pytest.approx(float(n), rel=1e-6)

    def test_direct_link_routing_valid(self):
        direct_link_routing(4).validate()


class TestFig12:
    def test_coyote_zero_loss(self):
        rates = run_scheme(coyote_forwarding())
        assert max(rates) < 0.02

    def test_te1_drops_heavily_in_phase1(self):
        rates = run_scheme(te1_forwarding())
        assert rates[0] == pytest.approx(0.5, abs=0.05)
        assert rates[1] < 0.02

    def test_te2_drops_quarter_in_phase2(self):
        rates = run_scheme(te2_forwarding())
        assert rates[1] == pytest.approx(0.25, abs=0.05)
        assert rates[2] < 0.02

    def test_fig12_table_shape(self):
        table = fig12()
        assert table.column("scheme") == ["TE1", "TE2", "COYOTE"]
        worst = dict(zip(table.column("scheme"), table.column("worst")))
        assert worst["COYOTE"] < 0.02
        assert worst["TE1"] > 0.2 and worst["TE2"] > 0.2

    def test_coyote_forwarding_comes_from_ospf(self):
        scheme = coyote_forwarding()
        # The lie splits s1's t1 traffic between t and s2.
        weights = dict(scheme.tables["t1"].next_hop_weights("s1"))
        assert weights == {"t": 0.5, "s2": 0.5}
        # ...but s1 forwards t2 traffic straight to t.
        weights_t2 = dict(scheme.tables["t2"].next_hop_weights("s1"))
        assert weights_t2 == {"t": 1.0}


@pytest.mark.slow
class TestSweeps:
    """Reduced-grid smoke runs of the heavy drivers (marked slow)."""

    def test_margin_sweep_tiny(self):
        from repro.experiments.margin_sweep import margin_sweep_experiment

        table = margin_sweep_experiment("nsf", "gravity", TINY)
        assert len(table) == len(TINY.margins)
        # COYOTE-pk never loses to ECMP.
        for row in table.rows:
            margin, ecmp, base, obl, pk = row
            assert pk <= ecmp + 1e-6
        # With no uncertainty, Base and COYOTE-pk are optimal.
        first = table.rows[0]
        assert first[2] == pytest.approx(1.0, abs=1e-6)
        assert first[4] == pytest.approx(1.0, abs=0.02)

    def test_fig10_budget_ordering(self):
        from repro.experiments.fig10_approximation import fig10

        table = fig10(TINY, topology="nsf", budgets=(3, 10))
        for row in table.rows:
            margin, ecmp, ideal, nh3, nh10 = row
            assert ideal <= nh10 + 0.05  # more budget ~ closer to ideal
            assert nh10 <= nh3 + 0.15

    def test_fig11_stretch_bounds(self):
        from repro.experiments.fig11_stretch import fig11

        table = fig11(TINY, topologies=("nsf",), margin=2.0)
        for _net, obl, pk in table.rows:
            assert 0.8 <= obl <= 2.0
            assert 0.8 <= pk <= 2.0
