"""Tests for unconstrained (Applegate-Cohen) oblivious routing."""

import pytest

from repro.config import SolverConfig
from repro.demands.uncertainty import oblivious_pairs, oblivious_set
from repro.lp.oblivious_lp import (
    exact_unconstrained_oblivious,
    optimize_unconstrained_oblivious,
)
from repro.topologies.generators import path_sink_network, ring_network

FAST = SolverConfig(max_adversarial_rounds=6, max_inner_iterations=10)


class TestUnconstrainedOblivious:
    def test_ring_is_easy(self):
        """On a symmetric ring the oblivious ratio is small and certified."""
        net = ring_network(5)
        result = optimize_unconstrained_oblivious(net, config=FAST)
        assert result.ratio >= 1.0 - 1e-6
        assert result.ratio <= 2.5
        assert result.rounds >= 1

    def test_flows_are_unit_flows(self):
        net = ring_network(4)
        result = optimize_unconstrained_oblivious(net, config=FAST)
        # Each pair's flow delivers exactly one unit into the target.
        for (s, t), flow in list(result.flows.items())[:4]:
            into_t = sum(v for (u, x), v in flow.items() if x == t)
            out_t = sum(v for (u, x), v in flow.items() if u == t)
            assert into_t - out_t == pytest.approx(1.0, abs=1e-6)

    def test_beats_destination_based_on_theorem4_instance(self):
        """The Theorem 4 separation: unconstrained oblivious routing is
        dramatically better than any destination-based one."""
        n = 5
        net = path_sink_network(n)
        pairs = [(f"x{i}", "t") for i in range(1, n + 1)]
        result = optimize_unconstrained_oblivious(
            net, oblivious_pairs(pairs), config=FAST
        )
        # Destination-based routing is pinned at ratio n (Theorem 4);
        # source-based splitting spreads each spike over the whole path.
        assert result.ratio < n - 1

    def test_history_bounds_consistent(self):
        net = ring_network(4)
        result = optimize_unconstrained_oblivious(net, config=FAST)
        for master, oracle in result.history:
            assert master <= oracle + 1e-6

    @pytest.mark.slow
    def test_abilene_close_to_literature(self, abilene):
        """Applegate-Cohen report oblivious ratios around 2 on ISP maps;
        the exact dual LP lands below destination-based ECMP's oblivious
        ratio of 3.0, and the cutting-plane master bound agrees from
        below."""
        exact = exact_unconstrained_oblivious(abilene)
        assert exact.ratio < 3.0
        deep = SolverConfig(max_adversarial_rounds=8, max_inner_iterations=10)
        bound = optimize_unconstrained_oblivious(
            abilene, oblivious_set(abilene.nodes()), config=deep
        )
        master_bound = bound.history[-1][0]
        assert master_bound <= exact.ratio + 1e-3


class TestExactApplegateCohen:
    def test_ring_symmetric_optimum(self):
        net = ring_network(4)
        result = exact_unconstrained_oblivious(net)
        assert 1.0 - 1e-6 <= result.ratio <= 2.0

    def test_theorem4_instance_beats_destination_based(self):
        n = 4
        net = path_sink_network(n)
        pairs = [(f"x{i}", "t") for i in range(1, n + 1)]
        result = exact_unconstrained_oblivious(net, pairs)
        assert result.ratio < n - 1  # Theorem 4 pins destination-based at n

    def test_flows_route_units(self):
        net = ring_network(4)
        result = exact_unconstrained_oblivious(net)
        for (s, t), per_pair in list(result.flows.items())[:4]:
            into_t = sum(v for (u, x), v in per_pair.items() if x == t)
            assert into_t == pytest.approx(1.0, abs=1e-6)
