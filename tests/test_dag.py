"""Unit tests for the per-destination DAG type and its invariants."""

import pytest

from repro.exceptions import DagError
from repro.graph.dag import Dag
from repro.graph.network import Network


class TestInvariants:
    def test_simple_dag(self, diamond):
        dag = Dag("d", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")], diamond)
        assert dag.root == "d"
        assert dag.num_edges == 4
        assert set(dag.out_neighbors("a")) == {"b", "c"}

    def test_cycle_rejected(self, triangle):
        with pytest.raises(DagError, match="cycle"):
            Dag("c", [("a", "b"), ("b", "a"), ("a", "c")], triangle)

    def test_root_out_edges_rejected(self, triangle):
        with pytest.raises(DagError, match="root"):
            Dag("c", [("c", "a"), ("a", "c")], triangle)

    def test_duplicate_edge_rejected(self, triangle):
        with pytest.raises(DagError, match="duplicate"):
            Dag("c", [("a", "c"), ("a", "c")], triangle)

    def test_non_network_edge_rejected(self, diamond):
        with pytest.raises(DagError, match="not a network edge"):
            Dag("d", [("a", "d")], diamond)

    def test_dead_end_rejected(self):
        # b has an in-edge but cannot reach the root.
        net = Network.from_edges(
            [("a", "t", 1.0), ("a", "b", 1.0), ("b", "t", 1.0)]
        )
        with pytest.raises(DagError, match="cannot reach the root"):
            Dag("t", [("a", "t"), ("a", "b")], net)

    def test_edges_without_network_validation(self):
        dag = Dag("t", [("a", "t"), ("b", "t")])
        assert dag.has_edge("a", "t")
        assert not dag.has_edge("t", "a")


class TestTopology:
    def test_topological_order_respects_edges(self, diamond):
        dag = Dag("d", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")], diamond)
        order = dag.topological_order()
        position = {node: i for i, node in enumerate(order)}
        for tail, head in dag.edges():
            assert position[tail] < position[head]
        assert order[-1] == "d"

    def test_splittable_nodes(self, diamond):
        dag = Dag("d", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")], diamond)
        assert dag.splittable_nodes() == ["a"]

    def test_contains_dag(self, diamond):
        big = Dag("d", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")], diamond)
        small = Dag("d", [("a", "b"), ("b", "d")], diamond)
        assert big.contains_dag(small)
        assert not small.contains_dag(big)

    def test_contains_dag_different_roots(self, diamond):
        dag1 = Dag("d", [("a", "b"), ("b", "d")], diamond)
        dag2 = Dag("a", [("b", "a")], diamond)
        assert not dag1.contains_dag(dag2)

    def test_in_neighbors(self, diamond):
        dag = Dag("d", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")], diamond)
        assert set(dag.in_neighbors("d")) == {"b", "c"}
        assert dag.in_neighbors("a") == []

    def test_iteration_yields_edges(self, diamond):
        edges = [("a", "b"), ("b", "d")]
        dag = Dag("d", edges, diamond)
        assert list(dag) == edges

    def test_nodes_includes_root(self, diamond):
        dag = Dag("d", [("a", "b"), ("b", "d")], diamond)
        assert set(dag.nodes()) == {"a", "b", "d"}
