"""Tests for demand-polytope utilities and path decomposition."""

import pytest

from repro.demands.matrix import DemandMatrix
from repro.demands.polytope import (
    dominates,
    max_demand_along,
    max_routable_scaling,
    non_dominated,
    saturate,
)
from repro.exceptions import RoutingError
from repro.routing.decomposition import (
    expected_hops_via_paths,
    path_count,
    paths_for_pair,
)
from repro.experiments.running_example import fig1b_routing, fig1c_routing
from repro.lp.mcf import min_congestion
from repro.topologies.generators import integer_gadget_network


class TestDomination:
    def test_dominates_strictly(self):
        a = DemandMatrix({("a", "b"): 2.0, ("a", "c"): 1.0})
        b = DemandMatrix({("a", "b"): 1.0, ("a", "c"): 1.0})
        assert dominates(a, b)
        assert not dominates(b, a)

    def test_equal_matrices_do_not_dominate(self):
        a = DemandMatrix({("a", "b"): 1.0})
        assert not dominates(a, DemandMatrix({("a", "b"): 1.0}))

    def test_incomparable(self):
        a = DemandMatrix({("a", "b"): 2.0})
        b = DemandMatrix({("a", "c"): 2.0})
        assert not dominates(a, b) and not dominates(b, a)

    def test_non_dominated_filter(self):
        big = DemandMatrix({("a", "b"): 2.0, ("a", "c"): 2.0})
        small = DemandMatrix({("a", "b"): 1.0})
        other = DemandMatrix({("a", "d"): 5.0})
        survivors = non_dominated([big, small, other])
        assert big in survivors and other in survivors
        assert small not in survivors


class TestScaling:
    def test_saturate_reaches_boundary(self, running_example):
        dm = DemandMatrix({("s1", "t"): 0.5})
        boundary = saturate(running_example, dm)
        assert min_congestion(running_example, boundary).alpha == pytest.approx(1.0)

    def test_max_routable_scaling_value(self, running_example):
        # s1's min cut toward t is 2 (via s2 and v), so 0.5 scales by 4.
        dm = DemandMatrix({("s1", "t"): 0.5})
        assert max_routable_scaling(running_example, dm) == pytest.approx(4.0)

    def test_theorem1_vertex_demand(self):
        """Theorem 1's D1 = (2 SUM, 0): the single-source vertex."""
        weights = [3, 1, 2]
        net = integer_gadget_network(weights)
        vertex = max_demand_along(net, [("s1", "t")])
        assert vertex.get("s1", "t") == pytest.approx(2.0 * sum(weights))

    def test_max_demand_with_background(self):
        weights = [2, 2]
        net = integer_gadget_network(weights)
        background = DemandMatrix({("s2", "t"): 4.0})
        combined = max_demand_along(net, [("s1", "t")], fixed=background)
        # Min cut is 2 * SUM = 8 shared by both sources.
        assert combined.total() == pytest.approx(8.0)


class TestDecomposition:
    def test_fig1b_paths(self, running_example):
        routing = fig1b_routing(running_example)
        paths = paths_for_pair(routing, "s1", "t")
        fractions = {p.nodes: p.fraction for p in paths}
        assert fractions[("s1", "v", "t")] == pytest.approx(0.5)
        assert fractions[("s1", "s2", "t")] == pytest.approx(0.25)
        assert fractions[("s1", "s2", "v", "t")] == pytest.approx(0.25)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_paths_sorted_by_weight(self, running_example):
        routing = fig1c_routing(running_example)
        paths = paths_for_pair(routing, "s1", "t")
        weights = [p.fraction for p in paths]
        assert weights == sorted(weights, reverse=True)

    def test_expected_hops_matches_dp(self, running_example):
        routing = fig1b_routing(running_example)
        via_paths = expected_hops_via_paths(routing, "s1", "t")
        via_dp = routing.expected_hops("s1", "t")
        assert via_paths == pytest.approx(via_dp)

    def test_path_count_counts_tunnels(self, running_example):
        routing = fig1b_routing(running_example)
        # s1: 3 paths, s2: 2 paths, v: 1 path.
        assert path_count(routing) == 6

    def test_cutoff_prunes_tiny_paths(self, running_example):
        routing = fig1b_routing(running_example)
        heavy = paths_for_pair(routing, "s1", "t", cutoff=0.3)
        assert len(heavy) == 1

    def test_unknown_target_raises(self, running_example):
        routing = fig1b_routing(running_example)
        with pytest.raises(RoutingError):
            paths_for_pair(routing, "s1", "v")
