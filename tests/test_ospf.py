"""Tests for the OSPF link-state simulator."""

import pytest

from repro.demands.matrix import DemandMatrix
from repro.ecmp.routing import ecmp_routing
from repro.ecmp.weights import inverse_capacity_weights, unit_weights
from repro.exceptions import OspfError
from repro.graph.network import Network
from repro.ospf.domain import OspfDomain
from repro.ospf.lsa import FakeNodeLsa, LsaLink, PrefixLsa, RouterLsa
from repro.ospf.lsdb import LinkStateDatabase
from repro.ospf.router import Router
from repro.ospf.spf import SpfCalculator, SpfGraph


class TestLsa:
    def test_router_lsa_key(self):
        lsa = RouterLsa("r1", (LsaLink("r2", 1.0),))
        assert lsa.key == ("router", "r1")

    def test_link_cost_positive(self):
        with pytest.raises(OspfError):
            LsaLink("r2", 0.0)

    def test_prefix_cost_nonnegative(self):
        with pytest.raises(OspfError):
            PrefixLsa("p", "r1", cost=-1.0)

    def test_fake_lsa_route_cost(self):
        fake = FakeNodeLsa("f", "r1", "r2", "p", attach_cost=0.5, prefix_cost=0.25)
        assert fake.route_cost == pytest.approx(0.75)

    def test_fake_lsa_forwarding_must_differ(self):
        with pytest.raises(OspfError):
            FakeNodeLsa("f", "r1", "r1", "p", 0.5, 0.5)


class TestLsdb:
    def test_freshness_rule(self):
        db = LinkStateDatabase()
        old = RouterLsa("r1", (), sequence=1)
        new = RouterLsa("r1", (LsaLink("r2", 1.0),), sequence=2)
        assert db.install(old)
        assert db.install(new)
        assert not db.install(old)  # stale
        assert db.get(("router", "r1")).sequence == 2

    def test_digest_tracks_content(self):
        db1, db2 = LinkStateDatabase(), LinkStateDatabase()
        lsa = RouterLsa("r1", ())
        db1.install(lsa)
        assert db1.digest() != db2.digest()
        db2.install(lsa)
        assert db1.digest() == db2.digest()

    def test_validate_rejects_orphan_fake(self):
        db = LinkStateDatabase()
        db.install(FakeNodeLsa("f", "ghost", "r2", "p", 0.5, 0.5))
        with pytest.raises(OspfError, match="unknown router"):
            db.validate()

    def test_prefix_collection(self):
        db = LinkStateDatabase()
        db.install(RouterLsa("r1", ()))
        db.install(PrefixLsa("p1", "r1"))
        db.install(FakeNodeLsa("f", "r1", "r2", "p2", 0.5, 0.5))
        assert db.prefixes() == {"p1", "p2"}


class TestSpf:
    def _two_router_db(self):
        db = LinkStateDatabase()
        db.install(RouterLsa("a", (LsaLink("b", 1.0),)))
        db.install(RouterLsa("b", (LsaLink("a", 1.0),)))
        db.install(PrefixLsa("p", "b"))
        return db

    def test_basic_route(self):
        calc = SpfCalculator(SpfGraph(self._two_router_db()))
        hops = calc.next_hops("a", "p")
        assert len(hops) == 1 and hops[0].neighbor == "b"

    def test_local_delivery_no_next_hop(self):
        calc = SpfCalculator(SpfGraph(self._two_router_db()))
        assert calc.next_hops("b", "p") == []

    def test_one_way_link_ignored(self):
        # OSPF requires bidirectional adjacency confirmation.
        db = LinkStateDatabase()
        db.install(RouterLsa("a", (LsaLink("b", 1.0),)))
        db.install(RouterLsa("b", ()))  # b does not report a
        db.install(PrefixLsa("p", "b"))
        calc = SpfCalculator(SpfGraph(db))
        assert calc.next_hops("a", "p") == []

    def test_fake_node_attracts_traffic(self):
        db = self._two_router_db()
        db.install(RouterLsa("c", (LsaLink("a", 1.0),)))
        # Make the topology a-b, a-c (bidirectional).
        db.install(RouterLsa("a", (LsaLink("b", 1.0), LsaLink("c", 1.0)), sequence=2))
        db.install(FakeNodeLsa("f", "a", "c", "p", 0.25, 0.25))
        calc = SpfCalculator(SpfGraph(db))
        hops = calc.next_hops("a", "p")
        # The lie (cost 0.5) beats the real route (cost 1): all to c.
        assert [h.neighbor for h in hops] == ["c"]

    def test_fake_multiplicity(self):
        db = self._two_router_db()
        db.install(FakeNodeLsa("f1", "a", "b", "p", 0.25, 0.25))
        db.install(FakeNodeLsa("f2", "a", "b", "p", 0.25, 0.25))
        calc = SpfCalculator(SpfGraph(db))
        hops = calc.next_hops("a", "p")
        assert hops[0].multiplicity == 2


class TestDomain:
    def test_flooding_converges(self, abilene):
        domain = OspfDomain(abilene, unit_weights(abilene))
        domain.advertise_loopbacks()
        rounds = domain.flood()
        assert rounds <= abilene.num_nodes
        digests = {r.lsdb.digest() for r in domain.routers.values()}
        assert len(digests) == 1

    def test_fibs_match_ecmp(self, abilene):
        weights = inverse_capacity_weights(abilene)
        domain = OspfDomain(abilene, weights)
        domain.advertise_loopbacks()
        domain.flood()
        ospf = domain.extract_routing()
        ecmp = ecmp_routing(abilene, weights)
        for t in abilene.nodes():
            assert set(ospf.dags[t].edges()) == set(ecmp.dags[t].edges())

    def test_extracted_routing_routes_demands(self, abilene):
        weights = unit_weights(abilene)
        domain = OspfDomain(abilene, weights)
        domain.advertise_loopbacks()
        domain.flood()
        routing = domain.extract_routing()
        dm = DemandMatrix({("Seattle", "Atlanta"): 1.0})
        loads = routing.link_loads(dm)
        arriving = sum(f for (u, v), f in loads.items() if v == "Atlanta")
        assert arriving == pytest.approx(1.0)

    def test_duplicate_prefix_rejected(self, triangle):
        domain = OspfDomain(triangle, unit_weights(triangle))
        domain.advertise_prefix("a", "p")
        with pytest.raises(OspfError, match="already advertised"):
            domain.advertise_prefix("b", "p")

    def test_lie_with_bad_forwarding_neighbor_rejected(self, triangle):
        domain = OspfDomain(triangle, unit_weights(triangle))
        domain.advertise_loopbacks()
        lie = FakeNodeLsa("f", "a", "b", "c", 0.1, 0.1)
        domain.inject_lies([lie])  # a-b are neighbors: fine
        net = Network.from_undirected([("a", "b", 1.0), ("b", "c", 1.0)])
        chain = OspfDomain(net, {e: 1.0 for e in net.edges()})
        chain.advertise_loopbacks()
        bad = FakeNodeLsa("f", "a", "c", "c", 0.1, 0.1)  # c not adjacent to a
        with pytest.raises(OspfError, match="not a .*neighbor"):
            chain.inject_lies([bad])

    def test_clear_lies_restores_ecmp(self, triangle):
        weights = unit_weights(triangle)
        domain = OspfDomain(triangle, weights)
        domain.advertise_loopbacks()
        domain.flood()
        before = domain.splitting_ratios("c")
        domain.inject_lies([FakeNodeLsa("f", "a", "b", "c", 0.1, 0.1)])
        domain.flood()
        during = domain.splitting_ratios("c")
        assert during != before
        domain.clear_lies()
        domain.flood()
        assert domain.splitting_ratios("c") == before

    def test_link_failure_reroutes(self, triangle):
        weights = unit_weights(triangle)
        domain = OspfDomain(triangle, weights)
        domain.advertise_loopbacks()
        domain.flood()
        assert domain.splitting_ratios("c").get(("a", "c")) == pytest.approx(1.0)
        domain.fail_link("a", "c")
        domain.flood()
        ratios = domain.splitting_ratios("c")
        assert ("a", "c") not in ratios
        assert ratios.get(("a", "b")) == pytest.approx(1.0)

    def test_total_fake_lsas(self, triangle):
        domain = OspfDomain(triangle, unit_weights(triangle))
        domain.advertise_loopbacks()
        domain.inject_lies([FakeNodeLsa("f", "a", "b", "c", 0.1, 0.1)])
        domain.flood()
        assert domain.total_fake_lsas() == 1


class TestRouter:
    def test_originate_bumps_sequence(self):
        router = Router("r1")
        first = router.originate({"r2": 1.0})
        second = router.originate({"r2": 2.0})
        assert second.sequence == first.sequence + 1

    def test_fib_rebuilt_after_receive(self):
        r1 = Router("r1")
        r1.originate({"r2": 1.0})
        r2_lsa = RouterLsa("r2", (LsaLink("r1", 1.0),), sequence=1)
        prefix = PrefixLsa("p", "r2")
        r1.receive(r2_lsa)
        r1.receive(prefix)
        assert [h.neighbor for h in r1.next_hops("p")] == ["r2"]

    def test_splitting_fractions(self):
        r1 = Router("r1")
        r1.originate({"r2": 1.0, "r3": 1.0})
        r1.receive(RouterLsa("r2", (LsaLink("r1", 1.0), LsaLink("r4", 1.0))))
        r1.receive(RouterLsa("r3", (LsaLink("r1", 1.0), LsaLink("r4", 1.0))))
        r1.receive(RouterLsa("r4", (LsaLink("r2", 1.0), LsaLink("r3", 1.0))))
        r1.receive(PrefixLsa("p", "r4"))
        fractions = r1.splitting_fractions("p")
        assert fractions == {"r2": 0.5, "r3": 0.5}
