"""Tests for the min-congestion MCF LP (OPTU) and the within-DAG variant."""

import pytest

from repro.demands.matrix import DemandMatrix
from repro.exceptions import InfeasibleError
from repro.graph.dag import Dag
from repro.graph.network import Network
from repro.lp.dag_flow import (
    dag_optimal_congestion,
    induced_splitting_ratios,
    optimal_dag_routing,
)
from repro.lp.mcf import is_routable, min_congestion, optimal_utilization


class TestUnrestricted:
    def test_single_path(self):
        net = Network.from_edges([("a", "b", 2.0)])
        result = min_congestion(net, DemandMatrix({("a", "b"): 1.0}))
        assert result.alpha == pytest.approx(0.5)

    def test_parallel_paths_split(self, diamond):
        # 2 units a->d; paths a-b-d (cap 2) and a-c-d (cap 1): the optimum
        # loads both at 2/3 utilization by splitting 4/3 vs 2/3.
        result = min_congestion(net := diamond, DemandMatrix({("a", "d"): 2.0}))
        assert result.alpha == pytest.approx(2.0 / 3.0)

    def test_running_example_extremes(self, running_example):
        # Either extreme demand can be routed at congestion exactly 1.
        for source in ("s1", "s2"):
            dm = DemandMatrix({(source, "t"): 2.0})
            assert min_congestion(running_example, dm).alpha == pytest.approx(1.0)

    def test_multi_destination(self, triangle):
        dm = DemandMatrix({("a", "b"): 0.5, ("b", "c"): 0.5, ("c", "a"): 0.5})
        result = min_congestion(triangle, dm)
        assert result.alpha <= 0.5 + 1e-9

    def test_flows_satisfy_demand(self, diamond):
        dm = DemandMatrix({("a", "d"): 2.0})
        result = min_congestion(diamond, dm)
        # Net flow delivered into d equals the demand.
        delivered = sum(
            flow for (u, v), flow in result.flows["d"].items() if v == "d"
        ) - sum(flow for (u, v), flow in result.flows["d"].items() if u == "d")
        assert delivered == pytest.approx(2.0)

    def test_optimal_utilization_empty_demand(self, diamond):
        assert optimal_utilization(diamond, DemandMatrix({})) == 0.0

    def test_is_routable(self, diamond):
        assert is_routable(diamond, DemandMatrix({("a", "d"): 3.0}))
        assert not is_routable(diamond, DemandMatrix({("a", "d"): 3.2}))


class TestWithinDags:
    def test_dag_restriction_binds(self, diamond):
        # Restricting to the b-branch halves the usable capacity.
        dag = Dag("d", [("a", "b"), ("b", "d")], diamond)
        dm = DemandMatrix({("a", "d"): 2.0})
        unrestricted = min_congestion(diamond, dm).alpha
        restricted = min_congestion(diamond, dm, dags={"d": dag}).alpha
        assert restricted == pytest.approx(1.0)
        assert restricted > unrestricted

    def test_source_outside_dag_infeasible(self, diamond):
        dag = Dag("d", [("b", "d")], diamond)
        dm = DemandMatrix({("a", "d"): 1.0})
        with pytest.raises(InfeasibleError):
            min_congestion(diamond, dm, dags={"d": dag})

    def test_induced_ratios_follow_flows(self, diamond):
        dag = Dag("d", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")], diamond)
        dm = DemandMatrix({("a", "d"): 2.0})
        result = dag_optimal_congestion(diamond, {"d": dag}, dm)
        ratios = induced_splitting_ratios({"d": dag}, result)
        # Optimal split is 2:1 along capacities.
        assert ratios["d"][("a", "b")] == pytest.approx(2.0 / 3.0, abs=1e-6)
        assert ratios["d"][("a", "c")] == pytest.approx(1.0 / 3.0, abs=1e-6)

    def test_unused_nodes_get_uniform_ratios(self, diamond):
        dag = Dag("d", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")], diamond)
        dm = DemandMatrix({("b", "d"): 1.0})  # a carries no flow
        result = dag_optimal_congestion(diamond, {"d": dag}, dm)
        ratios = induced_splitting_ratios({"d": dag}, result)
        assert ratios["d"][("a", "b")] == pytest.approx(0.5)
        assert ratios["d"][("a", "c")] == pytest.approx(0.5)

    def test_optimal_dag_routing_achieves_alpha(self, diamond):
        dag = Dag("d", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")], diamond)
        dm = DemandMatrix({("a", "d"): 2.0})
        routing = optimal_dag_routing(diamond, {"d": dag}, dm)
        alpha = dag_optimal_congestion(diamond, {"d": dag}, dm).alpha
        assert routing.max_link_utilization(dm, diamond) == pytest.approx(alpha, abs=1e-6)
