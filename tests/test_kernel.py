"""Unit tests for the vectorized routing kernel (:mod:`repro.kernel`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.local_search import (
    MAX_WEIGHT,
    ecmp_utilization,
    weight_search,
)
from repro.demands.gravity import gravity_matrix
from repro.demands.matrix import DemandMatrix
from repro.ecmp.weights import integer_scaled_weights, inverse_capacity_weights
from repro.exceptions import GraphError, RoutingError
from repro.graph.network import Network
from repro.kernel import kernel_disabled, kernel_enabled, set_kernel_enabled
from repro.kernel.csr import csr_index, weight_vector
from repro.kernel.delta import EcmpDeltaEvaluator
from repro.kernel.propagate import edge_level_schedule
from repro.kernel.spf import all_targets_spf, compute_spf_state
from repro.lp.worst_case import normalize_to_unit_optimum


@pytest.fixture
def abilene():
    from repro.topologies.zoo import load_topology

    return load_topology("abilene")


class TestKernelGate:
    def test_default_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert kernel_enabled()

    def test_environment_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "0")
        assert not kernel_enabled()

    def test_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "0")
        set_kernel_enabled(True)
        try:
            assert kernel_enabled()
        finally:
            set_kernel_enabled(None)

    def test_context_manager_restores(self):
        before = kernel_enabled()
        with kernel_disabled():
            assert not kernel_enabled()
        assert kernel_enabled() == before

    def test_kernel_mode_participates_in_cache_keys(self):
        # Kernel and reference results must never cross the cache-mode
        # boundary, so the mode is part of every cell fingerprint.
        from repro.config import SolverConfig
        from repro.runner.spec import SweepCell, cell_key

        cell = SweepCell(
            experiment="x", topology="abilene", demand_model="gravity",
            margin=1.0, seed=1, solver=SolverConfig(),
        )
        kernel_key = cell_key(cell)
        assert cell.fingerprint()["kernel"] is True
        with kernel_disabled():
            assert cell.fingerprint()["kernel"] is False
            assert cell_key(cell) != kernel_key


class TestCsrIndex:
    def test_index_is_cached_per_network(self, abilene):
        assert csr_index(abilene) is csr_index(abilene)

    def test_cache_entries_die_with_their_network(self):
        # The index cache must not pin networks: the value holds only a
        # weak back-reference, so dropping the network frees the entry
        # (and its memoized SPF states) instead of leaking per cell.
        import gc
        import weakref

        from repro.topologies.zoo import load_topology

        network = load_topology("abilene")
        index_ref = weakref.ref(csr_index(network))
        network_ref = weakref.ref(network)
        del network
        gc.collect()
        assert network_ref() is None
        assert index_ref() is None

    def test_network_property_survives_while_reachable(self, abilene):
        index = csr_index(abilene)
        assert index.network is abilene

    def test_edge_order_matches_network(self, abilene):
        index = csr_index(abilene)
        assert list(index.edges) == abilene.edges()
        for i, (u, v) in enumerate(index.edges):
            assert index.nodes[index.tail[i]] == u
            assert index.nodes[index.head[i]] == v
            assert index.capacity[i] == abilene.capacity(u, v)

    def test_weight_vector_validates_like_reference(self, abilene):
        index = csr_index(abilene)
        weights = inverse_capacity_weights(abilene)
        with pytest.raises(GraphError, match="missing weight"):
            weight_vector(index, {})
        bad = dict(weights)
        bad[abilene.edges()[0]] = 0.0
        with pytest.raises(GraphError, match="must be > 0"):
            weight_vector(index, bad)

    def test_reversed_csr_entries(self, abilene):
        index = csr_index(abilene)
        vector = weight_vector(index, inverse_capacity_weights(abilene))
        matrix = index.reversed_csr(vector).toarray()
        for i, (u, v) in enumerate(index.edges):
            assert matrix[index.node_id[v], index.node_id[u]] == vector[i]


class TestSpfState:
    def test_memoized_per_weight_vector(self, abilene):
        weights = inverse_capacity_weights(abilene)
        assert all_targets_spf(abilene, weights) is all_targets_spf(abilene, weights)
        other = {e: w * 2.0 for e, w in weights.items()}
        assert all_targets_spf(abilene, other) is not all_targets_spf(abilene, weights)

    def test_compute_never_memoizes(self, abilene):
        weights = inverse_capacity_weights(abilene)
        assert compute_spf_state(abilene, weights) is not compute_spf_state(abilene, weights)

    def test_dag_objects_round_trip(self, abilene):
        weights = inverse_capacity_weights(abilene)
        state = all_targets_spf(abilene, weights)
        for t in abilene.nodes():
            dag = state.dag(t)
            assert dag.root == t
            assert dag.network is abilene


class TestEdgeLevelSchedule:
    def test_cycle_raises(self):
        net = Network.from_edges([("a", "b", 1.0), ("b", "a", 1.0)])
        index = csr_index(net)
        with pytest.raises(RoutingError, match="cycle"):
            edge_level_schedule(index, np.array([0, 1]))

    def test_levels_respect_dependencies(self):
        net = Network.from_edges(
            [("a", "b", 1.0), ("b", "c", 1.0), ("a", "c", 1.0)]
        )
        index = csr_index(net)
        schedule = edge_level_schedule(index, np.arange(3))
        level_of = {
            int(e): k for k, level in enumerate(schedule) for e in level.tolist()
        }
        assert set(level_of) == {0, 1, 2}
        # Every edge into a tail must fire strictly before the tail's
        # own out-edges, so arrivals are complete when they are read.
        for e, k in level_of.items():
            for e2, k2 in level_of.items():
                if index.head[e2] == index.tail[e]:
                    assert k2 < k, (e2, e)


class TestDeltaEvaluator:
    def test_unreachable_demand_source_raises(self):
        # b -> a exists but a cannot reach c; demand a -> c is an error,
        # matching the reference propagation.
        net = Network.from_edges(
            [("a", "b", 1.0), ("b", "a", 1.0), ("b", "c", 1.0), ("c", "b", 1.0)]
        )
        net.add_edge("d", "a", 1.0)  # d reaches everything, nothing reaches d
        weights = {e: 1.0 for e in net.edges()}
        demand = DemandMatrix({("a", "d"): 1.0})
        with pytest.raises(RoutingError, match="not part of the DAG"):
            EcmpDeltaEvaluator(net, weights, [demand])

    def test_empty_matrices_zero_utilization(self, abilene):
        weights = {e: 1.0 for e in abilene.edges()}
        evaluator = EcmpDeltaEvaluator(abilene, weights, [])
        assert evaluator.utilization() == 0.0
        assert evaluator.per_edge_utilization() == {}

    def test_no_op_move_affects_nothing(self, abilene):
        weights = {e: 2.0 for e in abilene.edges()}
        demand = DemandMatrix({(abilene.nodes()[0], abilene.nodes()[1]): 1.0})
        evaluator = EcmpDeltaEvaluator(abilene, weights, [demand])
        edge = abilene.edges()[0]
        candidate = evaluator.evaluate_move(edge, 2.0)
        assert candidate.affected.size == 0
        assert candidate.utilization == evaluator.utilization()

    def test_raising_weight_of_non_dag_edge_affects_nothing(self):
        net = Network.from_undirected([("a", "b", 1.0), ("b", "c", 1.0), ("a", "c", 1.0)])
        weights = {e: 1.0 for e in net.edges()}
        weights[("a", "c")] = 5.0  # not on any shortest path
        weights[("c", "a")] = 5.0
        demand = DemandMatrix({("a", "c"): 1.0})
        evaluator = EcmpDeltaEvaluator(net, weights, [demand])
        candidate = evaluator.evaluate_move(("a", "c"), 9.0)
        assert candidate.affected.size == 0

    def test_weight_mapping_round_trips(self, abilene):
        weights = {e: float(i % 5 + 1) for i, e in enumerate(abilene.edges())}
        evaluator = EcmpDeltaEvaluator(abilene, weights, [])
        assert evaluator.weight_mapping() == weights


class TestWeightSearchKernelPath:
    def test_kernel_and_reference_agree_on_abilene(self, abilene):
        weights = integer_scaled_weights(inverse_capacity_weights(abilene), MAX_WEIGHT)
        base = normalize_to_unit_optimum(abilene, gravity_matrix(abilene))
        kernel_result = weight_search(abilene, weights, [base], max_moves=4)
        with kernel_disabled():
            reference_result = weight_search(abilene, weights, [base], max_moves=4)
        assert kernel_result == reference_result

    def test_weight_step_phase_recorded(self, abilene):
        from repro.runner.timing import timed_solve

        weights = integer_scaled_weights(inverse_capacity_weights(abilene), MAX_WEIGHT)
        base = normalize_to_unit_optimum(abilene, gravity_matrix(abilene))
        _result, timings = timed_solve(weight_search, abilene, weights, [base], max_moves=2)
        assert timings.get("weight_step", 0.0) > 0.0
        assert timings["weight_step"] <= timings["total"] + 1e-9

    def test_ecmp_utilization_dispatches_identically(self, abilene):
        weights = {e: float(v) for e, v in integer_scaled_weights(
            inverse_capacity_weights(abilene), MAX_WEIGHT
        ).items()}
        base = normalize_to_unit_optimum(abilene, gravity_matrix(abilene))
        kernel_value = ecmp_utilization(abilene, weights, [base])
        with kernel_disabled():
            reference_value = ecmp_utilization(abilene, weights, [base])
        assert kernel_value == pytest.approx(reference_value, abs=1e-9)
