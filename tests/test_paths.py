"""Unit tests for Dijkstra, ECMP DAG extraction, and path metrics."""

import math

import pytest

from repro.exceptions import GraphError
from repro.graph.dag import Dag
from repro.graph.network import Network
from repro.graph.paths import (
    dijkstra_to_target,
    expected_path_lengths,
    hop_distances_to_target,
    reachable_to,
    shortest_path_dag,
)


def unit_weights(net):
    return {e: 1.0 for e in net.edges()}


class TestDijkstra:
    def test_distances_on_diamond(self, diamond):
        dist = dijkstra_to_target(diamond, unit_weights(diamond), "d")
        assert dist["d"] == 0.0
        assert dist["b"] == 1.0 and dist["c"] == 1.0
        assert dist["a"] == 2.0

    def test_weighted_distances(self, diamond):
        weights = {e: 1.0 for e in diamond.edges()}
        weights[("b", "d")] = 10.0
        dist = dijkstra_to_target(diamond, weights, "d")
        assert dist["b"] == pytest.approx(3.0)  # b -> a -> c -> d

    def test_unreachable_is_infinite(self):
        net = Network.from_edges([("t", "a", 1.0)])  # a cannot reach t
        dist = dijkstra_to_target(net, {("t", "a"): 1.0}, "t")
        assert math.isinf(dist["a"])

    def test_missing_weight_raises(self, triangle):
        with pytest.raises(GraphError, match="missing weight"):
            dijkstra_to_target(triangle, {}, "a")

    def test_nonpositive_weight_raises(self, triangle):
        weights = unit_weights(triangle)
        weights[("a", "b")] = 0.0
        with pytest.raises(GraphError, match="must be > 0"):
            dijkstra_to_target(triangle, weights, "a")

    def test_unknown_target_raises(self, triangle):
        with pytest.raises(GraphError, match="unknown target"):
            dijkstra_to_target(triangle, unit_weights(triangle), "zzz")


class TestShortestPathDag:
    def test_ecmp_ties_create_branches(self, diamond):
        dag = shortest_path_dag(diamond, unit_weights(diamond), "d")
        assert set(dag.out_neighbors("a")) == {"b", "c"}
        assert dag.has_edge("b", "d") and dag.has_edge("c", "d")

    def test_no_ties_single_paths(self, diamond):
        weights = unit_weights(diamond)
        weights[("a", "c")] = 5.0
        dag = shortest_path_dag(diamond, weights, "d")
        assert dag.out_neighbors("a") == ["b"]

    def test_dag_is_acyclic_and_rooted(self, abilene):
        weights = unit_weights(abilene)
        for target in list(abilene.nodes())[:4]:
            dag = shortest_path_dag(abilene, weights, target)
            assert dag.root == target
            order = dag.topological_order()
            assert order[-1] == target

    def test_all_nodes_reach_target(self, abilene):
        dag = shortest_path_dag(abilene, unit_weights(abilene), "Denver")
        assert set(dag.nodes()) == set(abilene.nodes())


class TestMetrics:
    def test_hop_distances(self, diamond):
        dist = hop_distances_to_target(diamond, "d")
        assert dist["a"] == 2.0

    def test_reachable_to(self, diamond):
        assert reachable_to(diamond, "d") == set(diamond.nodes())

    def test_expected_path_lengths_deterministic(self, diamond):
        dag = Dag("d", [("a", "b"), ("b", "d")], diamond)
        lengths = expected_path_lengths(dag, {("a", "b"): 1.0, ("b", "d"): 1.0})
        assert lengths["a"] == pytest.approx(2.0)

    def test_expected_path_lengths_split(self, diamond):
        dag = Dag("d", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")], diamond)
        ratios = {
            ("a", "b"): 0.5,
            ("a", "c"): 0.5,
            ("b", "d"): 1.0,
            ("c", "d"): 1.0,
        }
        lengths = expected_path_lengths(dag, ratios)
        assert lengths["a"] == pytest.approx(2.0)

    def test_expected_length_weighs_longer_branch(self, running_example, example_dag):
        # All of s1's traffic through s2 then v: 3 hops.
        ratios = {
            ("s1", "s2"): 1.0,
            ("s1", "v"): 0.0,
            ("s2", "v"): 1.0,
            ("s2", "t"): 0.0,
            ("v", "t"): 1.0,
        }
        lengths = expected_path_lengths(example_dag, ratios)
        assert lengths["s1"] == pytest.approx(3.0)
