"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.demands.matrix import DemandMatrix
from repro.graph.dag import Dag
from repro.graph.network import Network
from repro.topologies.generators import running_example_network
from repro.topologies.zoo import load_topology


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate tests/golden/*.json fixtures from the current solver "
        "output instead of comparing against them",
    )


@pytest.fixture
def update_golden(request: pytest.FixtureRequest) -> bool:
    """Whether golden-table tests should rewrite their fixtures."""
    return bool(request.config.getoption("--update-golden"))


@pytest.fixture
def diamond() -> Network:
    """A 4-node diamond: a -> {b, c} -> d, plus reverse edges."""
    return Network.from_undirected(
        [("a", "b", 2.0), ("a", "c", 1.0), ("b", "d", 2.0), ("c", "d", 1.0)],
        name="diamond",
    )


@pytest.fixture
def triangle() -> Network:
    """A 3-node unit-capacity triangle."""
    return Network.from_undirected(
        [("a", "b", 1.0), ("b", "c", 1.0), ("a", "c", 1.0)], name="triangle"
    )


@pytest.fixture
def running_example() -> Network:
    """Fig. 1's network with unit capacities."""
    return running_example_network()


@pytest.fixture
def example_dag(running_example) -> Dag:
    """The Fig. 1b-1d forwarding DAG toward t."""
    return Dag(
        "t",
        [("s1", "s2"), ("s1", "v"), ("s2", "t"), ("s2", "v"), ("v", "t")],
        running_example,
    )


@pytest.fixture
def abilene() -> Network:
    return load_topology("abilene")


@pytest.fixture
def nsf() -> Network:
    return load_topology("nsf")


@pytest.fixture
def two_user_demands() -> list[DemandMatrix]:
    """The extreme demand matrices of the running example."""
    return [
        DemandMatrix({("s1", "t"): 2.0}),
        DemandMatrix({("s2", "t"): 2.0}),
    ]
