"""Tests for the command-line interface."""

import json

import pytest

import repro.cli
from repro.cli import build_parser, main
from repro.config import ExperimentConfig, SolverConfig
from repro.runner.executor import CellResult, SweepReport
from repro.runner.spec import cell_key
from repro.utils.tables import format_csv


def fake_run_sweep(spec, *, jobs=1, cache=None, **_kwargs):
    """Stand-in for run_sweep: serves every cell instantly from 'cache'."""
    results = [
        CellResult(
            cell=cell,
            key=cell_key(cell),
            ratios={column: 1.0 + i for i, column in enumerate(cell.cell_columns())},
            cached=cache is not None,
        )
        for cell in spec.cells
    ]
    return SweepReport(spec=spec, results=results, elapsed=0.0, jobs=jobs)


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "table1" in out

    def test_topo_listing(self, capsys):
        assert main(["topo"]) == 0
        out = capsys.readouterr().out
        assert "abilene" in out and "geant" in out

    def test_topo_detail(self, capsys):
        assert main(["topo", "abilene"]) == 0
        out = capsys.readouterr().out
        assert "11" in out and "hand-coded" in out

    def test_topo_unknown_errors(self, capsys):
        assert main(["topo", "nonexistent"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_run_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "fig99"])

    def test_run_fast_experiment(self, capsys, tmp_path):
        csv_path = tmp_path / "out.csv"
        assert main(["run", "thm4", "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "Theorem 4" in out
        content = csv_path.read_text()
        assert content.startswith("n,")

    def test_run_fig12(self, capsys):
        assert main(["run", "fig12"]) == 0
        out = capsys.readouterr().out
        assert "COYOTE" in out

    def test_run_jobs_ignored_for_non_grid_experiment(self, capsys):
        assert main(["run", "thm4", "--jobs", "2", "--no-cache"]) == 0
        captured = capsys.readouterr()
        assert "Theorem 4" in captured.out
        assert "no cell grid" in captured.err


class TestSweepParsing:
    def test_sweep_flags(self):
        args = build_parser().parse_args(
            ["sweep", "table1", "--jobs", "4", "--cache-dir", "/tmp/c", "--out", "/tmp/o"]
        )
        assert args.experiment == "table1"
        assert args.jobs == 4
        assert args.cache_dir == ["/tmp/c"]
        assert args.out == "/tmp/o"
        assert not args.no_cache and not args.full
        assert args.shard is None and not args.steal

    def test_cache_dir_repeats_into_layers(self):
        args = build_parser().parse_args(
            ["sweep", "table1", "--cache-dir", "/fast/local", "--cache-dir", "/shared"]
        )
        assert args.cache_dir == ["/fast/local", "/shared"]

    def test_shard_and_steal_flags(self):
        args = build_parser().parse_args(
            ["sweep", "fig9", "--shard", "1/4", "--steal", "--claim-ttl", "120"]
        )
        assert args.shard == "1/4"
        assert args.steal
        assert args.claim_ttl == 120.0

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "fig6"])
        assert args.jobs == 1
        assert args.cache_dir is None and args.out is None

    def test_sweep_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "fig99"])

    def test_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "table1", "--jobs", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table1", "--jobs", "-2"])

    def test_sweep_non_grid_experiment_rejected(self):
        # thm1 has no cell grid, so the sweep choices exclude it.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "thm1"])

    def test_run_accepts_runner_flags(self):
        args = build_parser().parse_args(["run", "table1", "--jobs", "2", "--no-cache"])
        assert args.jobs == 2 and args.no_cache


class TestSweepCommand:
    @pytest.fixture(autouse=True)
    def stub_runner(self, monkeypatch):
        monkeypatch.setattr(repro.cli, "run_sweep", fake_run_sweep)

    def test_sweep_prints_table_and_summary(self, capsys):
        assert main(["sweep", "table1", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "9 cells: 9 solved, 0 from cache" in out

    def test_sweep_warm_cache_summary(self, capsys, tmp_path):
        assert main(["sweep", "fig6", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "3 cells: 0 solved, 3 from cache" in out

    def test_sweep_writes_artifacts_and_csv(self, capsys, tmp_path):
        out_dir = tmp_path / "artifacts"
        csv_path = tmp_path / "table.csv"
        assert main([
            "sweep", "table1", "--no-cache",
            "--out", str(out_dir), "--csv", str(csv_path),
        ]) == 0
        table = json.loads((out_dir / "table1.table.json").read_text())
        assert table["columns"][:2] == ["network", "margin"]
        assert len(table["rows"]) == 9
        cells = json.loads((out_dir / "table1.cells.json").read_text())
        assert len(cells) == 9
        assert csv_path.read_text().startswith("network,margin,")

    def test_sweep_full_uses_paper_grid(self, capsys):
        assert main(["sweep", "table1", "--full", "--no-cache"]) == 0
        out = capsys.readouterr().out
        # 14 topologies x 9 margins
        assert "126 cells" in out

    def test_sweep_fig9_prints_gap_summary(self, capsys):
        assert main(["sweep", "fig9", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 9" in out
        # The footer note is reassembled from the report, not the driver.
        assert "further from the optimum" in out

    def test_sweep_fig10_merges_budget_cells_into_margin_rows(self, capsys, tmp_path):
        out_dir = tmp_path / "artifacts"
        assert main(["sweep", "fig10", "--no-cache", "--out", str(out_dir)]) == 0
        table = json.loads((out_dir / "fig10.table.json").read_text())
        assert table["columns"] == ["margin", "ECMP", "ideal", "3 NHs", "5 NHs", "10 NHs"]
        # Reduced config: 3 margins, each row merged from 4 cells.
        assert len(table["rows"]) == 3
        cells = json.loads((out_dir / "fig10.cells.json").read_text())
        assert len(cells) == 12

    def test_sweep_fig11_topology_rows(self, capsys):
        assert main(["sweep", "fig11", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 11" in out and "5 cells" in out
        assert "NSF cost" in out and "BBNPlanet" in out


@pytest.mark.slow
class TestFig11CliParity:
    """`repro sweep fig11 --jobs 2` matches the serial driver row-for-row."""

    def test_parallel_cli_matches_serial_driver(self, tmp_path, monkeypatch, capsys):
        from repro.experiments.fig11_stretch import fig11

        tiny = ExperimentConfig(
            margins=(2.0,),
            solver=SolverConfig(
                max_adversarial_rounds=2,
                max_inner_iterations=10,
                smoothing_temperatures=(8.0, 64.0),
            ),
        )
        monkeypatch.setattr(
            ExperimentConfig, "from_environment", classmethod(lambda cls: tiny)
        )
        monkeypatch.setattr(
            "repro.experiments.fig11_stretch.REDUCED_TOPOLOGIES", ("abilene", "nsf")
        )
        csv_path = tmp_path / "fig11.csv"
        assert main(
            ["sweep", "fig11", "--jobs", "2", "--no-cache", "--csv", str(csv_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "2 cells: 2 solved" in out
        # The serial in-process driver (jobs=1, shared setups) must agree
        # row-for-row with the worker-pool CLI run.  Parity with the
        # *pre-refactor* drivers was established once against the old code
        # at the refactor boundary; this guards serial/parallel divergence.
        serial = fig11(tiny)
        assert csv_path.read_text() == format_csv(serial)


class TestFaultFlags:
    def test_failure_flags_parse(self):
        args = build_parser().parse_args([
            "sweep", "fig6", "--cell-timeout", "5", "--max-attempts", "2",
            "--max-failures", "1", "--keep-going",
            "--inject-fault", "site=solve,action=raise",
            "--inject-fault", "site=claim,action=raise,exc=OSError",
        ])
        assert args.cell_timeout == 5.0 and args.max_attempts == 2
        assert args.max_failures == 1 and args.keep_going
        assert len(args.inject_fault) == 2

    def test_bad_inject_fault_fails_fast(self, capsys, monkeypatch):
        from repro.runner.faults import FAULTS_ENV

        monkeypatch.setenv(FAULTS_ENV, "")
        assert main([
            "sweep", "fig6", "--no-cache",
            "--inject-fault", "site=nowhere,action=raise",
        ]) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "site=" in err

    def test_cache_failures_empty_store(self, capsys, tmp_path):
        assert main(["cache", "failures", str(tmp_path)]) == 0
        assert "0 failure record(s)" in capsys.readouterr().out


class TestQuarantineCli:
    """End-to-end: poison cell -> exit 3 -> triage -> clear -> clean rerun."""

    @pytest.fixture
    def tiny_config(self, monkeypatch):
        tiny = ExperimentConfig(
            margins=(1.0, 1.5),
            solver=SolverConfig(
                max_adversarial_rounds=2,
                max_inner_iterations=10,
                smoothing_temperatures=(8.0, 64.0),
            ),
        )
        monkeypatch.setattr(
            ExperimentConfig, "from_environment", classmethod(lambda cls: tiny)
        )
        return tiny

    def test_keep_going_quarantine_resume_and_clear(
        self, capsys, tmp_path, monkeypatch, tiny_config
    ):
        from repro.experiments.registry import experiment_spec
        from repro.runner.faults import FAULTS_ENV

        monkeypatch.setenv(FAULTS_ENV, "")
        store = tmp_path / "store"
        spec = experiment_spec("fig6", tiny_config)
        poison = cell_key(spec.cells[1])

        assert main([
            "sweep", "fig6", "--cache-dir", str(store), "--keep-going",
            "--inject-fault",
            f"site=solve,action=raise,exc=ValueError,key={poison[:12]}",
        ]) == 3
        captured = capsys.readouterr()
        assert "1 cell(s) quarantined" in captured.err
        assert "1 failed" in captured.out  # summary line

        assert main(["cache", "failures", str(store)]) == 0
        listing = capsys.readouterr().out
        assert poison in listing and "deterministic" in listing

        # Resume without the fault: stored cells are hits, the poison
        # cell's persisted record still quarantines it (no re-solve).
        monkeypatch.setenv(FAULTS_ENV, "")
        assert main([
            "sweep", "fig6", "--cache-dir", str(store), "--keep-going",
        ]) == 3
        assert "0 solved" in capsys.readouterr().out

        assert main(["cache", "failures", str(store), "--clear"]) == 0
        assert "cleared 1 failure record(s)" in capsys.readouterr().out
        assert main(["sweep", "fig6", "--cache-dir", str(store)]) == 0
        out = capsys.readouterr().out
        assert "1 solved, 1 from cache" in out

    def test_abort_still_flushes_partial_artifacts(
        self, capsys, tmp_path, monkeypatch, tiny_config
    ):
        from repro.experiments.registry import experiment_spec
        from repro.runner.faults import FAULTS_ENV

        monkeypatch.setenv(FAULTS_ENV, "")
        spec = experiment_spec("fig6", tiny_config)
        poison = cell_key(spec.cells[0])
        out_dir = tmp_path / "artifacts"
        with pytest.raises(ValueError, match="injected ValueError"):
            main([
                "sweep", "fig6", "--no-cache", "--out", str(out_dir),
                "--inject-fault",
                f"site=solve,action=raise,exc=ValueError,key={poison[:12]}",
            ])
        assert "partial artifact" in capsys.readouterr().err
        events = json.loads((out_dir / "fig6.events.json").read_text())
        assert events["aborted"] is True
        assert events["lifecycle"]["quarantined"] == 1
        assert not (out_dir / "fig6.table.json").exists()
