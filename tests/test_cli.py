"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "table1" in out

    def test_topo_listing(self, capsys):
        assert main(["topo"]) == 0
        out = capsys.readouterr().out
        assert "abilene" in out and "geant" in out

    def test_topo_detail(self, capsys):
        assert main(["topo", "abilene"]) == 0
        out = capsys.readouterr().out
        assert "11" in out and "hand-coded" in out

    def test_topo_unknown_errors(self, capsys):
        assert main(["topo", "nonexistent"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_run_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "fig99"])

    def test_run_fast_experiment(self, capsys, tmp_path):
        csv_path = tmp_path / "out.csv"
        assert main(["run", "thm4", "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "Theorem 4" in out
        content = csv_path.read_text()
        assert content.startswith("n,")

    def test_run_fig12(self, capsys):
        assert main(["run", "fig12"]) == 0
        out = capsys.readouterr().out
        assert "COYOTE" in out
