"""Tests for the Routing container and flow propagation."""

import pytest

from repro.demands.matrix import DemandMatrix
from repro.exceptions import RoutingError
from repro.routing.propagation import (
    load_coefficients,
    propagate_to_destination,
    source_fractions,
)
from repro.routing.splitting import Routing, uniform_ratios


@pytest.fixture
def example_routing(running_example, example_dag):
    ratios = {
        ("s1", "s2"): 0.5,
        ("s1", "v"): 0.5,
        ("s2", "t"): 0.5,
        ("s2", "v"): 0.5,
        ("v", "t"): 1.0,
    }
    return Routing({"t": example_dag}, {"t": ratios}, name="fig1b")


class TestPropagation:
    def test_fig1b_loads_for_extreme_demand(self, example_routing, running_example):
        # Section II: demands (2, 0) put 3/2 units on (v, t) under ECMP.
        loads = example_routing.link_loads(DemandMatrix({("s1", "t"): 2.0}))
        assert loads[("v", "t")] == pytest.approx(1.5)
        assert loads[("s2", "t")] == pytest.approx(0.5)

    def test_max_link_utilization(self, example_routing, running_example):
        mlu = example_routing.max_link_utilization(
            DemandMatrix({("s1", "t"): 2.0}), running_example
        )
        assert mlu == pytest.approx(1.5)

    def test_flow_conservation(self, example_dag):
        ratios = uniform_ratios(example_dag)
        arrivals, edge_flows = propagate_to_destination(
            example_dag, ratios, {"s1": 2.0}
        )
        # Everything reaches the root.
        assert arrivals["t"] == pytest.approx(2.0)
        inflow_t = sum(f for (u, v), f in edge_flows.items() if v == "t")
        assert inflow_t == pytest.approx(2.0)

    def test_source_fractions_sum_at_root(self, example_dag):
        ratios = uniform_ratios(example_dag)
        fractions = source_fractions(example_dag, ratios, "s1")
        assert fractions["s1"] == 1.0
        assert fractions["t"] == pytest.approx(1.0)

    def test_demand_outside_dag_raises(self, example_dag):
        with pytest.raises(RoutingError, match="not part of the DAG"):
            propagate_to_destination(example_dag, {}, {"zzz": 1.0})

    def test_load_coefficients_match_loads(self, example_routing):
        pairs = [("s1", "t"), ("s2", "t")]
        coeffs = load_coefficients(
            example_routing.dags, example_routing.ratios, pairs
        )
        dm = DemandMatrix({("s1", "t"): 2.0, ("s2", "t"): 1.0})
        loads = example_routing.link_loads(dm)
        for edge, per_pair in coeffs.items():
            linear = sum(dm.get(*pair) * c for pair, c in per_pair.items())
            assert linear == pytest.approx(loads.get(edge, 0.0), abs=1e-9)


class TestValidation:
    def test_valid_routing_passes(self, example_routing):
        example_routing.validate()

    def test_ratios_must_sum_to_one(self, example_dag):
        bad = {
            ("s1", "s2"): 0.7,
            ("s1", "v"): 0.7,
            ("s2", "t"): 1.0,
            ("s2", "v"): 0.0,
            ("v", "t"): 1.0,
        }
        with pytest.raises(RoutingError, match="sum to"):
            Routing({"t": example_dag}, {"t": bad})

    def test_negative_ratio_rejected(self, example_dag):
        bad = {
            ("s1", "s2"): 1.5,
            ("s1", "v"): -0.5,
            ("s2", "t"): 1.0,
            ("s2", "v"): 0.0,
            ("v", "t"): 1.0,
        }
        with pytest.raises(RoutingError, match="negative"):
            Routing({"t": example_dag}, {"t": bad})

    def test_ratio_outside_dag_rejected(self, running_example, example_dag):
        bad = uniform_ratios(example_dag)
        bad[("v", "s1")] = 0.5  # not a DAG edge
        with pytest.raises(RoutingError, match="not a DAG edge"):
            Routing({"t": example_dag}, {"t": bad})

    def test_wrong_root_key_rejected(self, example_dag):
        with pytest.raises(RoutingError, match="rooted at"):
            Routing({"s1": example_dag}, {"s1": uniform_ratios(example_dag)})

    def test_renormalized_fixes_drift(self, example_dag):
        drifted = {
            ("s1", "s2"): 0.5000001,
            ("s1", "v"): 0.5,
            ("s2", "t"): 1.0,
            ("s2", "v"): 0.0,
            ("v", "t"): 1.0,
        }
        routing = Routing(
            {"t": example_dag}, {"t": drifted}, validate=False
        ).renormalized()
        routing.validate()

    def test_missing_dag_raises_on_use(self, example_routing):
        with pytest.raises(RoutingError, match="no DAG"):
            example_routing.link_loads(DemandMatrix({("s1", "v"): 1.0}))


class TestMetrics:
    def test_expected_hops(self, example_routing):
        # s1: 0.5 * (via s2) + 0.5 * (via v); both sub-paths expected
        # lengths: s2 -> 0.5*1 + 0.5*2 = 1.5; v -> 1.
        assert example_routing.expected_hops("s1", "t") == pytest.approx(
            0.5 * (1 + 1.5) + 0.5 * (1 + 1)
        )

    def test_stretch_against_self_is_one(self, example_routing):
        assert example_routing.average_stretch_against(example_routing) == pytest.approx(1.0)

    def test_with_ratios_replaces(self, example_routing, example_dag):
        new = {
            ("s1", "s2"): 1.0,
            ("s1", "v"): 0.0,
            ("s2", "t"): 1.0,
            ("s2", "v"): 0.0,
            ("v", "t"): 1.0,
        }
        routing = example_routing.with_ratios({"t": new}, name="direct")
        assert routing.name == "direct"
        loads = routing.link_loads(DemandMatrix({("s1", "t"): 1.0}))
        assert loads[("s2", "t")] == pytest.approx(1.0)

    def test_uniform_ratios_cover_all_nodes(self, example_dag):
        ratios = uniform_ratios(example_dag)
        assert ratios[("s2", "t")] == pytest.approx(0.5)
        assert ratios[("v", "t")] == pytest.approx(1.0)
