"""Golden-table regression tests: committed expected output for the grids.

Each case regenerates one experiment's table through the sweep runner at
a *pinned* golden config (margins and solver knobs fixed here, never
read from the environment) and compares it row-for-row against the JSON
fixture committed under ``tests/golden/``.  Any drift in solver or
evaluation semantics fails loudly with a per-row, per-column diff.

When a change is intentional, regenerate the fixtures with::

    pytest tests/test_golden_tables.py --update-golden

and commit the diff — the fixture churn *is* the review artifact.

The golden config is deliberately tiny (2 adversarial rounds, one
smoothing temperature) so the whole module stays under about a minute:
the fixtures pin reproducibility, not solution quality.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.config import ExperimentConfig, SolverConfig
from repro.experiments.margin_sweep import fig6_spec, fig7_spec, fig8_spec
from repro.experiments.table1 import table1_spec
from repro.runner.executor import run_sweep
from repro.utils.jsonio import write_json_atomic

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Row values must match the fixture to within this absolute tolerance.
TOLERANCE = 1e-9

#: Pinned solver for fixture generation — small enough that the whole
#: golden suite solves in about a minute, fully deterministic (fixed
#: seed, fixed iteration caps, single smoothing temperature).
GOLDEN_SOLVER = SolverConfig(
    max_adversarial_rounds=2,
    max_inner_iterations=8,
    smoothing_temperatures=(8.0,),
)


def _config(margins: tuple[float, ...]) -> ExperimentConfig:
    return ExperimentConfig(margins=margins, solver=GOLDEN_SOLVER)


#: name -> spec builder at the pinned golden config.  The expensive
#: topologies (Geant, AS1755) pin a single representative margin; the
#: cheaper ones afford the two-margin slice.
GOLDEN_SPECS = {
    "fig6": lambda: fig6_spec(_config((2.0,))),
    "fig7": lambda: fig7_spec(_config((1.0, 2.0))),
    "fig8": lambda: fig8_spec(_config((2.0,))),
    "table1": lambda: table1_spec(_config((1.0, 2.0)), topologies=("abilene", "nsf")),
}


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


def _nullish(value) -> bool:
    """NaN is written to fixtures as JSON null; treat them as one value."""
    return value is None or (isinstance(value, float) and math.isnan(value))


def _values_match(expected, actual) -> bool:
    if _nullish(expected) or _nullish(actual):
        return _nullish(expected) and _nullish(actual)
    if isinstance(expected, float) or isinstance(actual, float):
        return abs(float(expected) - float(actual)) <= TOLERANCE
    return expected == actual


def diff_tables(expected: dict, actual: dict) -> list[str]:
    """Human-readable row-level differences (empty when tables agree)."""
    problems: list[str] = []
    if expected["columns"] != actual["columns"]:
        problems.append(
            f"columns differ: expected {expected['columns']}, got {actual['columns']}"
        )
        return problems
    columns = expected["columns"]
    if len(expected["rows"]) != len(actual["rows"]):
        problems.append(
            f"row count differs: expected {len(expected['rows'])}, "
            f"got {len(actual['rows'])}"
        )
    for index, (expected_row, actual_row) in enumerate(
        zip(expected["rows"], actual["rows"])
    ):
        for column, expected_value, actual_value in zip(columns, expected_row, actual_row):
            if not _values_match(expected_value, actual_value):
                problems.append(
                    f"row {index} ({columns[0]}={expected_row[0]!r}) column "
                    f"{column!r}: expected {expected_value!r}, got {actual_value!r}"
                )
    return problems


def _regenerate(name: str) -> dict:
    spec = GOLDEN_SPECS[name]()
    table = run_sweep(spec).table()
    config = spec.cells[0].solver
    return {
        "experiment": spec.experiment,
        "title": table.title,
        # Echo of the pinned knobs, for humans reading fixture diffs.
        "golden_config": {
            "margins": sorted({cell.margin for cell in spec.cells}),
            "topologies": sorted({cell.topology for cell in spec.cells}),
            "max_adversarial_rounds": config.max_adversarial_rounds,
            "max_inner_iterations": config.max_inner_iterations,
            "smoothing_temperatures": list(config.smoothing_temperatures),
            "seed": config.seed,
        },
        "columns": list(table.columns),
        "rows": [list(row) for row in table.rows],
    }


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(GOLDEN_SPECS))
def test_golden_table(name: str, update_golden: bool):
    actual = _regenerate(name)
    path = golden_path(name)
    if update_golden:
        write_json_atomic(path, actual)
        print(f"golden fixture updated: {path}")
        return
    if not path.is_file():
        pytest.fail(
            f"missing golden fixture {path}; generate it with "
            f"`pytest {__file__} --update-golden` and commit the result"
        )
    expected = json.loads(path.read_text())
    problems = diff_tables(expected, actual)
    if problems:
        diff = "\n  ".join(problems)
        pytest.fail(
            f"{name} drifted from tests/golden/{name}.json "
            f"({len(problems)} difference(s)):\n  {diff}\n"
            f"If this change is intentional, rerun with --update-golden "
            f"and commit the fixture diff."
        )
