"""Tests for the fluid model and the packet-level emulator."""

import pytest

from repro.demands.matrix import DemandMatrix
from repro.exceptions import RoutingError
from repro.flowsim.fluid import delivery_fractions, fluid_report
from repro.flowsim.packet import CbrFlow, PacketSimulator, PrefixForwarding
from repro.graph.dag import Dag
from repro.routing.splitting import Routing
from repro.topologies.generators import prototype_network


@pytest.fixture
def direct_routing():
    net = prototype_network()
    dag = Dag("t", [("s1", "t"), ("s2", "t")], net)
    routing = Routing(
        {"t": dag}, {"t": {("s1", "t"): 1.0, ("s2", "t"): 1.0}}, name="direct"
    )
    return net, routing


class TestFluid:
    def test_report_loads(self, direct_routing):
        net, routing = direct_routing
        report = fluid_report(net, routing, DemandMatrix({("s1", "t"): 0.5}))
        assert report.loads[("s1", "t")] == pytest.approx(0.5)
        assert report.max_utilization == pytest.approx(0.5)
        assert report.hottest_edge == ("s1", "t")

    def test_over_subscription_detected(self, direct_routing):
        net, routing = direct_routing
        report = fluid_report(net, routing, DemandMatrix({("s1", "t"): 2.0}))
        assert report.over_subscribed() == [("s1", "t")]

    def test_delivery_fraction_under_load(self, direct_routing):
        net, routing = direct_routing
        fractions = delivery_fractions(net, routing, DemandMatrix({("s1", "t"): 2.0}))
        assert fractions[("s1", "t")] == pytest.approx(0.5)

    def test_delivery_full_when_fitting(self, direct_routing):
        net, routing = direct_routing
        fractions = delivery_fractions(net, routing, DemandMatrix({("s1", "t"): 1.0}))
        assert fractions[("s1", "t")] == pytest.approx(1.0)


class TestPacketSimulator:
    def _forwarding(self, split=None):
        hops_s1 = split if split else {"t": 1.0}
        return {
            "t1": PrefixForwarding("t1", "t", {"s1": hops_s1, "s2": {"t": 1.0}}),
        }

    def test_all_delivered_under_capacity(self):
        net = prototype_network()
        sim = PacketSimulator(net, self._forwarding())
        flows = [CbrFlow("s1", "t1", 50.0, 0.0, 2.0)]
        stats = sim.run(flows, 2.0)
        flow_stats = stats[flows[0]]
        assert flow_stats.dropped == 0
        assert flow_stats.delivered == flow_stats.sent

    def test_half_dropped_at_double_rate(self):
        net = prototype_network()
        sim = PacketSimulator(net, self._forwarding())
        flows = [CbrFlow("s1", "t1", 200.0, 0.0, 10.0)]
        stats = sim.run(flows, 10.0)
        rate = stats[flows[0]].drop_rate()
        assert rate == pytest.approx(0.5, abs=0.03)

    def test_split_halves_survive(self):
        net = prototype_network()
        sim = PacketSimulator(net, self._forwarding({"t": 0.5, "s2": 0.5}))
        flows = [CbrFlow("s1", "t1", 200.0, 0.0, 5.0)]
        stats = sim.run(flows, 5.0)
        # Split across two 100-pps paths: everything fits.
        assert stats[flows[0]].drop_rate() == pytest.approx(0.0, abs=0.02)

    def test_windows_account_for_everything(self):
        net = prototype_network()
        sim = PacketSimulator(net, self._forwarding())
        flows = [CbrFlow("s1", "t1", 150.0, 0.0, 3.0)]
        stats = sim.run(flows, 3.0)
        s = stats[flows[0]]
        assert sum(s.sent_per_window.values()) == s.sent
        assert sum(s.dropped_per_window.values()) == s.dropped

    def test_smooth_wrr_deterministic(self):
        net = prototype_network()
        results = []
        for _ in range(2):
            sim = PacketSimulator(net, self._forwarding({"t": 0.7, "s2": 0.3}))
            flows = [CbrFlow("s1", "t1", 100.0, 0.0, 2.0)]
            stats = sim.run(flows, 2.0)
            results.append(stats[flows[0]].delivered)
        assert results[0] == results[1]

    def test_flow_outside_interval_idle(self):
        net = prototype_network()
        sim = PacketSimulator(net, self._forwarding())
        flows = [CbrFlow("s1", "t1", 100.0, 5.0, 6.0)]
        stats = sim.run(flows, 2.0)  # ends before the flow starts
        assert stats[flows[0]].sent == 0

    def test_unknown_prefix_raises(self):
        net = prototype_network()
        sim = PacketSimulator(net, self._forwarding())
        flows = [CbrFlow("s1", "nope", 100.0, 0.0, 1.0)]
        with pytest.raises(RoutingError, match="no forwarding state"):
            sim.run(flows, 1.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(RoutingError):
            CbrFlow("s1", "t1", -1.0, 0.0, 1.0)

    def test_forwarding_requires_next_hops(self):
        with pytest.raises(RoutingError, match="no next hop"):
            PrefixForwarding("p", "t", {"s1": {}})
