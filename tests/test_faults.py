"""Tests for the sweep failure domain: classification, retries, timeouts,
quarantine, failure records, fault injection, and claim release on death."""

import json
import multiprocessing
import time

import pytest

from repro.config import SolverConfig
from repro.exceptions import ExperimentError, InfeasibleError
from repro.experiments.common import SCHEME_COLUMNS
from repro.runner import faults
from repro.runner.artifacts import write_artifacts
from repro.runner.campaign import (
    ClaimPolicy,
    build_manifest,
    claim_path,
    claim_status,
    default_owner,
    try_claim,
)
from repro.runner.executor import run_sweep
from repro.runner.faults import (
    FAULTS_ENV,
    CellTimeoutError,
    FailurePolicy,
    FaultError,
    WorkerCrashError,
    backoff_delay,
    error_class,
    failure_record,
    is_transient,
    parse_fault,
    parse_faults,
)
from repro.runner.spec import SweepCell, SweepSpec, cell_key
from repro.runner.store import DirStore, merge_stores, store_stats

TINY_SOLVER = SolverConfig(
    max_adversarial_rounds=2,
    max_inner_iterations=10,
    smoothing_temperatures=(8.0, 64.0),
)

#: A near-instant retry policy so failure-path tests don't sleep.
FAST_RETRIES = FailurePolicy(backoff_base=0.001, backoff_cap=0.01)


def make_cell(margin=1.0, topology="abilene", **overrides):
    return SweepCell(
        experiment=overrides.pop("experiment", "test"),
        topology=topology,
        demand_model=overrides.pop("demand_model", "gravity"),
        margin=margin,
        seed=overrides.pop("seed", 7),
        solver=TINY_SOLVER,
        **overrides,
    )


def make_spec(margins=(1.0, 2.0, 3.0), **cell_kwargs):
    cells = tuple(make_cell(margin=m, **cell_kwargs) for m in margins)
    return SweepSpec(experiment="test", title="test sweep", cells=cells)


def _stub_solve(cell):
    return {scheme: cell.margin + i for i, scheme in enumerate(SCHEME_COLUMNS)}


def _poison_margin2_solve(cell):
    """Deterministic failure on one cell: the quarantine-path workhorse."""
    if cell.margin == 2.0:
        raise ValueError("margin 2 is poison")
    return _stub_solve(cell)


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    """Isolate every test from injected-fault env and trigger counters."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    monkeypatch.setattr(faults, "_plan", ("", ()))
    monkeypatch.setattr(faults, "_local_counts", {})


class TestClassification:
    @pytest.mark.parametrize(
        "error",
        [
            OSError("disk glitch"),
            TimeoutError("slow"),
            EOFError(),
            MemoryError(),
            WorkerCrashError("worker died"),
            CellTimeoutError("over budget"),
            RuntimeError("unknown errors default to transient"),
        ],
    )
    def test_transient(self, error):
        assert is_transient(error)
        assert error_class(error) == "transient"

    @pytest.mark.parametrize(
        "error",
        [
            ValueError("bad input"),
            TypeError("bad type"),
            KeyError("missing"),
            ZeroDivisionError(),
            AssertionError(),
            InfeasibleError("LP infeasible"),
            ExperimentError("bad config"),
        ],
    )
    def test_deterministic(self, error):
        assert not is_transient(error)
        assert error_class(error) == "deterministic"

    def test_crash_sentinels_outrank_reproerror(self):
        # WorkerCrashError/CellTimeoutError subclass ReproError (which is
        # deterministic); the transient check must win for them.
        assert is_transient(WorkerCrashError("x"))
        assert is_transient(CellTimeoutError("x"))


class TestBackoff:
    def test_deterministic_and_growing(self):
        policy = FailurePolicy()
        key = cell_key(make_cell())
        first = backoff_delay(policy, key, 1)
        assert first == backoff_delay(policy, key, 1)  # replayable
        assert backoff_delay(policy, key, 2) > first
        assert first >= policy.backoff_base

    def test_capped(self):
        policy = FailurePolicy(backoff_cap=0.5)
        assert backoff_delay(policy, cell_key(make_cell()), 30) == 0.5

    def test_jitter_decorrelates_keys(self):
        policy = FailurePolicy()
        delays = {
            backoff_delay(policy, cell_key(make_cell(margin=m)), 1)
            for m in (1.0, 2.0, 3.0, 4.0)
        }
        assert len(delays) > 1


class TestFaultSpecParsing:
    def test_full_spec(self):
        spec = parse_fault(
            "site=solve,action=raise,exc=ValueError,key=3fa9,times=2,state=/tmp/s"
        )
        assert spec.site == "solve" and spec.action == "raise"
        assert spec.exc == "ValueError" and spec.key == "3fa9"
        assert spec.times == 2 and spec.state == "/tmp/s"

    def test_hash_selector(self):
        spec = parse_fault("site=solve,action=kill,hash=1/3")
        assert spec.slot == (1, 3)
        matching = [k for k in ("0", "1", "2", "3", "4") if spec.matches("solve", k)]
        assert matching == ["1", "4"]

    def test_key_prefix_match(self):
        spec = parse_fault("site=store.put,action=hang,seconds=1,key=abc")
        assert spec.matches("store.put", "abcdef0123")
        assert not spec.matches("store.put", "def0123")
        assert not spec.matches("store.get", "abcdef0123")

    @pytest.mark.parametrize(
        "bad",
        [
            "action=raise",  # no site
            "site=nowhere,action=raise",
            "site=solve",  # no action
            "site=solve,action=explode",
            "site=solve,action=raise,exc=SystemExit",  # not injectable
            "site=solve,action=raise,key=xyz",  # non-hex key
            "site=solve,action=kill,hash=3",  # not r/m
            "site=solve,action=kill,hash=1/0",
            "site=solve,action=raise,times=0",
            "site=solve,action=raise,times=-1",
            "site=solve,action=raise,seconds=soon",
            "site=solve,action=raise,surprise=1",  # unknown field
            "site solve",  # not name=value
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(FaultError):
            parse_fault(bad)

    def test_parse_faults_splits_and_skips_blanks(self):
        specs = parse_faults("site=solve,action=raise; ;site=claim,action=raise,exc=OSError")
        assert [s.site for s in specs] == ["solve", "claim"]

    def test_trigger_noop_when_env_unset(self):
        faults.trigger("solve", "deadbeef")  # must not raise

    def test_trigger_raises_matching_exception(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "site=solve,action=raise,exc=OSError,key=dead")
        with pytest.raises(OSError, match="injected OSError at solve"):
            faults.trigger("solve", "deadbeef")
        faults.trigger("solve", "beefdead")  # prefix mismatch: no fire

    def test_times_budget_counts_per_cell(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "site=solve,action=raise,exc=OSError,times=1")
        with pytest.raises(OSError):
            faults.trigger("solve", "aa00")
        faults.trigger("solve", "aa00")  # budget spent for this cell
        with pytest.raises(OSError):
            faults.trigger("solve", "bb00")  # other cells budget separately

    def test_state_dir_counter_survives_reparse(self, monkeypatch, tmp_path):
        monkeypatch.setenv(
            FAULTS_ENV, f"site=solve,action=raise,exc=OSError,times=1,state={tmp_path}"
        )
        with pytest.raises(OSError):
            faults.trigger("solve", "aa00")
        # A fresh process would re-parse the plan; the file-backed count
        # still marks the budget as spent.
        monkeypatch.setattr(faults, "_plan", ("", ()))
        faults.trigger("solve", "aa00")


class TestFailureRecords:
    def test_roundtrip_and_clear(self, tmp_path):
        store = DirStore(tmp_path)
        cell = make_cell()
        key = cell_key(cell)
        record = failure_record(
            cell, key, attempts=2, label="transient", error=OSError("glitch")
        )
        store.put_failure(cell, record)
        loaded = store.get_failure(cell)
        assert loaded["schema"] == faults.FAILURE_SCHEMA
        assert loaded["key"] == key and loaded["attempts"] == 2
        assert loaded["error_class"] == "transient"
        assert loaded["error_type"] == "OSError" and "glitch" in loaded["message"]
        store.clear_failure(cell)
        assert store.get_failure(cell) is None
        store.clear_failure(cell)  # idempotent

    def test_records_do_not_count_as_entries(self, tmp_path):
        store = DirStore(tmp_path)
        cell = make_cell()
        store.put_failure(
            cell, failure_record(cell, cell_key(cell), attempts=1, label="deterministic",
                                 error=ValueError("x")),
        )
        stats = store_stats(store)
        assert stats["entries"] == 0 and stats["failures"] == 1
        assert list(store.entry_keys()) == []
        assert [key for key, _ in store.failure_records()] == [cell_key(cell)]

    def test_merge_copies_records_and_results_supersede(self, tmp_path):
        source, dest = DirStore(tmp_path / "src"), DirStore(tmp_path / "dst")
        failed_cell, solved_cell = make_cell(margin=1.0), make_cell(margin=2.0)
        for cell in (failed_cell, solved_cell):
            source.put_failure(
                cell, failure_record(cell, cell_key(cell), attempts=3,
                                     label="transient", error=OSError("x")),
            )
        dest.put(solved_cell, _stub_solve(solved_cell))  # result beats record
        stats = merge_stores([source], dest)
        assert stats.failures_copied == 1 and stats.failures_superseded == 1
        assert dest.get_failure(failed_cell) is not None
        assert dest.get_failure(solved_cell) is None
        assert "failure records" in stats.summary()


class TestSerialRetries:
    def test_transient_failures_retry_then_succeed(self, tmp_path):
        calls = {}

        def flaky(cell):
            calls[cell.margin] = calls.get(cell.margin, 0) + 1
            if cell.margin == 2.0 and calls[cell.margin] < 3:
                raise OSError("transient glitch")
            return _stub_solve(cell)

        report = run_sweep(
            make_spec(), cache=DirStore(tmp_path), solve=flaky, failures=FAST_RETRIES
        )
        assert report.complete and report.solved == 3
        counts = report.lifecycle_counts()
        assert counts["retried"] == 2 and counts["failed"] == 2
        assert "quarantined" not in counts
        assert calls[2.0] == 3

    def test_deterministic_failure_aborts_with_partial_report(self, tmp_path):
        store = DirStore(tmp_path)
        with pytest.raises(ValueError, match="margin 2 is poison") as excinfo:
            run_sweep(make_spec(), cache=store, solve=_poison_margin2_solve,
                      failures=FAST_RETRIES)
        partial = excinfo.value.partial_report
        assert partial.aborted and not partial.complete and not partial.table_ready
        assert partial.quarantined == 1
        counts = partial.lifecycle_counts()
        assert counts["quarantined"] == 1 and "retried" not in counts
        # The record persisted with the real class, for resume and triage.
        record = store.get_failure(make_cell(margin=2.0))
        assert record["error_class"] == "deterministic"
        assert record["attempts"] == 1  # no retries for deterministic errors
        # Sibling results solved before/after the failure are preserved.
        assert store.get(make_cell(margin=1.0)) is not None

    def test_keep_going_completes_with_row_omitted(self, tmp_path):
        report = run_sweep(
            make_spec(), cache=DirStore(tmp_path), solve=_poison_margin2_solve,
            failures=FailurePolicy(keep_going=True, backoff_base=0.001),
        )
        assert not report.complete and report.table_ready
        assert report.quarantined == 1
        [skip] = report.skipped
        assert skip.reason == "failed" and skip.key == cell_key(make_cell(margin=2.0))
        table = report.table()
        assert len(table.rows) == 2  # margin-2 row omitted
        assert any("omitted" in note for note in table.notes)
        assert "1 failed" in report.summary()

    def test_max_failures_budget_tolerates_then_aborts(self, tmp_path):
        def all_poison(cell):
            raise ValueError(f"poison margin {cell.margin:g}")

        tolerant = FailurePolicy(max_failures=2, backoff_base=0.001)
        report = run_sweep(
            make_spec(margins=(1.0, 2.0)), cache=DirStore(tmp_path / "a"),
            solve=all_poison, failures=tolerant,
        )
        assert report.table_ready and report.quarantined == 2
        with pytest.raises(ValueError):
            run_sweep(
                make_spec(margins=(1.0, 2.0, 3.0)), cache=DirStore(tmp_path / "b"),
                solve=all_poison, failures=tolerant,
            )

    def test_resume_honors_deterministic_record(self, tmp_path):
        store = DirStore(tmp_path)
        keep_going = FailurePolicy(keep_going=True, backoff_base=0.001)
        run_sweep(make_spec(), cache=store, solve=_poison_margin2_solve,
                  failures=keep_going)
        # Resume with a now-working solver: the stored cells probe as
        # hits and the quarantined cell is NOT re-attempted.
        calls = []

        def counting(cell):
            calls.append(cell.margin)
            return _stub_solve(cell)

        report = run_sweep(make_spec(), cache=store, solve=counting, failures=keep_going)
        assert calls == [] and report.cached == 2
        assert report.quarantined == 1
        [skip] = report.skipped
        assert skip.detail == "persisted-record"
        # The original record survives the up-front quarantine untouched.
        assert store.get_failure(make_cell(margin=2.0))["error_type"] == "ValueError"
        # Clearing re-arms the cell.
        assert store.clear_failures() == 1
        report = run_sweep(make_spec(), cache=store, solve=counting, failures=keep_going)
        assert report.complete and calls == [2.0]

    def test_transient_record_does_not_block_resume(self, tmp_path):
        store = DirStore(tmp_path)
        cell = make_cell(margin=2.0)
        store.put_failure(
            cell, failure_record(cell, cell_key(cell), attempts=3,
                                 label="worker-death", error=WorkerCrashError("died")),
        )
        report = run_sweep(make_spec(), cache=store, solve=_stub_solve,
                           failures=FAST_RETRIES)
        assert report.complete and report.solved == 3
        assert store.get_failure(cell) is None  # success cleared the record

    def test_default_policy_matches_historical_abort(self):
        # No cache, no policy: the first deterministic failure still
        # raises the original error (the seed contract).
        with pytest.raises(ValueError, match="margin 2 is poison"):
            run_sweep(make_spec(), solve=_poison_margin2_solve)

    def test_manifest_carries_failure_counters(self, tmp_path):
        store = DirStore(tmp_path)
        spec = make_spec()
        report = run_sweep(
            spec, cache=store, solve=_poison_margin2_solve,
            failures=FailurePolicy(keep_going=True, backoff_base=0.001),
        )
        manifest = build_manifest(spec, report, store)
        assert manifest["failures"]["quarantined"] == 1
        assert manifest["failures"]["records"] == 1
        assert manifest["lifecycle"]["quarantined"] == 1

    def test_partial_artifacts_flush_on_abort(self, tmp_path):
        with pytest.raises(ValueError) as excinfo:
            run_sweep(make_spec(), cache=DirStore(tmp_path / "store"),
                      solve=_poison_margin2_solve, failures=FAST_RETRIES)
        paths = write_artifacts(excinfo.value.partial_report, tmp_path / "out")
        names = {path.name for path in paths}
        assert names == {"test.cells.json", "test.events.json"}  # no table
        events = json.loads((tmp_path / "out" / "test.events.json").read_text())
        assert events["aborted"] is True
        assert events["lifecycle"]["quarantined"] == 1
        assert events["skipped"][0]["detail"] == "deterministic"

    def test_elapsed_uses_monotonic_clock(self, monkeypatch):
        # A wall-clock step (NTP, DST) must not corrupt elapsed.
        monkeypatch.setattr(time, "time", lambda: 0.0)
        report = run_sweep(make_spec(margins=(1.0,)), solve=_stub_solve)
        assert 0.0 <= report.elapsed < 60.0


def _injected_solve(cell):
    """Worker-side stub; injected faults fire via the executor's trigger."""
    return {scheme: cell.margin + i for i, scheme in enumerate(SCHEME_COLUMNS)}


class TestParallelFaults:
    def test_injected_worker_kill_loses_no_results(self, tmp_path, monkeypatch):
        spec = make_spec(margins=(1.0, 2.0, 3.0, 4.0))
        poison = cell_key(spec.cells[1])
        monkeypatch.setenv(
            FAULTS_ENV,
            f"site=solve,action=kill,key={poison[:12]},times=1,state={tmp_path / 'st'}",
        )
        store = DirStore(tmp_path / "store")
        report = run_sweep(spec, jobs=2, cache=store, solve=_injected_solve,
                           failures=FAST_RETRIES)
        assert report.complete and len(report.results) == 4
        assert report.lifecycle_counts().get("retried", 0) >= 1
        for cell in spec.cells:
            assert store.get(cell) is not None

    def test_persistent_kill_quarantines_as_worker_death(self, tmp_path, monkeypatch):
        spec = make_spec(margins=(1.0, 2.0, 3.0))
        poison = cell_key(spec.cells[2])
        monkeypatch.setenv(FAULTS_ENV, f"site=solve,action=kill,key={poison[:12]}")
        store = DirStore(tmp_path)
        report = run_sweep(
            spec, jobs=2, cache=store, solve=_injected_solve,
            failures=FailurePolicy(max_attempts=2, keep_going=True, backoff_base=0.001),
        )
        assert report.table_ready and report.quarantined == 1
        [skip] = report.skipped
        assert skip.key == poison and skip.detail == "worker-death"
        record = store.get_failure(spec.cells[2])
        assert record["error_type"] == "WorkerCrashError"
        # Sibling cells survived every pool replacement.
        assert store.get(spec.cells[0]) is not None
        assert store.get(spec.cells[1]) is not None

    def test_watchdog_kills_hung_worker_and_quarantines(self, tmp_path, monkeypatch):
        spec = make_spec(margins=(1.0, 2.0, 3.0))
        hung = cell_key(spec.cells[0])
        monkeypatch.setenv(
            FAULTS_ENV, f"site=solve,action=hang,seconds=30,key={hung[:12]}"
        )
        store = DirStore(tmp_path)
        started = time.monotonic()
        report = run_sweep(
            spec, jobs=2, cache=store, solve=_injected_solve,
            failures=FailurePolicy(
                max_attempts=2, keep_going=True, cell_timeout=0.75, backoff_base=0.001
            ),
        )
        assert time.monotonic() - started < 25.0  # never waited out a hang
        assert report.table_ready and report.quarantined == 1
        [skip] = report.skipped
        assert skip.key == hung and skip.detail == "timeout"
        counts = report.lifecycle_counts()
        assert counts.get("timed-out", 0) >= 1
        assert store.get_failure(spec.cells[0])["error_type"] == "CellTimeoutError"
        assert store.get(spec.cells[1]) is not None
        assert store.get(spec.cells[2]) is not None

    def test_store_put_fault_fires_at_boundary(self, tmp_path, monkeypatch):
        store = DirStore(tmp_path)
        cell = make_cell()
        monkeypatch.setenv(FAULTS_ENV, "site=store.put,action=raise,exc=OSError,times=1")
        with pytest.raises(OSError, match="injected"):
            store.put(cell, _stub_solve(cell))
        store.put(cell, _stub_solve(cell))  # budget spent
        assert store.get(cell) is not None

    def test_claim_fault_fires_at_boundary(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "site=claim,action=raise,exc=OSError,times=1")
        policy = ClaimPolicy(root=tmp_path, owner="tester", ttl=3600.0)
        with pytest.raises(OSError, match="injected"):
            try_claim(policy, "deadbeef")
        assert try_claim(policy, "deadbeef") == "claimed"


def _hang_solve(cell):
    time.sleep(120)
    return _stub_solve(cell)


def _claiming_child(root):
    """Child process: start a claim-coordinated sweep that hangs mid-solve."""
    policy = ClaimPolicy(root=root, owner=default_owner(), ttl=3600.0)
    run_sweep(
        make_spec(margins=(1.0,)), cache=DirStore(root), claims=policy,
        solve=_hang_solve,
    )


class TestClaimReleaseOnDeath:
    def test_keyboard_interrupt_releases_claims(self, tmp_path):
        def interrupted(cell):
            if cell.margin == 2.0:
                raise KeyboardInterrupt
            return _stub_solve(cell)

        store = DirStore(tmp_path)
        policy = ClaimPolicy(root=tmp_path, owner="tester", ttl=3600.0)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(make_spec(), cache=store, claims=policy, solve=interrupted)
        for cell in make_spec().cells:
            assert claim_status(tmp_path, cell_key(cell)) == "unclaimed"
        # Work done before the interrupt is preserved.
        assert store.get(make_cell(margin=1.0)) is not None

    def test_sigterm_killed_owner_claim_is_stealable(self, tmp_path):
        key = cell_key(make_cell(margin=1.0))
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_claiming_child, args=(tmp_path,))
        child.start()
        try:
            deadline = time.monotonic() + 20.0
            while not claim_path(tmp_path, key).exists():
                assert time.monotonic() < deadline, "child never claimed the cell"
                assert child.is_alive()
                time.sleep(0.05)
            child.terminate()  # SIGTERM mid-solve: no chance to release
            child.join(timeout=10.0)
            assert not child.is_alive()
        finally:
            if child.is_alive():
                child.kill()
                child.join()
        # The claim file survives the kill, but the same-host dead-pid
        # probe expires it immediately -- no TTL wait for a resumer.
        assert claim_path(tmp_path, key).exists()
        assert claim_status(tmp_path, key) == "expired"
        resumer = ClaimPolicy(root=tmp_path, owner="resumer", ttl=3600.0)
        assert try_claim(resumer, key) == "stolen"
