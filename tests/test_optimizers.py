"""Tests for the splitting optimizers (softmax + GP) and the robust loop."""

import math

import pytest

from repro.config import SolverConfig
from repro.core.gp import optimize_splitting_gp
from repro.core.robust import optimize_robust_splitting
from repro.core.softmax_opt import optimize_splitting_softmax
from repro.demands.matrix import DemandMatrix
from repro.demands.uncertainty import margin_box, oblivious_pairs
from repro.exceptions import SolverError
from repro.experiments.running_example import example_dag, fig1b_routing
from repro.lp.worst_case import WorstCaseOracle, normalize_to_unit_optimum
from repro.routing.splitting import uniform_ratios

GOLDEN = math.sqrt(5.0) - 1.0


@pytest.fixture
def example_problem(running_example):
    dag = example_dag(running_example)
    dags = {"t": dag}
    matrices = [
        normalize_to_unit_optimum(running_example, DemandMatrix({("s1", "t"): 2.0}), dags=dags),
        normalize_to_unit_optimum(running_example, DemandMatrix({("s2", "t"): 2.0}), dags=dags),
    ]
    return running_example, dags, matrices


class TestSoftmaxOptimizer:
    def test_reaches_near_golden_ratio(self, example_problem):
        net, dags, matrices = example_problem
        solution = optimize_splitting_softmax(net, dags, matrices)
        assert solution.objective == pytest.approx(GOLDEN, abs=0.02)

    def test_routing_is_valid(self, example_problem):
        net, dags, matrices = example_problem
        solution = optimize_splitting_softmax(net, dags, matrices)
        solution.routing.validate()

    def test_warm_start_respected(self, example_problem):
        net, dags, matrices = example_problem
        start = {"t": uniform_ratios(dags["t"])}
        solution = optimize_splitting_softmax(
            net, dags, matrices, initial_ratios=[start]
        )
        assert solution.objective <= 4.0 / 3.0 + 0.05

    def test_empty_matrices_rejected(self, example_problem):
        net, dags, _ = example_problem
        with pytest.raises(SolverError):
            optimize_splitting_softmax(net, dags, [])

    def test_objective_not_worse_than_any_start(self, example_problem):
        """The optimizer keeps the best iterate, including the starts."""
        net, dags, matrices = example_problem
        from repro.core.softmax_opt import _Problem

        start = {"t": uniform_ratios(dags["t"])}
        problem = _Problem(net, dags, matrices)
        start_value = problem.true_objective(problem.theta_from_ratios(start))
        solution = optimize_splitting_softmax(
            net, dags, matrices, initial_ratios=[start]
        )
        assert solution.objective <= start_value + 1e-9


class TestGpOptimizer:
    def test_hits_golden_ratio_exactly(self, example_problem):
        net, dags, matrices = example_problem
        solution = optimize_splitting_gp(net, dags, matrices)
        assert solution.objective == pytest.approx(GOLDEN, abs=1e-4)

    def test_golden_split_ratios(self, example_problem):
        net, dags, matrices = example_problem
        solution = optimize_splitting_gp(net, dags, matrices)
        phi = solution.routing.ratios["t"]
        inverse_golden = (math.sqrt(5.0) - 1.0) / 2.0
        assert phi[("s1", "s2")] == pytest.approx(inverse_golden, abs=1e-3)
        assert phi[("s2", "t")] == pytest.approx(inverse_golden, abs=1e-3)

    def test_agrees_with_softmax(self, example_problem):
        net, dags, matrices = example_problem
        gp = optimize_splitting_gp(net, dags, matrices)
        sm = optimize_splitting_softmax(net, dags, matrices)
        assert gp.objective == pytest.approx(sm.objective, abs=0.03)

    def test_respects_initial_ratios(self, example_problem):
        net, dags, matrices = example_problem
        start = {"t": uniform_ratios(dags["t"])}
        solution = optimize_splitting_gp(net, dags, matrices, initial_ratios=start)
        assert solution.objective <= 4.0 / 3.0 + 1e-6


class TestRobustLoop:
    def test_oblivious_running_example(self, running_example):
        dags = {"t": example_dag(running_example)}
        users = oblivious_pairs([("s1", "t"), ("s2", "t")])
        result = optimize_robust_splitting(running_example, dags, users)
        # The optimum over the two-user oblivious set is the golden value.
        assert result.oracle.ratio == pytest.approx(GOLDEN, abs=0.02)

    def test_lower_bound_below_oracle(self, running_example):
        dags = {"t": example_dag(running_example)}
        users = oblivious_pairs([("s1", "t"), ("s2", "t")])
        result = optimize_robust_splitting(running_example, dags, users)
        assert result.objective <= result.oracle.ratio + 1e-6

    def test_fallback_guarantee(self, running_example):
        """With fallbacks, the result is never worse than the fallback."""
        dags = {"t": example_dag(running_example)}
        users = oblivious_pairs([("s1", "t"), ("s2", "t")])
        ecmp_like = fig1b_routing(running_example)
        oracle = WorstCaseOracle(running_example, users, dags=dags)
        fallback_ratio = oracle.evaluate(ecmp_like).ratio
        crippled = SolverConfig(
            max_adversarial_rounds=1,
            max_inner_iterations=1,
            smoothing_temperatures=(1.0,),
        )
        result = optimize_robust_splitting(
            running_example, dags, users, config=crippled, fallbacks=[ecmp_like]
        )
        assert result.oracle.ratio <= fallback_ratio + 1e-9

    def test_margin_box_optimization(self, running_example):
        dags = {"t": example_dag(running_example)}
        base = DemandMatrix({("s1", "t"): 1.0, ("s2", "t"): 1.0})
        box = margin_box(base, 2.0)
        result = optimize_robust_splitting(running_example, dags, box)
        # Bounded uncertainty is easier than oblivious.
        assert result.oracle.ratio <= GOLDEN + 0.02

    def test_gp_backend(self, running_example):
        dags = {"t": example_dag(running_example)}
        users = oblivious_pairs([("s1", "t"), ("s2", "t")])
        result = optimize_robust_splitting(
            running_example, dags, users, optimizer="gp"
        )
        assert result.oracle.ratio == pytest.approx(GOLDEN, abs=0.02)

    def test_unknown_optimizer_rejected(self, running_example):
        dags = {"t": example_dag(running_example)}
        users = oblivious_pairs([("s1", "t"), ("s2", "t")])
        with pytest.raises(SolverError, match="unknown splitting optimizer"):
            optimize_robust_splitting(running_example, dags, users, optimizer="magic")

    def test_history_is_recorded(self, running_example):
        dags = {"t": example_dag(running_example)}
        users = oblivious_pairs([("s1", "t"), ("s2", "t")])
        result = optimize_robust_splitting(running_example, dags, users)
        assert len(result.history) == result.rounds
        assert all(obj <= orc + 1e-6 for obj, orc in result.history[-1:])
