"""Repo hygiene: ignore rules and lint coverage track the tree's litter.

``benchmarks/`` and ``examples/`` historically grew ``__pycache__``
directories that nothing ignored, and runtime artifacts (bench results,
sweep caches) would otherwise show up as untracked noise.  These tests
pin the ``.gitignore`` and ruff coverage so the fix can't silently rot.
"""

from __future__ import annotations

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Every pattern the repo's runtime is known to produce.
REQUIRED_IGNORES = {
    "__pycache__/",
    "*.pyc",
    ".pytest_cache/",
    "*.egg-info/",
    ".benchmarks/",       # pytest-benchmark's storage
    ".hypothesis/",       # hypothesis' example database
    ".sweep-cache/",      # CI sweep smoke cache
    ".campaign/",         # conventional in-repo campaign store (docs/campaigns.md)
    ".faults/",           # CI fault-injection smoke stores
    ".faults-state/",     # fault-injection trigger counters (docs/campaigns.md)
    "BENCH_*.json",       # repro bench results (committed only as CI artifacts)
    "sweep-artifacts/",   # repro sweep --out (CI smoke)
    "bench-artifacts/",   # repro bench --out (CI smoke)
}

#: Directories containing first-party Python that ruff must target.
PYTHON_DIRS = ("src", "tests", "benchmarks", "examples")


def _gitignore_patterns() -> set[str]:
    text = (REPO_ROOT / ".gitignore").read_text()
    return {
        line.strip()
        for line in text.splitlines()
        if line.strip() and not line.startswith("#")
    }


def test_gitignore_covers_runtime_litter():
    missing = REQUIRED_IGNORES - _gitignore_patterns()
    assert not missing, f".gitignore lacks patterns for runtime litter: {sorted(missing)}"


def test_ruff_lints_the_whole_tree_in_ci():
    # Lint coverage comes from the CI invocation, not [tool.ruff] src
    # (which only sets import-resolution roots): `ruff check .` must
    # stay whole-tree so benchmarks/ and examples/ never silently lose
    # coverage, and the format check must name every python directory.
    workflow = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
    assert "ruff check ." in workflow
    format_line = next(
        line for line in workflow.splitlines()
        if line.strip().startswith("run: ruff format --check")
    )
    for directory in PYTHON_DIRS:
        assert directory in format_line, (
            f"CI's ruff format check must include {directory!r}"
        )


def test_ruff_resolves_first_party_imports_everywhere():
    pyproject = (REPO_ROOT / "pyproject.toml").read_text()
    src_line = next(
        line for line in pyproject.splitlines() if line.startswith("src = [")
    )
    for directory in PYTHON_DIRS:
        assert f'"{directory}"' in src_line, (
            f"pyproject.toml [tool.ruff] src should include {directory!r} so "
            f"first-party imports resolve there"
        )


def test_lp_docstring_lint_scoped_to_lp_package():
    # D100/D104 back the LP layer's numerical contract (docstrings state
    # tolerances and status mapping — docs/lp_backends.md): they must
    # stay selected, and stay scoped via the negated per-file-ignore so
    # the rest of the tree doesn't silently start requiring docstrings.
    pyproject = (REPO_ROOT / "pyproject.toml").read_text()
    select_line = next(
        line for line in pyproject.splitlines() if line.startswith("select = [")
    )
    for rule in ("D100", "D104"):
        assert f'"{rule}"' in select_line, f"ruff select must keep {rule}"
    assert '"!src/repro/lp/**" = ["D100", "D104"]' in pyproject, (
        "D100/D104 must stay scoped to src/repro/lp/ via the negated "
        "per-file-ignore"
    )


def test_readme_doc_links_resolve():
    # Both orientation pages must exist and be reachable from README.
    import re

    readme = (REPO_ROOT / "README.md").read_text()
    linked = set(re.findall(r"\((docs/[^)#]+\.md)\)", readme))
    assert {"docs/ARCHITECTURE.md", "docs/lp_backends.md"} <= linked, (
        f"README must link both docs pages; found {sorted(linked)}"
    )
    for relative in sorted(linked):
        assert (REPO_ROOT / relative).is_file(), f"README links missing page {relative}"


def test_python_dirs_exist_and_hold_python():
    for directory in PYTHON_DIRS:
        assert list((REPO_ROOT / directory).rglob("*.py")), directory


def test_no_bytecode_or_artifacts_tracked_by_git():
    git = shutil.which("git")
    if git is None or not (REPO_ROOT / ".git").exists():
        pytest.skip("not a git checkout")
    tracked = subprocess.run(
        [git, "-C", str(REPO_ROOT), "ls-files"],
        capture_output=True, text=True, check=True,
    ).stdout.splitlines()
    offenders = [
        path for path in tracked
        if "__pycache__" in path
        or path.endswith(".pyc")
        or path.startswith("BENCH_")
    ]
    assert not offenders, f"bytecode/artifacts committed to git: {offenders}"


def test_benchmark_and_example_pycache_ignored_by_git():
    git = shutil.which("git")
    if git is None or not (REPO_ROOT / ".git").exists():
        pytest.skip("not a git checkout")
    # check-ignore exits 0 only when every path is covered by an ignore rule.
    result = subprocess.run(
        [
            git, "-C", str(REPO_ROOT), "check-ignore",
            "benchmarks/__pycache__", "examples/__pycache__",
            "benchmarks/bench_fig6.pyc", "BENCH_table1.json",
        ],
        capture_output=True, text=True,
    )
    assert result.returncode == 0, f"paths not ignored:\n{result.stdout}"
