"""Tests for failure-scenario precomputation."""

from repro.config import SolverConfig
from repro.core.failures import (
    degraded_network,
    precompute_failure_plan,
)
from repro.demands.gravity import gravity_matrix
from repro.demands.uncertainty import margin_box
from repro.topologies.generators import ring_network, tree_with_chords

FAST = SolverConfig(
    max_adversarial_rounds=2,
    max_inner_iterations=8,
    smoothing_temperatures=(8.0,),
)


class TestDegradedNetwork:
    def test_removes_both_directions(self, triangle):
        survivor = degraded_network(triangle, ("a", "b"))
        assert not survivor.has_edge("a", "b")
        assert not survivor.has_edge("b", "a")
        assert survivor.has_edge("a", "c")

    def test_keeps_all_nodes(self, triangle):
        survivor = degraded_network(triangle, ("a", "b"))
        assert set(survivor.nodes()) == set(triangle.nodes())


class TestFailurePlan:
    def test_ring_all_links_survivable(self):
        net = ring_network(4)
        base = gravity_matrix(net)
        plan = precompute_failure_plan(
            net, margin_box(base, 1.5), config=FAST, max_scenarios=2
        )
        assert len(plan.scenarios) == 2
        assert not plan.skipped
        for scenario in plan.scenarios:
            scenario.routing.validate()
            assert scenario.ratio >= 1.0 - 1e-6

    def test_degradation_reported(self):
        net = ring_network(4)
        base = gravity_matrix(net)
        plan = precompute_failure_plan(
            net, margin_box(base, 1.5), config=FAST, max_scenarios=2
        )
        # Ratios are normalized per degraded topology, so degradation may
        # be below 1 (a ring minus a link is a path: no choices, ratio 1).
        assert plan.max_degradation() > 0
        assert plan.worst_scenario() is not None
        assert plan.baseline_ratio >= 1.0 - 1e-6

    def test_bridge_links_skipped(self):
        # A tree's links are all bridges: every scenario is skipped.
        net = tree_with_chords("failtree", 5, 0, seed=1)
        base = gravity_matrix(net)
        plan = precompute_failure_plan(
            net, margin_box(base, 1.5), config=FAST, max_scenarios=3
        )
        assert plan.skipped
        assert not plan.scenarios

    def test_coyote_not_worse_than_ecmp_under_failures(self):
        net = ring_network(5)
        base = gravity_matrix(net)
        plan = precompute_failure_plan(
            net, margin_box(base, 2.0), config=FAST, max_scenarios=2
        )
        for scenario in plan.scenarios:
            assert scenario.ratio <= scenario.ecmp_ratio + 1e-6
