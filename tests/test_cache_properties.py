"""Property-based tests for cache-key stability (hypothesis).

The result cache is only sound if cell fingerprints are *stable* (the
same logical cell always hashes the same, regardless of how its params
mapping was constructed), *distinct* (different kinds, params, or
column sets never collide), and *versioned* (a ``CACHE_VERSION`` bump
orphans every old entry).  These are exactly the properties a unit test
with two hand-picked examples under-covers, so hypothesis generates the
examples.

Note: no function-scoped fixtures inside ``@given`` tests (hypothesis'
health check forbids them — they would not reset between generated
examples), so version swaps use try/finally and kinds are registered at
import.
"""

from __future__ import annotations

import dataclasses

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.runner.spec as spec_module
from repro.config import SolverConfig
from repro.runner.cache import ResultCache
from repro.runner.spec import (
    CellKind,
    SweepCell,
    cell_key,
    freeze_params,
    register_cell_kind,
)

SOLVER = SolverConfig(max_adversarial_rounds=2, max_inner_iterations=10)

#: Param values a kind can carry: scalars and (nested) lists of scalars,
#: exactly what freeze_params supports.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)
_param_values = st.one_of(_scalars, st.lists(_scalars, max_size=4))
_param_dicts = st.dictionaries(
    st.text(min_size=1, max_size=12), _param_values, max_size=5
)


def _register_stub_kinds() -> None:
    """(Re-)register the single-column kinds the generated cells use.

    Registration is idempotent (later registrations win), so tests that
    deliberately clobber a kind's columns call this again to restore the
    baseline before the next example.
    """
    for name in ("prop-kind-a", "prop-kind-b"):
        register_cell_kind(CellKind(name=name, solve=lambda cell: {}, columns=("X",)))


_register_stub_kinds()


def make_cell(**overrides) -> SweepCell:
    defaults = dict(
        experiment="prop",
        topology="abilene",
        demand_model="gravity",
        margin=1.0,
        seed=7,
        solver=SOLVER,
    )
    defaults.update(overrides)
    return SweepCell(**defaults)


class TestFingerprintStability:
    @given(params=_param_dicts, reordered=st.randoms())
    def test_fingerprint_invariant_to_param_order(self, params, reordered):
        # The same mapping inserted in any order freezes — and therefore
        # hashes — identically.
        items = list(params.items())
        reordered.shuffle(items)
        shuffled = dict(items)
        assert freeze_params(params) == freeze_params(shuffled)
        cell = make_cell(kind="prop-kind-a", params=freeze_params(params))
        other = make_cell(kind="prop-kind-a", params=freeze_params(shuffled))
        assert cell.fingerprint() == other.fingerprint()
        assert cell_key(cell) == cell_key(other)

    @given(params=_param_dicts)
    def test_lists_and_tuples_freeze_identically(self, params):
        as_tuples = {
            name: tuple(value) if isinstance(value, list) else value
            for name, value in params.items()
        }
        assert freeze_params(params) == freeze_params(as_tuples)

    @given(params=_param_dicts)
    def test_kind_name_always_distinguishes(self, params):
        # Identical inputs under two different kinds never share a key.
        _register_stub_kinds()
        frozen = freeze_params(params)
        key_a = cell_key(make_cell(kind="prop-kind-a", params=frozen))
        key_b = cell_key(make_cell(kind="prop-kind-b", params=frozen))
        assert key_a != key_b

    @given(columns=st.lists(st.text(min_size=1, max_size=8), min_size=1,
                            max_size=4, unique=True))
    def test_column_set_always_distinguishes(self, columns):
        # A kind whose declared columns change must orphan its entries.
        _register_stub_kinds()  # baseline columns ("X",) for this example
        base = cell_key(make_cell(kind="prop-kind-a"))
        if tuple(columns) == ("X",):
            return
        register_cell_kind(
            CellKind(name="prop-kind-a", solve=lambda cell: {}, columns=tuple(columns))
        )
        try:
            assert cell_key(make_cell(kind="prop-kind-a")) != base
        finally:
            _register_stub_kinds()

    @given(margin=st.floats(min_value=1.0, max_value=5.0, allow_nan=False),
           seed=st.integers(min_value=0, max_value=2**31))
    def test_solver_fields_participate(self, margin, seed):
        cell = make_cell(margin=margin)
        tweaked = make_cell(
            margin=margin, solver=dataclasses.replace(SOLVER, seed=seed)
        )
        if seed == SOLVER.seed:
            assert cell_key(cell) == cell_key(tweaked)
        else:
            assert cell_key(cell) != cell_key(tweaked)


class TestCacheVersion:
    def test_current_version_is_pinned(self):
        # Bumps must be deliberate: runner-v2 orphaned every runner-v1
        # entry when fingerprints gained kind/params/columns; runner-v3
        # when the vectorized kernel re-implemented the solver hot path;
        # runner-v4 when the LP backend layer replaced the one-shot
        # linprog path.  If this assertion fails you changed cache
        # semantics — update it *and* leave a CHANGES/ROADMAP note
        # explaining the invalidation.
        assert spec_module.CACHE_VERSION == "runner-v4"

    @settings(max_examples=25)
    @given(version=st.text(min_size=1, max_size=16),
           value=st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    def test_version_mismatch_is_always_a_miss(self, tmp_path_factory, version, value):
        # An entry written under any other CACHE_VERSION is never served
        # (and vice versa: current entries vanish after a bump).
        _register_stub_kinds()
        cache = ResultCache(tmp_path_factory.mktemp("prop-cache"))
        cell = make_cell(kind="prop-kind-a")
        original = spec_module.CACHE_VERSION
        try:
            spec_module.CACHE_VERSION = version
            cache.put(cell, {"X": value})
            assert cache.get(cell) == {"X": value}
        finally:
            spec_module.CACHE_VERSION = original
        if version != original:
            assert cache.get(cell) is None
