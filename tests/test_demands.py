"""Tests for demand matrices, demand models, and uncertainty sets."""

import math

import pytest

from repro.demands.bimodal import bimodal_matrix
from repro.demands.gravity import gravity_matrix
from repro.demands.matrix import DemandMatrix
from repro.demands.uncertainty import (
    margin_box,
    oblivious_pairs,
    oblivious_set,
    representative_matrix,
    single_matrix_set,
)
from repro.exceptions import DemandError


class TestDemandMatrix:
    def test_basic_access(self):
        dm = DemandMatrix({("a", "b"): 2.0, ("b", "c"): 1.0})
        assert dm.get("a", "b") == 2.0
        assert dm.get("c", "a") == 0.0
        assert dm.total() == pytest.approx(3.0)

    def test_zero_entries_dropped(self):
        dm = DemandMatrix({("a", "b"): 0.0, ("b", "c"): 1.0})
        assert len(dm) == 1
        assert ("a", "b") not in dm.pairs()

    def test_negative_rejected(self):
        with pytest.raises(DemandError, match="negative"):
            DemandMatrix({("a", "b"): -1.0})

    def test_self_demand_rejected(self):
        with pytest.raises(DemandError, match="itself"):
            DemandMatrix({("a", "a"): 1.0})

    def test_scaled(self):
        dm = DemandMatrix({("a", "b"): 2.0}).scaled(0.5)
        assert dm.get("a", "b") == 1.0

    def test_scaled_negative_rejected(self):
        with pytest.raises(DemandError):
            DemandMatrix({("a", "b"): 1.0}).scaled(-1.0)

    def test_demands_to(self):
        dm = DemandMatrix({("a", "t"): 1.0, ("b", "t"): 2.0, ("a", "x"): 5.0})
        assert dm.demands_to("t") == {"a": 1.0, "b": 2.0}

    def test_restricted_to(self):
        dm = DemandMatrix({("a", "b"): 1.0, ("a", "c"): 1.0})
        assert dm.restricted_to(["a", "b"]).pairs() == [("a", "b")]

    def test_restricted_to_targets(self):
        dm = DemandMatrix({("a", "b"): 1.0, ("a", "c"): 1.0})
        assert dm.restricted_to_targets(["c"]).pairs() == [("a", "c")]

    def test_blended(self):
        a = DemandMatrix({("a", "b"): 2.0})
        b = DemandMatrix({("a", "c"): 4.0})
        mix = a.blended(b, 0.25)
        assert mix.get("a", "b") == pytest.approx(1.5)
        assert mix.get("a", "c") == pytest.approx(1.0)

    def test_close_to(self):
        a = DemandMatrix({("a", "b"): 1.0})
        b = DemandMatrix({("a", "b"): 1.0 + 1e-12})
        assert a.close_to(b)
        assert not a.close_to(DemandMatrix({("a", "b"): 2.0}))

    def test_equality_and_hash(self):
        a = DemandMatrix({("a", "b"): 1.0})
        b = DemandMatrix({("a", "b"): 1.0})
        assert a == b and hash(a) == hash(b)

    def test_uniform_constructor(self):
        dm = DemandMatrix.uniform(["a", "b", "c"], 2.0)
        assert len(dm) == 6
        assert dm.get("b", "a") == 2.0


class TestGravity:
    def test_proportional_to_capacity_products(self, diamond):
        dm = gravity_matrix(diamond)
        # a and d have out-capacity 3; b has 4, c has 2.
        ratio = dm.get("b", "c") / dm.get("a", "d")
        assert ratio == pytest.approx((4.0 * 2.0) / (3.0 * 3.0))

    def test_peak_normalization(self, diamond):
        dm = gravity_matrix(diamond, peak=5.0)
        assert dm.max_entry() == pytest.approx(5.0)

    def test_all_pairs_present(self, abilene):
        dm = gravity_matrix(abilene)
        n = abilene.num_nodes
        assert len(dm) == n * (n - 1)

    def test_bad_peak_rejected(self, diamond):
        with pytest.raises(DemandError):
            gravity_matrix(diamond, peak=0.0)


class TestBimodal:
    def test_deterministic_for_seed(self, abilene):
        a = bimodal_matrix(abilene, seed=7)
        b = bimodal_matrix(abilene, seed=7)
        assert a == b

    def test_different_seeds_differ(self, abilene):
        assert bimodal_matrix(abilene, seed=1) != bimodal_matrix(abilene, seed=2)

    def test_bimodality(self, abilene):
        dm = bimodal_matrix(abilene, seed=3, elephant_volume=1.0, mouse_volume=0.05)
        values = sorted(v for _p, v in dm.items())
        # A clear gap separates mice from elephants.
        assert values[0] < 0.1
        assert values[-1] > 0.7

    def test_invalid_fraction_rejected(self, abilene):
        with pytest.raises(DemandError):
            bimodal_matrix(abilene, seed=1, elephant_fraction=0.0)

    def test_elephants_must_exceed_mice(self, abilene):
        with pytest.raises(DemandError):
            bimodal_matrix(abilene, seed=1, elephant_volume=0.01, mouse_volume=0.05)


class TestUncertainty:
    def test_margin_box_bounds(self):
        base = DemandMatrix({("a", "b"): 4.0})
        box = margin_box(base, 2.0)
        assert box.bounds[("a", "b")] == (2.0, 8.0)
        assert not box.oblivious

    def test_margin_one_is_exact(self):
        base = DemandMatrix({("a", "b"): 4.0})
        box = margin_box(base, 1.0)
        assert box.bounds[("a", "b")] == (4.0, 4.0)

    def test_margin_below_one_rejected(self):
        with pytest.raises(DemandError):
            margin_box(DemandMatrix({("a", "b"): 1.0}), 0.5)

    def test_empty_base_rejected(self):
        with pytest.raises(DemandError):
            margin_box(DemandMatrix({}), 2.0)

    def test_oblivious_set_pairs(self):
        unc = oblivious_set(["a", "b", "c"])
        assert len(unc.pairs) == 6
        assert unc.oblivious
        assert unc.bounds[("a", "b")] == (0.0, math.inf)

    def test_oblivious_pairs_custom_support(self):
        unc = oblivious_pairs([("s1", "t"), ("s2", "t")])
        assert len(unc.pairs) == 2

    def test_cone_membership_scaling(self):
        base = DemandMatrix({("a", "b"): 2.0, ("a", "c"): 2.0})
        box = margin_box(base, 2.0)
        # Any positive scaling of the base matrix is in the cone.
        assert box.contains_direction(base.scaled(17.0))
        # A matrix skewed beyond margin^2 is not.
        skewed = DemandMatrix({("a", "b"): 10.0, ("a", "c"): 1.0})
        assert not box.contains_direction(skewed)

    def test_cone_membership_oblivious(self):
        unc = oblivious_set(["a", "b"])
        assert unc.contains_direction(DemandMatrix({("a", "b"): 123.0}))

    def test_representative_matrix_recovers_base(self):
        base = DemandMatrix({("a", "b"): 3.0, ("b", "a"): 5.0})
        rep = representative_matrix(margin_box(base, 2.5))
        assert rep.close_to(base, tolerance=1e-9)

    def test_representative_matrix_oblivious(self):
        rep = representative_matrix(oblivious_set(["a", "b"]))
        assert rep.get("a", "b") == 1.0

    def test_single_matrix_set(self):
        base = DemandMatrix({("a", "b"): 1.0})
        unc = single_matrix_set(base)
        assert unc.bounds[("a", "b")] == (1.0, 1.0)
