"""Multiprocess stress: two executors race put/get/claim on one DirStore.

The satellite contract for the campaign layer: concurrent executors
sharing a store directory must exhibit no torn reads (every entry in the
store verifies), no duplicate solves beyond claim-expiry races (the TTL
here is generous, so there must be none at all), and a merged/warm pass
over the shared store must reproduce the serial table row-identically.
"""

import json
import multiprocessing
import os

import pytest

from repro.config import SolverConfig
from repro.experiments.common import SCHEME_COLUMNS
from repro.runner.campaign import ClaimPolicy
from repro.runner.executor import run_sweep
from repro.runner.spec import SweepCell, SweepSpec
from repro.runner.store import DirStore, verify_store

TINY_SOLVER = SolverConfig(
    max_adversarial_rounds=2,
    max_inner_iterations=10,
    smoothing_temperatures=(8.0, 64.0),
)

MARGINS = tuple(float(m) for m in range(1, 13))


def make_spec():
    cells = tuple(
        SweepCell(
            experiment="stress",
            topology="abilene",
            demand_model="gravity",
            margin=margin,
            seed=7,
            solver=TINY_SOLVER,
        )
        for margin in MARGINS
    )
    return SweepSpec(experiment="stress", title="stress sweep", cells=cells)


def _slow_stub_solve(cell):
    """Deterministic values with enough wall-clock to force interleaving."""
    import time

    time.sleep(0.02)
    return {scheme: cell.margin + i for i, scheme in enumerate(SCHEME_COLUMNS)}


def _race_one_executor(store_root, owner, out_path, barrier):
    """One contender: a full claim-coordinated sweep over the shared store."""
    barrier.wait()  # maximize overlap between the two executors
    store = DirStore(store_root)
    report = run_sweep(
        make_spec(),
        cache=store,
        solve=_slow_stub_solve,
        claims=ClaimPolicy(root=store.root, owner=owner, ttl=3600.0),
    )
    with open(out_path, "w") as handle:
        json.dump(
            {
                "owner": owner,
                "solved": report.solved,
                "cached": report.cached,
                "stolen": report.stolen,
                "skipped": [skip.reason for skip in report.skipped],
                "resolved": report.solved + report.cached,
            },
            handle,
        )


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork start method")
class TestConcurrentExecutors:
    def test_two_executors_race_cleanly(self, tmp_path):
        spec = make_spec()
        store_root = tmp_path / "store"
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        outs = [tmp_path / f"report{i}.json" for i in range(2)]
        procs = [
            ctx.Process(
                target=_race_one_executor,
                args=(str(store_root), f"owner{i}", str(outs[i]), barrier),
            )
            for i in range(2)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        reports = [json.loads(path.read_text()) for path in outs]

        # No duplicate solves: claims are long-lived, so every cell was
        # solved by exactly one executor; the other saw it as a hit or
        # deferred to the live claim.
        assert sum(report["solved"] for report in reports) == len(spec.cells)
        for report in reports:
            assert all(reason == "claimed-elsewhere" for reason in report["skipped"])
            assert report["stolen"] == 0

        # No torn reads / torn writes: every entry in the shared store
        # parses and re-hashes to its own filename.
        store = DirStore(store_root)
        assert len(store) == len(spec.cells)
        verification = verify_store(store)
        assert verification.ok, verification.problems

        # Row-identical merged output: a warm pass over the raced store
        # reproduces the serial table exactly.
        warm = run_sweep(spec, cache=store, solve=_slow_stub_solve)
        assert warm.complete and warm.solved == 0
        assert warm.cached == len(spec.cells)
        serial = run_sweep(spec, solve=_slow_stub_solve)
        assert warm.table().rows == serial.table().rows
