"""Tests for the adversarial slave LP and the Theorem 5 certificate."""

import pytest

from repro.demands.matrix import DemandMatrix
from repro.demands.uncertainty import margin_box, oblivious_pairs
from repro.lp.certificate import best_certificate_for_edge, certified_oblivious_ratio
from repro.lp.worst_case import (
    WorstCaseOracle,
    evaluate_on_matrices,
    normalize_to_unit_optimum,
)
from repro.experiments.running_example import fig1b_routing, fig1c_routing, example_dag


@pytest.fixture
def example_setup(running_example):
    dag = example_dag(running_example)
    users = oblivious_pairs([("s1", "t"), ("s2", "t")])
    oracle = WorstCaseOracle(running_example, users, dags={"t": dag})
    return running_example, dag, oracle


class TestOracle:
    def test_fig1b_ratio_is_three_halves(self, example_setup):
        net, _dag, oracle = example_setup
        result = oracle.evaluate(fig1b_routing(net))
        assert result.ratio == pytest.approx(1.5, abs=1e-6)

    def test_fig1c_ratio_is_four_thirds(self, example_setup):
        net, _dag, oracle = example_setup
        result = oracle.evaluate(fig1c_routing(net))
        assert result.ratio == pytest.approx(4.0 / 3.0, abs=1e-6)

    def test_worst_demand_is_in_cone(self, example_setup):
        net, _dag, oracle = example_setup
        result = oracle.evaluate(fig1b_routing(net))
        assert result.demand is not None
        assert oracle.check_membership(result.demand)

    def test_worst_demand_attains_ratio(self, example_setup):
        # Re-routing the oracle's demand must reproduce its utilization
        # after normalizing to the within-DAG optimum.
        net, dag, oracle = example_setup
        routing = fig1b_routing(net)
        result = oracle.evaluate(routing)
        normalized = normalize_to_unit_optimum(net, result.demand, dags={"t": dag})
        mlu = routing.max_link_utilization(normalized, net)
        assert mlu == pytest.approx(result.ratio, rel=1e-6)

    def test_margin_one_matches_direct_computation(self, example_setup):
        net, dag, _ = example_setup
        base = DemandMatrix({("s1", "t"): 1.0, ("s2", "t"): 1.0})
        box = margin_box(base, 1.0)
        oracle = WorstCaseOracle(net, box, dags={"t": dag})
        routing = fig1b_routing(net)
        expected = evaluate_on_matrices(net, {"t": dag}, routing, [base])
        assert oracle.evaluate(routing).ratio == pytest.approx(expected, rel=1e-6)

    def test_margin_monotonicity(self, example_setup):
        # Wider margins can only worsen the worst case.
        net, dag, _ = example_setup
        base = DemandMatrix({("s1", "t"): 1.0, ("s2", "t"): 1.0})
        routing = fig1b_routing(net)
        ratios = []
        for margin in (1.0, 1.5, 2.0, 4.0):
            oracle = WorstCaseOracle(net, margin_box(base, margin), dags={"t": dag})
            ratios.append(oracle.evaluate(routing).ratio)
        assert all(a <= b + 1e-9 for a, b in zip(ratios, ratios[1:]))

    def test_oblivious_dominates_margins(self, example_setup):
        net, dag, oracle = example_setup
        base = DemandMatrix({("s1", "t"): 1.0, ("s2", "t"): 1.0})
        routing = fig1b_routing(net)
        oblivious_ratio = oracle.evaluate(routing).ratio
        boxed = WorstCaseOracle(net, margin_box(base, 3.0), dags={"t": dag})
        assert boxed.evaluate(routing).ratio <= oblivious_ratio + 1e-9

    def test_cuts_are_distinct(self, example_setup):
        net, _dag, oracle = example_setup
        result = oracle.evaluate(fig1b_routing(net), keep_cuts=4)
        for i, a in enumerate(result.cuts):
            for b in result.cuts[i + 1:]:
                assert not a.close_to(b, tolerance=1e-9)

    def test_network_witness_uses_global_optimum(self, running_example):
        # Within-DAG normalization can only make ratios larger or equal.
        dag = example_dag(running_example)
        users = oblivious_pairs([("s1", "t"), ("s2", "t")])
        routing = fig1b_routing(running_example)
        dag_oracle = WorstCaseOracle(running_example, users, dags={"t": dag})
        net_oracle = WorstCaseOracle(running_example, users, dags=None)
        assert (
            net_oracle.evaluate(routing).ratio
            <= dag_oracle.evaluate(routing).ratio + 1e-9
        )

    def test_evaluate_on_selected_edges(self, example_setup):
        net, _dag, oracle = example_setup
        result = oracle.evaluate(fig1b_routing(net), edges=[("v", "t")])
        assert set(result.per_edge) == {("v", "t")}


class TestNormalization:
    def test_normalize_to_unit_optimum(self, running_example):
        dag = example_dag(running_example)
        dm = DemandMatrix({("s1", "t"): 10.0})
        normalized = normalize_to_unit_optimum(running_example, dm, dags={"t": dag})
        from repro.lp.mcf import min_congestion

        assert min_congestion(
            running_example, normalized, dags={"t": dag}
        ).alpha == pytest.approx(1.0)


USER_PAIRS = [("s1", "t"), ("s2", "t")]


class TestCertificate:
    def test_certificate_matches_slave_lp(self, example_setup):
        """Strong duality: Theorem 5's best certificate equals the primal."""
        net, dag, oracle = example_setup
        for routing in (fig1b_routing(net), fig1c_routing(net)):
            primal = oracle.evaluate(routing).ratio
            dual = certified_oblivious_ratio(net, {"t": dag}, routing, USER_PAIRS)
            assert dual == pytest.approx(primal, rel=1e-6)

    def test_per_edge_certificate_bounds_edge_utilization(self, example_setup):
        net, dag, oracle = example_setup
        routing = fig1c_routing(net)
        result = oracle.evaluate(routing)
        cert = best_certificate_for_edge(
            net, {"t": dag}, routing, ("v", "t"), USER_PAIRS
        )
        assert cert.ratio == pytest.approx(result.per_edge[("v", "t")], rel=1e-6)

    def test_all_pairs_certificate_dominates(self, example_setup):
        """The fully oblivious certificate covers more demands, so it is
        at least as large as the two-user one."""
        net, dag, _ = example_setup
        routing = fig1b_routing(net)
        restricted = certified_oblivious_ratio(net, {"t": dag}, routing, USER_PAIRS)
        full = certified_oblivious_ratio(net, {"t": dag}, routing)
        assert full >= restricted - 1e-9

    def test_certificate_weights_nonnegative(self, example_setup):
        net, dag, _ = example_setup
        cert = best_certificate_for_edge(
            net, {"t": dag}, fig1b_routing(net), ("v", "t"), USER_PAIRS
        )
        assert all(w >= -1e-12 for w in cert.weights.values())
