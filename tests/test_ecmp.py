"""Tests for ECMP weights and routing."""

import pytest

from repro.demands.matrix import DemandMatrix
from repro.ecmp.routing import ecmp_dags, ecmp_routing
from repro.ecmp.weights import (
    integer_scaled_weights,
    inverse_capacity_weights,
    unit_weights,
)
from repro.exceptions import GraphError
from repro.graph.network import INFINITE_CAPACITY, Network


class TestWeights:
    def test_inverse_capacity(self, diamond):
        weights = inverse_capacity_weights(diamond, reference=100.0)
        assert weights[("a", "b")] == pytest.approx(50.0)
        assert weights[("a", "c")] == pytest.approx(100.0)

    def test_infinite_capacity_edges_preferred(self):
        net = Network.from_edges([("a", "b", 1.0), ("a", "c", INFINITE_CAPACITY)])
        weights = inverse_capacity_weights(net)
        assert weights[("a", "c")] < weights[("a", "b")]

    def test_unit_weights(self, triangle):
        assert set(unit_weights(triangle).values()) == {1.0}

    def test_bad_reference_rejected(self, diamond):
        with pytest.raises(GraphError):
            inverse_capacity_weights(diamond, reference=0.0)

    def test_integer_scaling_preserves_order(self, diamond):
        weights = inverse_capacity_weights(diamond)
        scaled = integer_scaled_weights(weights)
        assert all(isinstance(v, int) and v >= 1 for v in scaled.values())
        assert scaled[("a", "c")] > scaled[("a", "b")]

    def test_integer_scaling_respects_maximum(self):
        weights = {("a", "b"): 1.0, ("a", "c"): 1e9}
        scaled = integer_scaled_weights(weights, maximum=100)
        assert max(scaled.values()) <= 100
        assert min(scaled.values()) >= 1

    def test_integer_scaling_empty(self):
        assert integer_scaled_weights({}) == {}


class TestEcmpRouting:
    def test_equal_split_on_ties(self, diamond):
        routing = ecmp_routing(diamond, unit_weights(diamond))
        ratios = routing.ratios["d"]
        assert ratios[("a", "b")] == pytest.approx(0.5)
        assert ratios[("a", "c")] == pytest.approx(0.5)

    def test_single_shortest_path(self, diamond):
        weights = unit_weights(diamond)
        weights[("a", "c")] = 9.0
        routing = ecmp_routing(diamond, weights)
        assert routing.ratios["d"][("a", "b")] == pytest.approx(1.0)

    def test_dags_per_destination(self, abilene):
        dags = ecmp_dags(abilene, unit_weights(abilene))
        assert set(dags) == set(abilene.nodes())
        for t, dag in dags.items():
            assert dag.root == t

    def test_restricted_destinations(self, abilene):
        dags = ecmp_dags(abilene, unit_weights(abilene), destinations=["Denver"])
        assert list(dags) == ["Denver"]

    def test_loads_conserve_demand(self, abilene):
        routing = ecmp_routing(abilene, unit_weights(abilene))
        dm = DemandMatrix({("Seattle", "NewYork"): 4.0})
        loads = routing.link_loads(dm)
        arriving = sum(f for (u, v), f in loads.items() if v == "NewYork")
        assert arriving == pytest.approx(4.0)

    def test_running_example_matches_section2(self, running_example):
        # Weights realizing Fig. 1b's DAG: s2 ties between t and v
        # (2 = 1 + 1) and s1 ties between s2 and v (1 + 2 = 2 + 1).
        # ECMP then routes demands (2, 0) with 3/2 units on (v, t).
        weights = {e: 1.0 for e in running_example.edges()}
        for edge in ((("s2", "t")), ("t", "s2"), ("s1", "v"), ("v", "s1")):
            weights[edge] = 2.0
        routing = ecmp_routing(running_example, weights)
        loads = routing.link_loads(DemandMatrix({("s1", "t"): 2.0}))
        assert loads[("v", "t")] == pytest.approx(1.5)
