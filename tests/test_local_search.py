"""Tests for Algorithm 1 (local-search weight optimization)."""

import pytest

from repro.config import SolverConfig
from repro.core.local_search import (
    LocalSearchResult,
    MAX_WEIGHT,
    ecmp_utilization,
    local_search_weights,
    weight_search,
)
from repro.demands.gravity import gravity_matrix
from repro.demands.uncertainty import margin_box
from repro.ecmp.weights import integer_scaled_weights, inverse_capacity_weights
from repro.lp.worst_case import normalize_to_unit_optimum

FAST = SolverConfig(max_adversarial_rounds=3, max_inner_iterations=10)


class TestWeightSearch:
    def test_improves_or_keeps_objective(self, abilene):
        weights = integer_scaled_weights(inverse_capacity_weights(abilene), MAX_WEIGHT)
        base = normalize_to_unit_optimum(abilene, gravity_matrix(abilene))
        before = ecmp_utilization(abilene, weights, [base])
        improved = weight_search(abilene, weights, [base], FAST, max_moves=4)
        after = ecmp_utilization(abilene, improved, [base])
        assert after <= before + 1e-9

    def test_weights_stay_integer_in_range(self, abilene):
        weights = integer_scaled_weights(inverse_capacity_weights(abilene), MAX_WEIGHT)
        base = normalize_to_unit_optimum(abilene, gravity_matrix(abilene))
        improved = weight_search(abilene, weights, [base], FAST, max_moves=3)
        assert all(isinstance(v, int) and 1 <= v <= MAX_WEIGHT for v in improved.values())

    def test_empty_matrices_noop(self, abilene):
        weights = integer_scaled_weights(inverse_capacity_weights(abilene), MAX_WEIGHT)
        assert weight_search(abilene, weights, [], FAST) == weights

    def test_ecmp_utilization_no_matrices(self, abilene):
        weights = integer_scaled_weights(inverse_capacity_weights(abilene), MAX_WEIGHT)
        assert ecmp_utilization(abilene, weights, []) == 0.0


class TestAlgorithm1:
    def test_runs_and_reports(self, nsf):
        base = gravity_matrix(nsf)
        result = local_search_weights(
            nsf, margin_box(base, 2.0), bound=1.0, config=FAST
        )
        assert isinstance(result, LocalSearchResult)
        assert result.rounds >= 1
        assert len(result.history) == result.rounds
        assert result.matrices  # at least one critical matrix found

    def test_final_ratio_not_worse_than_first(self, nsf):
        base = gravity_matrix(nsf)
        result = local_search_weights(
            nsf, margin_box(base, 2.0), bound=1.0, config=FAST
        )
        # The heuristic keeps the last weights; its oracle ratio should
        # not exceed the initial (inverse-capacity) ratio meaningfully.
        assert result.oracle_ratio <= result.history[0] * 1.25

    def test_terminates_at_bound(self, abilene):
        # An absurdly generous bound terminates after the first round.
        result = local_search_weights(abilene, bound=1e9, config=FAST)
        assert result.rounds == 1

    def test_critical_matrices_are_normalized(self, abilene):
        base = gravity_matrix(abilene)
        result = local_search_weights(
            abilene, margin_box(base, 2.0), bound=1.0, config=FAST
        )
        from repro.lp.mcf import min_congestion

        for dm in result.matrices[:2]:
            assert min_congestion(abilene, dm).alpha == pytest.approx(1.0, abs=1e-6)
