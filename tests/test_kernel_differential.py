"""Differential tests: vectorized kernel vs the pure-Python reference.

The kernel (:mod:`repro.kernel`) re-implements the routing inner loop —
shortest-path DAG extraction, splitting ratios, flow propagation, load
coefficients, and the local search's delta-evaluated weight step — and the
reference implementations stay in the tree as the behavioral oracle.
Hypothesis generates random strongly connected digraphs, weights (with
deliberate ECMP ties, including perturbations inside and outside the
``_TIE_RTOL`` band), and demand matrices, and asserts:

* identical DAG edge sets (exact — distances are bit-identical);
* identical equal-split ratios and link loads within 1e-9;
* identical oracle load coefficients within 1e-9;
* the delta evaluator's incremental scores match from-scratch kernel and
  pure-Python evaluations, move after committed move.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.core.local_search import ecmp_utilization  # noqa: E402
from repro.demands.matrix import DemandMatrix  # noqa: E402
from repro.ecmp.routing import ecmp_routing  # noqa: E402
from repro.graph.network import Network  # noqa: E402
from repro.graph.paths import _TIE_RTOL, shortest_path_dag  # noqa: E402
from repro.kernel import kernel_disabled  # noqa: E402
from repro.kernel.delta import EcmpDeltaEvaluator, ecmp_max_utilization  # noqa: E402
from repro.kernel.spf import all_targets_spf, shortest_path_dags  # noqa: E402
from repro.routing.propagation import (  # noqa: E402
    load_coefficients,
    load_coefficients_reference,
)
from repro.routing.splitting import uniform_ratios  # noqa: E402

SETTINGS = settings(max_examples=25, deadline=None)

#: Weight values chosen so distinct paths frequently sum to equal cost
#: (powers of two and small integers produce plenty of ECMP ties).
WEIGHT_VALUES = (1.0, 2.0, 3.0, 4.0, 0.5)


@st.composite
def networks(draw) -> Network:
    """A small strongly connected digraph with deterministic edge order.

    A directed ring guarantees strong connectivity; random extra edges
    add the path diversity that makes ECMP interesting.
    """
    n = draw(st.integers(min_value=3, max_value=7))
    nodes = [f"n{i}" for i in range(n)]
    ring = {(nodes[i], nodes[(i + 1) % n]) for i in range(n)}
    pairs = st.tuples(st.sampled_from(nodes), st.sampled_from(nodes)).filter(
        lambda edge: edge[0] != edge[1]
    )
    extra = draw(st.sets(pairs, max_size=2 * n))
    net = Network(name="hyp")
    for u, v in sorted(ring | extra):
        net.add_edge(u, v, draw(st.sampled_from((1.0, 2.0, 5.0))))
    return net


@st.composite
def weighted_networks(draw):
    net = draw(networks())
    weights = {e: draw(st.sampled_from(WEIGHT_VALUES)) for e in net.edges()}
    return net, weights


@st.composite
def weighted_networks_with_demands(draw):
    net, weights = draw(weighted_networks())
    nodes = net.nodes()
    pairs = [(s, t) for s in nodes for t in nodes if s != t]
    chosen = draw(st.sets(st.sampled_from(pairs), min_size=1, max_size=len(pairs)))
    volumes = {
        pair: draw(st.floats(min_value=0.1, max_value=5.0, allow_nan=False))
        for pair in chosen
    }
    return net, weights, DemandMatrix(volumes)


class TestSpfEquivalence:
    @SETTINGS
    @given(weighted_networks())
    def test_identical_dag_edge_sets(self, case):
        net, weights = case
        kernel_dags = shortest_path_dags(net, weights)
        for t in net.nodes():
            reference = shortest_path_dag(net, weights, t)
            assert kernel_dags[t].edges() == reference.edges(), t

    @SETTINGS
    @given(weighted_networks())
    def test_identical_distances(self, case):
        from repro.graph.paths import dijkstra_to_target

        net, weights = case
        state = all_targets_spf(net, weights)
        for t in net.nodes():
            reference = dijkstra_to_target(net, weights, t)
            kernel = state.distances(t)
            assert all(kernel[n] == reference[n] for n in net.nodes()), t

    @SETTINGS
    @given(weighted_networks())
    def test_identical_uniform_ratios(self, case):
        net, weights = case
        state = all_targets_spf(net, weights)
        ratio_rows = state.uniform_ratios()
        index = state.index
        for t in net.nodes():
            reference = uniform_ratios(shortest_path_dag(net, weights, t))
            row = ratio_rows[index.node_id[t]]
            kernel = {
                index.edges[e]: row[e] for e in range(index.num_edges) if row[e] != 0.0
            }
            assert set(kernel) == set(reference), t
            assert all(abs(kernel[e] - reference[e]) <= 1e-9 for e in reference), t

    def test_tie_inside_and_outside_tolerance_band(self):
        """Perturbations near _TIE_RTOL resolve identically on both paths."""
        net = Network.from_undirected(
            [("a", "b", 1.0), ("a", "c", 1.0), ("b", "d", 1.0), ("c", "d", 1.0)]
        )
        for scale in (1.0, 1e3):
            for perturbation, expect_both in [
                (0.0, True),  # exact tie
                (scale * _TIE_RTOL / 4, True),  # inside the band: still a tie
                (scale * _TIE_RTOL * 4096, False),  # outside: single path
            ]:
                weights = {e: scale for e in net.edges()}
                weights[("a", "b")] = scale + perturbation
                kernel = shortest_path_dags(net, weights)["d"]
                with kernel_disabled():
                    reference = shortest_path_dag(net, weights, "d")
                assert kernel.edges() == reference.edges(), (scale, perturbation)
                branches = set(kernel.out_neighbors("a"))
                assert (branches == {"b", "c"}) is expect_both, (scale, perturbation)


class TestPropagationEquivalence:
    @SETTINGS
    @given(weighted_networks_with_demands())
    def test_link_loads_match(self, case):
        net, weights, demand = case
        routing = ecmp_routing(net, weights)
        kernel = routing.link_loads(demand)
        reference = routing.link_loads_reference(demand)
        assert set(kernel) == set(reference)
        assert all(abs(kernel[e] - reference[e]) <= 1e-9 for e in reference)

    @SETTINGS
    @given(weighted_networks_with_demands())
    def test_max_utilization_matches(self, case):
        net, weights, demand = case
        kernel = ecmp_max_utilization(net, weights, [demand])
        with kernel_disabled():
            reference = ecmp_utilization(net, weights, [demand])
        assert kernel == pytest.approx(reference, abs=1e-9)

    @SETTINGS
    @given(weighted_networks())
    def test_load_coefficients_match(self, case):
        net, weights = case
        routing = ecmp_routing(net, weights)
        pairs = [(s, t) for s in net.nodes() for t in net.nodes() if s != t]
        kernel = load_coefficients(routing.dags, routing.ratios, pairs)
        reference = load_coefficients_reference(routing.dags, routing.ratios, pairs)
        assert set(kernel) == set(reference)
        for edge in reference:
            assert set(kernel[edge]) == set(reference[edge]), edge
            for pair in reference[edge]:
                assert kernel[edge][pair] == pytest.approx(
                    reference[edge][pair], abs=1e-9
                ), (edge, pair)


class TestDeltaEvaluatorEquivalence:
    @SETTINGS
    @given(weighted_networks_with_demands(), st.data())
    def test_moves_match_scratch_and_reference(self, case, data):
        net, weights, demand = case
        matrices = [demand]
        evaluator = EcmpDeltaEvaluator(net, weights, matrices)
        current = dict(weights)
        edges = net.edges()
        for _ in range(3):
            edge = data.draw(st.sampled_from(edges))
            new_weight = float(data.draw(st.sampled_from(WEIGHT_VALUES)))
            candidate = evaluator.evaluate_move(edge, new_weight)
            trial = dict(current)
            trial[edge] = new_weight
            scratch = ecmp_max_utilization(net, trial, matrices)
            assert candidate.utilization == pytest.approx(scratch, abs=1e-12)
            with kernel_disabled():
                reference = ecmp_utilization(net, trial, matrices)
            assert candidate.utilization == pytest.approx(reference, abs=1e-9)
            if data.draw(st.booleans()):
                evaluator.commit(candidate)
                current = trial
                assert evaluator.utilization() == pytest.approx(
                    ecmp_max_utilization(net, current, matrices), abs=1e-12
                )

    @SETTINGS
    @given(weighted_networks_with_demands())
    def test_pruning_never_hides_an_improvement(self, case):
        net, weights, demand = case
        matrices = [demand]
        evaluator = EcmpDeltaEvaluator(net, weights, matrices)
        threshold = evaluator.utilization() - 1e-9
        for edge in net.edges()[:4]:
            for value in (1.0, 4.0):
                pruned = evaluator.evaluate_move(edge, value, prune_above=threshold)
                full = evaluator.evaluate_move(edge, value)
                if pruned is None:
                    # Pruned candidates must genuinely be non-improving.
                    assert full.utilization >= threshold
                else:
                    assert pruned.utilization == full.utilization
